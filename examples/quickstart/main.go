// Quickstart: train the model offline, then adaptively select a
// configuration for a never-seen kernel under a power cap — the
// end-to-end flow of the paper in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

func main() {
	// Offline stage: characterize every benchmark except LULESH (we will
	// pretend LULESH is the new application) and train the model.
	var training []kernels.Kernel
	var unseen []kernels.Kernel
	for _, combo := range kernels.Combos() {
		if combo.Benchmark == "LULESH" {
			if combo.Input == "Small" {
				unseen = append(unseen, combo.Kernels...)
			}
			continue
		}
		training = append(training, combo.Kernels...)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	fmt.Printf("offline: profiling %d training kernels at %d configurations each...\n",
		len(training), prof.Space.Len())
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: trained %d clusters (sizes %v), classifier depth %d\n\n",
		model.K, model.ClusterSizes(), model.Tree.Depth())

	// Online stage: for each new kernel, run the two sample iterations,
	// classify, and pick the best predicted configuration under 22 W.
	const capW = 22.0
	fmt.Printf("online: scheduling unseen LULESH Small kernels under a %.0f W cap\n", capW)
	fmt.Printf("%-34s %-28s %-9s %-9s %-6s\n", "kernel", "selected config", "pred W", "true W", "ok")
	for _, k := range unseen[:8] {
		cpuRun, err := prof.RunConfig(k, apu.SampleConfigCPU(), 0)
		if err != nil {
			log.Fatal(err)
		}
		gpuRun, err := prof.RunConfig(k, apu.SampleConfigGPU(), 1)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := model.SelectUnderCap(core.SampleRuns{CPU: cpuRun, GPU: gpuRun}, capW)
		if err != nil {
			log.Fatal(err)
		}
		// Third iteration onward runs at the selected configuration.
		final, err := prof.Run(k, sel.ConfigID, 2)
		if err != nil {
			log.Fatal(err)
		}
		ok := "yes"
		if final.TotalPowerW() > capW {
			ok = "OVER"
		}
		fmt.Printf("%-34s %-28v %-9.1f %-9.1f %-6s\n",
			k.Name, sel.Config, sel.Predicted.PowerW, final.TotalPowerW(), ok)
	}
}
