// Interpose: the §III-D instrumentation story end to end. A C-like
// source file annotated with profiling pragmas is preprocessed into
// library calls; the same kernels then execute through the OpenMP- and
// OpenCL-style runtimes with an interposition hook recording every
// region/command into the profiling history — no application changes
// beyond the pragmas.
//
//	go run ./examples/interpose
package main

import (
	"fmt"
	"log"

	"acsel/internal/apu"
	"acsel/internal/cl"
	"acsel/internal/kernels"
	"acsel/internal/omp"
	"acsel/internal/pragma"
)

// annotatedSource is what the application programmer writes.
const annotatedSource = `void timestep(domain_t *d) {
  #pragma acsel profile("IntegrateStressForElems")
  {
    integrate_stress(d);
  }
  #pragma acsel profile("CalcQForElems")
  calc_q(d);
}`

// collector is the interposition hook: it receives every completed
// region and command, exactly like a wrapped OpenCL/OpenMP runtime.
type collector struct {
	records []string
}

func (c *collector) OnEnqueue(kernel string, cfg apu.Config) {}
func (c *collector) OnComplete(ev *cl.Event) {
	c.records = append(c.records, fmt.Sprintf("[cl ] %-28s %v  %.4fs  launch %.1fµs",
		ev.Kernel, ev.Config, ev.Duration(), ev.LaunchLatency()*1e6))
}
func (c *collector) OnRegionStart(name string, threads int, freqGHz float64) {}
func (c *collector) OnRegionEnd(r *omp.Region) {
	c.records = append(c.records, fmt.Sprintf("[omp] %-28s %d threads @ %.1f GHz  %.4fs  sync %.1fµs",
		r.Name, r.Threads, r.FreqGHz, r.Duration(), r.Execution.SyncTimeSec*1e6))
}

func main() {
	// 1. Preprocess the annotated source.
	rewritten, sites, err := pragma.Preprocess(annotatedSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("preprocessed source:")
	fmt.Println(rewritten)
	fmt.Printf("\ninstrumented kernels: ")
	for _, s := range sites {
		fmt.Printf("%s ", s.Kernel)
	}
	fmt.Print("\n\n")

	// 2. Execute the instrumented kernels through both runtimes with
	// the same hook interposed.
	hook := &collector{}

	suite := kernels.Suite()[0] // LULESH
	byName := map[string]apu.Workload{}
	for _, spec := range suite.Kernels {
		k := kernels.Instantiate(suite.Name, spec, "Small")
		byName[spec.Name] = k.Workload
	}

	rt := omp.NewRuntime(nil)
	rt.AddHook(hook)
	rt.SetNoise(kernels.IterationRNG)

	ctx := cl.NewContext(nil)
	queue, err := ctx.NewQueue(apu.SampleConfigGPU(), cl.WithProfiling(), cl.WithNoise(kernels.IterationRNG))
	if err != nil {
		log.Fatal(err)
	}
	queue.AddHook(hook)

	for _, s := range sites {
		w, ok := byName[s.Kernel]
		if !ok {
			log.Fatalf("kernel %s not in suite", s.Kernel)
		}
		// OpenMP path (CPU implementation).
		if _, err := rt.ParallelFor(w); err != nil {
			log.Fatal(err)
		}
		// OpenCL path (GPU implementation).
		k, err := cl.NewKernel(w)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := queue.EnqueueNDRange(k); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("interposed measurements:")
	for _, r := range hook.records {
		fmt.Println(" ", r)
	}
	fmt.Printf("\nvirtual clocks: omp %.4fs, cl %.4fs\n", rt.Now(), ctx.Now())
}
