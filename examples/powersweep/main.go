// Powersweep: sweep the power cap for one kernel and compare every
// power-limiting method against the oracle — a per-kernel slice of the
// paper's Figure 4.
//
//	go run ./examples/powersweep
package main

import (
	"fmt"
	"log"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

func main() {
	const target = "CoMD/Large/ComputeForceLJ"

	// Leave-one-benchmark-out, as the paper prescribes: the model that
	// schedules a CoMD kernel never saw CoMD during training.
	var training, held []kernels.Kernel
	for _, combo := range kernels.Combos() {
		if combo.Benchmark == "CoMD" {
			held = append(held, combo.Kernels...)
			continue
		}
		training = append(training, combo.Kernels...)
	}
	var kernel kernels.Kernel
	for _, k := range held {
		if k.ID() == target {
			kernel = k
		}
	}
	if kernel.Name == "" {
		log.Fatalf("kernel %s not found", target)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Characterize the held-out kernel to obtain ground truth for the
	// oracle and the frequency limiter's feedback.
	kprofiles, err := core.Characterize(prof, []kernels.Kernel{kernel}, opts)
	if err != nil {
		log.Fatal(err)
	}
	kp := kprofiles[0]
	truth := sched.ProfileTruth{Profile: kp}
	sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	runner := &sched.Runner{Space: prof.Space, Model: model}

	fmt.Printf("power-cap sweep for %s (oracle-normalized performance; * = cap violated)\n\n", target)
	fmt.Printf("%-8s", "cap W")
	methods := append([]sched.Method{sched.MethodOracle}, sched.Methods()...)
	for _, m := range methods {
		fmt.Printf(" %-12s", m)
	}
	fmt.Println()
	for capW := 12.0; capW <= 44; capW += 4 {
		oracle := runner.Oracle(truth, capW)
		fmt.Printf("%-8.0f", capW)
		for _, m := range methods {
			d, err := runner.Decide(m, truth, sr, capW)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if !d.MeetsCap(capW) {
				mark = "*"
			}
			fmt.Printf(" %-12s", fmt.Sprintf("%.2f%s", d.TruePerf/oracle.TruePerf, mark))
		}
		fmt.Println()
	}
}
