// Energysched: the paper notes (§III-C) that the predicted values "could
// be used to select configurations for energy efficiency, energy-delay
// product, or any other scheduling goal." This example selects per-kernel
// configurations for three goals — max performance under a cap, minimum
// energy, and minimum energy-delay product — from one set of predictions.
//
//	go run ./examples/energysched
package main

import (
	"fmt"
	"log"
	"math"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

func main() {
	var training, held []kernels.Kernel
	for _, combo := range kernels.Combos() {
		if combo.Benchmark == "CoMD" {
			if combo.Input == "Large" {
				held = combo.Kernels
			}
			continue
		}
		training = append(training, combo.Kernels...)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CoMD Large: one prediction set, three scheduling goals")
	fmt.Printf("%-20s %-30s %-30s %-30s\n", "kernel", "max perf under 25 W", "min energy", "min energy-delay product")
	for _, k := range held {
		cpuRun, err := prof.RunConfig(k, apu.SampleConfigCPU(), 0)
		if err != nil {
			log.Fatal(err)
		}
		gpuRun, err := prof.RunConfig(k, apu.SampleConfigGPU(), 1)
		if err != nil {
			log.Fatal(err)
		}
		preds, _, err := model.PredictAll(core.SampleRuns{CPU: cpuRun, GPU: gpuRun})
		if err != nil {
			log.Fatal(err)
		}

		// Goal 1: performance under a 25 W cap.
		bestPerf := pick(preds, func(p core.Prediction) (float64, bool) {
			return p.Perf, p.PowerW <= 25
		})
		// Goal 2: minimum predicted energy per invocation (P/perf = J).
		minEnergy := pick(preds, func(p core.Prediction) (float64, bool) {
			return -p.PowerW / p.Perf, true
		})
		// Goal 3: minimum EDP = energy × delay = P / perf².
		minEDP := pick(preds, func(p core.Prediction) (float64, bool) {
			return -p.PowerW / (p.Perf * p.Perf), true
		})

		fmt.Printf("%-20s %-30v %-30v %-30v\n", k.Name,
			preds[bestPerf].Config, preds[minEnergy].Config, preds[minEDP].Config)
	}
}

// pick returns the index of the prediction maximizing score among the
// eligible ones (falling back to the overall maximum when none is
// eligible).
func pick(preds []core.Prediction, score func(core.Prediction) (float64, bool)) int {
	best, bestID := math.Inf(-1), -1
	fallback, fallbackID := math.Inf(-1), 0
	for i, p := range preds {
		s, ok := score(p)
		if s > fallback {
			fallback, fallbackID = s, i
		}
		if ok && s > best {
			best, bestID = s, i
		}
	}
	if bestID < 0 {
		return fallbackID
	}
	return bestID
}
