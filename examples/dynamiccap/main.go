// Dynamiccap: demonstrate that the predicted Pareto frontier makes the
// system adaptable to dynamic power constraints (§III-C) — when the
// cluster-level power policy changes the node's budget, the scheduler
// re-walks the already-predicted frontier instead of re-profiling or
// re-examining every configuration.
//
//	go run ./examples/dynamiccap
package main

import (
	"fmt"
	"log"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

func main() {
	const target = "SMC/Default/Diffterm"

	var training []kernels.Kernel
	var kernel kernels.Kernel
	for _, combo := range kernels.Combos() {
		if combo.Benchmark == "SMC" {
			for _, k := range combo.Kernels {
				if k.ID() == target {
					kernel = k
				}
			}
			continue
		}
		training = append(training, combo.Kernels...)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Two sample iterations, once — the frontier is then reusable for
	// every future cap change.
	cpuRun, err := prof.RunConfig(kernel, apu.SampleConfigCPU(), 0)
	if err != nil {
		log.Fatal(err)
	}
	gpuRun, err := prof.RunConfig(kernel, apu.SampleConfigGPU(), 1)
	if err != nil {
		log.Fatal(err)
	}
	sr := core.SampleRuns{CPU: cpuRun, GPU: gpuRun}
	frontier, _, err := model.PredictedFrontier(sr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: predicted frontier has %d points (out of %d configurations)\n\n",
		target, frontier.Len(), prof.Space.Len())

	// A power policy that tightens, then relaxes, the node budget.
	schedule := []float64{40, 30, 24, 18, 14, 18, 24, 30, 40}
	fmt.Printf("%-8s %-30s %-10s %-10s\n", "cap W", "config (from frontier walk)", "pred /s", "true W")
	iter := 2
	for _, capW := range schedule {
		pt, ok := frontier.BestUnderCap(capW)
		if !ok {
			// Below the predicted floor: take the minimum-power point.
			var err error
			pt, err = frontier.MinPower()
			if err != nil {
				log.Fatal(err)
			}
		}
		s, err := prof.Run(kernel, pt.ID, iter)
		if err != nil {
			log.Fatal(err)
		}
		iter++
		mark := ""
		if s.TotalPowerW() > capW {
			mark = " (over)"
		}
		fmt.Printf("%-8.0f %-30v %-10.2f %-10.1f%s\n",
			capW, prof.Space.Configs[pt.ID], pt.Perf, s.TotalPowerW(), mark)
	}
}
