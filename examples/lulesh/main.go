// Lulesh: drive the full LULESH proxy application (20 kernels executed
// in sequence each timestep, weighted by their time shares) under a
// node power cap, with per-kernel adaptive configuration selection.
// After the first two iterations of each kernel the configuration is
// fixed (§IV-C), so steady-state timesteps pay no selection overhead.
//
//	go run ./examples/lulesh
package main

import (
	"fmt"
	"log"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

const capW = 24.0

func main() {
	// Train on everything except LULESH (leave-one-benchmark-out).
	var training []kernels.Kernel
	var app []kernels.Kernel
	for _, combo := range kernels.Combos() {
		if combo.Benchmark == "LULESH" {
			if combo.Input == "Large" {
				app = combo.Kernels
			}
			continue
		}
		training = append(training, combo.Kernels...)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LULESH Large, %d kernels, node power cap %.0f W\n\n", len(app), capW)

	// Online: the first two iterations of each kernel are the sample
	// runs; afterwards each kernel is pinned to its selected config.
	type pinned struct {
		kernel kernels.Kernel
		sel    core.Selection
	}
	var plan []pinned
	for _, k := range app {
		cpuRun, err := prof.RunConfig(k, apu.SampleConfigCPU(), 0)
		if err != nil {
			log.Fatal(err)
		}
		gpuRun, err := prof.RunConfig(k, apu.SampleConfigGPU(), 1)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := model.SelectUnderCap(core.SampleRuns{CPU: cpuRun, GPU: gpuRun}, capW)
		if err != nil {
			log.Fatal(err)
		}
		plan = append(plan, pinned{k, sel})
	}

	// Steady state: run 3 timesteps; account time and energy weighted by
	// each kernel's share of the timestep.
	var adaptiveTime, adaptiveEnergy float64
	var violations int
	fmt.Printf("%-34s %-7s %-28s %-8s %-8s\n", "kernel", "cluster", "config", "watts", "share")
	for _, p := range plan {
		s, err := prof.Run(p.kernel, p.sel.ConfigID, 2)
		if err != nil {
			log.Fatal(err)
		}
		weightedTime := s.TimeSec * p.kernel.TimeShare
		adaptiveTime += weightedTime
		adaptiveEnergy += weightedTime * s.TotalPowerW()
		if s.TotalPowerW() > capW {
			violations++
		}
		fmt.Printf("%-34s %-7d %-28v %-8.1f %-8.2f\n",
			p.kernel.Name, p.sel.Cluster, p.sel.Config, s.TotalPowerW(), p.kernel.TimeShare)
	}

	// Compare against the naive baselines running the whole app.
	runner := &sched.Runner{Space: prof.Space}
	appProfiles, err := core.Characterize(prof, app, opts)
	if err != nil {
		log.Fatal(err)
	}
	baseline := func(m sched.Method) (time, energy float64, violations int) {
		for _, kp := range appProfiles {
			truth := sched.ProfileTruth{Profile: kp}
			d, err := runner.Decide(m, truth, core.SampleRuns{}, capW)
			if err != nil {
				log.Fatal(err)
			}
			wt := 1 / d.TruePerf * kp.TimeShare
			time += wt
			energy += wt * d.TruePower
			if !d.MeetsCap(capW) {
				violations++
			}
		}
		return
	}
	cpuTime, cpuEnergy, cpuViol := baseline(sched.MethodCPUFL)
	gpuTime, gpuEnergy, gpuViol := baseline(sched.MethodGPUFL)

	fmt.Printf("\nper-timestep totals (weighted by kernel share):\n")
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "method", "time (s)", "energy (J)", "violations")
	fmt.Printf("%-10s %-12.4f %-12.2f %d/%d\n", "Model", adaptiveTime, adaptiveEnergy, violations, len(plan))
	fmt.Printf("%-10s %-12.4f %-12.2f %d/%d\n", "CPU+FL", cpuTime, cpuEnergy, cpuViol, len(appProfiles))
	fmt.Printf("%-10s %-12.4f %-12.2f %d/%d\n", "GPU+FL", gpuTime, gpuEnergy, gpuViol, len(appProfiles))
}
