// Clustercap: the multi-node context the paper motivates (§I) — a
// cluster-wide power budget "passed down through the machine hierarchy"
// to nodes, each running the adaptive runtime. Compares uniform,
// demand-proportional, and predicted-utility water-fill dividers as the
// global budget shrinks, showing how the per-kernel predicted Pareto
// frontiers compose into cluster-level decisions.
//
//	go run ./examples/clustercap
package main

import (
	"fmt"
	"log"

	"acsel/internal/core"
	"acsel/internal/hierarchy"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/rts"
)

func main() {
	// Train on SMC + LU; the cluster runs CoMD and LULESH nodes.
	var training []kernels.Kernel
	apps := map[string][]kernels.Kernel{}
	for _, c := range kernels.Combos() {
		switch {
		case c.Benchmark == "CoMD" && c.Input == "Large":
			apps["comd"] = c.Kernels
		case c.Benchmark == "LULESH" && c.Input == "Large":
			apps["lulesh"] = c.Kernels
		case c.Benchmark == "SMC" || c.Benchmark == "LU":
			training = append(training, c.Kernels...)
		}
	}
	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.K = 4
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []hierarchy.Policy{hierarchy.Uniform, hierarchy.DemandProportional, hierarchy.WaterFill} {
		fmt.Printf("policy: %v\n", policy)
		nodes := []*hierarchy.Node{
			mkNode(model, "node0/CoMD", apps["comd"], 30),
			mkNode(model, "node1/LULESH", apps["lulesh"], 30),
		}
		cluster, err := hierarchy.NewCluster(nodes, 60, policy)
		if err != nil {
			log.Fatal(err)
		}
		// Budget schedule: generous, then a 25% cut, then deeper.
		for step, budget := range []float64{60, 60, 45, 45, 34, 34} {
			cluster.BudgetW = budget
			caps, err := cluster.Rebalance()
			if err != nil {
				log.Fatal(err)
			}
			results, err := cluster.Step()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  step %d: budget %4.0f W -> caps [%.1f %.1f]", step, budget, caps[0], caps[1])
			for _, r := range results {
				fmt.Printf("  | %s: %.4fs %5.1fJ viol %d/%d", r.Node, r.TimeSec, r.EnergyJ, r.Violations, r.Kernels)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func mkNode(model *core.Model, name string, app []kernels.Kernel, capW float64) *hierarchy.Node {
	rt, err := rts.New(model, rts.Options{CapW: capW, FL: true})
	if err != nil {
		log.Fatal(err)
	}
	return &hierarchy.Node{Name: name, Runtime: rt, App: app}
}
