GO ?= go

# Packages exercised under the race detector: the concurrency-heavy
# runtime, scheduler, profiler, and cluster-hierarchy layers, plus the
# lock-free metrics registry.
RACE_PKGS = ./internal/rts ./internal/sched ./internal/profiler ./internal/hierarchy ./internal/metrics ./internal/supervise ./internal/checkpoint ./internal/fleet ./internal/query ./internal/query/loadgen

# Packages with fault-injection (chaos) suites, run under -race: the
# deterministic fault scenarios exercise the retry/quarantine/ladder
# paths that clean tests never reach.
CHAOS_PKGS = ./internal/rts ./internal/sched ./internal/power ./internal/fault ./internal/fleet

.PHONY: all build vet lint lint-sarif lint-fix-check test test-race test-chaos test-crash test-fleet test-query metrics-check fmt-check bench repro csv fuzz fuzz-smoke clean

all: build vet lint lint-fix-check test test-race test-chaos test-crash test-fleet test-query metrics-check

# Where the cached lint results live (content-addressed; safe to share
# across branches and restore in CI).
LINT_CACHE ?= .acsel-lint-cache

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (internal/lint). Unit analyzers:
# float equality in model code, unit-suffix mismatches, unseeded
# math/rand, dropped errors (including defer Close on writable files),
# sleep-based test synchronization, lock copies, map-iteration-ordered
# output, goroutine leaks, undeferred context cancels, and wall-clock
# values in artifacts. Module analyzers (whole-module call graph +
# per-function summaries): inconsistent lock order, mutex-guarded
# fields accessed bare, sync/atomic mixed with plain access, and
# //lint:deterministic roots reached by nondeterminism sources.
# Results are cached by a SHA-256 over the observable Go files and the
# analyzer suite, so an unchanged tree re-lints instantly. lint.budget
# is the findings ratchet: CI fails only when the count regresses above
# the recorded baseline (currently zero — keep it there).
lint:
	$(GO) run ./cmd/acsel-lint -cache -cache-dir $(LINT_CACHE) -budget lint.budget ./...

# Same run, emitting a SARIF 2.1.0 log for CI annotation/upload.
lint-sarif:
	$(GO) run ./cmd/acsel-lint -cache -cache-dir $(LINT_CACHE) -budget lint.budget -sarif lint.sarif ./... || true
	@test -s lint.sarif && echo "SARIF written to lint.sarif"

# Assert the suggested-fix engine is a no-op on a lint-clean tree: -fix
# must not touch a single file (and is idempotent by construction). The
# tree state is snapshotted before and after the run, so uncommitted
# work in progress neither fails the check nor gets clobbered by it; if
# -fix does change something, the changes are left in place for
# inspection (git diff shows exactly what the fixer wanted).
lint-fix-check:
	@before=$$(mktemp); after=$$(mktemp); trap 'rm -f "$$before" "$$after"' EXIT; \
	git diff -- '*.go' > $$before; \
	$(GO) run ./cmd/acsel-lint -fix ./... || true; \
	git diff -- '*.go' > $$after; \
	if ! cmp -s $$before $$after; then \
		echo "acsel-lint -fix modified the tree:"; \
		diff $$before $$after | head -40; exit 1; \
	fi; \
	echo "lint-fix-check: -fix is a no-op on the tree"

test:
	$(GO) test ./...

# Race-detector pass over the packages that spawn goroutines, plus the
# parallel-fold determinism regression (workers=1 vs GOMAXPROCS must
# yield a deeply equal Evaluation) and the parallel matrix equivalence.
test-race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestRunDeterministicAcrossWorkerCounts|TestModelCacheDirAcceleratesRun' ./internal/eval
	$(GO) test -race -run 'TestDissimilarityWorkersEquivalent' ./internal/core

# Fault-injection suites under the race detector: every built-in chaos
# scenario replayed through the runtime, scheduler, and sensor layers.
test-chaos:
	$(GO) test -race $(CHAOS_PKGS)

# Crash-recovery suite: the acsel-serve daemon is SIGKILLed mid-epoch
# in a child process and restarted; the resumed run's summary must be
# identical to an uninterrupted run on the same fault plan. Set
# ACSEL_CRASH_ARTIFACT_DIR to keep the journals of a failing run.
test-crash:
	$(GO) test -count=1 -v -run 'TestCrash|TestServe' ./cmd/acsel-serve

# Fleet integration suite: a child acsel-fleet coordinator rebalances
# three live loopback agents; one agent is killed mid-run (lease
# eviction + watt redistribution) and the coordinator itself is
# SIGKILLed and restarted (checkpoint resume). The in-process loopback
# suite in internal/fleet runs alongside it.
test-fleet:
	$(GO) test -count=1 -v -run 'TestFleet' ./cmd/acsel-fleet
	$(GO) test -count=1 ./internal/fleet

# Selection-service soak under the race detector: a seeded closed-loop
# load generator (8 clients, 30k queries; 10k with QUERY_SHORT=1, which
# CI sets) drives an undersized service through two hot reloads and an
# injected slow-shard fault; every response is checked bitwise against
# a single-threaded oracle, and admission control must shed without any
# request outliving its deadline. The run's latency/shed summary is
# written to $(QUERY_SUMMARY) (CI uploads it as a build artifact).
QUERY_SUMMARY ?= query-summary.json
test-query:
	ACSEL_QUERY_SUMMARY=$(abspath $(QUERY_SUMMARY)) $(GO) test -race -count=1 -v \
		$(if $(QUERY_SHORT),-short,) \
		-run 'TestSoakSelectionService|TestStressHotReloadRace' ./internal/query

# End-to-end observability smoke test: a one-iteration bench run must
# produce a JSON snapshot carrying every instrumented subsystem's
# families (rts registers via acsel-bench's blank import, at zero).
metrics-check:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/acsel-bench -exp table3 -iterations 1 -metrics-dump $$tmp/metrics.json > /dev/null; \
	for fam in acsel_rts_ladder_transitions_total acsel_profiler_runs_total acsel_sched_decisions_total acsel_eval_fold_seconds acsel_core_phase_seconds acsel_fault_injected_total; do \
		grep -q "\"$$fam\"" $$tmp/metrics.json || { echo "metrics-check: family $$fam missing from snapshot"; rm -rf $$tmp; exit 1; }; \
	done; \
	rm -rf $$tmp; echo "metrics-check: snapshot inventory complete"

# Fail if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Full microbenchmark + paper-bench sweep (quality metrics attached).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper as text.
repro:
	$(GO) run ./cmd/acsel-bench

# Export the characterization and evaluation data for external analysis.
csv:
	$(GO) run ./cmd/acsel-bench -exp accuracy -csv-dir out/

# Short fuzz pass over the pragma preprocessor.
fuzz:
	$(GO) test -fuzz FuzzPreprocess -fuzztime 30s ./internal/pragma

# CI-sized fuzz pass: 10 seconds per target across every fuzzed package
# (rank correlation, frontier shared order, pragma preprocessing,
# checkpoint decoding, select-request wire decoding, lint summary
# encoding).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzKendallTauRanks -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz FuzzSharedOrder -fuzztime 10s ./internal/pareto
	$(GO) test -run '^$$' -fuzz FuzzPreprocess -fuzztime 10s ./internal/pragma
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz FuzzSelectRequestDecode -fuzztime 10s ./internal/query
	$(GO) test -run '^$$' -fuzz FuzzSummaryRoundTrip -fuzztime 10s ./internal/lint

clean:
	rm -rf out/ model.json profiles.json lint.sarif query-summary.json $(LINT_CACHE)
