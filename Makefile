GO ?= go

.PHONY: all build vet test bench repro csv fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full microbenchmark + paper-bench sweep (quality metrics attached).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper as text.
repro:
	$(GO) run ./cmd/acsel-bench

# Export the characterization and evaluation data for external analysis.
csv:
	$(GO) run ./cmd/acsel-bench -exp accuracy -csv-dir out/

# Short fuzz pass over the pragma preprocessor.
fuzz:
	$(GO) test -fuzz FuzzPreprocess -fuzztime 30s ./internal/pragma

clean:
	rm -rf out/ model.json profiles.json
