// Package trace exports profiling samples, characterization stats, and
// evaluation cases as CSV — the interchange format for the kind of
// external statistical analysis the paper performed in R (§IV-B lists
// R 3.0.1 in the toolchain). Writers are streaming and allocation-light
// so full-suite exports stay cheap.
package trace

import (
	"encoding/csv"
	"io"
	"strconv"

	"acsel/internal/core"
	"acsel/internal/eval"
	"acsel/internal/profiler"
)

// f formats a float with shortest exact precision: ParseFloat of the
// result returns the identical float64. A fixed 10-significant-digit
// format (the previous behaviour) silently truncated power/time/counter
// values, so exports no longer round-tripped and downstream statistical
// analysis saw corrupted data.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteSamplesCSV streams profiler samples: one row per instrumented
// kernel invocation with identification, configuration, timing, power,
// and the raw counter values.
func WriteSamplesCSV(w io.Writer, samples []profiler.Sample) error {
	cw := csv.NewWriter(w)
	header := []string{
		"kernel_id", "benchmark", "input", "kernel", "config_id",
		"device", "cpu_ghz", "threads", "gpu_ghz", "iteration",
		"time_sec", "cpu_power_w", "nbgpu_power_w",
		"instructions", "l1d_misses", "l2d_misses", "tlb_misses",
		"cond_branches", "vector_instr", "stalled_cycles", "core_cycles",
		"ref_cycles", "idle_fpu_cycles", "interrupts", "dram_accesses",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range samples {
		row := []string{
			s.KernelID, s.Benchmark, s.Input, s.Kernel, strconv.Itoa(s.ConfigID),
			s.Config.Device.String(), f(s.Config.CPUFreqGHz), strconv.Itoa(s.Config.Threads),
			f(s.Config.GPUFreqGHz), strconv.Itoa(s.Iteration),
			f(s.TimeSec), f(s.CPUPowerW), f(s.NBGPUW),
			f(s.Counters.Instructions), f(s.Counters.L1DMisses), f(s.Counters.L2DMisses),
			f(s.Counters.TLBMisses), f(s.Counters.CondBranches), f(s.Counters.VectorInstr),
			f(s.Counters.StalledCycles), f(s.Counters.CoreCycles), f(s.Counters.RefCycles),
			f(s.Counters.IdleFPUCycles), f(s.Counters.Interrupts), f(s.Counters.DRAMAccesses),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteProfilesCSV streams characterization summaries: one row per
// (kernel, configuration) with mean time, performance, and power, and a
// flag marking Pareto-frontier membership.
func WriteProfilesCSV(w io.Writer, profiles []*core.KernelProfile) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kernel_id", "benchmark", "input", "config_id",
		"mean_time_sec", "mean_perf", "mean_power_w", "mean_cpu_w", "mean_nbgpu_w", "on_frontier",
	}); err != nil {
		return err
	}
	for _, kp := range profiles {
		onFront := map[int]bool{}
		for _, pt := range kp.Frontier.Points() {
			onFront[pt.ID] = true
		}
		for _, st := range kp.Stats {
			if err := cw.Write([]string{
				kp.KernelID, kp.Benchmark, kp.Input, strconv.Itoa(st.ConfigID),
				f(st.MeanTime), f(st.MeanPerf), f(st.MeanPower), f(st.MeanCPUW), f(st.MeanNBW),
				strconv.FormatBool(onFront[st.ConfigID]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCasesCSV streams evaluation cases: one row per (kernel, cap,
// method) with the decision and oracle-relative outcome.
func WriteCasesCSV(w io.Writer, cases []eval.Case) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kernel_id", "combo", "method", "cap_w",
		"config_id", "device", "cpu_ghz", "threads", "gpu_ghz",
		"true_perf", "true_power_w", "under_limit", "perf_vs_oracle", "power_vs_oracle", "weight",
		"oracle_infeasible",
	}); err != nil {
		return err
	}
	for _, c := range cases {
		if err := cw.Write([]string{
			c.KernelID, c.Combo, c.Method.String(), f(c.CapW),
			strconv.Itoa(c.Decision.ConfigID), c.Decision.Config.Device.String(),
			f(c.Decision.Config.CPUFreqGHz), strconv.Itoa(c.Decision.Config.Threads),
			f(c.Decision.Config.GPUFreqGHz),
			f(c.Decision.TruePerf), f(c.Decision.TruePower),
			strconv.FormatBool(c.Under), f(c.PerfRatio), f(c.PowerRatio), f(c.Weight),
			strconv.FormatBool(c.Infeasible),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
