package trace

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"testing"

	"acsel/internal/core"
	"acsel/internal/eval"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

func sampleData(t *testing.T) (*profiler.Profiler, []*core.KernelProfile) {
	t.Helper()
	p := profiler.New()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, []kernels.Kernel{k}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, profs
}

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteSamplesCSV(t *testing.T) {
	p, _ := sampleData(t)
	samples := p.History()
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != len(samples)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(samples)+1)
	}
	// Header width equals every row width (csv.Reader enforces, but
	// verify the first data row parses numerically where expected).
	timeCol := indexOf(t, rows[0], "time_sec")
	v, err := strconv.ParseFloat(rows[1][timeCol], 64)
	if err != nil || v <= 0 {
		t.Errorf("time_sec cell %q", rows[1][timeCol])
	}
	devCol := indexOf(t, rows[0], "device")
	if rows[1][devCol] != "CPU" && rows[1][devCol] != "GPU" {
		t.Errorf("device cell %q", rows[1][devCol])
	}
}

func TestWriteProfilesCSV(t *testing.T) {
	_, profs := sampleData(t)
	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, profs); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// 1 kernel × 42 configs + header.
	if len(rows) != 43 {
		t.Fatalf("rows = %d, want 43", len(rows))
	}
	fCol := indexOf(t, rows[0], "on_frontier")
	frontierRows := 0
	for _, r := range rows[1:] {
		if r[fCol] == "true" {
			frontierRows++
		}
	}
	if frontierRows == 0 || frontierRows == 42 {
		t.Errorf("frontier rows = %d, expected a proper subset", frontierRows)
	}
}

func TestWriteCasesCSV(t *testing.T) {
	cases := []eval.Case{
		{
			KernelID: "A/B/k", Combo: "A B", Method: sched.MethodModelFL, CapW: 20,
			Under: true, PerfRatio: 0.9, PowerRatio: 0.95, Weight: 0.5,
		},
	}
	var buf bytes.Buffer
	if err := WriteCasesCSV(&buf, cases); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mCol := indexOf(t, rows[0], "method")
	if rows[1][mCol] != "Model+FL" {
		t.Errorf("method cell %q", rows[1][mCol])
	}
}

func TestEmptyInputsProduceHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
	buf.Reset()
	if err := WriteCasesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
	buf.Reset()
	if err := WriteProfilesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
}

// TestFloatFormatRoundTrips pins the cell formatter itself: ParseFloat
// of every formatted value must return the identical float64. All of
// these values lose bits at the old fixed 10-significant-digit format.
func TestFloatFormatRoundTrips(t *testing.T) {
	for _, v := range []float64{
		math.Pi,
		1.0 / 3.0,
		2.0000000001234567,
		123456789.123456789,
		1e-321, // subnormal
		math.SmallestNonzeroFloat64,
		math.MaxFloat64,
		0,
		-math.Pi * 1e8,
	} {
		cell := f(v)
		got, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("f(%v) = %q: %v", v, cell, err)
		}
		if got != v {
			t.Errorf("f(%v) = %q parses back to %v", v, cell, got)
		}
	}
}

// TestWritersRoundTripExactly writes real characterization data (with a
// few cells doctored to full-precision values) through all three
// writers and parses it back: every float column must reproduce the
// in-memory float64 bit-for-bit.
func TestWritersRoundTripExactly(t *testing.T) {
	p, profs := sampleData(t)
	samples := p.History()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	samples[0].TimeSec = math.Pi * 1e-3
	samples[0].CPUPowerW = 10.0 / 3.0
	samples[0].NBGPUW = 2.0000000001234567
	samples[0].Counters.Instructions = 123456789.123456789

	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	sampleCols := map[string]func(s profiler.Sample) float64{
		"time_sec":      func(s profiler.Sample) float64 { return s.TimeSec },
		"cpu_power_w":   func(s profiler.Sample) float64 { return s.CPUPowerW },
		"nbgpu_power_w": func(s profiler.Sample) float64 { return s.NBGPUW },
		"instructions":  func(s profiler.Sample) float64 { return s.Counters.Instructions },
		"dram_accesses": func(s profiler.Sample) float64 { return s.Counters.DRAMAccesses },
	}
	for name, get := range sampleCols {
		col := indexOf(t, rows[0], name)
		for i, s := range samples {
			if got := parseCell(t, rows[i+1][col]); got != get(s) {
				t.Errorf("samples row %d col %s: %q parses to %v, want %v", i, name, rows[i+1][col], got, get(s))
			}
		}
	}

	profs[0].Stats[0].MeanTime = 1.0 / 7.0
	profs[0].Stats[0].MeanPower = math.Pi * 10
	buf.Reset()
	if err := WriteProfilesCSV(&buf, profs); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	timeCol := indexOf(t, rows[0], "mean_time_sec")
	perfCol := indexOf(t, rows[0], "mean_perf")
	powCol := indexOf(t, rows[0], "mean_power_w")
	r := 1
	for _, kp := range profs {
		for _, st := range kp.Stats {
			for name, want := range map[int]float64{timeCol: st.MeanTime, perfCol: st.MeanPerf, powCol: st.MeanPower} {
				if got := parseCell(t, rows[r][name]); got != want {
					t.Errorf("profiles row %d: %q parses to %v, want %v", r, rows[r][name], got, want)
				}
			}
			r++
		}
	}

	cases := []eval.Case{
		{
			KernelID: "A/B/k", Combo: "A B", Method: sched.MethodModel, CapW: 1.0 / 3.0,
			Under: true, PerfRatio: 0.9123456789012345, PowerRatio: math.Pi / 3, Weight: 1e-17,
		},
		{
			KernelID: "A/B/k", Combo: "A B", Method: sched.MethodOracle, CapW: 0.1,
			Infeasible: true,
		},
	}
	buf.Reset()
	if err := WriteCasesCSV(&buf, cases); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	caseCols := map[string]func(c eval.Case) float64{
		"cap_w":           func(c eval.Case) float64 { return c.CapW },
		"perf_vs_oracle":  func(c eval.Case) float64 { return c.PerfRatio },
		"power_vs_oracle": func(c eval.Case) float64 { return c.PowerRatio },
		"weight":          func(c eval.Case) float64 { return c.Weight },
	}
	for name, get := range caseCols {
		col := indexOf(t, rows[0], name)
		for i, c := range cases {
			if got := parseCell(t, rows[i+1][col]); got != get(c) {
				t.Errorf("cases row %d col %s: %q parses to %v, want %v", i, name, rows[i+1][col], got, get(c))
			}
		}
	}
	infCol := indexOf(t, rows[0], "oracle_infeasible")
	if rows[1][infCol] != "false" || rows[2][infCol] != "true" {
		t.Errorf("oracle_infeasible column: %q, %q", rows[1][infCol], rows[2][infCol])
	}
}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func indexOf(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not found in %v", name, header)
	return -1
}

func BenchmarkWriteSamplesCSV(b *testing.B) {
	p := profiler.New()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	if _, err := p.ProfileAllConfigs(k, 0); err != nil {
		b.Fatal(err)
	}
	samples := p.History()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteSamplesCSV(&buf, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// failWriter errors after n bytes, exercising the writers' error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errFail
	}
	f.n -= len(p)
	return len(p), nil
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWritersPropagateErrors(t *testing.T) {
	p, profs := sampleData(t)
	samples := p.History()
	if err := WriteSamplesCSV(&failWriter{n: 10}, samples); err == nil {
		t.Error("samples writer swallowed the error")
	}
	if err := WriteProfilesCSV(&failWriter{n: 10}, profs); err == nil {
		t.Error("profiles writer swallowed the error")
	}
	cases := []eval.Case{{KernelID: "x", Method: sched.MethodModel}}
	if err := WriteCasesCSV(&failWriter{n: 10}, cases); err == nil {
		t.Error("cases writer swallowed the error")
	}
}
