package trace

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"acsel/internal/core"
	"acsel/internal/eval"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

func sampleData(t *testing.T) (*profiler.Profiler, []*core.KernelProfile) {
	t.Helper()
	p := profiler.New()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, []kernels.Kernel{k}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, profs
}

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteSamplesCSV(t *testing.T) {
	p, _ := sampleData(t)
	samples := p.History()
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != len(samples)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(samples)+1)
	}
	// Header width equals every row width (csv.Reader enforces, but
	// verify the first data row parses numerically where expected).
	timeCol := indexOf(t, rows[0], "time_sec")
	v, err := strconv.ParseFloat(rows[1][timeCol], 64)
	if err != nil || v <= 0 {
		t.Errorf("time_sec cell %q", rows[1][timeCol])
	}
	devCol := indexOf(t, rows[0], "device")
	if rows[1][devCol] != "CPU" && rows[1][devCol] != "GPU" {
		t.Errorf("device cell %q", rows[1][devCol])
	}
}

func TestWriteProfilesCSV(t *testing.T) {
	_, profs := sampleData(t)
	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, profs); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// 1 kernel × 42 configs + header.
	if len(rows) != 43 {
		t.Fatalf("rows = %d, want 43", len(rows))
	}
	fCol := indexOf(t, rows[0], "on_frontier")
	frontierRows := 0
	for _, r := range rows[1:] {
		if r[fCol] == "true" {
			frontierRows++
		}
	}
	if frontierRows == 0 || frontierRows == 42 {
		t.Errorf("frontier rows = %d, expected a proper subset", frontierRows)
	}
}

func TestWriteCasesCSV(t *testing.T) {
	cases := []eval.Case{
		{
			KernelID: "A/B/k", Combo: "A B", Method: sched.MethodModelFL, CapW: 20,
			Under: true, PerfRatio: 0.9, PowerRatio: 0.95, Weight: 0.5,
		},
	}
	var buf bytes.Buffer
	if err := WriteCasesCSV(&buf, cases); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mCol := indexOf(t, rows[0], "method")
	if rows[1][mCol] != "Model+FL" {
		t.Errorf("method cell %q", rows[1][mCol])
	}
}

func TestEmptyInputsProduceHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
	buf.Reset()
	if err := WriteCasesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
	buf.Reset()
	if err := WriteProfilesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1 {
		t.Errorf("rows = %d", len(rows))
	}
}

func indexOf(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not found in %v", name, header)
	return -1
}

func BenchmarkWriteSamplesCSV(b *testing.B) {
	p := profiler.New()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	if _, err := p.ProfileAllConfigs(k, 0); err != nil {
		b.Fatal(err)
	}
	samples := p.History()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteSamplesCSV(&buf, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// failWriter errors after n bytes, exercising the writers' error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errFail
	}
	f.n -= len(p)
	return len(p), nil
}

var errFail = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWritersPropagateErrors(t *testing.T) {
	p, profs := sampleData(t)
	samples := p.History()
	if err := WriteSamplesCSV(&failWriter{n: 10}, samples); err == nil {
		t.Error("samples writer swallowed the error")
	}
	if err := WriteProfilesCSV(&failWriter{n: 10}, profs); err == nil {
		t.Error("profiles writer swallowed the error")
	}
	cases := []eval.Case{{KernelID: "x", Method: sched.MethodModel}}
	if err := WriteCasesCSV(&failWriter{n: 10}, cases); err == nil {
		t.Error("cases writer swallowed the error")
	}
}
