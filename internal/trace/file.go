package trace

import (
	"io"
	"os"
)

// WriteFile creates path, streams write's output into it, and closes
// the file *on the write path*, returning the Close error. The
// `defer f.Close()` idiom the command-line tools used silently dropped
// that error — and for a freshly written file Close is exactly where a
// short write or full disk surfaces (errcheck's defer-Close extension
// now flags the pattern). A failed write removes the partial file so a
// truncated CSV or model export is never mistaken for a complete one.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()       //lint:ignore errcheck write error takes precedence
		os.Remove(path) //lint:ignore errcheck best-effort cleanup of partial output
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path) //lint:ignore errcheck best-effort cleanup of partial output
		return err
	}
	return nil
}
