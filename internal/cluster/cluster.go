// Package cluster implements relational clustering over a precomputed
// dissimilarity matrix. The paper clusters kernels by the Kendall-tau
// dissimilarity of their Pareto-frontier configuration orderings using
// the R "fossil" package; here we provide PAM (partitioning around
// medoids), the standard relational clustering algorithm, plus
// silhouette scoring for cluster-count diagnostics and an agglomerative
// (average-linkage) alternative used in ablation experiments.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acsel/internal/stats"
)

// DissimilarityMatrix is a symmetric n×n matrix of pairwise
// dissimilarities with a zero diagonal. A matrix is either a base
// matrix owning its storage or a Subset view that reindexes a base
// matrix without copying, so a precomputed suite-wide matrix can be
// reused across cross-validation folds.
type DissimilarityMatrix struct {
	n      int       // logical item count
	stride int       // row stride of the base storage
	d      []float64 // base storage, shared with views
	idx    []int     // nil for base matrices; idx[i] is item i's base row
}

// NewDissimilarityMatrix allocates an n×n zero matrix.
func NewDissimilarityMatrix(n int) *DissimilarityMatrix {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: non-positive size %d", n))
	}
	return &DissimilarityMatrix{n: n, stride: n, d: make([]float64, n*n)}
}

// Len returns the number of items.
func (m *DissimilarityMatrix) Len() int { return m.n }

// item maps a logical index to its base-storage row.
func (m *DissimilarityMatrix) item(i int) int {
	if m.idx == nil {
		return i
	}
	return m.idx[i]
}

// At returns the dissimilarity between items i and j.
func (m *DissimilarityMatrix) At(i, j int) float64 {
	return m.d[m.item(i)*m.stride+m.item(j)]
}

// Set assigns the dissimilarity between i and j symmetrically. Views
// returned by Subset are read-only: writing through one would silently
// corrupt the shared base matrix, so Set panics on them.
func (m *DissimilarityMatrix) Set(i, j int, v float64) {
	if m.idx != nil {
		panic("cluster: Set on a Subset view")
	}
	if v < 0 {
		panic(fmt.Sprintf("cluster: negative dissimilarity %v", v))
	}
	m.d[i*m.n+j] = v
	m.d[j*m.n+i] = v
}

// IsView reports whether the matrix is a Subset view sharing another
// matrix's storage.
func (m *DissimilarityMatrix) IsView() bool { return m.idx != nil }

// Subset returns a read-only view of the rows and columns selected by
// idx, in idx order: Subset(m, idx).At(a, b) == m.At(idx[a], idx[b]).
// No dissimilarities are copied or recomputed — the view shares the
// receiver's storage — which is what lets leave-one-out folds reuse one
// full-suite matrix instead of rebuilding the O(n²) pairwise Kendall
// taus per fold. Subsetting a view composes: indices are always
// relative to the receiver. Duplicate indices are permitted (the
// resulting items are indistinguishable, at dissimilarity 0);
// out-of-range indices panic.
func (m *DissimilarityMatrix) Subset(idx []int) *DissimilarityMatrix {
	if len(idx) == 0 {
		panic("cluster: empty Subset")
	}
	mapped := make([]int, len(idx))
	for i, v := range idx {
		if v < 0 || v >= m.n {
			panic(fmt.Sprintf("cluster: Subset index %d out of range [0,%d)", v, m.n))
		}
		mapped[i] = m.item(v)
	}
	return &DissimilarityMatrix{n: len(idx), stride: m.stride, d: m.d, idx: mapped}
}

// Validate checks symmetry and the zero diagonal, returning a
// descriptive error on the first violation.
func (m *DissimilarityMatrix) Validate() error {
	for i := 0; i < m.n; i++ {
		if !stats.AlmostZero(m.At(i, i)) {
			return fmt.Errorf("cluster: nonzero diagonal at %d: %v", i, m.At(i, i))
		}
		for j := i + 1; j < m.n; j++ {
			// NaN first: NaN != NaN would otherwise misreport as asymmetry.
			if math.IsNaN(m.At(i, j)) || math.IsNaN(m.At(j, i)) {
				return fmt.Errorf("cluster: NaN at (%d,%d)", i, j)
			}
			if !stats.AlmostEqual(m.At(i, j), m.At(j, i)) {
				return fmt.Errorf("cluster: asymmetry at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// ValidateBounded checks the full matrix contract tests and callers
// rely on: symmetry, zero diagonal, no NaNs (all via Validate), and
// every entry within [0, max]. The paper's frontier-order
// dissimilarities live in [0, 1]; other metrics may pass a different
// bound.
func (m *DissimilarityMatrix) ValidateBounded(max float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if d := m.At(i, j); d < 0 || d > max {
				return fmt.Errorf("cluster: dissimilarity %v at (%d,%d) outside [0,%v]", d, i, j, max)
			}
		}
	}
	return nil
}

// Result describes a clustering of n items into k groups.
type Result struct {
	// Assignments[i] is the cluster index (0..K-1) of item i.
	Assignments []int
	// Medoids[c] is the item index serving as the medoid of cluster c
	// (PAM only; -1 for agglomerative results).
	Medoids []int
	// Cost is the total within-cluster dissimilarity to medoids (PAM)
	// or the sum of within-cluster average dissimilarities.
	Cost float64
	// K is the number of clusters.
	K int
}

// ErrBadK is returned when k is out of the valid range [1, n].
var ErrBadK = errors.New("cluster: k out of range")

// PAM runs partitioning-around-medoids with a deterministic seeded
// BUILD phase followed by SWAP iterations until convergence. The seed
// makes runs reproducible; different seeds may find different local
// optima for hard instances.
func PAM(m *DissimilarityMatrix, k int, seed int64) (*Result, error) {
	return PAMRand(m, k, rand.New(rand.NewSource(seed)))
}

// PAMRand is PAM with an injected random source, the form the globalrand
// lint check pushes toward: the caller owns seeding, so a whole training
// pipeline can share one explicitly-seeded stream and stay reproducible
// end to end. rng is only consulted to break exact ties in the BUILD
// phase.
func PAMRand(m *DissimilarityMatrix, k int, rng *rand.Rand) (*Result, error) {
	n := m.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, n)
	}
	if rng == nil {
		return nil, errors.New("cluster: nil *rand.Rand injected")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	medoids := buildPhase(m, k, rng)
	assign, cost := assignToMedoids(m, medoids)

	// SWAP phase: consider replacing each medoid with each non-medoid;
	// greedily take the best improving swap until none improves.
	for iter := 0; iter < 100; iter++ {
		bestDelta := 0.0
		bestM, bestH := -1, -1
		isMedoid := make(map[int]bool, k)
		for _, md := range medoids {
			isMedoid[md] = true
		}
		for mi, md := range medoids {
			for h := 0; h < n; h++ {
				if isMedoid[h] {
					continue
				}
				trial := append([]int(nil), medoids...)
				trial[mi] = h
				_, trialCost := assignToMedoids(m, trial)
				if delta := trialCost - cost; delta < bestDelta-1e-12 {
					bestDelta = delta
					bestM, bestH = mi, h
				}
			}
			_ = md
		}
		if bestM < 0 {
			break
		}
		medoids[bestM] = bestH
		assign, cost = assignToMedoids(m, medoids)
	}

	sortMedoidsCanonical(medoids, assign)
	assign, cost = assignToMedoids(m, medoids)
	return &Result{Assignments: assign, Medoids: medoids, Cost: cost, K: k}, nil
}

// buildPhase selects initial medoids: the first minimizes total
// dissimilarity; each subsequent choice maximizes cost reduction.
// The injected rng only breaks exact ties, keeping the phase
// deterministic for a fixed seed.
func buildPhase(m *DissimilarityMatrix, k int, rng *rand.Rand) []int {
	n := m.Len()
	medoids := make([]int, 0, k)

	// First medoid: item minimizing the sum of dissimilarities.
	best, bestSum := -1, math.Inf(1)
	order := rng.Perm(n) // tie-break order
	for _, i := range order {
		s := 0.0
		for j := 0; j < n; j++ {
			s += m.At(i, j)
		}
		if s < bestSum {
			best, bestSum = i, s
		}
	}
	medoids = append(medoids, best)

	for len(medoids) < k {
		bestGain, bestItem := -1.0, -1
		for _, i := range order {
			if contains(medoids, i) {
				continue
			}
			gain := 0.0
			for j := 0; j < n; j++ {
				if contains(medoids, j) || j == i {
					continue
				}
				dNearest := nearestMedoidDist(m, medoids, j)
				if d := m.At(i, j); d < dNearest {
					gain += dNearest - d
				}
			}
			if gain > bestGain {
				bestGain, bestItem = gain, i
			}
		}
		medoids = append(medoids, bestItem)
	}
	return medoids
}

func nearestMedoidDist(m *DissimilarityMatrix, medoids []int, j int) float64 {
	best := math.Inf(1)
	for _, md := range medoids {
		if d := m.At(md, j); d < best {
			best = d
		}
	}
	return best
}

func assignToMedoids(m *DissimilarityMatrix, medoids []int) ([]int, float64) {
	n := m.Len()
	ownCluster := make(map[int]int, len(medoids))
	for c, md := range medoids {
		ownCluster[md] = c
	}
	assign := make([]int, n)
	cost := 0.0
	for i := 0; i < n; i++ {
		// A medoid always anchors its own cluster; without this,
		// duplicate items at dissimilarity 0 would collapse clusters.
		if c, isMedoid := ownCluster[i]; isMedoid {
			assign[i] = c
			continue
		}
		bestC, bestD := 0, math.Inf(1)
		for c, md := range medoids {
			if d := m.At(md, i); d < bestD {
				bestC, bestD = c, d
			}
		}
		assign[i] = bestC
		cost += bestD
	}
	return assign, cost
}

// sortMedoidsCanonical orders medoids by item index so results are
// stable across runs regardless of discovery order.
func sortMedoidsCanonical(medoids []int, _ []int) {
	sort.Ints(medoids)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Silhouette computes the mean silhouette coefficient of a clustering:
// s(i) = (b(i) − a(i)) / max(a(i), b(i)) where a is the mean
// within-cluster dissimilarity and b the mean dissimilarity to the
// nearest other cluster. Values near 1 indicate tight, well-separated
// clusters. Singleton clusters contribute 0 (the standard convention).
func Silhouette(m *DissimilarityMatrix, assign []int) float64 {
	n := m.Len()
	if len(assign) != n {
		panic("cluster: assignment length mismatch")
	}
	if n == 0 {
		return 0
	}
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	total := 0.0
	for i := 0; i < n; i++ {
		ci := assign[i]
		if sizes[ci] <= 1 {
			continue // s(i) = 0 for singletons
		}
		sumTo := make([]float64, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sumTo[assign[j]] += m.At(i, j)
		}
		a := sumTo[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if v := sumTo[c] / float64(sizes[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // single-cluster clustering: silhouette undefined → 0
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// Agglomerative performs average-linkage hierarchical clustering,
// cutting the dendrogram at k clusters. Used as an ablation alternative
// to PAM.
func Agglomerative(m *DissimilarityMatrix, k int) (*Result, error) {
	n := m.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// active clusters as member lists
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	for len(clusters) > k {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := avgLinkage(m, clusters[i], clusters[j])
				if d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := append(append([]int(nil), clusters[bi]...), clusters[bj]...)
		next := make([][]int, 0, len(clusters)-1)
		for idx, c := range clusters {
			if idx != bi && idx != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	// Canonical labeling: clusters ordered by smallest member.
	sort.Slice(clusters, func(a, b int) bool {
		return minInt(clusters[a]) < minInt(clusters[b])
	})
	assign := make([]int, n)
	cost := 0.0
	for c, members := range clusters {
		for _, i := range members {
			assign[i] = c
		}
		cost += avgLinkage(m, members, members)
	}
	medoids := make([]int, len(clusters))
	for i := range medoids {
		medoids[i] = -1
	}
	return &Result{Assignments: assign, Medoids: medoids, Cost: cost, K: k}, nil
}

func avgLinkage(m *DissimilarityMatrix, a, b []int) float64 {
	s, cnt := 0.0, 0
	for _, i := range a {
		for _, j := range b {
			if i == j {
				continue
			}
			s += m.At(i, j)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt)
}

func minInt(xs []int) int {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// BestK sweeps k over [kmin, kmax] with PAM and returns the k with the
// highest silhouette. The paper settled on k=5 empirically; this helper
// reproduces that kind of sweep for the ablation bench.
func BestK(m *DissimilarityMatrix, kmin, kmax int, seed int64) (int, float64, error) {
	if kmin < 2 {
		kmin = 2
	}
	if kmax > m.Len() {
		kmax = m.Len()
	}
	if kmin > kmax {
		return 0, 0, fmt.Errorf("%w: empty sweep range [%d,%d]", ErrBadK, kmin, kmax)
	}
	bestK, bestS := kmin, math.Inf(-1)
	for k := kmin; k <= kmax; k++ {
		res, err := PAM(m, k, seed)
		if err != nil {
			return 0, 0, err
		}
		if s := Silhouette(m, res.Assignments); s > bestS {
			bestK, bestS = k, s
		}
	}
	return bestK, bestS, nil
}
