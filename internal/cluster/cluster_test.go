package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs builds a dissimilarity matrix with two obvious groups:
// items [0,half) and [half,n) with small in-group and large cross-group
// distances.
func twoBlobs(n, half int) *DissimilarityMatrix {
	m := NewDissimilarityMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameGroup := (i < half) == (j < half)
			if sameGroup {
				m.Set(i, j, 0.1)
			} else {
				m.Set(i, j, 1.0)
			}
		}
	}
	return m
}

func TestPAMTwoBlobs(t *testing.T) {
	m := twoBlobs(10, 5)
	res, err := PAM(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All of the first five must share a label, all of the last five the other.
	first := res.Assignments[0]
	for i := 1; i < 5; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("assignments %v: first group split", res.Assignments)
		}
	}
	second := res.Assignments[5]
	if second == first {
		t.Fatalf("assignments %v: groups merged", res.Assignments)
	}
	for i := 6; i < 10; i++ {
		if res.Assignments[i] != second {
			t.Fatalf("assignments %v: second group split", res.Assignments)
		}
	}
}

func TestPAMDeterministic(t *testing.T) {
	m := twoBlobs(12, 7)
	a, err := PAM(m, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PAM(m, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("PAM not deterministic for fixed seed")
		}
	}
}

func TestPAMRandInjection(t *testing.T) {
	m := twoBlobs(12, 7)
	// An injected seeded stream must reproduce the seed-based API.
	a, err := PAM(m, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PAMRand(m, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("PAMRand(seeded rng) diverges from PAM(seed)")
		}
	}
	if _, err := PAMRand(m, 3, nil); err == nil {
		t.Fatal("PAMRand accepted a nil rng")
	}
}

func TestPAMKEqualsN(t *testing.T) {
	m := twoBlobs(4, 2)
	res, err := PAM(m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("k=n cost = %v, want 0", res.Cost)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("k=n should give singleton clusters, got %v", res.Assignments)
	}
}

func TestPAMK1(t *testing.T) {
	m := twoBlobs(6, 3)
	res, err := PAM(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("k=1 must assign everything to cluster 0")
		}
	}
}

func TestPAMBadK(t *testing.T) {
	m := twoBlobs(4, 2)
	if _, err := PAM(m, 0, 1); err == nil {
		t.Fatal("expected ErrBadK for k=0")
	}
	if _, err := PAM(m, 5, 1); err == nil {
		t.Fatal("expected ErrBadK for k>n")
	}
}

func TestPAMRejectsAsymmetric(t *testing.T) {
	m := NewDissimilarityMatrix(3)
	m.d[0*3+1] = 0.5 // write directly to break symmetry
	if _, err := PAM(m, 2, 1); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPAMMedoidsAreMembers(t *testing.T) {
	m := twoBlobs(10, 5)
	res, err := PAM(m, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c, md := range res.Medoids {
		if res.Assignments[md] != c {
			t.Errorf("medoid %d of cluster %d assigned to %d", md, c, res.Assignments[md])
		}
	}
}

func TestSetNegativePanics(t *testing.T) {
	m := NewDissimilarityMatrix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dissimilarity")
		}
	}()
	m.Set(0, 1, -0.5)
}

func TestSilhouetteWellSeparated(t *testing.T) {
	m := twoBlobs(10, 5)
	assign := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	s := Silhouette(m, assign)
	if s < 0.8 {
		t.Errorf("silhouette = %v, want high for well-separated blobs", s)
	}
	// Deliberately bad assignment should score much lower.
	bad := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if sb := Silhouette(m, bad); sb >= s {
		t.Errorf("bad assignment silhouette %v >= good %v", sb, s)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	m := twoBlobs(4, 2)
	if s := Silhouette(m, []int{0, 0, 0, 0}); s != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", s)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		m := NewDissimilarityMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		assign := make([]int, n)
		k := 2 + rng.Intn(3)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		s := Silhouette(m, assign)
		if s < -1-1e-9 || s > 1+1e-9 || math.IsNaN(s) {
			t.Fatalf("silhouette out of bounds: %v", s)
		}
	}
}

func TestAgglomerativeTwoBlobs(t *testing.T) {
	m := twoBlobs(8, 4)
	res, err := Agglomerative(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if res.Assignments[i] != res.Assignments[0] {
			t.Fatalf("assignments %v", res.Assignments)
		}
	}
	if res.Assignments[4] == res.Assignments[0] {
		t.Fatalf("assignments %v: groups merged", res.Assignments)
	}
}

func TestAgglomerativeKEqualsN(t *testing.T) {
	m := twoBlobs(5, 2)
	res, err := Agglomerative(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 singletons, got %v", res.Assignments)
	}
}

func TestAgglomerativeBadK(t *testing.T) {
	m := twoBlobs(4, 2)
	if _, err := Agglomerative(m, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestBestKFindsTwoBlobs(t *testing.T) {
	m := twoBlobs(12, 6)
	k, s, err := BestK(m, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("BestK = %d (silhouette %v), want 2", k, s)
	}
}

func TestBestKEmptyRange(t *testing.T) {
	m := twoBlobs(3, 1)
	if _, _, err := BestK(m, 5, 4, 1); err == nil {
		t.Fatal("expected range error")
	}
}

// Property: PAM cost never exceeds the cost of assigning everything to
// a single best medoid (k=1 is the worst case of k>=1 clustering).
func TestPAMCostMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(8)
		m := NewDissimilarityMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()+0.01)
			}
		}
		prev := math.Inf(1)
		for k := 1; k <= 4; k++ {
			res, err := PAM(m, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Local-optimum caveat: allow tiny tolerance.
			if res.Cost > prev+1e-9 {
				t.Fatalf("trial %d: cost increased from k=%d (%v) to k=%d (%v)", trial, k-1, prev, k, res.Cost)
			}
			prev = res.Cost
		}
	}
}

func TestValidateDetectsNaN(t *testing.T) {
	m := NewDissimilarityMatrix(2)
	m.d[1] = math.NaN()
	m.d[2] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Fatal("expected NaN detection")
	}
}

func BenchmarkPAM36Kernels(b *testing.B) {
	// Problem size matching the paper: 36 kernels, k=5.
	rng := rand.New(rand.NewSource(6))
	m := NewDissimilarityMatrix(36)
	for i := 0; i < 36; i++ {
		for j := i + 1; j < 36; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PAM(m, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Property (testing/quick): PAM assignments are always in [0, k) and no
// cluster is empty (each medoid anchors its own cluster).
func TestPropertyPAMAssignmentsValid(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := 4 + int(rawN)%16
		k := 2 + int(rawK)%3
		if k > n {
			k = n
		}
		rng := rand.New(rand.NewSource(seed))
		m := NewDissimilarityMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		res, err := PAM(m, k, 1)
		if err != nil {
			return false
		}
		sizes := make([]int, k)
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				return false
			}
			sizes[a]++
		}
		for _, s := range sizes {
			if s == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PAM handles duplicate items (zero dissimilarity) without
// collapsing below k clusters.
func TestPropertyPAMWithDuplicates(t *testing.T) {
	n, k := 10, 4
	m := NewDissimilarityMatrix(n)
	// All items identical except a pair of mild outliers.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i >= n-2 || j >= n-2 {
				m.Set(i, j, 0.9)
			}
		}
	}
	res, err := PAM(m, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != k {
		t.Fatalf("expected %d non-empty clusters, got %d (%v)", k, len(seen), res.Assignments)
	}
}
