package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// checkMatrixInvariants asserts the contract every dissimilarity matrix
// in the pipeline must satisfy: symmetry, zero diagonal, no NaNs, and
// all entries within [0, 1] (the range of the paper's frontier-order
// dissimilarity). Property tests across packages reuse it via
// ValidateBounded.
func checkMatrixInvariants(t *testing.T, m *DissimilarityMatrix) {
	t.Helper()
	if err := m.ValidateBounded(1); err != nil {
		t.Fatalf("matrix invariants violated: %v", err)
	}
}

// randomMatrix builds a dense symmetric matrix with entries in [0,1).
func randomMatrix(n int, rng *rand.Rand) *DissimilarityMatrix {
	m := NewDissimilarityMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	return m
}

func TestSubsetMatchesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomMatrix(12, rng)
	checkMatrixInvariants(t, base)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		idx := rng.Perm(12)[:k]
		sub := base.Subset(idx)
		if sub.Len() != k {
			t.Fatalf("Subset len = %d, want %d", sub.Len(), k)
		}
		if !sub.IsView() {
			t.Fatalf("Subset did not report IsView")
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if got, want := sub.At(a, b), base.At(idx[a], idx[b]); got != want {
					t.Fatalf("trial %d: Subset.At(%d,%d) = %v, want base.At(%d,%d) = %v",
						trial, a, b, got, idx[a], idx[b], want)
				}
			}
		}
		checkMatrixInvariants(t, sub)
	}
}

func TestSubsetIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomMatrix(8, rng)
	idx := make([]int, base.Len())
	for i := range idx {
		idx[i] = i
	}
	sub := base.Subset(idx)
	for i := 0; i < base.Len(); i++ {
		for j := 0; j < base.Len(); j++ {
			if sub.At(i, j) != base.At(i, j) {
				t.Fatalf("identity subset differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSubsetOfSubsetComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomMatrix(10, rng)
	outer := []int{9, 3, 5, 0, 7, 2}
	inner := []int{4, 0, 2}
	sub := base.Subset(outer).Subset(inner)
	for a := range inner {
		for b := range inner {
			want := base.At(outer[inner[a]], outer[inner[b]])
			if got := sub.At(a, b); got != want {
				t.Fatalf("composed subset At(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
	checkMatrixInvariants(t, sub)
}

func TestSubsetAllowsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomMatrix(6, rng)
	sub := base.Subset([]int{2, 2, 4})
	if sub.At(0, 1) != 0 {
		t.Fatalf("duplicate rows should be zero-distance, got %v", sub.At(0, 1))
	}
	if got, want := sub.At(0, 2), base.At(2, 4); got != want {
		t.Fatalf("At(0,2) = %v, want %v", got, want)
	}
}

func TestSubsetSetPanics(t *testing.T) {
	base := randomMatrix(4, rand.New(rand.NewSource(19)))
	sub := base.Subset([]int{0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Set on a Subset view did not panic")
		}
	}()
	sub.Set(0, 1, 0.5)
}

func TestSubsetOutOfRangePanics(t *testing.T) {
	base := randomMatrix(4, rand.New(rand.NewSource(23)))
	for _, idx := range [][]int{{-1}, {4}, {0, 1, 7}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Subset(%v) did not panic", idx)
				}
			}()
			base.Subset(idx)
		}()
	}
}

// TestSubsetClusteringMatchesMaterialized checks the property the eval
// pipeline relies on: PAM over a Subset view equals PAM over a freshly
// materialized matrix of the same rows.
func TestSubsetClusteringMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := randomMatrix(14, rng)
	idx := []int{0, 1, 3, 4, 6, 8, 9, 11, 12, 13}
	sub := base.Subset(idx)
	dense := NewDissimilarityMatrix(len(idx))
	for a := range idx {
		for b := a + 1; b < len(idx); b++ {
			dense.Set(a, b, base.At(idx[a], idx[b]))
		}
	}
	rv, err := PAM(sub, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := PAM(dense, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rv.Cost-rd.Cost) > 1e-12 {
		t.Fatalf("PAM cost differs: view %v, dense %v", rv.Cost, rd.Cost)
	}
	for i := range rv.Assignments {
		if rv.Assignments[i] != rd.Assignments[i] {
			t.Fatalf("assignment %d differs: view %d, dense %d", i, rv.Assignments[i], rd.Assignments[i])
		}
	}
}

func TestValidateBoundedRejectsOutOfRange(t *testing.T) {
	m := NewDissimilarityMatrix(3)
	m.Set(0, 1, 1.5)
	if err := m.ValidateBounded(1); err == nil {
		t.Fatal("ValidateBounded(1) accepted an entry of 1.5")
	}
	if err := m.ValidateBounded(2); err != nil {
		t.Fatalf("ValidateBounded(2) rejected 1.5: %v", err)
	}
}
