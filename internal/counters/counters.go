// Package counters models the hardware performance-counter path the
// paper reads through PAPI and the northbridge PMU (§III-B): L1/L2
// data-cache misses, TLB misses, conditional branches, vector
// instructions, stalled/total/reference core cycles, idle FPU cycles,
// interrupts, and DRAM accesses. Counts derive from the same workload
// characteristics that drive the timing model, so the statistical
// relationship the classifier learns (counter signature → scaling
// cluster) exists in the synthetic data exactly as it does on hardware.
package counters

import (
	"fmt"
	"math"
	"math/rand"

	"acsel/internal/apu"
	"acsel/internal/fault"
	"acsel/internal/stats"
)

// Set is the raw counter readout for one kernel execution.
type Set struct {
	Instructions  float64
	L1DMisses     float64
	L2DMisses     float64
	TLBMisses     float64
	CondBranches  float64
	VectorInstr   float64
	StalledCycles float64
	CoreCycles    float64
	RefCycles     float64
	IdleFPUCycles float64
	Interrupts    float64
	DRAMAccesses  float64
}

// RefClockGHz is the reference (unhalted) clock counted by RefCycles.
const RefClockGHz = 0.1

// memOpFrac is the fraction of dynamic instructions that access memory.
const memOpFrac = 0.35

// interruptRateHz is the background interrupt rate attributed to each
// kernel (timer ticks plus the 1 kHz power-sampling interrupt).
const interruptRateHz = 1250

// CacheLineBytes is the DRAM access granularity.
const CacheLineBytes = 64

// Derive computes the counter readout for executing workload w under
// configuration e.Config with outcome e. For GPU configurations the CPU
// counters reflect the host driver thread (the OpenCL runtime and
// kernel-launch path), while DRAM accesses reflect the GPU's traffic
// through the shared memory controller.
func Derive(w apu.Workload, e apu.Execution) Set {
	cfg := e.Config
	var s Set
	switch cfg.Device {
	case apu.CPUDevice:
		instr := w.FLOPs * w.InstrPerFlop
		memOps := instr * memOpFrac
		s.Instructions = instr
		s.L1DMisses = memOps * w.L1MissRate
		s.L2DMisses = s.L1DMisses * w.L2MissRate
		s.TLBMisses = memOps * w.TLBMissRate
		s.CondBranches = instr * w.BranchFrac
		s.VectorInstr = instr * w.VecFrac
		active := float64(cfg.Threads)
		s.CoreCycles = e.TimeSec * cfg.CPUFreqGHz * 1e9 * active
		s.RefCycles = e.TimeSec * RefClockGHz * 1e9 * active
		s.StalledCycles = s.CoreCycles * e.StallFrac
		fpuBusy := w.VecFrac * (1 - e.StallFrac)
		s.IdleFPUCycles = s.CoreCycles * (1 - fpuBusy)
		s.DRAMAccesses = w.Bytes / CacheLineBytes
	default: // GPU
		// Host-side work: driver and runtime cycles at modest IPC.
		instr := w.LaunchCycles * 0.8
		s.Instructions = instr
		s.L1DMisses = instr * memOpFrac * 0.01
		s.L2DMisses = s.L1DMisses * 0.2
		s.TLBMisses = instr * memOpFrac * 0.0005
		s.CondBranches = instr * 0.2 // driver code is branchy
		s.VectorInstr = 0
		s.CoreCycles = e.TimeSec * cfg.CPUFreqGHz * 1e9 // one host thread
		s.RefCycles = e.TimeSec * RefClockGHz * 1e9
		// The host spends most of the kernel duration waiting.
		busy := e.LaunchTimeSec / e.TimeSec
		s.StalledCycles = s.CoreCycles * (1 - busy)
		s.IdleFPUCycles = s.CoreCycles * 0.99
		s.DRAMAccesses = w.Bytes * w.GPUBytesFactor / CacheLineBytes
	}
	s.Interrupts = e.TimeSec * interruptRateHz
	return s
}

// Noisy returns a copy of s with multiplicative jitter applied to every
// counter, modeling sampling skid and multiplexing error.
func (s Set) Noisy(rng *rand.Rand, rel float64) Set {
	j := func(v float64) float64 {
		//lint:ignore floatcmp exact-zero fast path: 0 × jitter is 0, and near-zero counters must still jitter
		if v == 0 || rel <= 0 {
			return v
		}
		return v * math.Exp(rng.NormFloat64()*rel-rel*rel/2)
	}
	return Set{
		Instructions:  j(s.Instructions),
		L1DMisses:     j(s.L1DMisses),
		L2DMisses:     j(s.L2DMisses),
		TLBMisses:     j(s.TLBMisses),
		CondBranches:  j(s.CondBranches),
		VectorInstr:   j(s.VectorInstr),
		StalledCycles: j(s.StalledCycles),
		CoreCycles:    j(s.CoreCycles),
		RefCycles:     j(s.RefCycles),
		IdleFPUCycles: j(s.IdleFPUCycles),
		Interrupts:    j(s.Interrupts),
		DRAMAccesses:  j(s.DRAMAccesses),
	}
}

// Corrupted returns a copy of s damaged by an injected CounterCorrupt
// fault (fault.SiteCounter): each counter is independently left
// intact, zeroed (a multiplexing slot that never scheduled), or
// scaled by the fault magnitude (a runaway increment). Deriving rng
// from the event identity makes the corruption replay bit-for-bit.
func (s Set) Corrupted(f fault.Fault, rng *rand.Rand) Set {
	if f.Kind != fault.CounterCorrupt || rng == nil {
		return s
	}
	c := func(v float64) float64 {
		switch r := rng.Float64(); {
		case r < 0.2:
			return 0
		case r < 0.4:
			return v * f.Magnitude
		default:
			return v
		}
	}
	return Set{
		Instructions:  c(s.Instructions),
		L1DMisses:     c(s.L1DMisses),
		L2DMisses:     c(s.L2DMisses),
		TLBMisses:     c(s.TLBMisses),
		CondBranches:  c(s.CondBranches),
		VectorInstr:   c(s.VectorInstr),
		StalledCycles: c(s.StalledCycles),
		CoreCycles:    c(s.CoreCycles),
		RefCycles:     c(s.RefCycles),
		IdleFPUCycles: c(s.IdleFPUCycles),
		Interrupts:    c(s.Interrupts),
		DRAMAccesses:  c(s.DRAMAccesses),
	}
}

// Normalized is the counter set scaled per-instruction, per-core-cycle,
// and per-reference-cycle as the paper prescribes ("All such counts are
// normalized to one or more of core cycles, reference cycles, and
// instructions"). These are the classifier inputs.
type Normalized struct {
	IPC            float64 // instructions per core cycle
	L1PerInstr     float64
	L2PerInstr     float64
	TLBPerInstr    float64
	BranchPerInstr float64
	VecPerInstr    float64
	StallPerCycle  float64
	IdleFPUFrac    float64
	DRAMPerRefCyc  float64
	IntPerRefCyc   float64
}

// Normalize computes the normalized metrics. Zero denominators yield
// zero metrics rather than NaN.
func (s Set) Normalize() Normalized {
	div := func(a, b float64) float64 {
		if stats.AlmostZero(b) {
			return 0
		}
		return a / b
	}
	return Normalized{
		IPC:            div(s.Instructions, s.CoreCycles),
		L1PerInstr:     div(s.L1DMisses, s.Instructions),
		L2PerInstr:     div(s.L2DMisses, s.Instructions),
		TLBPerInstr:    div(s.TLBMisses, s.Instructions),
		BranchPerInstr: div(s.CondBranches, s.Instructions),
		VecPerInstr:    div(s.VectorInstr, s.Instructions),
		StallPerCycle:  div(s.StalledCycles, s.CoreCycles),
		IdleFPUFrac:    div(s.IdleFPUCycles, s.CoreCycles),
		DRAMPerRefCyc:  div(s.DRAMAccesses, s.RefCycles),
		IntPerRefCyc:   div(s.Interrupts, s.RefCycles),
	}
}

// Vector flattens the normalized metrics in a stable order for model
// input; Names labels the same order.
func (n Normalized) Vector() []float64 {
	return []float64{
		n.IPC, n.L1PerInstr, n.L2PerInstr, n.TLBPerInstr, n.BranchPerInstr,
		n.VecPerInstr, n.StallPerCycle, n.IdleFPUFrac, n.DRAMPerRefCyc, n.IntPerRefCyc,
	}
}

// Names returns labels parallel to Vector.
func Names() []string {
	return []string{
		"ipc", "l1_per_instr", "l2_per_instr", "tlb_per_instr", "branch_per_instr",
		"vec_per_instr", "stall_per_cycle", "idle_fpu_frac", "dram_per_refcyc", "int_per_refcyc",
	}
}

// String renders the raw counters for dumps.
func (s Set) String() string {
	return fmt.Sprintf("instr=%.3g l1=%.3g l2=%.3g tlb=%.3g br=%.3g vec=%.3g stall=%.3g cyc=%.3g ref=%.3g fpu_idle=%.3g irq=%.3g dram=%.3g",
		s.Instructions, s.L1DMisses, s.L2DMisses, s.TLBMisses, s.CondBranches, s.VectorInstr,
		s.StalledCycles, s.CoreCycles, s.RefCycles, s.IdleFPUCycles, s.Interrupts, s.DRAMAccesses)
}
