package counters

import (
	"math"
	"math/rand"
	"testing"

	"acsel/internal/apu"
)

func testWorkload() apu.Workload {
	return apu.Workload{
		Name:           "k",
		FLOPs:          2e8,
		Bytes:          5e7,
		ParFrac:        0.95,
		VecFrac:        0.5,
		BranchFrac:     0.08,
		GPUAffinity:    0.25,
		GPUBytesFactor: 1.2,
		LaunchCycles:   3e6,
		L1MissRate:     0.03,
		L2MissRate:     0.3,
		TLBMissRate:    0.002,
		InstrPerFlop:   1.6,
	}
}

func runOn(t *testing.T, cfg apu.Config) (apu.Workload, apu.Execution) {
	t.Helper()
	w := testWorkload()
	e, err := apu.DefaultMachine().Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, e
}

func TestDeriveCPUBasics(t *testing.T) {
	w, e := runOn(t, apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 4, GPUFreqGHz: 0.311})
	s := Derive(w, e)
	if s.Instructions != w.FLOPs*w.InstrPerFlop {
		t.Errorf("Instructions = %v", s.Instructions)
	}
	if s.VectorInstr != s.Instructions*w.VecFrac {
		t.Errorf("VectorInstr = %v", s.VectorInstr)
	}
	if s.CondBranches != s.Instructions*w.BranchFrac {
		t.Errorf("CondBranches = %v", s.CondBranches)
	}
	if s.L2DMisses >= s.L1DMisses {
		t.Errorf("L2 misses (%v) should be below L1 misses (%v)", s.L2DMisses, s.L1DMisses)
	}
	if s.DRAMAccesses != w.Bytes/CacheLineBytes {
		t.Errorf("DRAMAccesses = %v", s.DRAMAccesses)
	}
	wantCyc := e.TimeSec * 2.4e9 * 4
	if math.Abs(s.CoreCycles-wantCyc) > 1e-6*wantCyc {
		t.Errorf("CoreCycles = %v, want %v", s.CoreCycles, wantCyc)
	}
	if s.StalledCycles > s.CoreCycles {
		t.Error("stalled cycles exceed total cycles")
	}
	if s.IdleFPUCycles > s.CoreCycles {
		t.Error("idle FPU cycles exceed total cycles")
	}
}

func TestDeriveGPUReflectsHost(t *testing.T) {
	w, e := runOn(t, apu.Config{Device: apu.GPUDevice, CPUFreqGHz: 3.7, Threads: 1, GPUFreqGHz: 0.819})
	s := Derive(w, e)
	// Host-side instruction stream is the driver, far smaller than the
	// kernel's own flop-derived stream.
	if s.Instructions >= w.FLOPs {
		t.Errorf("GPU host instructions = %v, want << FLOPs", s.Instructions)
	}
	if s.VectorInstr != 0 {
		t.Errorf("driver thread should issue no vector instructions, got %v", s.VectorInstr)
	}
	// DRAM traffic is the GPU's, including its byte factor.
	if s.DRAMAccesses != w.Bytes*w.GPUBytesFactor/CacheLineBytes {
		t.Errorf("DRAMAccesses = %v", s.DRAMAccesses)
	}
	// One host thread only.
	wantCyc := e.TimeSec * 3.7e9
	if math.Abs(s.CoreCycles-wantCyc) > 1e-6*wantCyc {
		t.Errorf("CoreCycles = %v, want %v", s.CoreCycles, wantCyc)
	}
}

func TestCPUvsGPUSignaturesDiffer(t *testing.T) {
	// The classifier depends on CPU and GPU sample runs producing
	// distinguishable normalized signatures.
	w, ec := runOn(t, apu.SampleConfigCPU())
	_, eg := runOn(t, apu.SampleConfigGPU())
	nc := Derive(w, ec).Normalize()
	ng := Derive(w, eg).Normalize()
	if nc.VecPerInstr <= ng.VecPerInstr {
		t.Error("CPU run should show more vector instructions per instr")
	}
	if nc.IPC <= ng.IPC {
		t.Error("CPU run should show higher IPC than an idle-waiting host")
	}
}

func TestStallFracTracksMemoryBoundedness(t *testing.T) {
	m := apu.DefaultMachine()
	wCompute := testWorkload()
	wCompute.Bytes = 1e5
	wMemory := testWorkload()
	wMemory.FLOPs = 1e6
	wMemory.Bytes = 5e8
	cfg := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 3.7, Threads: 4, GPUFreqGHz: 0.311}
	ec, err := m.Run(wCompute, cfg)
	if err != nil {
		t.Fatal(err)
	}
	em, err := m.Run(wMemory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Derive(wCompute, ec).Normalize()
	sm := Derive(wMemory, em).Normalize()
	if sm.StallPerCycle <= sc.StallPerCycle {
		t.Errorf("memory-bound stall %v <= compute-bound stall %v", sm.StallPerCycle, sc.StallPerCycle)
	}
	if sm.DRAMPerRefCyc <= sc.DRAMPerRefCyc {
		t.Errorf("memory-bound DRAM rate %v <= compute-bound %v", sm.DRAMPerRefCyc, sc.DRAMPerRefCyc)
	}
}

func TestNormalizeNoNaN(t *testing.T) {
	var s Set // all zeros
	n := s.Normalize()
	for i, v := range n.Vector() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("normalized metric %d is %v for zero counters", i, v)
		}
	}
}

func TestVectorNamesParallel(t *testing.T) {
	var s Set
	if len(s.Normalize().Vector()) != len(Names()) {
		t.Fatal("Vector and Names lengths differ")
	}
}

func TestNoisyReproducibleAndBounded(t *testing.T) {
	w, e := runOn(t, apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 2, GPUFreqGHz: 0.311})
	s := Derive(w, e)
	a := s.Noisy(rand.New(rand.NewSource(4)), 0.02)
	b := s.Noisy(rand.New(rand.NewSource(4)), 0.02)
	if a != b {
		t.Error("Noisy not reproducible with equal seeds")
	}
	if r := a.Instructions / s.Instructions; r < 0.85 || r > 1.15 {
		t.Errorf("noise too large: ratio %v", r)
	}
	// Zero counters stay zero (no noise injected into structurally-zero
	// counters like VectorInstr on the GPU host).
	var zero Set
	if zero.Noisy(rand.New(rand.NewSource(1)), 0.1) != zero {
		t.Error("noise must not perturb zero counters")
	}
}

func TestNoisyZeroRelIsIdentity(t *testing.T) {
	w, e := runOn(t, apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 2, GPUFreqGHz: 0.311})
	s := Derive(w, e)
	if s.Noisy(rand.New(rand.NewSource(1)), 0) != s {
		t.Error("rel=0 should be identity")
	}
}

func TestStringNonEmpty(t *testing.T) {
	var s Set
	if s.String() == "" {
		t.Error("empty String")
	}
}

func BenchmarkDeriveNormalize(b *testing.B) {
	w := testWorkload()
	e, err := apu.DefaultMachine().Run(w, apu.SampleConfigCPU())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Derive(w, e).Normalize().Vector()
	}
}
