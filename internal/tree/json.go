package tree

import (
	"encoding/json"
	"errors"
	"fmt"
)

// jsonNode mirrors node with exported fields for serialization.
type jsonNode struct {
	Feature   int       `json:"feature"`
	Threshold float64   `json:"threshold"`
	Left      *jsonNode `json:"left,omitempty"`
	Right     *jsonNode `json:"right,omitempty"`
	Leaf      bool      `json:"leaf"`
	Class     int       `json:"class"`
	N         int       `json:"n"`
	Counts    []int     `json:"counts,omitempty"`
}

type jsonTree struct {
	Root     *jsonNode `json:"root"`
	NClasses int       `json:"n_classes"`
	NFeats   int       `json:"n_features"`
	Names    []string  `json:"feature_names,omitempty"`
	Depth    int       `json:"depth"`
	Leaves   int       `json:"leaves"`
}

// MarshalJSON serializes the trained tree.
func (t *Tree) MarshalJSON() ([]byte, error) {
	if t.root == nil {
		return nil, errors.New("tree: marshaling an untrained tree")
	}
	return json.Marshal(jsonTree{
		Root:     toJSONNode(t.root),
		NClasses: t.nClasses,
		NFeats:   t.nFeats,
		Names:    t.names,
		Depth:    t.depth,
		Leaves:   t.leaves,
	})
}

// UnmarshalJSON restores a tree serialized by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	if jt.Root == nil {
		return errors.New("tree: missing root")
	}
	root, err := fromJSONNode(jt.Root)
	if err != nil {
		return err
	}
	t.root = root
	t.nClasses = jt.NClasses
	t.nFeats = jt.NFeats
	t.names = jt.Names
	t.depth = jt.Depth
	t.leaves = jt.Leaves
	return nil
}

func toJSONNode(n *node) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      toJSONNode(n.left),
		Right:     toJSONNode(n.right),
		Leaf:      n.leaf,
		Class:     n.class,
		N:         n.n,
		Counts:    n.counts,
	}
}

func fromJSONNode(j *jsonNode) (*node, error) {
	n := &node{
		feature:   j.Feature,
		threshold: j.Threshold,
		leaf:      j.Leaf,
		class:     j.Class,
		n:         j.N,
		counts:    j.Counts,
	}
	if n.leaf {
		if j.Left != nil || j.Right != nil {
			return nil, fmt.Errorf("tree: leaf with children")
		}
		return n, nil
	}
	if j.Left == nil || j.Right == nil {
		return nil, fmt.Errorf("tree: internal node missing a child")
	}
	var err error
	if n.left, err = fromJSONNode(j.Left); err != nil {
		return nil, err
	}
	if n.right, err = fromJSONNode(j.Right); err != nil {
		return nil, err
	}
	return n, nil
}
