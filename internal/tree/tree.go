// Package tree implements a CART-style classification tree (Breiman et
// al. 1984, the paper's reference [36]). The model pipeline trains one
// on performance-counter and power features gathered at the two sample
// configurations, and uses it online to assign a new kernel to one of
// the offline clusters. Splits are binary on a single feature
// (x[f] < threshold), chosen to minimize weighted Gini impurity.
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Options controls tree induction.
type Options struct {
	// MaxDepth limits tree depth (root = depth 0). Zero means the
	// default of 6 — classification must stay O(depth) fast (§IV-C).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf. Zero means 1.
	MinLeaf int
	// MinGain is the minimum Gini-impurity decrease to accept a split.
	MinGain float64
	// FeatureNames optionally labels features for rendering (Fig 3).
	FeatureNames []string
}

// Tree is a trained classifier.
type Tree struct {
	root     *node
	nClasses int
	nFeats   int
	names    []string
	depth    int
	leaves   int
}

type node struct {
	// Internal node fields.
	feature   int
	threshold float64
	left      *node // x[feature] < threshold
	right     *node // x[feature] >= threshold
	// Leaf fields.
	leaf  bool
	class int
	// Diagnostics.
	n      int
	counts []int
}

// ErrNoData is returned when training is attempted with no samples.
var ErrNoData = errors.New("tree: no training samples")

// Train fits a classification tree on feature rows X with class labels
// y (labels must be non-negative and dense-ish; the class count is
// max(y)+1).
func Train(X [][]float64, y []int, opts Options) (*Tree, error) {
	if len(X) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("tree: %d rows but %d labels", len(X), len(y))
	}
	nf := len(X[0])
	nClasses := 0
	for i, row := range X {
		if len(row) != nf {
			return nil, fmt.Errorf("tree: row %d has %d features, want %d", i, len(row), nf)
		}
		if y[i] < 0 {
			return nil, fmt.Errorf("tree: negative label %d at row %d", y[i], i)
		}
		if y[i]+1 > nClasses {
			nClasses = y[i] + 1
		}
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 6
	}
	if opts.MinLeaf <= 0 {
		opts.MinLeaf = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{nClasses: nClasses, nFeats: nf, names: opts.FeatureNames}
	t.root = t.grow(X, y, idx, 0, opts)
	return t, nil
}

func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, opts Options) *node {
	counts := make([]int, t.nClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	if depth > t.depth {
		t.depth = depth
	}
	nd := &node{n: len(idx), counts: counts, class: argmax(counts)}
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || pure(counts) {
		nd.leaf = true
		t.leaves++
		return nd
	}

	// Note: zero-gain splits are permitted (unless MinGain demands
	// better) — XOR-like label patterns need them to make progress, and
	// recursion is bounded by MaxDepth and shrinking partitions.
	bestFeat, bestThresh, bestGain := -1, 0.0, math.Inf(-1)
	bestBalance := -1
	parentImp := gini(counts, len(idx))
	for f := 0; f < t.nFeats; f++ {
		feat, thresh, gain, balance := bestSplitOnFeature(X, y, idx, f, t.nClasses, parentImp, opts.MinLeaf)
		if feat < 0 {
			continue
		}
		// Prefer higher gain; among (near-)equal gains prefer the more
		// balanced split — it preserves depth budget for later splits.
		if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && balance > bestBalance) {
			bestFeat, bestThresh, bestGain, bestBalance = feat, thresh, gain, balance
		}
	}
	if bestFeat < 0 || bestGain < opts.MinGain {
		nd.leaf = true
		t.leaves++
		return nd
	}

	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] < bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	nd.feature = bestFeat
	nd.threshold = bestThresh
	nd.left = t.grow(X, y, li, depth+1, opts)
	nd.right = t.grow(X, y, ri, depth+1, opts)
	return nd
}

// bestSplitOnFeature scans candidate thresholds (midpoints between
// consecutive distinct sorted values) for feature f and returns the
// split with the largest impurity decrease.
func bestSplitOnFeature(X [][]float64, y []int, idx []int, f, nClasses int, parentImp float64, minLeaf int) (feat int, thresh, gain float64, balance int) {
	type pair struct {
		v float64
		c int
	}
	vals := make([]pair, len(idx))
	for k, i := range idx {
		vals[k] = pair{X[i][f], y[i]}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

	total := len(vals)
	leftCounts := make([]int, nClasses)
	rightCounts := make([]int, nClasses)
	for _, p := range vals {
		rightCounts[p.c]++
	}
	feat, gain, balance = -1, math.Inf(-1), -1
	for k := 0; k < total-1; k++ {
		leftCounts[vals[k].c]++
		rightCounts[vals[k].c]--
		//lint:ignore floatcmp CART cannot place a threshold between bit-identical sorted values; exact by construction
		if vals[k].v == vals[k+1].v {
			continue // cannot split between equal values
		}
		nl, nr := k+1, total-k-1
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		bal := nl
		if nr < bal {
			bal = nr
		}
		imp := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(total)
		g := parentImp - imp
		if g > gain+1e-12 || (g > gain-1e-12 && bal > balance) {
			gain = g
			feat = f
			thresh = (vals[k].v + vals[k+1].v) / 2
			balance = bal
		}
	}
	return feat, thresh, gain, balance
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

func pure(counts []int) bool {
	nz := 0
	for _, c := range counts {
		if c > 0 {
			nz++
		}
	}
	return nz <= 1
}

func argmax(counts []int) int {
	best, bi := math.MinInt, 0
	for i, c := range counts {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

// Classify returns the predicted class for feature vector x. Its cost
// is O(depth), matching the paper's online-overhead claim.
func (t *Tree) Classify(x []float64) (int, error) {
	if len(x) != t.nFeats {
		return 0, fmt.Errorf("tree: classify with %d features, trained on %d", len(x), t.nFeats)
	}
	nd := t.root
	for !nd.leaf {
		if x[nd.feature] < nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.class, nil
}

// Depth returns the maximum depth reached during training.
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// NumClasses returns the number of classes the tree distinguishes.
func (t *Tree) NumClasses() int { return t.nClasses }

// Accuracy computes the fraction of (X, y) classified correctly.
func (t *Tree) Accuracy(X [][]float64, y []int) (float64, error) {
	if len(X) == 0 {
		return 0, ErrNoData
	}
	correct := 0
	for i, row := range X {
		c, err := t.Classify(row)
		if err != nil {
			return 0, err
		}
		if c == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X)), nil
}

// Render prints the tree in the indented style of the paper's Figure 3,
// e.g.  "if L2misses/cyc < 0.0012: → cluster 2".
func (t *Tree) Render() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, nd *node, depth int) {
	pad := strings.Repeat("  ", depth)
	if nd.leaf {
		fmt.Fprintf(b, "%s→ cluster %d  (n=%d)\n", pad, nd.class, nd.n)
		return
	}
	name := fmt.Sprintf("x%d", nd.feature)
	if nd.feature < len(t.names) && t.names[nd.feature] != "" {
		name = t.names[nd.feature]
	}
	fmt.Fprintf(b, "%sif %s < %.6g:\n", pad, name, nd.threshold)
	t.render(b, nd.left, depth+1)
	fmt.Fprintf(b, "%selse:\n", pad)
	t.render(b, nd.right, depth+1)
}
