package tree

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestTrainTrivialSplit(t *testing.T) {
	// One feature cleanly separates two classes at 0.5.
	X := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []int{0, 0, 0, 1, 1, 1}
	tr, err := Train(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tr.Accuracy(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if c, _ := tr.Classify([]float64{0.05}); c != 0 {
		t.Errorf("Classify(0.05) = %d", c)
	}
	if c, _ := tr.Classify([]float64{0.95}); c != 1 {
		t.Errorf("Classify(0.95) = %d", c)
	}
}

func TestTrainXORNeedsDepth2(t *testing.T) {
	// XOR pattern requires two levels of splits.
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9}}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	tr, err := Train(X, y, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := tr.Accuracy(X, y)
	if acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1", acc)
	}
	if tr.Depth() < 2 {
		t.Errorf("XOR solved at depth %d, expected >=2", tr.Depth())
	}
}

func TestTrainMultiClass(t *testing.T) {
	// Three bands on one feature.
	var X [][]float64
	var y []int
	for i := 0; i < 30; i++ {
		v := float64(i) / 30
		X = append(X, []float64{v})
		switch {
		case v < 0.33:
			y = append(y, 0)
		case v < 0.66:
			y = append(y, 1)
		default:
			y = append(y, 2)
		}
	}
	tr, err := Train(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumClasses() != 3 {
		t.Errorf("NumClasses = %d", tr.NumClasses())
	}
	acc, _ := tr.Accuracy(X, y)
	if acc != 1 {
		t.Errorf("3-class accuracy = %v", acc)
	}
}

func TestTrainPureLeafShortCircuits(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{0, 0, 0}
	tr, err := Train(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 || tr.Leaves() != 1 {
		t.Errorf("pure data should give a single leaf: depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Fatal("expected ErrNoData")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Options{}); err == nil {
		t.Fatal("expected length mismatch")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 1}, Options{}); err == nil {
		t.Fatal("expected ragged row error")
	}
	if _, err := Train([][]float64{{1}}, []int{-1}, Options{}); err == nil {
		t.Fatal("expected negative label error")
	}
}

func TestClassifyDimensionError(t *testing.T) {
	tr, err := Train([][]float64{{0}, {1}}, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Classify([]float64{0, 1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		X = append(X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(4))
	}
	tr, err := Train(X, y, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 3 {
		t.Errorf("Depth = %d exceeds MaxDepth 3", tr.Depth())
	}
}

func TestMinLeafRespected(t *testing.T) {
	X := [][]float64{{0.1}, {0.9}, {0.2}, {0.8}, {0.3}, {0.7}}
	y := []int{0, 1, 0, 1, 0, 1}
	tr, err := Train(X, y, Options{MinLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=3 and 6 samples, only the 3/3 split is allowed.
	acc, _ := tr.Accuracy(X, y)
	if acc != 1 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestDuplicateFeatureValuesNoSplit(t *testing.T) {
	// All feature values identical: no valid threshold exists.
	X := [][]float64{{5}, {5}, {5}, {5}}
	y := []int{0, 1, 0, 1}
	tr, err := Train(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Errorf("expected a single leaf, got %d", tr.Leaves())
	}
}

func TestRenderContainsFeatureNames(t *testing.T) {
	X := [][]float64{{0.1, 0}, {0.9, 0}, {0.2, 1}, {0.8, 1}}
	y := []int{0, 1, 0, 1}
	tr, err := Train(X, y, Options{FeatureNames: []string{"L2miss/cyc", "power_w"}})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Render()
	if !strings.Contains(out, "L2miss/cyc") {
		t.Errorf("Render missing feature name:\n%s", out)
	}
	if !strings.Contains(out, "cluster") {
		t.Errorf("Render missing leaf labels:\n%s", out)
	}
}

func TestGeneralizationOnNoisyClusters(t *testing.T) {
	// Two gaussian-ish clusters in 2D; the tree should generalize to
	// held-out points with high accuracy.
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) ([][]float64, []int) {
		var X [][]float64
		var y []int
		for i := 0; i < n; i++ {
			c := rng.Intn(2)
			cx, cy := 0.25, 0.25
			if c == 1 {
				cx, cy = 0.75, 0.75
			}
			X = append(X, []float64{cx + rng.NormFloat64()*0.08, cy + rng.NormFloat64()*0.08})
			y = append(y, c)
		}
		return X, y
	}
	Xtr, ytr := gen(200)
	Xte, yte := gen(100)
	tr, err := Train(Xtr, ytr, Options{MaxDepth: 4, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := tr.Accuracy(Xte, yte)
	if acc < 0.95 {
		t.Errorf("held-out accuracy = %v, want >= 0.95", acc)
	}
}

// Property: Classify always returns a class in range for random trees
// and random queries.
func TestClassifyAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(50)
		nc := 2 + rng.Intn(4)
		var X [][]float64
		var y []int
		for i := 0; i < n; i++ {
			X = append(X, []float64{rng.Float64(), rng.Float64()})
			y = append(y, rng.Intn(nc))
		}
		tr, err := Train(X, y, Options{MaxDepth: 5})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 50; q++ {
			c, err := tr.Classify([]float64{rng.Float64() * 2, rng.Float64() * 2})
			if err != nil {
				t.Fatal(err)
			}
			if c < 0 || c >= tr.NumClasses() {
				t.Fatalf("class %d out of range [0,%d)", c, tr.NumClasses())
			}
		}
	}
}

func TestAccuracyErrOnEmpty(t *testing.T) {
	tr, err := Train([][]float64{{0}, {1}}, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Accuracy(nil, nil); err == nil {
		t.Fatal("expected ErrNoData")
	}
}

func BenchmarkClassify(b *testing.B) {
	// Paper claim (§IV-C): classification costs O(depth); this measures
	// the absolute latency of a single classification.
	rng := rand.New(rand.NewSource(21))
	var X [][]float64
	var y []int
	for i := 0; i < 36; i++ { // 36 kernels as in the paper
		X = append(X, []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(5))
	}
	tr, err := Train(X, y, Options{MaxDepth: 6})
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Classify(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	X := [][]float64{{0.1, 0}, {0.9, 0}, {0.2, 1}, {0.8, 1}, {0.15, 0.5}, {0.85, 0.5}}
	y := []int{0, 1, 0, 1, 0, 1}
	tr, err := Train(X, y, Options{FeatureNames: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var tr2 Tree
	if err := json.Unmarshal(data, &tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.Depth() != tr.Depth() || tr2.Leaves() != tr.Leaves() || tr2.NumClasses() != tr.NumClasses() {
		t.Fatal("shape lost in round trip")
	}
	for _, q := range [][]float64{{0.05, 0.3}, {0.95, 0.7}, {0.5, 0.5}} {
		c1, err1 := tr.Classify(q)
		c2, err2 := tr2.Classify(q)
		if err1 != nil || err2 != nil || c1 != c2 {
			t.Fatalf("classification differs after round trip at %v", q)
		}
	}
	if tr.Render() != tr2.Render() {
		t.Error("rendering differs after round trip")
	}
}

func TestMarshalUntrained(t *testing.T) {
	var tr Tree
	if _, err := json.Marshal(&tr); err == nil {
		t.Fatal("expected error marshaling untrained tree")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"root": null}`), &tr); err == nil {
		t.Fatal("expected missing-root error")
	}
	if err := json.Unmarshal([]byte(`{"root": {"leaf": false}}`), &tr); err == nil {
		t.Fatal("expected missing-child error")
	}
	if err := json.Unmarshal([]byte(`{"root": {"leaf": true, "left": {"leaf": true}}}`), &tr); err == nil {
		t.Fatal("expected leaf-with-children error")
	}
	if err := json.Unmarshal([]byte(`nope`), &tr); err == nil {
		t.Fatal("expected syntax error")
	}
}
