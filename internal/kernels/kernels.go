// Package kernels provides the benchmark suite of the paper's
// evaluation (§IV-B): 36 computational kernels drawn from the exascale
// proxy applications LULESH (20 kernels), CoMD (7), and SMC (8), plus
// Rodinia LU (1), across multiple input sizes for 65 benchmark/input
// combinations in total.
//
// The real kernels are OpenMP/OpenCL codes; here each kernel is a
// synthetic apu.Workload whose parameters are drawn from a
// per-kernel archetype (compute-bound SIMD-friendly, memory-streaming,
// branchy/irregular, launch-latency-bound, poorly-parallelized) with
// deterministic per-kernel jitter. The archetype assignment follows the
// qualitative character of the real kernels (e.g. LULESH's hourglass
// force kernels are wide data-parallel loops; CoMD's neighbor-list
// build is irregular; SMC's chemistry is branchy with heavy compute;
// LU decomposition is strongly GPU-friendly). See DESIGN.md for why
// this substitution preserves the evaluation's stress profile.
package kernels

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"acsel/internal/apu"
)

// Archetype names a qualitative kernel behaviour class.
type Archetype int

const (
	// ComputeSIMD is a wide data-parallel floating-point loop: high
	// vectorization, high parallel fraction, strong GPU affinity.
	ComputeSIMD Archetype = iota
	// MemoryStream is bandwidth-bound streaming: performance set by the
	// memory system, mild frequency sensitivity, decent GPU affinity.
	MemoryStream
	// Branchy is irregular control flow: poor vectorization, weak GPU
	// affinity, moderate parallelism.
	Branchy
	// LaunchBound is a small kernel dominated by invocation overhead:
	// the GPU path suffers driver launch latency.
	LaunchBound
	// LowParallel has a significant serial fraction (reductions,
	// boundary work): thread scaling flattens early.
	LowParallel
	// Balanced mixes compute and memory without an extreme.
	Balanced
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case ComputeSIMD:
		return "compute-simd"
	case MemoryStream:
		return "memory-stream"
	case Branchy:
		return "branchy"
	case LaunchBound:
		return "launch-bound"
	case LowParallel:
		return "low-parallel"
	case Balanced:
		return "balanced"
	}
	return fmt.Sprintf("Archetype(%d)", int(a))
}

// rng01 helpers: parameter ranges per archetype. Each entry is
// {min, max} and a kernel's value is drawn uniformly via its hash-seeded
// generator, making the catalog fully deterministic.
type paramRanges struct {
	parFrac    [2]float64
	vecFrac    [2]float64
	branchFrac [2]float64
	gpuAff     [2]float64
	intensity  [2]float64 // flops per DRAM byte
	launchCyc  [2]float64
	l1Rate     [2]float64
	l2Rate     [2]float64
	tlbRate    [2]float64
	instrPF    [2]float64
	gpuBytes   [2]float64
}

var archetypeParams = map[Archetype]paramRanges{
	ComputeSIMD: {
		parFrac:    [2]float64{0.96, 0.995},
		vecFrac:    [2]float64{0.55, 0.8},
		branchFrac: [2]float64{0.02, 0.06},
		gpuAff:     [2]float64{0.3, 0.68},
		intensity:  [2]float64{6, 20},
		launchCyc:  [2]float64{1.5e6, 4e6},
		l1Rate:     [2]float64{0.005, 0.02},
		l2Rate:     [2]float64{0.1, 0.3},
		tlbRate:    [2]float64{0.0002, 0.001},
		instrPF:    [2]float64{1.2, 1.8},
		gpuBytes:   [2]float64{0.9, 1.2},
	},
	MemoryStream: {
		parFrac:    [2]float64{0.9, 0.98},
		vecFrac:    [2]float64{0.3, 0.6},
		branchFrac: [2]float64{0.03, 0.08},
		gpuAff:     [2]float64{0.15, 0.35},
		intensity:  [2]float64{0.25, 1.2},
		launchCyc:  [2]float64{1.5e6, 4e6},
		l1Rate:     [2]float64{0.04, 0.10},
		l2Rate:     [2]float64{0.4, 0.7},
		tlbRate:    [2]float64{0.001, 0.004},
		instrPF:    [2]float64{1.8, 2.6},
		gpuBytes:   [2]float64{0.9, 1.3},
	},
	Branchy: {
		parFrac:    [2]float64{0.85, 0.95},
		vecFrac:    [2]float64{0.02, 0.15},
		branchFrac: [2]float64{0.18, 0.3},
		gpuAff:     [2]float64{0.015, 0.06},
		intensity:  [2]float64{1.5, 5},
		launchCyc:  [2]float64{2e6, 6e6},
		l1Rate:     [2]float64{0.02, 0.06},
		l2Rate:     [2]float64{0.3, 0.6},
		tlbRate:    [2]float64{0.002, 0.008},
		instrPF:    [2]float64{2.2, 3.2},
		gpuBytes:   [2]float64{1.1, 1.6},
	},
	LaunchBound: {
		parFrac:    [2]float64{0.8, 0.95},
		vecFrac:    [2]float64{0.2, 0.5},
		branchFrac: [2]float64{0.05, 0.12},
		gpuAff:     [2]float64{0.1, 0.3},
		intensity:  [2]float64{2, 8},
		launchCyc:  [2]float64{1.5e7, 4e7},
		l1Rate:     [2]float64{0.01, 0.04},
		l2Rate:     [2]float64{0.2, 0.5},
		tlbRate:    [2]float64{0.0005, 0.002},
		instrPF:    [2]float64{1.5, 2.2},
		gpuBytes:   [2]float64{1.0, 1.4},
	},
	LowParallel: {
		parFrac:    [2]float64{0.35, 0.7},
		vecFrac:    [2]float64{0.1, 0.4},
		branchFrac: [2]float64{0.08, 0.18},
		gpuAff:     [2]float64{0.02, 0.1},
		intensity:  [2]float64{1, 6},
		launchCyc:  [2]float64{2e6, 8e6},
		l1Rate:     [2]float64{0.015, 0.05},
		l2Rate:     [2]float64{0.25, 0.55},
		tlbRate:    [2]float64{0.001, 0.005},
		instrPF:    [2]float64{1.8, 2.8},
		gpuBytes:   [2]float64{1.0, 1.5},
	},
	Balanced: {
		parFrac:    [2]float64{0.92, 0.98},
		vecFrac:    [2]float64{0.35, 0.6},
		branchFrac: [2]float64{0.05, 0.12},
		gpuAff:     [2]float64{0.12, 0.3},
		intensity:  [2]float64{2, 7},
		launchCyc:  [2]float64{1.5e6, 5e6},
		l1Rate:     [2]float64{0.015, 0.05},
		l2Rate:     [2]float64{0.25, 0.5},
		tlbRate:    [2]float64{0.001, 0.003},
		instrPF:    [2]float64{1.5, 2.2},
		gpuBytes:   [2]float64{0.95, 1.3},
	},
}

// Spec declares one kernel of a benchmark: its archetype, its share of
// benchmark runtime (the weighting the paper uses when aggregating
// per-benchmark results), and a work-scale multiplier.
type Spec struct {
	Name      string
	Archetype Archetype
	TimeShare float64
	WorkScale float64
}

// Benchmark groups kernels and the input sizes the suite runs.
type Benchmark struct {
	Name    string
	Inputs  []string
	Kernels []Spec
}

// inputScale maps an input-size label to the work multiplier applied to
// FLOPs and Bytes. Launch overhead does not scale with input, which is
// what makes small inputs launch-sensitive (the paper's LU Small
// discussion).
var inputScale = map[string]float64{
	"Small":   1,
	"Medium":  4,
	"Large":   16,
	"Default": 6,
}

// Suite returns the full benchmark suite: 36 kernels, 65
// benchmark/input combinations (LULESH 20×2 + CoMD 7×2 + SMC 8×1 +
// LU 1×3).
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name:   "LULESH",
			Inputs: []string{"Small", "Large"},
			Kernels: []Spec{
				{"CalcFBHourglassForceForElems", ComputeSIMD, 0.16, 3.0},
				{"CalcHourglassControlForElems", ComputeSIMD, 0.12, 2.5},
				{"IntegrateStressForElems", ComputeSIMD, 0.11, 2.2},
				{"CalcKinematicsForElems", Balanced, 0.08, 1.8},
				{"CalcQForElems", MemoryStream, 0.06, 1.5},
				{"CalcMonotonicQGradientsForElems", MemoryStream, 0.06, 1.4},
				{"CalcMonotonicQRegionForElems", Branchy, 0.05, 1.2},
				{"EvalEOSForElems", Balanced, 0.06, 1.4},
				{"CalcEnergyForElems", ComputeSIMD, 0.05, 1.2},
				{"CalcPressureForElems", Balanced, 0.04, 1.0},
				{"CalcSoundSpeedForElems", LaunchBound, 0.02, 0.3},
				{"CalcLagrangeElements", MemoryStream, 0.03, 0.9},
				{"CalcForceForNodes", MemoryStream, 0.03, 0.9},
				{"CalcAccelerationForNodes", LaunchBound, 0.02, 0.25},
				{"ApplyAccelerationBCs", LaunchBound, 0.01, 0.15},
				{"CalcVelocityForNodes", MemoryStream, 0.03, 0.8},
				{"CalcPositionForNodes", MemoryStream, 0.03, 0.8},
				{"CalcCourantConstraintForElems", LowParallel, 0.02, 0.7},
				{"CalcHydroConstraintForElems", LowParallel, 0.01, 0.5},
				{"UpdateVolumesForElems", LaunchBound, 0.01, 0.2},
			},
		},
		{
			Name:   "CoMD",
			Inputs: []string{"Small", "Large"},
			Kernels: []Spec{
				{"ComputeForceLJ", ComputeSIMD, 0.35, 3.5},
				{"ComputeForceEAM", ComputeSIMD, 0.25, 3.0},
				{"BuildNeighborList", Branchy, 0.12, 1.5},
				{"RedistributeAtoms", Branchy, 0.08, 1.0},
				{"AdvanceVelocity", MemoryStream, 0.08, 1.0},
				{"AdvancePosition", MemoryStream, 0.08, 1.0},
				{"UpdateLinkCells", LowParallel, 0.04, 0.6},
			},
		},
		{
			Name:   "SMC",
			Inputs: []string{"Default"},
			Kernels: []Spec{
				{"Hypterm", ComputeSIMD, 0.22, 3.0},
				{"Diffterm", Balanced, 0.2, 2.6},
				{"ChemtermRates", Branchy, 0.18, 2.2},
				{"Ctoprim", MemoryStream, 0.12, 1.6},
				{"Courno", LowParallel, 0.06, 0.8},
				{"FillBoundary", LaunchBound, 0.05, 0.3},
				{"TraceStates", Balanced, 0.09, 1.2},
				{"UpdateRK3", MemoryStream, 0.08, 1.1},
			},
		},
		{
			Name:   "LU",
			Inputs: []string{"Small", "Medium", "Large"},
			Kernels: []Spec{
				{"lud", ComputeSIMD, 1.0, 4.0},
			},
		},
	}
}

// Kernel is one kernel instantiated for a benchmark input: the workload
// the machine model executes, plus identification and its runtime share
// within the benchmark.
type Kernel struct {
	Benchmark string
	Input     string
	Name      string
	Archetype Archetype
	TimeShare float64
	Workload  apu.Workload
}

// ID returns a unique "Benchmark/Input/Kernel" string.
func (k Kernel) ID() string { return k.Benchmark + "/" + k.Input + "/" + k.Name }

// Combo is one benchmark/input combination — the unit the paper's
// per-benchmark figures aggregate over.
type Combo struct {
	Benchmark string
	Input     string
	Kernels   []Kernel
}

// Label renders e.g. "LULESH Small" (or just the name for single-input
// benchmarks).
func (c Combo) Label() string {
	if c.Input == "Default" {
		return c.Benchmark
	}
	return c.Benchmark + " " + c.Input
}

// baseFLOPs sets the work magnitude of a WorkScale=1, Small-input
// kernel, chosen so kernel durations land in the paper's regime
// (milliseconds to hundreds of milliseconds).
const baseFLOPs = 6e8

// Instantiate builds the Kernel for one spec under an input label.
// Parameters are drawn deterministically from the kernel's identity, so
// every call returns the same workload. GPU affinity is damped for
// small inputs: undersized grids cannot fill 384 GPU cores.
func Instantiate(bench string, spec Spec, input string) Kernel {
	pr, ok := archetypeParams[spec.Archetype]
	if !ok {
		panic(fmt.Sprintf("kernels: unknown archetype %v", spec.Archetype))
	}
	rng := identityRNG(bench, spec.Name)
	draw := func(r [2]float64) float64 { return r[0] + rng.Float64()*(r[1]-r[0]) }

	scale, ok := inputScale[input]
	if !ok {
		panic(fmt.Sprintf("kernels: unknown input size %q", input))
	}
	flops := baseFLOPs * spec.WorkScale * scale
	intensity := draw(pr.intensity)

	gpuAff := draw(pr.gpuAff)
	if scale < 4 {
		gpuAff *= 0.75 // small grids underfill the GPU
	}

	w := apu.Workload{
		Name:           spec.Name,
		FLOPs:          flops,
		Bytes:          flops / intensity,
		ParFrac:        draw(pr.parFrac),
		VecFrac:        draw(pr.vecFrac),
		BranchFrac:     draw(pr.branchFrac),
		GPUAffinity:    gpuAff,
		GPUBytesFactor: draw(pr.gpuBytes),
		LaunchCycles:   draw(pr.launchCyc),
		L1MissRate:     draw(pr.l1Rate),
		L2MissRate:     draw(pr.l2Rate),
		TLBMissRate:    draw(pr.tlbRate),
		InstrPerFlop:   draw(pr.instrPF),
	}
	return Kernel{
		Benchmark: bench,
		Input:     input,
		Name:      spec.Name,
		Archetype: spec.Archetype,
		TimeShare: spec.TimeShare,
		Workload:  w,
	}
}

// Combos instantiates the full suite: all benchmark/input combinations
// with their kernels.
func Combos() []Combo {
	var out []Combo
	for _, b := range Suite() {
		for _, in := range b.Inputs {
			c := Combo{Benchmark: b.Name, Input: in}
			for _, spec := range b.Kernels {
				c.Kernels = append(c.Kernels, Instantiate(b.Name, spec, in))
			}
			out = append(out, c)
		}
	}
	return out
}

// KernelCount returns the number of distinct kernels in the suite
// (independent of inputs).
func KernelCount() int {
	n := 0
	for _, b := range Suite() {
		n += len(b.Kernels)
	}
	return n
}

// ComboKernelCount returns the total number of kernel/input pairs —
// the paper's "benchmark/input combination count" of 65.
func ComboKernelCount() int {
	n := 0
	for _, b := range Suite() {
		n += len(b.Kernels) * len(b.Inputs)
	}
	return n
}

// identityRNG seeds a generator from a kernel's identity so parameter
// draws are stable across processes and runs.
func identityRNG(parts ...string) *rand.Rand {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // hash.Hash.Write never returns an error
		_, _ = h.Write([]byte{0})
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// IterationRNG derives the deterministic noise stream for one kernel
// iteration at one configuration, keyed by kernel identity, config ID,
// and iteration number. Profiling and evaluation use it so the entire
// experiment is reproducible bit-for-bit.
func IterationRNG(kernelID string, configID, iteration int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(kernelID)) // hash.Hash.Write never returns an error
	fmt.Fprintf(h, "|%d|%d", configID, iteration)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
