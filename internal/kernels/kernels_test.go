package kernels

import (
	"math"
	"strings"
	"testing"

	"acsel/internal/apu"
)

func TestSuiteShapeMatchesPaper(t *testing.T) {
	// §IV-B: LULESH 20 kernels, CoMD 7, SMC 8, LU 1 → 36 total;
	// benchmark/input combinations total 65.
	suite := Suite()
	if len(suite) != 4 {
		t.Fatalf("benchmarks = %d, want 4", len(suite))
	}
	wantKernels := map[string]int{"LULESH": 20, "CoMD": 7, "SMC": 8, "LU": 1}
	for _, b := range suite {
		if got := len(b.Kernels); got != wantKernels[b.Name] {
			t.Errorf("%s kernels = %d, want %d", b.Name, got, wantKernels[b.Name])
		}
	}
	if KernelCount() != 36 {
		t.Errorf("KernelCount = %d, want 36", KernelCount())
	}
	if ComboKernelCount() != 65 {
		t.Errorf("ComboKernelCount = %d, want 65", ComboKernelCount())
	}
}

func TestTimeSharesSumToOne(t *testing.T) {
	for _, b := range Suite() {
		sum := 0.0
		for _, k := range b.Kernels {
			if k.TimeShare <= 0 {
				t.Errorf("%s/%s: non-positive time share", b.Name, k.Name)
			}
			sum += k.TimeShare
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s time shares sum to %v, want 1", b.Name, sum)
		}
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		for _, k := range b.Kernels {
			key := b.Name + "/" + k.Name
			if seen[key] {
				t.Errorf("duplicate kernel %s", key)
			}
			seen[key] = true
		}
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	b := Suite()[0]
	a1 := Instantiate(b.Name, b.Kernels[0], "Small")
	a2 := Instantiate(b.Name, b.Kernels[0], "Small")
	if a1.Workload != a2.Workload {
		t.Error("Instantiate not deterministic")
	}
	large := Instantiate(b.Name, b.Kernels[0], "Large")
	if large.Workload.FLOPs <= a1.Workload.FLOPs {
		t.Error("Large input should carry more work")
	}
}

func TestInstantiatePanicsOnUnknownInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := Suite()[0]
	Instantiate(b.Name, b.Kernels[0], "Gigantic")
}

func TestAllWorkloadsValid(t *testing.T) {
	for _, c := range Combos() {
		for _, k := range c.Kernels {
			if err := k.Workload.Validate(); err != nil {
				t.Errorf("%s: %v", k.ID(), err)
			}
		}
	}
}

func TestAllWorkloadsRunnable(t *testing.T) {
	m := apu.DefaultMachine()
	space := apu.NewSpace()
	for _, c := range Combos() {
		for _, k := range c.Kernels {
			for _, cfg := range []apu.Config{space.Configs[0], apu.SampleConfigCPU(), apu.SampleConfigGPU()} {
				e, err := m.Run(k.Workload, cfg)
				if err != nil {
					t.Fatalf("%s at %v: %v", k.ID(), cfg, err)
				}
				if e.TimeSec <= 0 || math.IsNaN(e.TimeSec) || math.IsInf(e.TimeSec, 0) {
					t.Fatalf("%s at %v: time %v", k.ID(), cfg, e.TimeSec)
				}
			}
		}
	}
}

func TestComboLabels(t *testing.T) {
	combos := Combos()
	labels := map[string]bool{}
	for _, c := range combos {
		labels[c.Label()] = true
	}
	for _, want := range []string{"LULESH Small", "LULESH Large", "CoMD Small", "CoMD Large", "SMC", "LU Small", "LU Medium", "LU Large"} {
		if !labels[want] {
			t.Errorf("missing combo label %q (have %v)", want, labels)
		}
	}
	if len(combos) != 8 {
		t.Errorf("combos = %d, want 8", len(combos))
	}
}

func TestArchetypeDiversityInPowerAndScaling(t *testing.T) {
	// The paper motivates clustering with the spread across kernels:
	// best-config power varies widely (19 W vs 55 W) and perf ranges
	// within a kernel vary from ~1.6x to hundreds. Check our catalog
	// spans a comparable spread.
	m := apu.DefaultMachine()
	space := apu.NewSpace()
	var minBestPower, maxBestPower = math.Inf(1), math.Inf(-1)
	var minRange, maxRange = math.Inf(1), math.Inf(-1)
	for _, c := range Combos() {
		for _, k := range c.Kernels {
			bestPerf, worstPerf := math.Inf(-1), math.Inf(1)
			bestPower := 0.0
			for _, cfg := range space.Configs {
				e, err := m.Run(k.Workload, cfg)
				if err != nil {
					t.Fatal(err)
				}
				p := e.Perf()
				if p > bestPerf {
					bestPerf = p
					bestPower = e.TotalPowerW()
				}
				if p < worstPerf {
					worstPerf = p
				}
			}
			if bestPower < minBestPower {
				minBestPower = bestPower
			}
			if bestPower > maxBestPower {
				maxBestPower = bestPower
			}
			r := bestPerf / worstPerf
			if r < minRange {
				minRange = r
			}
			if r > maxRange {
				maxRange = r
			}
		}
	}
	if maxBestPower-minBestPower < 15 {
		t.Errorf("best-config power spread too small: %v..%v W", minBestPower, maxBestPower)
	}
	if minRange > 8 {
		t.Errorf("min perf range %v: expected some insensitive kernels", minRange)
	}
	if maxRange < 30 {
		t.Errorf("max perf range %v: expected some highly sensitive kernels", maxRange)
	}
}

func TestGPUFriendlyAndHostileKernelsExist(t *testing.T) {
	// Device selection must matter (§I): some kernels should prefer the
	// GPU at max settings, others the CPU.
	m := apu.DefaultMachine()
	gpuWins, cpuWins := 0, 0
	for _, c := range Combos() {
		for _, k := range c.Kernels {
			ec, err := m.Run(k.Workload, apu.SampleConfigCPU())
			if err != nil {
				t.Fatal(err)
			}
			eg, err := m.Run(k.Workload, apu.SampleConfigGPU())
			if err != nil {
				t.Fatal(err)
			}
			if eg.Perf() > ec.Perf() {
				gpuWins++
			} else {
				cpuWins++
			}
		}
	}
	if gpuWins < 10 || cpuWins < 10 {
		t.Errorf("device preference unbalanced: GPU wins %d, CPU wins %d", gpuWins, cpuWins)
	}
}

func TestLUIsStronglyGPUFriendly(t *testing.T) {
	// §V-D: on LU, switching CPU→GPU jumps normalized performance from
	// ~10% to ~89%. LU must clearly prefer the GPU.
	m := apu.DefaultMachine()
	lu := Instantiate("LU", Suite()[3].Kernels[0], "Large")
	ec, _ := m.Run(lu.Workload, apu.SampleConfigCPU())
	eg, _ := m.Run(lu.Workload, apu.SampleConfigGPU())
	if eg.Perf() < 2*ec.Perf() {
		t.Errorf("LU GPU speedup = %v, want >= 2x", eg.Perf()/ec.Perf())
	}
}

func TestIterationRNGStability(t *testing.T) {
	a := IterationRNG("LULESH/Small/foo", 3, 1).Float64()
	b := IterationRNG("LULESH/Small/foo", 3, 1).Float64()
	if a != b {
		t.Error("IterationRNG not stable")
	}
	c := IterationRNG("LULESH/Small/foo", 3, 2).Float64()
	if a == c {
		t.Error("IterationRNG should differ across iterations")
	}
	d := IterationRNG("LULESH/Small/foo", 4, 1).Float64()
	if a == d {
		t.Error("IterationRNG should differ across configs")
	}
}

func TestKernelID(t *testing.T) {
	k := Kernel{Benchmark: "A", Input: "B", Name: "C"}
	if k.ID() != "A/B/C" {
		t.Errorf("ID = %q", k.ID())
	}
}

func TestArchetypeString(t *testing.T) {
	for a := ComputeSIMD; a <= Balanced; a++ {
		if a.String() == "" {
			t.Errorf("empty string for archetype %d", a)
		}
	}
	if Archetype(99).String() == "" {
		t.Error("unknown archetype should render")
	}
}

func BenchmarkInstantiateSuite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Combos()
	}
}

func TestReportSuite(t *testing.T) {
	out := ReportSuite()
	for _, want := range []string{"LULESH", "CoMD", "SMC", "LU", "compute-simd", "branchy", "CalcFBHourglassForceForElems"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite report missing %q", want)
		}
	}
}
