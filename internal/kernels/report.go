package kernels

import (
	"fmt"
	"strings"
)

// ReportSuite renders the benchmark catalog: every kernel with its
// archetype, time share, and key workload parameters at a reference
// input — the table a user consults to understand what the synthetic
// suite contains and how it maps to the paper's applications (§IV-B).
func ReportSuite() string {
	var b strings.Builder
	b.WriteString("Benchmark suite: 36 kernels, 65 benchmark/input combinations\n")
	for _, bench := range Suite() {
		fmt.Fprintf(&b, "\n%s (inputs: %s)\n", bench.Name, strings.Join(bench.Inputs, ", "))
		fmt.Fprintf(&b, "  %-34s %-14s %-6s %-8s %-8s %-8s %-8s\n",
			"kernel", "archetype", "share", "AI", "par", "vec", "gpuAff")
		ref := bench.Inputs[0]
		for _, spec := range bench.Kernels {
			k := Instantiate(bench.Name, spec, ref)
			fmt.Fprintf(&b, "  %-34s %-14s %-6.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
				spec.Name, spec.Archetype, spec.TimeShare,
				k.Workload.ArithmeticIntensity(), k.Workload.ParFrac,
				k.Workload.VecFrac, k.Workload.GPUAffinity)
		}
	}
	return b.String()
}
