// Package omp is a miniature OpenMP-style runtime for the CPU
// implementation path: parallel regions executed over a team of
// threads, with OMP_NUM_THREADS-style controls, fork/join and barrier
// accounting, and the same interposition hooks the profiling library
// uses on the OpenCL side (§III-A: "we choose a distinct implementation
// for each device: OpenMP on the CPU, and OpenCL on the GPU"; §III-D:
// the library accounts for "thread creation and synchronization in the
// case of OpenMP"). Execution is backed by the apu machine model over a
// virtual clock.
package omp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"acsel/internal/apu"
)

// Schedule selects the loop schedule; it perturbs the effective
// synchronization overhead (dynamic scheduling costs more bookkeeping
// but tolerates imbalance better).
type Schedule int

const (
	// ScheduleStatic divides iterations up front (default).
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunks on demand.
	ScheduleDynamic
)

// String names the schedule as OMP_SCHEDULE would.
func (s Schedule) String() string {
	if s == ScheduleDynamic {
		return "dynamic"
	}
	return "static"
}

// dynamicOverheadFactor scales barrier/bookkeeping cost under dynamic
// scheduling; imbalance tolerance reduces effective serial tail.
const dynamicOverheadFactor = 1.5

// dynamicImbalanceRelief is the fraction of the serial tail recovered
// by dynamic scheduling for imbalanced kernels.
const dynamicImbalanceRelief = 0.25

// Region is the profiling record of one executed parallel region.
type Region struct {
	Name      string
	Threads   int
	FreqGHz   float64
	Schedule  Schedule
	StartAt   float64
	EndAt     float64
	Execution apu.Execution
	Iteration int
}

// Duration is the region's virtual wall time.
func (r *Region) Duration() float64 { return r.EndAt - r.StartAt }

// Hook mirrors cl.Hook for the OpenMP path.
type Hook interface {
	// OnRegionStart fires at the parallel-region fork.
	OnRegionStart(name string, threads int, freqGHz float64)
	// OnRegionEnd fires at the join, with the region record.
	OnRegionEnd(r *Region)
}

// Runtime executes parallel regions on the CPU at a controlled thread
// count and P-state.
type Runtime struct {
	machine *apu.Machine

	mu       sync.Mutex
	threads  int
	freqGHz  float64
	schedule Schedule
	now      float64
	hooks    []Hook
	iters    map[string]int
	regions  []*Region
	rngFor   func(kernel string, cfgID, iter int) *rand.Rand
}

// NewRuntime creates a runtime at the machine's defaults: all cores,
// maximum frequency, static schedule. A nil machine uses the default.
func NewRuntime(m *apu.Machine) *Runtime {
	if m == nil {
		m = apu.DefaultMachine()
	}
	return &Runtime{
		machine: m,
		threads: apu.NumCores,
		freqGHz: apu.MaxCPUFreq(),
		iters:   map[string]int{},
	}
}

// ErrBadThreads is returned for thread counts outside 1..NumCores.
var ErrBadThreads = errors.New("omp: thread count out of range")

// SetNumThreads adjusts the team size (omp_set_num_threads).
func (rt *Runtime) SetNumThreads(n int) error {
	if n < 1 || n > apu.NumCores {
		return fmt.Errorf("%w: %d", ErrBadThreads, n)
	}
	rt.mu.Lock()
	rt.threads = n
	rt.mu.Unlock()
	return nil
}

// SetFrequency selects the CPU P-state for subsequent regions.
func (rt *Runtime) SetFrequency(freqGHz float64) error {
	if _, err := apu.CPUVoltage(freqGHz); err != nil {
		return err
	}
	rt.mu.Lock()
	rt.freqGHz = freqGHz
	rt.mu.Unlock()
	return nil
}

// SetSchedule selects the loop schedule.
func (rt *Runtime) SetSchedule(s Schedule) {
	rt.mu.Lock()
	rt.schedule = s
	rt.mu.Unlock()
}

// SetNoise installs a deterministic noise source (nil disables).
func (rt *Runtime) SetNoise(f func(kernel string, cfgID, iter int) *rand.Rand) {
	rt.mu.Lock()
	rt.rngFor = f
	rt.mu.Unlock()
}

// AddHook registers an interposition hook.
func (rt *Runtime) AddHook(h Hook) {
	rt.mu.Lock()
	rt.hooks = append(rt.hooks, h)
	rt.mu.Unlock()
}

// Now returns the virtual time.
func (rt *Runtime) Now() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.now
}

// ParallelFor executes workload w as a parallel region under the
// current thread count, frequency, and schedule, returning its record.
func (rt *Runtime) ParallelFor(w apu.Workload) (*Region, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	rt.mu.Lock()
	threads := rt.threads
	freq := rt.freqGHz
	sched := rt.schedule
	iter := rt.iters[w.Name]
	rt.iters[w.Name] = iter + 1
	hooks := append([]Hook(nil), rt.hooks...)
	rngFor := rt.rngFor
	rt.mu.Unlock()

	for _, h := range hooks {
		h.OnRegionStart(w.Name, threads, freq)
	}

	// Dynamic scheduling: more bookkeeping per barrier, partial relief
	// of the serial tail. Modeled by perturbing the workload before it
	// reaches the machine.
	adjusted := w
	if sched == ScheduleDynamic {
		serial := 1 - w.ParFrac
		adjusted.ParFrac = 1 - serial*(1-dynamicImbalanceRelief)
		if adjusted.ParFrac > 0.999 {
			adjusted.ParFrac = 0.999
		}
	}

	cfg := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: freq, Threads: threads, GPUFreqGHz: apu.MinGPUFreq()}
	var exec apu.Execution
	var err error
	if rngFor != nil {
		exec, err = rt.machine.RunNoisy(adjusted, cfg, rngFor(w.Name, threads*1000+int(freq*100), iter))
	} else {
		exec, err = rt.machine.Run(adjusted, cfg)
	}
	if err != nil {
		return nil, err
	}
	if sched == ScheduleDynamic {
		extra := exec.SyncTimeSec * (dynamicOverheadFactor - 1)
		exec.SyncTimeSec += extra
		exec.TimeSec += extra
	}

	rt.mu.Lock()
	start := rt.now
	rt.now += exec.TimeSec
	end := rt.now
	rt.mu.Unlock()

	r := &Region{
		Name: w.Name, Threads: threads, FreqGHz: freq, Schedule: sched,
		StartAt: start, EndAt: end, Execution: exec, Iteration: iter,
	}
	rt.mu.Lock()
	rt.regions = append(rt.regions, r)
	rt.mu.Unlock()
	for _, h := range hooks {
		h.OnRegionEnd(r)
	}
	return r, nil
}

// Regions returns the recorded region history.
func (rt *Runtime) Regions() []*Region {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*Region(nil), rt.regions...)
}
