package omp

import (
	"testing"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

func testWorkload() apu.Workload {
	return kernels.Instantiate("SMC", kernels.Suite()[2].Kernels[0], "Default").Workload
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" {
		t.Fatal("schedule strings")
	}
}

func TestParallelForBasics(t *testing.T) {
	rt := NewRuntime(nil)
	r, err := rt.ParallelFor(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads != apu.NumCores || r.FreqGHz != apu.MaxCPUFreq() {
		t.Errorf("defaults: %d threads @ %v GHz", r.Threads, r.FreqGHz)
	}
	if r.Duration() <= 0 || r.EndAt != rt.Now() {
		t.Errorf("region timing: %+v", r)
	}
	if r.Execution.Config.Device != apu.CPUDevice {
		t.Error("OpenMP region ran off-CPU")
	}
	if len(rt.Regions()) != 1 {
		t.Error("region not recorded")
	}
}

func TestParallelForValidatesWorkload(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.ParallelFor(apu.Workload{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestSetNumThreads(t *testing.T) {
	rt := NewRuntime(nil)
	if err := rt.SetNumThreads(2); err != nil {
		t.Fatal(err)
	}
	r, err := rt.ParallelFor(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads != 2 {
		t.Errorf("threads = %d", r.Threads)
	}
	if err := rt.SetNumThreads(0); err == nil {
		t.Error("0 threads accepted")
	}
	if err := rt.SetNumThreads(apu.NumCores + 1); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestSetFrequency(t *testing.T) {
	rt := NewRuntime(nil)
	if err := rt.SetFrequency(1.4); err != nil {
		t.Fatal(err)
	}
	r, _ := rt.ParallelFor(testWorkload())
	if r.FreqGHz != 1.4 {
		t.Errorf("freq = %v", r.FreqGHz)
	}
	if err := rt.SetFrequency(2.5); err == nil {
		t.Error("unknown frequency accepted")
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	w := testWorkload()
	rt := NewRuntime(nil)
	_ = rt.SetNumThreads(1)
	r1, err := rt.ParallelFor(w)
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.SetNumThreads(4)
	r4, err := rt.ParallelFor(w)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Duration() >= r1.Duration() {
		t.Errorf("4 threads (%v) not faster than 1 (%v)", r4.Duration(), r1.Duration())
	}
}

func TestDynamicScheduleTradeoff(t *testing.T) {
	// Dynamic scheduling must cost more sync time but recover part of
	// the serial tail for poorly-balanced kernels.
	w := testWorkload()
	w.ParFrac = 0.6 // imbalanced
	rtS := NewRuntime(nil)
	rS, err := rtS.ParallelFor(w)
	if err != nil {
		t.Fatal(err)
	}
	rtD := NewRuntime(nil)
	rtD.SetSchedule(ScheduleDynamic)
	rD, err := rtD.ParallelFor(w)
	if err != nil {
		t.Fatal(err)
	}
	if rD.Execution.SyncTimeSec <= rS.Execution.SyncTimeSec {
		t.Error("dynamic schedule should cost more synchronization")
	}
	if rD.Duration() >= rS.Duration() {
		t.Error("dynamic schedule should win overall for an imbalanced kernel")
	}
}

type countHook struct {
	starts, ends int
	lastThreads  int
}

func (h *countHook) OnRegionStart(_ string, threads int, _ float64) {
	h.starts++
	h.lastThreads = threads
}
func (h *countHook) OnRegionEnd(*Region) { h.ends++ }

func TestHooks(t *testing.T) {
	rt := NewRuntime(nil)
	h := &countHook{}
	rt.AddHook(h)
	_ = rt.SetNumThreads(3)
	if _, err := rt.ParallelFor(testWorkload()); err != nil {
		t.Fatal(err)
	}
	if h.starts != 1 || h.ends != 1 || h.lastThreads != 3 {
		t.Errorf("hook: %+v", h)
	}
}

func TestIterationNumbersPerKernel(t *testing.T) {
	rt := NewRuntime(nil)
	w := testWorkload()
	for i := 0; i < 3; i++ {
		r, err := rt.ParallelFor(w)
		if err != nil {
			t.Fatal(err)
		}
		if r.Iteration != i {
			t.Errorf("iteration %d labeled %d", i, r.Iteration)
		}
	}
}

func TestNoiseDeterministic(t *testing.T) {
	mk := func() float64 {
		rt := NewRuntime(nil)
		rt.SetNoise(kernels.IterationRNG)
		r, err := rt.ParallelFor(testWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return r.Duration()
	}
	if mk() != mk() {
		t.Error("noisy regions not reproducible")
	}
}

func TestVirtualClockAccumulates(t *testing.T) {
	rt := NewRuntime(nil)
	w := testWorkload()
	var sum float64
	for i := 0; i < 3; i++ {
		r, err := rt.ParallelFor(w)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.Duration()
	}
	if diff := rt.Now() - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("clock %v != sum of durations %v", rt.Now(), sum)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	rt := NewRuntime(nil)
	w := testWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rt.ParallelFor(w); err != nil {
			b.Fatal(err)
		}
	}
}
