package metrics

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("acsel_test_quantile_seconds", "quantile fixture", LinearBuckets(1, 1, 10))

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should estimate NaN")
	}

	// 100 observations uniform over (0.5, 1.5, ..., 9.5]: one per bucket
	// decile. The interpolated quantiles land on bucket boundaries.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i)/10 + 0.05)
	}
	cases := []struct{ q, lo, hi float64 }{
		{0, 0, 1},
		{0.25, 2, 3},
		{0.5, 4, 6},
		{0.95, 9, 10},
		{1, 9, 10},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	// Monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	// Out-of-range q clamps instead of exploding.
	if v := h.Quantile(-3); v < 0 || v > 1 {
		t.Errorf("Quantile(-3) = %v", v)
	}
	if v := h.Quantile(7); v < 9 || v > 10 {
		t.Errorf("Quantile(7) = %v", v)
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}

	// Values beyond the last finite bound clamp to it.
	h2 := reg.NewHistogram("acsel_test_overflow_seconds", "overflow fixture", LinearBuckets(1, 1, 3))
	h2.Observe(50)
	h2.Observe(60)
	if v := h2.Quantile(0.99); v != 3 {
		t.Errorf("overflow quantile = %v, want clamp to 3", v)
	}
}
