// Package metrics is a stdlib-only, concurrency-safe metrics registry
// for the runtime observability layer: counters, gauges, and
// fixed-bucket histograms, with labeled ("vec") variants, Prometheus
// text exposition, and a deterministic JSON snapshot.
//
// The paper's whole contribution is making good decisions from
// measurements; this package turns the runtime system itself into a
// measured subject. Record paths are allocation-free and lock-free:
// counters and gauges are single atomic words (float64 bits), histogram
// observation is a binary search plus three atomic adds. Label lookup
// (With) takes a read lock and may allocate on first use of a label
// combination, so hot paths should hold the returned child handle.
//
// Non-finite inputs are dropped at the door: a NaN or infinite
// observation would poison sums and serialize badly, so Add/Set/Observe
// silently ignore them (and counters ignore negative increments, which
// would break monotonicity). Telemetry must never be the thing that
// crashes the system it watches.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the metric families' types.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind in Prometheus TYPE-line vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TimeBuckets is the default bucket layout for wall-time histograms, in
// seconds. It spans the repo's realistic range: sub-millisecond kernel
// iterations up to multi-second characterization phases.
var TimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// PowerBuckets is the default bucket layout for wattage histograms,
// spanning the simulated APU's 5–60 W package range.
var PowerBuckets = LinearBuckets(5, 5, 12)

// LinearBuckets returns count buckets of the given width starting at
// start: start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns count buckets growing geometrically from
// start by factor.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// finite reports whether v is an ordinary float64.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// addFloat atomically adds delta to the float64 stored as bits in word.
func addFloat(word *atomic.Uint64, delta float64) {
	for {
		old := word.Load()
		upd := math.Float64bits(math.Float64frombits(old) + delta)
		if word.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain counters from a Registry.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative and non-finite deltas are
// ignored: counters are monotone by contract.
func (c *Counter) Add(v float64) {
	if v < 0 || !finite(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Non-finite values are ignored.
func (g *Gauge) Set(v float64) {
	if !finite(v) {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative). Non-finite
// deltas are ignored.
func (g *Gauge) Add(delta float64) {
	if !finite(delta) {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// export, Prometheus-style, with an implicit +Inf bucket.
type Histogram struct {
	upper   []float64 // sorted finite upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. Non-finite observations are ignored.
func (h *Histogram) Observe(v float64) {
	if !finite(v) {
		return
	}
	// First bucket whose upper bound is >= v (le semantics); values
	// above every bound land in the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Time starts a wall-clock phase timer; the returned stop function
// observes the elapsed seconds. Use for named pipeline stages:
//
//	stop := phaseSeconds.With("characterize").Time()
//	... work ...
//	stop()
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation within the containing bucket, the standard
// fixed-bucket estimator. Values in the trailing +Inf bucket clamp to
// the last finite bound (the histogram cannot resolve beyond it).
// Returns NaN for an empty histogram or non-finite q.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			if i >= len(h.upper) {
				return lower
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (h.upper[i]-lower)*frac
		}
		cum += c
		if i < len(h.upper) {
			lower = h.upper[i]
		}
	}
	return lower
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the finite upper bounds.
func (h *Histogram) Buckets() []float64 { return append([]float64(nil), h.upper...) }

// metric is the union of the three concrete types inside a family.
type metric struct {
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family is one named metric with its labeled children. A plain
// (unlabeled) metric is a family with a single child under the empty
// key.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]metric
}

// labelSep joins label values into child keys; it cannot occur in UTF-8
// text, so joined keys are unambiguous.
const labelSep = "\xff"

func (f *family) child(values []string) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m = metric{}
	switch f.kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.histogram = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = m
	return m
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for one label-value combination, creating it
// on first use. Hold the handle on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.child(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.child(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.child(values).histogram }

// Registry owns a set of metric families. The zero value is not usable;
// call NewRegistry. Default is the process-wide registry the
// instrumented packages record into.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Default is the process-wide registry; the package-level constructors
// register into it.
var Default = NewRegistry()

// ValidName reports whether name is an acceptable metric name:
// snake_case ASCII — lowercase letters and digits in underscore-joined
// runs, starting with a letter, no empty runs. Unit-suffix conventions
// (_total, _seconds, _watts, ...) are enforced statically by the
// acsel-lint metricname analyzer.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, run := range strings.Split(name, "_") {
		if run == "" {
			return false
		}
		for j, r := range run {
			switch {
			case r >= 'a' && r <= 'z':
			case r >= '0' && r <= '9':
				if i == 0 && j == 0 {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// register returns the family for (name, kind, help, labels, buckets),
// creating it if new. Re-registering an identical specification returns
// the existing family — package-level metric vars may be re-evaluated
// by tests — while a conflicting specification panics: two meanings for
// one name is a bug worth failing loudly over.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q (want snake_case)", name))
	}
	for _, l := range labels {
		if !ValidName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	if kind == KindHistogram {
		buckets = normalizeBuckets(name, buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: map[string]metric{},
	}
	if len(labels) == 0 {
		// Materialize the single child now so the family exports even
		// before its first record — a registered-but-silent metric at 0
		// is signal, an absent one is a hole in the inventory.
		f.mu.Lock()
		f.children[""] = metricFor(f)
		f.mu.Unlock()
	}
	r.fams[name] = f
	return f
}

func metricFor(f *family) metric {
	switch f.kind {
	case KindCounter:
		return metric{counter: &Counter{}}
	case KindGauge:
		return metric{gauge: &Gauge{}}
	default:
		return metric{histogram: &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}}
	}
}

// normalizeBuckets sorts, dedupes, and validates histogram bounds,
// dropping a trailing +Inf (it is implicit).
func normalizeBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	if math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1]
	}
	dst := out[:0]
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram %q has non-finite bucket bound", name))
		}
		if i > 0 && b == out[i-1] { //lint:ignore floatcmp bucket dedupe wants exact bound identity
			continue
		}
		dst = append(dst, b)
	}
	if len(dst) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q has no finite buckets", name))
	}
	return dst
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //lint:ignore floatcmp bucket layouts compare by exact identity
			return false
		}
	}
	return true
}

// NewCounter registers (or finds) a plain counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).child(nil).counter
}

// NewCounterVec registers (or finds) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil)}
}

// NewGauge registers (or finds) a plain gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).child(nil).gauge
}

// NewGaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil)}
}

// NewHistogram registers (or finds) a plain histogram with the given
// bucket upper bounds (+Inf implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets).child(nil).histogram
}

// NewHistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, buckets)}
}

// NewCounter registers a plain counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounterVec registers a labeled counter family in Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGauge registers a plain gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeVec registers a labeled gauge family in Default.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// NewHistogram registers a plain histogram in Default.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family in Default.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, buckets, labels...)
}
