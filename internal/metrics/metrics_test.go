package metrics

import (
	"bytes"
	"flag"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-1)          // monotone: ignored
	c.Add(math.NaN())  // non-finite: ignored
	c.Add(math.Inf(1)) // non-finite: ignored
	c.Add(0)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Set(math.NaN())  // ignored
	g.Add(math.Inf(1)) // ignored
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge = %v, want -2", got)
	}
}

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// semantics: a value exactly on a bound lands in that bucket, a value
// above every bound lands only in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("bound_seconds", "boundary test", []float64{1, 2, 5})
	vals := []float64{0.5, 1, 1.0000001, 2, 5, 6}
	wantSum := 0.0
	for _, v := range vals {
		h.Observe(v)
		wantSum += v
	}
	h.Observe(math.NaN())  // dropped
	h.Observe(math.Inf(1)) // dropped
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6 (non-finite observations must be dropped)", got)
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	snap, ok := r.TakeSnapshot().Family("bound_seconds")
	if !ok {
		t.Fatal("family missing from snapshot")
	}
	buckets := snap.Metrics[0].Buckets
	want := []struct {
		le    string
		count uint64
	}{
		{"1", 2},    // 0.5, 1
		{"2", 4},    // + 1.0000001, 2
		{"5", 5},    // + 5
		{"+Inf", 6}, // + 6
	}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %+v", buckets)
	}
	for i, w := range want {
		if buckets[i].LE != w.le || buckets[i].Count != w.count {
			t.Errorf("bucket %d = {%s %d}, want {%s %d}", i, buckets[i].LE, buckets[i].Count, w.le, w.count)
		}
	}
}

func TestNormalizeBuckets(t *testing.T) {
	r := NewRegistry()
	// Unsorted with a duplicate and a trailing +Inf: normalized layout
	// must be sorted, deduped, and finite.
	h := r.NewHistogram("norm_seconds", "", []float64{5, 1, 5, math.Inf(1), 2})
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("buckets = %v", got)
	}
	for name, buckets := range map[string][]float64{
		"empty_seconds": {},
		"nan_seconds":   {1, math.NaN()},
		"inf_seconds":   {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad bucket layout accepted", name)
				}
			}()
			r.NewHistogram(name, "", buckets)
		}()
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"acsel_rts_steps_total": true,
		"a":                     true,
		"a1_b2":                 true,
		"":                      false,
		"Upper_case":            false,
		"double__underscore":    false,
		"_leading":              false,
		"trailing_":             false,
		"1starts_with_digit":    false,
		"has-dash":              false,
		"unicode_é":             false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegistrationIdempotentAndConflicting(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("reg_total", "help")
	c1.Add(7)
	// Identical re-registration returns the same underlying metric.
	c2 := r.NewCounter("reg_total", "help")
	if c1 != c2 {
		t.Error("identical re-registration produced a distinct counter")
	}
	if c2.Value() != 7 {
		t.Errorf("re-registered counter lost state: %v", c2.Value())
	}
	for name, reg := range map[string]func(){
		"kind":    func() { r.NewGauge("reg_total", "help") },
		"help":    func() { r.NewCounter("reg_total", "different help") },
		"labels":  func() { r.NewCounterVec("reg_total", "help", "site") },
		"badname": func() { r.NewCounter("Bad-Name", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("conflicting re-registration (%s) did not panic", name)
				}
			}()
			reg()
		}()
	}
}

func TestPlainFamiliesExportAtZero(t *testing.T) {
	// A registered-but-never-recorded plain metric must still appear in
	// exports: silence at zero is signal, absence is an inventory hole.
	r := NewRegistry()
	r.NewCounter("quiet_total", "never touched")
	r.NewHistogram("quiet_seconds", "never touched", []float64{1})
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"quiet_total 0\n", "quiet_seconds_count 0\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

// TestPromTextConformance pins the full text exposition of a small
// registry: HELP/TYPE lines, label escaping, cumulative buckets,
// _sum/_count, and deterministic family and child ordering.
func TestPromTextConformance(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("conf_requests_total", "Requests.\nBy site.", "site")
	cv.With(`a\b"c`).Add(3)
	cv.With("plain").Add(1)
	g := r.NewGauge("conf_level_ratio", "A gauge.")
	g.Set(0.5)
	h := r.NewHistogram("conf_wait_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP conf_level_ratio A gauge.
# TYPE conf_level_ratio gauge
conf_level_ratio 0.5
# HELP conf_requests_total Requests.\nBy site.
# TYPE conf_requests_total counter
conf_requests_total{site="a\\b\"c"} 3
conf_requests_total{site="plain"} 1
# HELP conf_wait_seconds A histogram.
# TYPE conf_wait_seconds histogram
conf_wait_seconds_bucket{le="0.1"} 1
conf_wait_seconds_bucket{le="1"} 2
conf_wait_seconds_bucket{le="+Inf"} 3
conf_wait_seconds_sum 2.55
conf_wait_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJSONSnapshotGolden locks the exact JSON snapshot format against
// testdata/snapshot.golden.json (run with -update to rewrite it).
func TestJSONSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("golden_events_total", "Labeled counter.", "kind").With("alpha").Add(4)
	r.NewGauge("golden_depth_ratio", "Plain gauge.").Set(0.25)
	h := r.NewHistogram("golden_wait_seconds", "Plain histogram.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestConcurrentRecordAndExport hammers every metric type from many
// goroutines while exports run concurrently; final totals must be
// exact. Run under -race this is also the data-race proof for the
// lock-free record paths.
func TestConcurrentRecordAndExport(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "")
	cv := r.NewCounterVec("conc_site_total", "", "site")
	g := r.NewGauge("conc_ratio", "")
	h := r.NewHistogramVec("conc_wait_seconds", "", []float64{0.5, 1, 2}, "phase")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := []string{"a", "b", "c"}[w%3]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(site).Add(2)
				g.Add(1)
				h.With("run").Observe(float64(i%4) * 0.6)
			}
		}(w)
	}
	// Concurrent readers: exports must see consistent intermediate
	// state without disturbing the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := r.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	total := float64(workers * perWorker)
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %v", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %v", got, total)
	}
	var sites float64
	for _, s := range []string{"a", "b", "c"} {
		sites += cv.With(s).Value()
	}
	if want := 2 * total; sites != want {
		t.Errorf("labeled counters sum to %v, want %v", sites, want)
	}
	if got := h.With("run").Count(); got != uint64(total) {
		t.Errorf("histogram count = %d, want %d", uint64(total), got)
	}
}

func TestHistogramTimer(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("timer_seconds", "", TimeBuckets)
	stop := h.Time()
	stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 0 {
		t.Errorf("negative elapsed time %v", s)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity accepted")
		}
	}()
	cv.With("only-one")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(5, 5, 3)
	if len(lin) != 3 || lin[0] != 5 || lin[1] != 10 || lin[2] != 15 {
		t.Errorf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if len(exp) != 4 || exp[0] != 1 || exp[3] != 8 {
		t.Errorf("exponential = %v", exp)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "served counter").Add(9)
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "served_total 9") {
		t.Errorf("/metrics body:\n%s", buf.String())
	}

	jr, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	buf.Reset()
	if _, err := buf.ReadFrom(jr.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"served_total"`) {
		t.Errorf("/metrics.json body:\n%s", buf.String())
	}

	pr, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("pprof status %d", pr.StatusCode)
	}
}

func TestDumpFile(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dumped_total", "").Add(1)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := r.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"dumped_total"`) {
		t.Errorf("dump:\n%s", b)
	}
	if err := r.DumpFile(filepath.Join(path, "not-a-dir", "x.json")); err == nil {
		t.Error("impossible path accepted")
	}
}

func TestDefaultRegistryWrappers(t *testing.T) {
	// The package-level constructors must register into Default; names
	// are prefixed to avoid colliding with real instrumented families.
	c := NewCounter("wrapper_smoke_total", "wrapper test")
	c.Inc()
	NewCounterVec("wrapper_smoke_site_total", "wrapper test", "site").With("x").Inc()
	NewGauge("wrapper_smoke_ratio", "wrapper test").Set(1)
	NewGaugeVec("wrapper_smoke_depth_ratio", "wrapper test", "site").With("x").Set(2)
	NewHistogram("wrapper_smoke_seconds", "wrapper test", TimeBuckets).Observe(0.01)
	NewHistogramVec("wrapper_smoke_wait_seconds", "wrapper test", TimeBuckets, "phase").With("p").Observe(0.01)
	snap := Default.TakeSnapshot()
	for _, name := range []string{
		"wrapper_smoke_total", "wrapper_smoke_site_total", "wrapper_smoke_ratio",
		"wrapper_smoke_depth_ratio", "wrapper_smoke_seconds", "wrapper_smoke_wait_seconds",
	} {
		if _, ok := snap.Family(name); !ok {
			t.Errorf("%s missing from Default snapshot", name)
		}
	}
}
