// HTTP surface: a live /metrics endpoint in Prometheus text format, a
// /metrics.json snapshot, and the net/http/pprof profile handlers —
// the scrape-and-profile loop every production power-capping service
// in the related literature treats as table stakes.
package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// The connection died mid-write; nothing useful to do.
			return
		}
	})
}

// JSONHandler serves the registry's JSON snapshot.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			return
		}
	})
}

// NewMux builds the observability mux: /metrics (Prometheus text),
// /metrics.json (snapshot), and /debug/pprof/* (live Go profiles).
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP listener on addr exposing the registry's mux.
// It returns the bound address (useful with ":0") and a close function
// that stops the listener. The server runs until closed; serve errors
// after shutdown are expected and discarded.
func (r *Registry) Serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.NewMux()}
	go func() {
		// ErrServerClosed (or a post-close accept error) is the normal
		// end of life for this listener.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// Serve starts the Default registry's observability listener.
func Serve(addr string) (string, func(), error) { return Default.Serve(addr) }

// DumpFile writes the registry's JSON snapshot to path (the
// -metrics-dump contract: headless runs keep their telemetry).
func (r *Registry) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		// The write error is the interesting one; close best-effort.
		_ = f.Close()
		return err
	}
	return f.Close()
}

// DumpFile snapshots the Default registry to path.
func DumpFile(path string) error { return Default.DumpFile(path) }
