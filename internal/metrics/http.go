// HTTP surface: a live /metrics endpoint in Prometheus text format, a
// /metrics.json snapshot, and the net/http/pprof profile handlers —
// the scrape-and-profile loop every production power-capping service
// in the related literature treats as table stakes.
package metrics

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// Handler serves the registry in Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// The connection died mid-write; nothing useful to do.
			return
		}
	})
}

// JSONHandler serves the registry's JSON snapshot.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			return
		}
	})
}

// NewMux builds the observability mux: /metrics (Prometheus text),
// /metrics.json (snapshot), and /debug/pprof/* (live Go profiles).
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Timeouts for the observability listener. ReadHeaderTimeout is the
// slowloris guard (a client that trickles header bytes holds a
// connection, not the server); IdleTimeout reaps keep-alive
// connections between scrapes. Read/write timeouts stay unset because
// /debug/pprof/profile legitimately streams for tens of seconds.
const (
	readHeaderTimeout = 10 * time.Second
	idleTimeout       = 2 * time.Minute
	shutdownTimeout   = 5 * time.Second
)

// ListenAndServe starts a hardened HTTP listener on addr serving h.
// It returns the bound address (useful with ":0") and a close function
// that drains in-flight requests via Shutdown under a bounded context
// — falling back to a hard Close if draining exceeds the bound — and
// reports any shutdown error instead of swallowing it.
func ListenAndServe(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	go func() {
		// ErrServerClosed (or a post-close accept error) is the normal
		// end of life for this listener.
		_ = srv.Serve(ln)
	}()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			// A request outlived the drain budget; cut it off.
			return srv.Close()
		}
		return err
	}
	return ln.Addr().String(), stop, nil
}

// Serve starts an HTTP listener on addr exposing the registry's mux.
// See ListenAndServe for the timeout and shutdown contract.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	return ListenAndServe(addr, r.NewMux())
}

// Serve starts the Default registry's observability listener.
func Serve(addr string) (string, func() error, error) { return Default.Serve(addr) }

// DumpFile writes the registry's JSON snapshot to path (the
// -metrics-dump contract: headless runs keep their telemetry).
func (r *Registry) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		// The write error is the interesting one; close best-effort.
		_ = f.Close()
		return err
	}
	return f.Close()
}

// DumpFile snapshots the Default registry to path.
func DumpFile(path string) error { return Default.DumpFile(path) }
