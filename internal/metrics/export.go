// Prometheus text exposition and the deterministic JSON snapshot.
//
// Both exporters walk the registry under read locks, sort families by
// name and children by label values, and format floats with shortest
// exact precision — two exports of the same registry state are
// byte-identical, which is what makes the JSON snapshot golden-testable
// and CI-assertable.
package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// formatValue renders a sample value in OpenMetrics float syntax.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the text exposition format:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortedFamilies returns the registry's families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns one family's child keys in deterministic
// (label-value) order.
func (f *family) sortedChildren() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// labelPairs renders `name="value"` pairs for one child key, plus any
// extra pairs (the histogram `le` bound), inside braces. Empty when
// there are no pairs at all.
func labelPairs(labels []string, key string, extra ...string) string {
	var parts []string
	if len(labels) > 0 {
		values := strings.Split(key, labelSep)
		for i, l := range labels {
			parts = append(parts, l+`="`+escapeLabel(values[i])+`"`)
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, extra[i]+`="`+escapeLabel(extra[i+1])+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm writes the registry in Prometheus/OpenMetrics text
// exposition format (version 0.0.4): HELP and TYPE lines per family,
// cumulative le-buckets plus _sum and _count for histograms.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if _, err := bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n"); err != nil {
			return err
		}
		if _, err := bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n"); err != nil {
			return err
		}
		for _, key := range f.sortedChildren() {
			f.mu.RLock()
			m := f.children[key]
			f.mu.RUnlock()
			switch f.kind {
			case KindCounter, KindGauge:
				v := 0.0
				if f.kind == KindCounter {
					v = m.counter.Value()
				} else {
					v = m.gauge.Value()
				}
				if _, err := bw.WriteString(f.name + labelPairs(f.labels, key) + " " + formatValue(v) + "\n"); err != nil {
					return err
				}
			case KindHistogram:
				h := m.histogram
				var cum uint64
				for i, bound := range h.upper {
					cum += h.counts[i].Load()
					line := f.name + "_bucket" + labelPairs(f.labels, key, "le", formatValue(bound)) +
						" " + strconv.FormatUint(cum, 10) + "\n"
					if _, err := bw.WriteString(line); err != nil {
						return err
					}
				}
				total := h.Count()
				if _, err := bw.WriteString(f.name + "_bucket" + labelPairs(f.labels, key, "le", "+Inf") +
					" " + strconv.FormatUint(total, 10) + "\n"); err != nil {
					return err
				}
				if _, err := bw.WriteString(f.name + "_sum" + labelPairs(f.labels, key) + " " + formatValue(h.Sum()) + "\n"); err != nil {
					return err
				}
				if _, err := bw.WriteString(f.name + "_count" + labelPairs(f.labels, key) + " " + strconv.FormatUint(total, 10) + "\n"); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Snapshot is the JSON form of a registry's complete state.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Type    string           `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child (label combination) of a family. Value is
// set for counters and gauges; Count/Sum/Buckets for histograms.
type MetricSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket. LE is the upper
// bound rendered as text so the implicit "+Inf" bucket survives JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Family returns the named family snapshot (ok=false when absent).
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// TakeSnapshot captures the registry's current state in deterministic
// order.
func (r *Registry) TakeSnapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, key := range f.sortedChildren() {
			f.mu.RLock()
			m := f.children[key]
			f.mu.RUnlock()
			ms := MetricSnapshot{}
			if len(f.labels) > 0 {
				ms.Labels = map[string]string{}
				values := strings.Split(key, labelSep)
				for i, l := range f.labels {
					ms.Labels[l] = values[i]
				}
			}
			switch f.kind {
			case KindCounter:
				v := m.counter.Value()
				ms.Value = &v
			case KindGauge:
				v := m.gauge.Value()
				ms.Value = &v
			case KindHistogram:
				h := m.histogram
				count := h.Count()
				sum := h.Sum()
				ms.Count = &count
				ms.Sum = &sum
				var cum uint64
				for i, bound := range h.upper {
					cum += h.counts[i].Load()
					ms.Buckets = append(ms.Buckets, BucketSnapshot{LE: formatValue(bound), Count: cum})
				}
				ms.Buckets = append(ms.Buckets, BucketSnapshot{LE: "+Inf", Count: count})
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}
