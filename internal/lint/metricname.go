package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMetricName enforces the observability layer's naming contract
// at the metrics-constructor call sites: names are snake_case, counters
// end in _total (Prometheus monotone-counter convention), and gauges
// and histograms carry an explicit unit suffix (_seconds, _watts, ...).
// A dashboard query against a misnamed family fails silently — the
// scrape succeeds, the panel is just empty — so the mistake belongs at
// compile review time, not at 2 a.m.
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc:  "enforce snake_case metric names with _total/unit suffixes at metrics constructors",
	Run:  runMetricName,
}

// metricCtors maps the constructor names of acsel/internal/metrics to
// the kind they build and the argument index where label names start
// (-1 when the constructor takes no labels).
var metricCtors = map[string]struct {
	kind      string
	labelsIdx int
}{
	"NewCounter":      {"counter", -1},
	"NewCounterVec":   {"counter", 2},
	"NewGauge":        {"gauge", -1},
	"NewGaugeVec":     {"gauge", 2},
	"NewHistogram":    {"histogram", -1},
	"NewHistogramVec": {"histogram", 3},
}

// metricUnitSuffixes are the accepted trailing units for gauges and
// histograms, mirroring the families the repo actually measures.
var metricUnitSuffixes = []string{
	"_seconds", "_watts", "_joules", "_bytes",
	"_ratio", "_celsius", "_hertz", "_volts",
}

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
				return true
			}
			ctor, ok := metricCtors[fn.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}
			if name, ok := constString(pass, call.Args[0]); ok {
				checkMetricName(pass, call.Args[0].Pos(), ctor.kind, name)
			}
			if ctor.labelsIdx >= 0 {
				for _, arg := range call.Args[min(ctor.labelsIdx, len(call.Args)):] {
					if label, ok := constString(pass, arg); ok && !snakeCase(label) {
						pass.Reportf(arg.Pos(), "label %q is not snake_case", label)
					}
				}
			}
			return true
		})
	}
}

// checkMetricName applies the kind-specific rules to one constant name.
func checkMetricName(pass *Pass, pos token.Pos, kind, name string) {
	if !snakeCase(name) {
		pass.Reportf(pos, "metric name %q is not snake_case (lowercase [a-z0-9_], starting with a letter)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	default:
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "%s %q must not end in _total (that suffix is reserved for counters)", kind, name)
			return
		}
		if !hasUnitSuffix(name) {
			pass.Reportf(pos, "%s %q needs a unit suffix (one of %s)", kind, name, strings.Join(metricUnitSuffixes, ", "))
		}
	}
}

// calleeFunc resolves the called function for both selector calls
// (metrics.NewCounter, reg.NewCounterVec) and bare in-package calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// constString extracts a compile-time string value; dynamic names
// cannot be checked statically and are skipped.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// snakeCase reports whether s is lowercase snake_case starting with a
// letter, with no empty underscore runs (mirrors metrics.ValidName).
func snakeCase(s string) bool {
	if s == "" {
		return false
	}
	for i, run := range strings.Split(s, "_") {
		if run == "" {
			return false
		}
		for j, r := range run {
			switch {
			case r >= 'a' && r <= 'z':
			case r >= '0' && r <= '9':
				if i == 0 && j == 0 {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

func hasUnitSuffix(name string) bool {
	for _, suf := range metricUnitSuffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}
