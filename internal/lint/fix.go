package lint

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
)

// The suggested-fix applier behind `acsel-lint -fix`. Edits are plain
// byte-range replacements resolved at report time, so applying them
// needs no re-parse: group by file, sort descending, splice, gofmt,
// write atomically. Running -fix twice is a no-op by construction —
// the first pass removes the findings that carried the fixes, so the
// second pass has no edits to make (fix_test.go asserts this).

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	Applied      int      // fixes applied
	Skipped      int      // fixes dropped because their edits overlapped an earlier fix
	ChangedFiles []string // files rewritten, sorted
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one. Conflicting fixes (overlapping edits in the same file)
// are applied first-come in diagnostic order; later overlappers are
// skipped and counted, never half-applied. Each changed file is run
// through gofmt and replaced atomically (temp file + rename).
func ApplyFixes(diags []Diagnostic) (FixResult, error) {
	var res FixResult

	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)

	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		if len(fix.Edits) == 0 {
			continue
		}
		// All-or-nothing per fix: check every edit against the already
		// accepted set for its file.
		conflict := false
		for _, e := range fix.Edits {
			for _, have := range perFile[e.Start.Filename] {
				if e.Start.Offset < have.end && have.start < e.End.Offset ||
					e.Start.Offset == have.start && e.End.Offset == have.end {
					conflict = true
				}
			}
		}
		if conflict {
			res.Skipped++
			continue
		}
		for _, e := range fix.Edits {
			if e.End.Offset < e.Start.Offset || e.Start.Filename == "" || e.Start.Filename != e.End.Filename {
				return res, fmt.Errorf("lint: malformed suggested fix edit in %s", d.Pos.Filename)
			}
			perFile[e.Start.Filename] = append(perFile[e.Start.Filename], edit{start: e.Start.Offset, end: e.End.Offset, text: e.NewText})
		}
		res.Applied++
	}

	var files []string
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, file := range files {
		edits := perFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			return res, fmt.Errorf("lint: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.end > len(src) {
				return res, fmt.Errorf("lint: fix edit past end of %s (stale positions?)", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return res, fmt.Errorf("lint: fixed %s does not parse: %w", file, err)
		}
		if err := writeFileAtomic(file, formatted); err != nil {
			return res, err
		}
		res.ChangedFiles = append(res.ChangedFiles, file)
	}
	return res, nil
}

// writeFileAtomic replaces path via a temp file in the same directory,
// preserving the original file mode.
func writeFileAtomic(path string, data []byte) error {
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".fix*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()           //lint:ignore errcheck already failing
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	if err := os.Chmod(tmp.Name(), mode); err != nil {
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	return os.Rename(tmp.Name(), path)
}
