package lint

import (
	"go/ast"
)

// Path queries over the CFG shared by ctxcancel and goroleak: "can the
// function exit without doing X after this point".

// nodeLocs indexes every CFG node to its (block, index) position.
func nodeLocs(cfg *CFG) map[ast.Node]nodeLoc {
	locs := make(map[ast.Node]nodeLoc)
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			locs[n] = nodeLoc{block: b, index: i}
		}
	}
	return locs
}

// existsPathAvoiding reports whether control can flow from just after
// (from, fromIdx) to the CFG exit without passing any node for which
// stop returns true. It is the primitive behind "some path leaks" /
// "every path cancels" questions.
func existsPathAvoiding(cfg *CFG, from *Block, fromIdx int, stop func(ast.Node) bool) bool {
	// Finish the starting block first.
	for _, n := range from.Nodes[fromIdx:] {
		if stop(n) {
			return false
		}
	}
	if from == cfg.Exit {
		return true
	}
	seen := map[*Block]bool{from: true}
	stack := append([]*Block{}, from.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == cfg.Exit {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		clean := true
		for _, n := range b.Nodes {
			if stop(n) {
				clean = false
				break
			}
		}
		if clean {
			stack = append(stack, b.Succs...)
		}
	}
	return false
}

// nodeMentionsAsArg reports whether obj appears as a plain argument to
// any call within the node (shallow walk) — the conservative "someone
// else may consume this" escape hatch.
func nodeMentionsAsArg(pass *Pass, n ast.Node, objIs func(*ast.Ident) bool) bool {
	found := false
	walkShallowParts(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok || found {
			return
		}
		for _, arg := range call.Args {
			if id, isID := ast.Unparen(arg).(*ast.Ident); isID && objIs(id) {
				found = true
				return
			}
		}
	})
	return found
}
