package lint

import (
	"bytes"
	"path/filepath"
	"testing"
)

// Fixture: app's annotated root calls into lib; lib is callee-only.
const suiteCallerSrc = `package app

import "sandbox/lib"

//lint:deterministic
func Select(xs []int) int {
	best := 0
	for _, x := range xs {
		best = lib.Combine(best, x)
	}
	return best
}
`

const suiteCalleeCleanSrc = `package lib

func Combine(a, b int) int {
	if b > a {
		return b
	}
	return a
}
`

const suiteCalleeDirtySrc = `package lib

import "time"

func Combine(a, b int) int {
	if time.Now().UnixNano()%2 == 0 {
		return b
	}
	if b > a {
		return b
	}
	return a
}
`

// TestSuiteCacheCalleeEditInvalidates is the summary-closure
// regression test: module-analyzer keys hash the whole module, so an
// edit confined to the CALLEE package must invalidate the CALLER's
// cached diagnostics — stale entries keyed on the old summaries never
// survive.
func TestSuiteCacheCalleeEditInvalidates(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"app/app.go": suiteCallerSrc,
		"lib/lib.go": suiteCalleeCleanSrc,
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	suite, err := SuiteByName("puredet")
	if err != nil {
		t.Fatal(err)
	}

	diags, hit, err := RunSuiteCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if hit || len(diags) != 0 {
		t.Fatalf("first run: hit=%v diags=%v, want a clean miss", hit, diags)
	}
	if _, hit, err = RunSuiteCached(root, nil, suite, cacheDir); err != nil || !hit {
		t.Fatalf("unchanged rerun: hit=%v err=%v, want a hit", hit, err)
	}

	// Callee-only edit: app/ is untouched, but its cached verdict is now
	// wrong — the run must miss and surface the new walltime source.
	writeFile(t, root, "lib/lib.go", suiteCalleeDirtySrc)
	diags, hit, err = RunSuiteCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("callee edit did not invalidate the cached module result")
	}
	if len(diags) != 1 || diags[0].Check != "puredet" {
		t.Fatalf("diags = %v, want the walltime source reachable from app.Select", diags)
	}
}

// TestUnitCacheUnrelatedEditKeepsHit is the precision half of the
// closure design: unit-only keys hash the selected packages plus their
// import closure, so an edit to a package the selection never loads
// keeps the hit, while an edit to an imported dependency misses.
func TestUnitCacheUnrelatedEditKeepsHit(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"app/app.go":     suiteCallerSrc,
		"lib/lib.go":     suiteCalleeCleanSrc,
		"other/other.go": "package other\n\nfunc Alone() {}\n",
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	suite := Suite{Unit: All()}
	patterns := []string{"./app"}

	if _, hit, err := RunSuiteCached(root, patterns, suite, cacheDir); err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v, want a miss", hit, err)
	}
	if _, hit, err := RunSuiteCached(root, patterns, suite, cacheDir); err != nil || !hit {
		t.Fatalf("unchanged rerun: hit=%v err=%v, want a hit", hit, err)
	}

	// ./other is neither selected nor imported: editing it must not
	// disturb the key.
	writeFile(t, root, "other/other.go", "package other\n\nfunc Alone() {}\n\nfunc Extra() {}\n")
	if _, hit, err := RunSuiteCached(root, patterns, suite, cacheDir); err != nil || !hit {
		t.Fatalf("unrelated edit: hit=%v err=%v, want the hit to survive", hit, err)
	}

	// ./lib is in ./app's import closure: editing it must miss.
	writeFile(t, root, "lib/lib.go", suiteCalleeCleanSrc+"\nfunc Extra() {}\n")
	if _, hit, err := RunSuiteCached(root, patterns, suite, cacheDir); err != nil || hit {
		t.Fatalf("dependency edit: hit=%v err=%v, want a miss", hit, err)
	}
}

// TestCachedSARIFIdentity: a cache round trip relativizes and restores
// every position — anchor, suggested fixes, and call-path traces — so
// SARIF rendered from a cache hit is byte-identical to an uncached run.
func TestCachedSARIFIdentity(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"app/app.go": suiteCallerSrc,
		"lib/lib.go": suiteCalleeDirtySrc,
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	suite := FullSuite()

	direct, err := RunSuite(root, nil, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("fixture produced no findings; the identity check needs traces to compare")
	}
	var wantBuf bytes.Buffer
	if err := WriteSARIF(&wantBuf, root, direct, suite); err != nil {
		t.Fatal(err)
	}

	if _, hit, err := RunSuiteCached(root, nil, suite, cacheDir); err != nil || hit {
		t.Fatalf("priming run: hit=%v err=%v", hit, err)
	}
	cached, hit, err := RunSuiteCached(root, nil, suite, cacheDir)
	if err != nil || !hit {
		t.Fatalf("cached run: hit=%v err=%v", hit, err)
	}
	var gotBuf bytes.Buffer
	if err := WriteSARIF(&gotBuf, root, cached, suite); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("SARIF drifted across the cache:\nuncached:\n%s\ncached:\n%s", wantBuf.Bytes(), gotBuf.Bytes())
	}
}
