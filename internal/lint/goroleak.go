package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoroLeak guards the repository's goroutine discipline (see
// core.Characterize and eval.RunOnProfiles: semaphore-before-spawn,
// WaitGroup.Add before go). It reports three shapes:
//
//  1. a goroutine sending on (or receiving from) an unbuffered channel
//     while the spawning function has a control-flow path to return
//     that never performs the counterpart operation — the goroutine
//     blocks forever and leaks;
//  2. sync.WaitGroup.Add called inside the spawned goroutine, which
//     races with Wait in the parent;
//  3. a semaphore slot (buffered channel send paired with a deferred
//     receive) acquired inside the goroutine instead of before the go
//     statement, which lets the full fan-out materialize at once.
//
// Whether a channel is unbuffered is decided by reaching definitions —
// the make(chan T) that flows into the operation — and the "some path
// returns without receiving" question is CFG reachability, so the
// analyzer stays quiet on the codebase's correct worker pools.
var AnalyzerGoroLeak = &Analyzer{
	Name:    "goroleak",
	Doc:     "flag goroutines that can block forever on unbuffered channels, in-goroutine WaitGroup.Add, and in-goroutine semaphore acquisition",
	Version: 1,
	Run:     runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		FuncBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
			runGoroLeakBody(pass, owner, body)
		})
	}
}

func runGoroLeakBody(pass *Pass, owner ast.Node, body *ast.BlockStmt) {
	cfg := BuildCFG(body)
	rd := NewReachingDefs(owner, cfg, pass.TypesInfo, nil)
	locs := nodeLocs(cfg)

	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			closure, ok := ast.Unparen(goStmt.Call.Fun).(*ast.FuncLit)
			if !ok {
				continue
			}
			checkWaitGroupAdd(pass, closure)
			checkSemaphoreInside(pass, rd, goStmt, closure)
			checkUnbufferedOps(pass, cfg, rd, locs, goStmt, closure)
		}
	}
}

// checkWaitGroupAdd reports sync.WaitGroup.Add anywhere inside the
// spawned closure (including nested literals): if the parent reaches
// Wait before the goroutine is scheduled, Wait sees a zero counter and
// returns early.
func checkWaitGroupAdd(pass *Pass, closure *ast.FuncLit) {
	ast.Inspect(closure.Body, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, recv, name, resolved := callee(pass, call)
		if resolved && pkg == "sync" && recv == "WaitGroup" && name == "Add" {
			pass.Reportf(call.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		}
		return true
	})
}

// checkSemaphoreInside detects the acquire-inside-goroutine
// anti-pattern: the closure sends a slot token on a buffered channel
// and releases it in a defer. The send must happen before the go
// statement so at most one goroutine exists per slot.
func checkSemaphoreInside(pass *Pass, rd *ReachingDefs, goStmt *ast.GoStmt, closure *ast.FuncLit) {
	// Deferred receives inside the closure: chan object -> seen.
	released := make(map[types.Object]bool)
	for _, s := range closure.Body.List {
		def, ok := s.(*ast.DeferStmt)
		if !ok {
			continue
		}
		ast.Inspect(def, func(sub ast.Node) bool {
			if u, isU := sub.(*ast.UnaryExpr); isU && u.Op.String() == "<-" {
				if root := rootIdent(u.X); root != nil {
					if obj := identObject(pass.TypesInfo, root); obj != nil {
						released[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(released) == 0 {
		return
	}
	walkShallow(closure.Body, func(sub ast.Node) {
		send, ok := sub.(*ast.SendStmt)
		if !ok {
			return
		}
		root := rootIdent(send.Chan)
		if root == nil {
			return
		}
		obj := identObject(pass.TypesInfo, root)
		if obj == nil || !released[obj] {
			return
		}
		if buffered, known := channelBuffering(pass, rd, goStmt, obj); known && buffered {
			pass.Reportf(send.Pos(), "semaphore slot on %s acquired inside the spawned goroutine; acquire before the go statement (semaphore-before-spawn) so at most one goroutine exists per slot", root.Name)
		}
	})
}

// checkUnbufferedOps reports channel operations inside the closure that
// can block forever: the channel is provably unbuffered (every
// definition reaching the go statement is a make(chan T) with no or
// zero capacity) and the parent has a path to exit without the
// counterpart operation.
func checkUnbufferedOps(pass *Pass, cfg *CFG, rd *ReachingDefs, locs map[ast.Node]nodeLoc, goStmt *ast.GoStmt, closure *ast.FuncLit) {
	loc, ok := locs[goStmt]
	if !ok {
		return
	}
	report := func(pos ast.Node, obj types.Object, opDesc, needDesc string, counterpart func(ast.Node) bool) {
		if buffered, known := channelBuffering(pass, rd, goStmt, obj); !known || buffered {
			return
		}
		// Escape hatch: the channel handed to any non-builtin call may
		// be consumed by code this analysis cannot see.
		for _, bb := range cfg.Blocks {
			for _, m := range bb.Nodes {
				if chanEscapes(pass, m, obj) {
					return
				}
			}
		}
		if existsPathAvoiding(cfg, loc.block, loc.index+1, counterpart) {
			pass.Reportf(pos.Pos(), "goroutine %s unbuffered channel %s, but the spawning function can return without %s; the goroutine blocks forever", opDesc, obj.Name(), needDesc)
		}
	}

	for _, op := range closureChanOps(pass, closure) {
		obj := op.obj
		if op.send {
			report(op.node, obj, "sends on", "receiving from it",
				func(m ast.Node) bool { return nodeReceivesFrom(pass, m, obj) })
		} else {
			report(op.node, obj, "receives from", "sending on or closing it",
				func(m ast.Node) bool { return nodeSendsOrCloses(pass, m, obj) })
		}
	}
}

// chanOp is one channel operation found inside a goroutine closure.
type chanOp struct {
	node ast.Node
	obj  types.Object
	send bool
}

// closureChanOps collects the closure's channel sends and receives that
// can block forever, skipping operations wrapped in a select that has
// an escape (another case or a default).
func closureChanOps(pass *Pass, closure *ast.FuncLit) []chanOp {
	var ops []chanOp
	var visit func(n ast.Node, selectEscape bool)
	visit = func(n ast.Node, selectEscape bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != closure {
				return // separate goroutine/closure body
			}
		case *ast.SelectStmt:
			escape := len(n.Body.List) > 1
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					escape = true // default clause
				}
			}
			for _, c := range n.Body.List {
				visit(c, escape)
			}
			return
		case *ast.SendStmt:
			if !selectEscape {
				if root := rootIdent(n.Chan); root != nil {
					if obj := identObject(pass.TypesInfo, root); obj != nil {
						ops = append(ops, chanOp{node: n, obj: obj, send: true})
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !selectEscape {
				if root := rootIdent(n.X); root != nil {
					if obj := identObject(pass.TypesInfo, root); obj != nil {
						ops = append(ops, chanOp{node: n, obj: obj, send: false})
					}
				}
			}
		}
		// Manual recursion so the selectEscape flag scopes correctly.
		children(n, func(c ast.Node) { visit(c, selectEscape) })
	}
	visit(closure.Body, false)
	return ops
}

// children calls fn for each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		fn(sub)
		return false
	})
}

// channelBuffering inspects every definition of obj reaching the go
// statement. known is true only when all of them are make(chan ...)
// calls with a decidable capacity; buffered reports a nonzero one.
func channelBuffering(pass *Pass, rd *ReachingDefs, at ast.Node, obj types.Object) (buffered, known bool) {
	defs := rd.At(at, obj)
	if len(defs) == 0 {
		return false, false
	}
	sawBuffered := false
	for _, d := range defs {
		if d.RHS == nil {
			return false, false
		}
		call, ok := ast.Unparen(d.RHS).(*ast.CallExpr)
		if !ok {
			return false, false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false, false
		}
		if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); !isB || b.Name() != "make" {
			return false, false
		}
		if !isChanType(pass.TypeOf(d.RHS)) {
			return false, false
		}
		switch len(call.Args) {
		case 1:
			// make(chan T): unbuffered.
		case 2:
			tv, okTV := pass.TypesInfo.Types[call.Args[1]]
			if okTV && tv.Value != nil && tv.Value.String() == "0" {
				// make(chan T, 0): unbuffered.
			} else {
				sawBuffered = true
			}
		default:
			return false, false
		}
	}
	return sawBuffered, true
}

// chanEscapes reports whether obj is passed as an argument to any
// non-builtin call in the node — an unknown consumer that silences the
// leak report rather than risking a false positive.
func chanEscapes(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	walkShallowParts(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
			if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
				return
			}
		}
		for _, arg := range call.Args {
			if id, isID := ast.Unparen(arg).(*ast.Ident); isID && identObject(pass.TypesInfo, id) == obj {
				found = true
				return
			}
		}
	})
	return found
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// nodeReceivesFrom reports whether the node receives from obj's channel
// (<-ch, range ch).
func nodeReceivesFrom(pass *Pass, n ast.Node, obj types.Object) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		if root := rootIdent(r.X); root != nil && identObject(pass.TypesInfo, root) == obj {
			return true
		}
	}
	found := false
	walkShallowParts(n, func(sub ast.Node) {
		if u, ok := sub.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if root := rootIdent(u.X); root != nil && identObject(pass.TypesInfo, root) == obj {
				found = true
			}
		}
	})
	return found
}

// nodeSendsOrCloses reports whether the node sends on or closes obj's
// channel.
func nodeSendsOrCloses(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	walkShallowParts(n, func(sub ast.Node) {
		switch s := sub.(type) {
		case *ast.SendStmt:
			if root := rootIdent(s.Chan); root != nil && identObject(pass.TypesInfo, root) == obj {
				found = true
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(s.Fun).(*ast.Ident)
			if !ok {
				return
			}
			if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && b.Name() == "close" && len(s.Args) == 1 {
				if root := rootIdent(s.Args[0]); root != nil && identObject(pass.TypesInfo, root) == obj {
					found = true
				}
			}
		}
	})
	return found
}
