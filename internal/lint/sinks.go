package lint

import (
	"fmt"
	"go/ast"
)

// Shared sink catalog for the dataflow analyzers. A "sink" is a place
// where an order-dependent or wall-clock-dependent value becomes
// externally observable: printed output, bytes written to a writer or
// hash, encoded artifacts, metrics exports, escaping returns, and
// stores into struct state.

// sinkOpts selects which sink classes a client analyzer cares about.
type sinkOpts struct {
	// metricsExport treats metric-mutation methods (Observe/Set/Add/
	// With) as sinks. maporder wants this (a map-ordered label or value
	// corrupts the deterministic export); walltime must NOT (metrics
	// are exactly where wall-clock readings belong).
	metricsExport bool
	// returns treats returning the value as a sink (escape from the
	// intraprocedural window).
	returns bool
	// fieldStores treats `x.f = v` as a sink (escape into struct
	// state, e.g. model fields or exported artifacts).
	fieldStores bool
	// commutativeFieldStores exempts `x.f += v` (and the other
	// commutative compound ops) on numeric fields from the fieldStores
	// sink: summing counters over a map range is order-insensitive.
	// maporder sets this; walltime must not — accumulating wall-clock
	// durations into model state is exactly its bug class.
	commutativeFieldStores bool
}

// fmtAllArgs lists fmt functions whose every argument is rendered.
var fmtAllArgs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

// fmtWriterArgs lists fmt functions whose first argument is the
// destination writer (not itself rendered).
var fmtWriterArgs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are methods that emit their arguments as output bytes,
// whatever the receiver: io.Writer, hash.Hash, csv.Writer,
// strings.Builder, bufio.Writer.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// metricMethods mutate exported metric state.
var metricMethods = map[string]bool{
	"Observe": true, "Set": true, "Add": true, "With": true, "WithLabelValues": true,
}

// commutativeCompoundOp lists the compound assignment operators whose
// repeated application folds order-insensitively over numeric operands.
var commutativeCompoundOp = map[string]bool{
	"+=": true, "-=": true, "*=": true, "|=": true, "&=": true, "^=": true,
}

// outputSinks enumerates the sink uses at one CFG node.
func outputSinks(pass *Pass, n ast.Node, o sinkOpts) []sinkUse {
	var out []sinkUse
	add := func(e ast.Expr, what string) {
		out = append(out, sinkUse{expr: e, pos: e.Pos(), what: what})
	}

	walkShallowParts(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		pkg, recv, name, resolved := callee(pass, call)
		if resolved && recv == "" {
			switch {
			case pkg == "fmt" && fmtAllArgs[name]:
				for _, a := range call.Args {
					add(a, fmt.Sprintf("fmt.%s output", name))
				}
				return
			case pkg == "fmt" && fmtWriterArgs[name]:
				for _, a := range call.Args[1:] {
					add(a, fmt.Sprintf("fmt.%s output", name))
				}
				return
			case pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
				for _, a := range call.Args {
					add(a, "json."+name+" input")
				}
				return
			}
		}
		if mn := methodName(call); mn != "" {
			switch {
			case writeMethods[mn]:
				for _, a := range call.Args {
					add(a, mn+" output")
				}
			case mn == "Encode":
				for _, a := range call.Args {
					add(a, "Encode input")
				}
			case o.metricsExport && metricMethods[mn]:
				for _, a := range call.Args {
					add(a, "metrics export ("+mn+")")
				}
			}
		}
	})

	switch n := n.(type) {
	case *ast.ReturnStmt:
		if o.returns {
			for _, r := range n.Results {
				add(r, "function return value")
			}
		}
	case *ast.AssignStmt:
		if o.fieldStores {
			for i, lhs := range n.Lhs {
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
					continue
				}
				if o.commutativeFieldStores && commutativeCompoundOp[n.Tok.String()] && isNumeric(pass.TypeOf(lhs)) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil {
					add(rhs, "store into field "+exprString(lhs))
				}
			}
		}
	}
	return out
}
