package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file and returns the first function's body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function body in source")
	return nil
}

// reachableFrom collects all blocks reachable from the entry.
func reachableFrom(entry *Block) map[*Block]bool {
	seen := map[*Block]bool{entry: true}
	work := []*Block{entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGLinear(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f() {
	a := 1
	b := a + 1
	_ = b
}`))
	if !reachableFrom(cfg.Entry)[cfg.Exit] {
		t.Fatal("exit unreachable from entry in straight-line code")
	}
	n := 0
	for _, b := range cfg.Blocks {
		n += len(b.Nodes)
	}
	if n != 3 {
		t.Fatalf("linear body produced %d CFG nodes, want 3", n)
	}
}

func TestCFGIfBranches(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}`))
	// Both returns must reach Exit, and the condition block must have
	// two successors.
	var branching *Block
	for _, b := range cfg.Blocks {
		if len(b.Succs) == 2 {
			branching = b
		}
	}
	if branching == nil {
		t.Fatal("no block with two successors for an if/else split")
	}
	if !reachableFrom(cfg.Entry)[cfg.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`))
	// A for loop must create a cycle: some reachable block has a
	// successor that is also one of its ancestors.
	seen := reachableFrom(cfg.Entry)
	cyclic := false
	for b := range seen {
		for _, s := range b.Succs {
			if reachableFrom(s)[b] {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Fatal("for loop produced no back edge")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f(xs []int) int {
	total := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		total += x
	}
	return total
}`))
	if !reachableFrom(cfg.Entry)[cfg.Exit] {
		t.Fatal("exit unreachable with break/continue")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`))
	if !reachableFrom(cfg.Entry)[cfg.Exit] {
		t.Fatal("exit unreachable through switch")
	}
	// fallthrough: the case-1 body must reach the case-2 body without
	// passing through the switch head again. Find the node "r = 1" and
	// check some successor chain contains "r += 2".
	var from *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok && a.Tok.String() == "=" {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "r" {
					if lit, ok := a.Rhs[0].(*ast.BasicLit); ok && lit.Value == "1" {
						from = b
					}
				}
			}
		}
	}
	if from == nil {
		t.Fatal("case body not found in CFG")
	}
	foundPlus := false
	for b := range reachableFrom(from) {
		for _, n := range b.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok && a.Tok.String() == "+=" {
				foundPlus = true
			}
		}
	}
	if !foundPlus {
		t.Fatal("fallthrough target unreachable from the falling case body")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	default:
		return 0
	}
}`))
	if !reachableFrom(cfg.Entry)[cfg.Exit] {
		t.Fatal("exit unreachable through select")
	}
}

func TestFuncBodies(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "b.go", `package p
func a() { go func() { _ = 1 }() }
var v = func() int { return 2 }
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	FuncBodies(f, func(owner ast.Node, body *ast.BlockStmt) { count++ })
	if count != 3 {
		t.Fatalf("FuncBodies visited %d bodies, want 3 (decl, go literal, var literal)", count)
	}
}
