package lint

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// AnalyzerUnits flags additive arithmetic and ordered comparisons that
// mix identifiers carrying conflicting unit suffixes. The codebase
// encodes physical dimensions in names (budgetWatts, energyJoules,
// windowSeconds, freqHz); adding watts to joules or comparing seconds
// against hertz is dimensionally meaningless and has historically been
// the classic power-modeling bug (power vs. energy confusion).
// Multiplication and division are conversions between dimensions
// (watts × seconds = joules) and are therefore never flagged.
var AnalyzerUnits = &Analyzer{
	Name: "units",
	Doc:  "flag +, -, and comparisons mixing Watts/Joules/Seconds/Hz-suffixed identifiers",
	Run:  runUnits,
}

// unitSuffixes maps a lowercase name suffix to its canonical dimension.
// Longer suffixes are matched first so "watts" wins over "s"-like
// accidents; all matching is done on the final camelCase word.
var unitSuffixes = map[string]string{
	"watts":   "watts",
	"watt":    "watts",
	"joules":  "joules",
	"joule":   "joules",
	"seconds": "seconds",
	"second":  "seconds",
	"hz":      "hz",
	"hertz":   "hz",
	"khz":     "hz",
	"mhz":     "hz",
	"ghz":     "hz",
}

func runUnits(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.ADD, token.SUB, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			ux, uy := unitOf(be.X), unitOf(be.Y)
			if ux != "" && uy != "" && ux != uy {
				pass.Reportf(be.OpPos, "unit mismatch: %s (%s) %s %s (%s)",
					exprString(be.X), ux, be.Op, exprString(be.Y), uy)
			}
			return true
		})
	}
}

// unitOf infers the dimension an expression carries from the trailing
// camelCase word of its identifier, field or called-function name.
// Unknown shapes return "" and never participate in a mismatch.
func unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.CallExpr:
		return unitOf(e.Fun)
	case *ast.ParenExpr:
		return unitOf(e.X)
	case *ast.IndexExpr:
		return unitOf(e.X)
	case *ast.UnaryExpr:
		return unitOf(e.X)
	case *ast.BinaryExpr:
		// Additive chains propagate their (agreeing) unit upward so
		// a+b+c is checked pairwise; other operators yield unknown.
		if e.Op == token.ADD || e.Op == token.SUB {
			ux, uy := unitOf(e.X), unitOf(e.Y)
			if ux == uy {
				return ux
			}
		}
		return ""
	}
	return ""
}

// unitOfName extracts the final camelCase/snake_case word of name and
// looks it up as a unit suffix: "budgetWatts" → "watts",
// "energy_joules" → "joules", "idle" → "".
func unitOfName(name string) string {
	lower := strings.ToLower(lastWord(name))
	return unitSuffixes[lower]
}

// lastWord returns the trailing word of a camelCase or snake_case
// identifier: "budgetWatts" → "Watts", "freqHz" → "Hz", "cap_watts"
// → "watts". All-lowercase single words return themselves.
func lastWord(name string) string {
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		return name[i+1:]
	}
	runes := []rune(name)
	// Walk back over the trailing lowercase run, then over the
	// uppercase run that starts the word (handles "FreqHz" and "MHz").
	i := len(runes)
	for i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1])) {
		i--
	}
	for i > 0 && unicode.IsUpper(runes[i-1]) {
		i--
	}
	return string(runes[i:])
}
