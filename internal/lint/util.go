package lint

import (
	"go/ast"
	"go/types"
)

// exprString renders an expression in compact Go syntax for messages
// and structural comparisons (e.g. the x != x NaN idiom).
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
