package lint

import (
	"os"
	"path/filepath"
	"testing"
)

const cachedAppSrc = `package app

import "math/rand"

func Draw() float64 { return rand.Float64() }
`

func TestRunCachedHitAndInvalidation(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": cachedAppSrc})
	cacheDir := t.TempDir()
	suite := []*Analyzer{AnalyzerGlobalRand}

	diags1, hit, err := RunCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run must be a cache miss")
	}
	if len(diags1) != 1 {
		t.Fatalf("seed findings = %v, want one globalrand", diags1)
	}

	diags2, hit, err := RunCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("unchanged module must hit the cache")
	}
	if len(diags2) != 1 || diags2[0].String() != diags1[0].String() {
		t.Fatalf("cached diagnostics differ: %v vs %v", diags2, diags1)
	}
	if !filepath.IsAbs(diags2[0].Pos.Filename) {
		t.Fatalf("cached diagnostic path not re-absolutized: %s", diags2[0].Pos.Filename)
	}

	// Any content edit must invalidate the key.
	writeFile(t, root, "app/app.go", cachedAppSrc+"\n// trailing comment\n")
	_, hit, err = RunCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("edited module must miss the cache")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": cachedAppSrc})
	base, err := CacheKey(root, nil, All())
	if err != nil {
		t.Fatal(err)
	}

	// Stable across calls.
	again, err := CacheKey(root, nil, All())
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Fatal("cache key not deterministic")
	}

	// Sensitive to the analyzer set…
	subset, err := CacheKey(root, nil, []*Analyzer{AnalyzerFloatCmp})
	if err != nil {
		t.Fatal(err)
	}
	if subset == base {
		t.Fatal("key ignores the analyzer suite")
	}

	// …to the patterns…
	patterned, err := CacheKey(root, []string{"./app"}, All())
	if err != nil {
		t.Fatal(err)
	}
	if patterned == base {
		t.Fatal("key ignores the lint patterns")
	}

	// …to an analyzer version bump…
	bumped := *AnalyzerFloatCmp
	bumped.Version++
	suite := append([]*Analyzer{&bumped}, All()[1:]...)
	rekeyed, err := CacheKey(root, nil, suite)
	if err != nil {
		t.Fatal(err)
	}
	if rekeyed == base {
		t.Fatal("key ignores analyzer versions")
	}

	// …and to file content.
	writeFile(t, root, "app/app.go", cachedAppSrc+"// edit\n")
	edited, err := CacheKey(root, nil, All())
	if err != nil {
		t.Fatal(err)
	}
	if edited == base {
		t.Fatal("key ignores file content")
	}
}

func TestRunCachedSurvivesCorruptEntry(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": cachedAppSrc})
	cacheDir := t.TempDir()
	suite := []*Analyzer{AnalyzerGlobalRand}

	key, err := CacheKey(root, nil, suite)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, hit, err := RunCached(root, nil, suite, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupt entry must degrade to a plain run, not a hit")
	}
	if len(diags) != 1 {
		t.Fatalf("degraded run findings = %v", diags)
	}
}
