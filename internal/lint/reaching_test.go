package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkedBody type-checks src and returns the pass scaffolding plus the
// named function's declaration.
func checkedBody(t *testing.T, src, fnName string) (*token.FileSet, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "rd.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fnName {
			return fset, info, fd
		}
	}
	t.Fatalf("function %s not found", fnName)
	return nil, nil, nil
}

// objNamed finds the unique variable object with the given name among
// the discovered definition sites.
func objNamed(t *testing.T, rd *ReachingDefs, name string) types.Object {
	t.Helper()
	for _, d := range rd.Sites() {
		if d.Obj.Name() == name {
			return d.Obj
		}
	}
	t.Fatalf("no definition site for %q", name)
	return nil
}

// findNode locates the first CFG node for which pred returns true.
func findNode(cfg *CFG, pred func(ast.Node) bool) ast.Node {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return n
			}
		}
	}
	return nil
}

// isReturn matches a return statement node.
func isReturn(n ast.Node) bool {
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

func TestReachingStrongUpdateKills(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(fd, cfg, info, nil)
	x := objNamed(t, rd, "x")
	ret := findNode(cfg, isReturn)
	defs := rd.At(ret, x)
	if len(defs) != 1 {
		t.Fatalf("strong update must kill the prior def: got %d defs", len(defs))
	}
	if lit, ok := defs[0].RHS.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Fatalf("surviving def RHS = %v, want literal 2", defs[0].RHS)
	}
}

func TestReachingBranchesMerge(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(fd, cfg, info, nil)
	x := objNamed(t, rd, "x")
	defs := rd.At(findNode(cfg, isReturn), x)
	if len(defs) != 2 {
		t.Fatalf("conditional redefinition must merge: got %d defs, want 2", len(defs))
	}
}

func TestReachingWeakUpdatePreserves(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
func f() int {
	xs := []int{1}
	xs[0] = 2
	return xs[0]
}`, "f")
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(fd, cfg, info, nil)
	xs := objNamed(t, rd, "xs")
	defs := rd.At(findNode(cfg, isReturn), xs)
	if len(defs) != 2 {
		t.Fatalf("index store is weak, both defs must survive: got %d", len(defs))
	}
	kinds := map[DefKind]bool{}
	for _, d := range defs {
		kinds[d.Kind] = true
	}
	if !kinds[DefAssign] || !kinds[DefWeak] {
		t.Fatalf("def kinds = %v, want one DefAssign and one DefWeak", kinds)
	}
}

func TestReachingLoopFixpoint(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(fd, cfg, info, nil)
	x := objNamed(t, rd, "x")
	defs := rd.At(findNode(cfg, isReturn), x)
	// Both the initial def (loop may run zero times) and the loop-body
	// def can reach the return.
	if len(defs) != 2 {
		t.Fatalf("loop merge: got %d defs, want 2", len(defs))
	}
}

func TestReachingRangeAndEntryDefs(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
func f(m map[string]int) int {
	total := 0
	for k, v := range m {
		_ = k
		total += v
	}
	return total
}`, "f")
	cfg := BuildCFG(fd.Body)
	rd := NewReachingDefs(fd, cfg, info, nil)

	m := objNamed(t, rd, "m")
	mDefs := rd.At(findNode(cfg, isReturn), m)
	if len(mDefs) != 1 || mDefs[0].Kind != DefEntry {
		t.Fatalf("parameter defs = %v, want a single DefEntry", mDefs)
	}

	v := objNamed(t, rd, "v")
	use := findNode(cfg, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		return ok && a.Tok.String() == "+="
	})
	vDefs := rd.At(use, v)
	if len(vDefs) != 1 || vDefs[0].Kind != DefRange || !vDefs[0].IsValue {
		t.Fatalf("range value defs = %+v, want one DefRange value binding", vDefs)
	}
	k := objNamed(t, rd, "k")
	kDefs := rd.At(use, k)
	if len(kDefs) != 1 || kDefs[0].Kind != DefRange || kDefs[0].IsValue {
		t.Fatalf("range key defs = %+v, want one DefRange key binding", kDefs)
	}
}

func TestReachingExtraDefsSanitize(t *testing.T) {
	_, info, fd := checkedBody(t, `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}`, "f")
	cfg := BuildCFG(fd.Body)
	// Declare sort.Strings(x) as an extra strong definition of x, the
	// hook maporder's sanitizer uses.
	extra := func(n ast.Node) []types.Object {
		var out []types.Object
		walkShallowParts(n, func(sub ast.Node) {
			call, ok := sub.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Strings" {
				return
			}
			if root := rootIdent(call.Args[0]); root != nil {
				if obj := identObject(info, root); obj != nil {
					out = append(out, obj)
				}
			}
		})
		return out
	}
	rd := NewReachingDefs(fd, cfg, info, extra)
	keys := objNamed(t, rd, "keys")
	defs := rd.At(findNode(cfg, isReturn), keys)
	if len(defs) != 1 || defs[0].Kind != DefExtra {
		t.Fatalf("after the sanitizer only the DefExtra must reach the return, got %+v", defs)
	}
}
