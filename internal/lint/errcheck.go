package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerErrCheck flags statements that call a function returning an
// error and drop the result on the floor. A swallowed error in the
// profiler or runtime layers turns a failed RAPL read or an apply()
// rejection into silently-wrong energy numbers, which is worse than a
// crash. Write `_ = f()` (or better, handle it) to make the drop
// explicit; tests are exempt.
var AnalyzerErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag call statements whose error result is silently discarded in non-test code",
	Run:  runErrCheck,
}

// errCheckSafe lists callees whose returned error is either always nil
// by contract (strings.Builder, bytes.Buffer writes) or conventionally
// ignored (fmt terminal printing). Entries are "pkgpath.Func" for
// package functions and "pkgpath.Type.Method" for methods.
var errCheckSafe = map[string]bool{
	"fmt.Print":                   true,
	"fmt.Printf":                  true,
	"fmt.Println":                 true,
	"fmt.Fprint":                  true,
	"fmt.Fprintf":                 true,
	"fmt.Fprintln":                true,
	"strings.Builder.Write":       true,
	"strings.Builder.WriteString": true,
	"strings.Builder.WriteByte":   true,
	"strings.Builder.WriteRune":   true,
	"bytes.Buffer.Write":          true,
	"bytes.Buffer.WriteString":    true,
	"bytes.Buffer.WriteByte":      true,
	"bytes.Buffer.WriteRune":      true,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || isSafeCallee(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or assign to _ explicitly", calleeString(call))
			return true
		})
	}
}

// returnsError reports whether the call's sole or final result is an
// error value.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isSafeCallee resolves the called object and checks the allowlist.
func isSafeCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if recv := sig.Recv(); recv != nil {
		key = obj.Pkg().Path() + "." + receiverTypeName(recv.Type()) + "." + obj.Name()
	}
	return errCheckSafe[key]
}

// receiverTypeName names a method receiver's base type: *strings.Builder
// and strings.Builder both yield "Builder".
func receiverTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeString renders the callee for the diagnostic message.
func calleeString(call *ast.CallExpr) string {
	return exprString(call.Fun)
}
