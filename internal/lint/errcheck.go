package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerErrCheck flags statements that call a function returning an
// error and drop the result on the floor. A swallowed error in the
// profiler or runtime layers turns a failed RAPL read or an apply()
// rejection into silently-wrong energy numbers, which is worse than a
// crash. Write `_ = f()` (or better, handle it) to make the drop
// explicit; tests are exempt. Plain discards carry a suggested fix
// inserting the explicit `_ =`.
//
// Version 2 additionally catches the deferred variant the original
// analyzer missed entirely: `defer f.Close()` on a file opened for
// writing (os.Create, os.CreateTemp, writable os.OpenFile — decided by
// reaching definitions). A deferred Close is the moment buffered data
// hits the disk; dropping its error means a short write to a model
// file or CSV export passes silently. Read-only files keep the idiom.
var AnalyzerErrCheck = &Analyzer{
	Name:    "errcheck",
	Doc:     "flag discarded error results, including defer Close() on writable files",
	Version: 2,
	Run:     runErrCheck,
}

// errCheckSafe lists callees whose returned error is either always nil
// by contract (strings.Builder, bytes.Buffer writes) or conventionally
// ignored (fmt terminal printing). Entries are "pkgpath.Func" for
// package functions and "pkgpath.Type.Method" for methods.
var errCheckSafe = map[string]bool{
	"fmt.Print":                   true,
	"fmt.Printf":                  true,
	"fmt.Println":                 true,
	"fmt.Fprint":                  true,
	"fmt.Fprintf":                 true,
	"fmt.Fprintln":                true,
	"strings.Builder.Write":       true,
	"strings.Builder.WriteString": true,
	"strings.Builder.WriteByte":   true,
	"strings.Builder.WriteRune":   true,
	"bytes.Buffer.Write":          true,
	"bytes.Buffer.WriteString":    true,
	"bytes.Buffer.WriteByte":      true,
	"bytes.Buffer.WriteRune":      true,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || isSafeCallee(pass, call) {
				return true
			}
			pass.Report(Diagnostic{
				Pos:     pass.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("error returned by %s is discarded; handle it or assign to _ explicitly", calleeString(call)),
				Fixes: []SuggestedFix{{
					Message: "make the discard explicit with _ =",
					Edits: []TextEdit{{
						Start:   pass.Fset.Position(call.Pos()),
						End:     pass.Fset.Position(call.Pos()),
						NewText: "_ = ",
					}},
				}},
			})
			return true
		})
		runDeferClose(pass, f)
	}
}

// writableOpeners are the os functions that yield a file whose Close
// error must be checked: a deferred Close is where buffered writes can
// fail.
var writableOpeners = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true,
}

// runDeferClose reports `defer f.Close()` when every definition of f
// reaching the defer is a writable open. The question "was this handle
// opened for writing" is answered with reaching definitions, so
// read-only handles (os.Open) keep the deferred idiom and a handle
// that is conditionally reopened writable is still caught.
func runDeferClose(pass *Pass, f *ast.File) {
	FuncBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
		cfg := BuildCFG(body)
		rd := NewReachingDefs(owner, cfg, pass.TypesInfo, nil)
		for _, b := range cfg.Blocks {
			for _, n := range b.Nodes {
				def, ok := n.(*ast.DeferStmt)
				if !ok {
					continue
				}
				call := def.Call
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" || !returnsError(pass, call) {
					continue
				}
				root := rootIdent(sel.X)
				if root == nil {
					continue
				}
				obj := identObject(pass.TypesInfo, root)
				if obj == nil {
					continue
				}
				defs := rd.At(def, obj)
				if len(defs) == 0 || !allWritableOpens(pass, defs) {
					continue
				}
				pass.Reportf(def.Pos(), "error from deferred %s.Close on a writable file is discarded; close on the write path and check the error (or capture it in a named return)", root.Name)
			}
		}
	})
}

// allWritableOpens reports whether every reaching definition binds the
// object from a writable os open call.
func allWritableOpens(pass *Pass, defs []*DefSite) bool {
	for _, d := range defs {
		if d.RHS == nil {
			return false
		}
		call, ok := ast.Unparen(d.RHS).(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, recv, name, resolved := callee(pass, call)
		if !resolved || recv != "" || pkg != "os" || !writableOpeners[name] {
			return false
		}
		if name == "OpenFile" && !openFileFlagsWritable(pass, call) {
			return false
		}
	}
	return true
}

// openFileFlagsWritable decides os.OpenFile's flag argument: a
// constant-foldable flag without O_WRONLY/O_RDWR is read-only (not
// reported); anything non-constant is conservatively writable.
func openFileFlagsWritable(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true
	}
	v, ok := constantInt64(tv.Value.ExactString())
	if !ok {
		return true
	}
	// os.O_WRONLY = 1, os.O_RDWR = 2 on every supported platform.
	return v&3 != 0
}

func constantInt64(s string) (int64, bool) {
	var v int64
	_, err := fmt.Sscan(s, &v)
	return v, err == nil
}

// returnsError reports whether the call's sole or final result is an
// error value.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isSafeCallee resolves the called object and checks the allowlist.
func isSafeCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if recv := sig.Recv(); recv != nil {
		key = obj.Pkg().Path() + "." + receiverTypeName(recv.Type()) + "." + obj.Name()
	}
	return errCheckSafe[key]
}

// receiverTypeName names a method receiver's base type: *strings.Builder
// and strings.Builder both yield "Builder".
func receiverTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeString renders the callee for the diagnostic message.
func calleeString(call *ast.CallExpr) string {
	return exprString(call.Fun)
}
