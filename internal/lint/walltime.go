package lint

import (
	"go/ast"
)

// AnalyzerWallTime flags wall-clock readings (time.Now, time.Since,
// time.Until) whose value flows into an encoded artifact, output
// stream, hash, struct state, or write sink. Wall time embedded in a
// model file or CSV/JSON export breaks the content-addressed model
// cache (core.TrainCached hashes its inputs) and the byte-identity of
// exported tables; elapsed time belongs in the metrics registry, which
// this analyzer deliberately does not treat as a sink.
var AnalyzerWallTime = &Analyzer{
	Name:    "walltime",
	Doc:     "flag wall-clock values flowing into exported artifacts, hashes, or model state",
	Version: 1,
	Run:     runWallTime,
}

// wallClockSources are the time package functions whose results are
// nondeterministic across runs.
var wallClockSources = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

func runWallTime(pass *Pass) {
	spec := &taintSpec{
		sourceExpr: func(pass *Pass, call *ast.CallExpr) bool {
			pkg, recv, name, ok := callee(pass, call)
			return ok && recv == "" && pkg == "time" && wallClockSources[name]
		},
		// No commutative exemption: an accumulated wall-clock total is
		// just as nondeterministic as a single reading.
		commutativeReduction: false,
		sinks: func(pass *Pass, n ast.Node) []sinkUse {
			return outputSinks(pass, n, sinkOpts{metricsExport: false, returns: false, fieldStores: true})
		},
	}
	for _, f := range runTaint(pass, spec) {
		origin := pass.Fset.Position(f.origin)
		pass.Reportf(f.pos, "wall-clock value (read on line %d) flows into %s; derive artifacts from deterministic inputs and report elapsed time via internal/metrics", origin.Line, f.what)
	}
}
