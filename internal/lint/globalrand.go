package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGlobalRand forbids the top-level math/rand functions
// (rand.Intn, rand.Float64, rand.Perm, rand.Shuffle, ...) outside
// tests. The clustering BUILD phase and CART training must be
// bit-reproducible across runs — the paper's model selection hinges on
// it — so randomness always flows through an injected, explicitly
// seeded *rand.Rand. Constructors (rand.New, rand.NewSource,
// rand.NewZipf) are the sanctioned way in and are allowed.
var AnalyzerGlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid unseeded top-level math/rand functions in non-test code",
	Run:  runGlobalRand,
}

// globalRandAllowed lists math/rand package-level functions that do not
// touch the implicit global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || globalRandAllowed[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "global rand.%s is unseeded and nondeterministic; inject a seeded *rand.Rand", obj.Name())
			return true
		})
	}
}
