package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Content-addressed lint result cache, mirroring core.TrainCached's
// discipline for trained models: the key is a SHA-256 over everything
// that can change the answer — a format version, each analyzer's
// name:version pair, the lint patterns, go.mod, and the path plus
// content hash of every Go file the run can observe. Any edit to an
// observable file changes the key, so a hit is always exact; there is
// no invalidation logic to get wrong. Entries are immutable JSON files
// named by their key.
//
// What "observable" means depends on the suite. Module analyzers
// consume the whole-module call graph and every function summary, and
// their findings can shift when any package changes (a new caller in an
// unrelated package alters lock-order witnesses), so their keys hash
// every Go file in the module — the summary closure. Unit-only runs
// hash just the selected directories plus the non-test files of their
// transitive module imports: an edit to a package the selection never
// loads keeps the hit. Both closures also fold in the interprocedural
// format versions, so a change to the call-graph or summary encoding
// retires stale entries wholesale.

// cacheFormatVersion invalidates every entry when the cache layout or
// keying scheme itself changes. v2: suite-aware keys, import-closure
// hashing for unit-only runs, Related positions in entries.
const cacheFormatVersion = 2

// cacheEntry is the on-disk representation of one run's findings.
// Positions are stored module-relative so entries are machine-portable
// (CI cache restore onto a different checkout path still hits).
type cacheEntry struct {
	Key         string
	Diagnostics []Diagnostic
}

// DefaultCacheDir returns the per-user cache location for lint results.
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("lint: no user cache dir: %w", err)
	}
	return filepath.Join(base, "acsel-lint"), nil
}

// CacheKey computes the content hash governing a (root, patterns,
// analyzers) unit-only run. It is exported so tests and tooling can
// observe key stability and sensitivity.
func CacheKey(root string, patterns []string, analyzers []*Analyzer) (string, error) {
	return SuiteCacheKey(root, patterns, Suite{Unit: analyzers})
}

// SuiteCacheKey computes the content hash governing a (root, patterns,
// suite) run: format versions, analyzer name:version pairs, patterns,
// and the hash of every observable file (see the cache overview for
// the closure rules).
func SuiteCacheKey(root string, patterns []string, suite Suite) (string, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "format:%d\n", cacheFormatVersion)
	if len(suite.Module) > 0 {
		fmt.Fprintf(h, "callgraph:%d\nsummary:%d\n", callGraphFormatVersion, summaryFormatVersion)
	}

	pats := append([]string(nil), patterns...)
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	sort.Strings(pats)
	fmt.Fprintf(h, "patterns:%s\n", strings.Join(pats, ","))

	for _, a := range suite.Unit {
		fmt.Fprintf(h, "analyzer:%s:%d\n", a.Name, a.Version)
	}
	for _, a := range suite.Module {
		fmt.Fprintf(h, "module-analyzer:%s:%d\n", a.Name, a.Version)
	}

	var files []string
	if len(suite.Module) > 0 {
		files, err = moduleGoFiles(root)
	} else {
		files, err = closureGoFiles(root, patterns)
	}
	if err != nil {
		return "", err
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(root, f))
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "file:%s:%s\n", filepath.ToSlash(f), hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// moduleGoFiles lists go.mod plus every .go file under root that the
// loader could see, as sorted root-relative paths.
func moduleGoFiles(root string) ([]string, error) {
	files := []string{"go.mod"}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) && p != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		files = append(files, rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// closureGoFiles lists what a unit-only run can observe: go.mod, every
// .go file in the selected directories (tests included), and the
// non-test files of every module package those reach transitively
// through imports. Files outside the closure cannot change the run's
// answer, so they are deliberately left out of the key.
func closureGoFiles(root string, patterns []string) ([]string, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	selDirs, err := selectDirs(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool, len(selDirs))
	selected := make(map[string]bool, len(selDirs))
	queue := append([]string(nil), selDirs...)
	for _, d := range selDirs {
		selected[d], seen[d] = true, true
	}
	files := []string{"go.mod"}
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			if !selected[dir] && strings.HasSuffix(name, "_test.go") {
				continue // closure packages are imported without their tests
			}
			p := filepath.Join(dir, name)
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return nil, err
			}
			files = append(files, rel)
			f, err := parser.ParseFile(fset, p, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || (path != modPath && !strings.HasPrefix(path, modPath+"/")) {
					continue
				}
				d := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(path, modPath)))
				if !seen[d] {
					seen[d] = true
					queue = append(queue, d)
				}
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

// RunCached is Run with a read-through cache in cacheDir. On a key hit
// it returns the stored diagnostics without loading or type-checking
// anything; on a miss it runs the analyzers and stores the result. The
// returned bool reports whether the result came from the cache. Cache
// failures (unwritable dir, corrupt entry) degrade to a plain run —
// the cache can slow nothing down and break nothing.
func RunCached(root string, patterns []string, analyzers []*Analyzer, cacheDir string) ([]Diagnostic, bool, error) {
	return RunSuiteCached(root, patterns, Suite{Unit: analyzers}, cacheDir)
}

// RunSuiteCached is RunSuite behind the same read-through cache.
func RunSuiteCached(root string, patterns []string, suite Suite, cacheDir string) ([]Diagnostic, bool, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, false, err
	}
	key, err := SuiteCacheKey(root, patterns, suite)
	if err != nil {
		return nil, false, err
	}
	path := filepath.Join(cacheDir, key+".json")

	if data, err := os.ReadFile(path); err == nil {
		var ent cacheEntry
		if json.Unmarshal(data, &ent) == nil && ent.Key == key {
			return absolutize(root, ent.Diagnostics), true, nil
		}
	}

	diags, err := RunSuite(root, patterns, suite)
	if err != nil {
		return nil, false, err
	}

	ent := cacheEntry{Key: key, Diagnostics: relativize(root, diags)}
	if data, err := json.MarshalIndent(ent, "", "  "); err == nil {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			// Atomic publish; a concurrent writer racing to the same key
			// writes identical bytes, so last-rename-wins is safe.
			tmp, err := os.CreateTemp(cacheDir, key+".*")
			if err == nil {
				_, werr := tmp.Write(data)
				cerr := tmp.Close()
				if werr == nil && cerr == nil {
					os.Rename(tmp.Name(), path) //lint:ignore errcheck cache write is best-effort
				} else {
					os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
				}
			}
		}
	}
	return diags, false, nil
}

// relativize maps diagnostic and fix positions to module-relative
// paths for storage.
func relativize(root string, diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Filename = relPath(root, d.Pos.Filename)
		d.Fixes = mapFixPaths(d.Fixes, func(p string) string { return relPath(root, p) })
		d.Related = mapRelatedPaths(d.Related, func(p string) string { return relPath(root, p) })
		out[i] = d
	}
	return out
}

// absolutize restores absolute paths on cache load so downstream
// consumers (printing, SARIF, -fix) see the same shape Run produces.
func absolutize(root string, diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Filename = absPath(root, d.Pos.Filename)
		d.Fixes = mapFixPaths(d.Fixes, func(p string) string { return absPath(root, p) })
		d.Related = mapRelatedPaths(d.Related, func(p string) string { return absPath(root, p) })
		out[i] = d
	}
	return out
}

func mapRelatedPaths(rel []RelatedPos, f func(string) string) []RelatedPos {
	if len(rel) == 0 {
		return nil
	}
	out := make([]RelatedPos, len(rel))
	for i, r := range rel {
		r.Pos.Filename = f(r.Pos.Filename)
		out[i] = r
	}
	return out
}

func mapFixPaths(fixes []SuggestedFix, f func(string) string) []SuggestedFix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]SuggestedFix, len(fixes))
	for i, fix := range fixes {
		edits := make([]TextEdit, len(fix.Edits))
		for j, e := range fix.Edits {
			e.Start.Filename = f(e.Start.Filename)
			e.End.Filename = f(e.End.Filename)
			edits[j] = e
		}
		out[i] = SuggestedFix{Message: fix.Message, Edits: edits}
	}
	return out
}

func relPath(root, p string) string {
	if rel, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return p
}

func absPath(root, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(root, filepath.FromSlash(p))
}
