package lint

import (
	"fmt"
	"strings"
)

// AnalyzerPureDet is the whole-program escalation of the walltime /
// globalrand / maporder unit checks: a function annotated
//
//	//lint:deterministic
//
// in its doc comment claims that its results depend only on its inputs,
// and puredet verifies the claim over the call graph — every function
// reachable through static, method, interface, literal, reference, and
// goroutine edges must be free of nondeterminism sources. Goroutine
// and function-value edges are included deliberately: spawned workers
// feed their results back (the eval fold loop), and a stored callback
// runs eventually. A call the graph cannot resolve (a func-typed
// parameter or field) is reported as unprovable rather than assumed
// pure.
//
// The metrics registry is exempt: recording elapsed time into
// observability counters is the sanctioned destination for wall-clock
// readings (the walltime unit analyzer encodes the same policy), and
// the registry's exports are deterministic snapshots.
var AnalyzerPureDet = &ModuleAnalyzer{
	Name:    "puredet",
	Doc:     "prove //lint:deterministic roots transitively free of nondeterminism sources",
	Version: 1,
	Run:     runPureDet,
}

// puredetExemptSuffixes lists package-path suffixes whose internals are
// outside the determinism obligation (see the analyzer comment).
var puredetExemptSuffixes = []string{"internal/metrics"}

func puredetExemptPkg(path string) bool {
	for _, suf := range puredetExemptSuffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

func runPureDet(p *ModulePass) {
	for _, root := range p.Summaries.DetRoots {
		checkDetRoot(p, root)
	}
}

// checkDetRoot BFSes the reachable set of one annotated root and
// reports every nondeterminism source and unresolvable call in it,
// each with the call path from the root.
func checkDetRoot(p *ModulePass, root FuncID) {
	rootNode := p.Graph.Lookup(root)
	if rootNode == nil {
		return
	}
	parent := map[FuncID]*CallEdge{}
	seen := map[FuncID]bool{root: true}
	queue := []*CGNode{rootNode}
	var reached []*CGNode
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if puredetExemptPkg(n.Unit.Pkg.Path()) {
			continue // exempt internals: neither checked nor traversed
		}
		reached = append(reached, n)
		for _, e := range n.Out {
			if seen[e.Callee.ID] {
				continue
			}
			seen[e.Callee.ID] = true
			parent[e.Callee.ID] = e
			queue = append(queue, e.Callee)
		}
	}

	for _, n := range reached {
		s := p.Summaries.Get(n.ID)
		path := rootPath(p, root, n.ID, parent)
		for _, nd := range s.Nondet {
			steps := append(append([]TraceStep{}, path...), TraceStep{
				Pos:     nd.Pos,
				Message: nd.Kind + " source: " + nd.Detail,
			})
			p.Report(Diagnostic{
				Pos: p.Fset.Position(nd.Pos),
				Message: fmt.Sprintf("%s source (%s) reachable from //lint:deterministic root %s%s",
					nd.Kind, nd.Detail, root, viaSuffix(root, n.ID)),
				Related: p.Trace(steps),
			})
		}
		for _, u := range s.Unknown {
			steps := append(append([]TraceStep{}, path...), TraceStep{
				Pos:     u.Pos,
				Message: "unresolvable: " + u.Desc,
			})
			p.Report(Diagnostic{
				Pos: p.Fset.Position(u.Pos),
				Message: fmt.Sprintf("cannot prove //lint:deterministic root %s: %s in %s has an unanalyzable target",
					root, u.Desc, n.ID),
				Related: p.Trace(steps),
			})
		}
	}
}

// rootPath reconstructs the BFS call path root -> fn as trace steps.
func rootPath(p *ModulePass, root, fn FuncID, parent map[FuncID]*CallEdge) []TraceStep {
	if fn == root {
		return nil
	}
	var edges []*CallEdge
	for cur := fn; cur != root; {
		e := parent[cur]
		if e == nil {
			break
		}
		edges = append(edges, e)
		cur = e.Caller.ID
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i] // root first
	}
	steps := make([]TraceStep, 0, len(edges))
	for _, e := range edges {
		steps = append(steps, TraceStep{
			Pos:     e.Pos,
			Message: fmt.Sprintf("%s calls %s (%s)", e.Caller.ID, e.Callee.ID, e.Kind),
		})
	}
	return steps
}

func viaSuffix(root, fn FuncID) string {
	if root == fn {
		return ""
	}
	return " (via " + string(fn) + ")"
}
