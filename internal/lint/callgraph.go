package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module-wide call graph. Nodes are function bodies — declarations and
// literals — keyed by a symbolic FuncID rather than by types.Object,
// because each package unit is type-checked separately and the same
// function appears as distinct object instances on its defining and
// importing sides; the (package path, receiver, name) triple is the
// identity that survives.
//
// Edge resolution, from precise to conservative:
//
//   - CallStatic: a direct call of a named package function.
//   - CallMethod: a method call whose receiver has a concrete type.
//   - CallIface: a method call through an interface declared in this
//     module, resolved by class-hierarchy analysis to every module
//     type implementing it. Calls through foreign interfaces
//     (io.Writer, http.Handler) get no edges: the stdlib side is
//     outside the analysis universe and is treated as deterministic
//     and lock-free (documented soundness trade-off, DESIGN.md §15).
//   - CallLit: a function literal owned by the caller, assumed to run
//     synchronously where it is defined (it may really run later — a
//     stored callback — which over-approximates, never misses).
//   - CallRef: a named function referenced as a value (passed, stored,
//     assigned). The reference site may invoke it at any time, so the
//     callee's effects are conservatively attributed to the
//     referencing function for reachability questions (puredet), but
//     NOT for lock-nesting ones: no call happens at the reference.
//   - CallGo: a `go` statement. The spawned body runs on a fresh
//     stack, so its lock acquisitions never nest under the spawner's
//     held set; nondeterminism it produces still reaches the spawner's
//     results and propagates.
//
// Calls that resolve to none of the above — a func-typed parameter, a
// stored func field — are classified by the summary layer as unknown
// calls, which puredet reports as unprovable rather than silently
// assuming purity.

// FuncID names a function: "pkg.Name", "pkg.(Recv).Name" for methods,
// or "parent$n" for the n-th function literal inside parent.
type FuncID string

// CallKind classifies how an edge was resolved.
type CallKind int

const (
	CallStatic CallKind = iota
	CallMethod
	CallIface
	CallLit
	CallRef
	CallGo
)

// String returns the short label used in golden dumps.
func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallMethod:
		return "method"
	case CallIface:
		return "iface"
	case CallLit:
		return "lit"
	case CallRef:
		return "ref"
	case CallGo:
		return "go"
	}
	return "?"
}

// Synchronous reports whether the callee runs on the caller's stack at
// the edge position, i.e. whether locks held there remain held inside
// the callee. CallRef is excluded (no call happens at a reference) and
// CallGo is excluded (fresh stack).
func (k CallKind) Synchronous() bool {
	switch k {
	case CallStatic, CallMethod, CallIface, CallLit:
		return true
	}
	return false
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *CGNode
	Callee *CGNode
	Kind   CallKind
	Pos    token.Pos
	// HeldMay and HeldMust are the lock classes that may/must be held
	// by the caller at the call site; filled by the summary layer.
	HeldMay  []LockClass
	HeldMust []LockClass
}

// CGNode is one function body in the graph.
type CGNode struct {
	ID   FuncID
	Unit *ModuleUnit
	// Exactly one of Decl/Lit is set; Body is its body.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Out  []*CallEdge
	In   []*CallEdge
	// Root marks a function whose callers are not all visible:
	// exported, main/init, referenced as a value, or spawned as a
	// goroutine. Entry-held inference treats roots as entered lock-free.
	Root bool
}

// Name returns a human-readable name for diagnostics.
func (n *CGNode) Name() string { return string(n.ID) }

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// callGraphFormatVersion feeds the result-cache key: bump it whenever
// edge construction changes (new edge kinds, different CHA scope), so
// cached module-analysis results keyed on the old graph shape retire.
const callGraphFormatVersion = 1

// CallGraph is the module-wide graph plus its SCC decomposition.
type CallGraph struct {
	Fset  *token.FileSet
	Nodes map[FuncID]*CGNode
	// order lists node IDs in deterministic construction order
	// (sorted units, file order, declaration order).
	order []FuncID
	// SCCs lists strongly connected components over synchronous edges
	// in reverse topological order: callees before callers, so
	// bottom-up summary propagation is a single sweep.
	SCCs [][]*CGNode
}

// NodesInOrder iterates nodes deterministically.
func (g *CallGraph) NodesInOrder() []*CGNode {
	out := make([]*CGNode, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.Nodes[id])
	}
	return out
}

// Lookup returns the node for id, or nil.
func (g *CallGraph) Lookup(id FuncID) *CGNode { return g.Nodes[id] }

// DumpEdges renders every edge as "caller -> callee [kind]", sorted,
// for golden tests. Positions are omitted so goldens stay stable under
// unrelated edits.
func (g *CallGraph) DumpEdges() string {
	var lines []string
	for _, n := range g.NodesInOrder() {
		for _, e := range n.Out {
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", e.Caller.ID, e.Callee.ID, e.Kind))
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// BuildCallGraph constructs the graph over the production code of the
// units: test files and external _test packages contribute nothing.
func BuildCallGraph(fset *token.FileSet, units []*ModuleUnit) *CallGraph {
	g := &CallGraph{Fset: fset, Nodes: make(map[FuncID]*CGNode)}
	b := &cgBuilder{g: g, fset: fset, modPkgs: make(map[string]bool)}
	prod := productionUnits(units)

	// Pass 1: create a node per function declaration, and collect the
	// module's named types for class-hierarchy analysis.
	for _, u := range prod {
		b.modPkgs[u.Pkg.Path()] = true
		for _, f := range u.Files {
			if isTestFilename(fset, f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := declID(u, fd)
				if _, dup := g.Nodes[id]; dup {
					continue // build-tag duplicates: keep the first
				}
				n := &CGNode{ID: id, Unit: u, Decl: fd, Body: fd.Body}
				n.Root = fd.Name.IsExported() || fd.Name.Name == "main" || fd.Name.Name == "init"
				g.Nodes[id] = n
				g.order = append(g.order, id)
			}
		}
		b.collectTypes(u)
	}

	// Pass 2: resolve edges body by body, creating literal nodes as
	// they are encountered.
	for _, id := range append([]FuncID(nil), g.order...) {
		n := g.Nodes[id]
		if n.Decl != nil {
			litN := 0
			b.walkInto(n, n.Body, &litN)
		}
	}

	// Referenced-as-value and goroutine-spawned functions are roots:
	// they can be invoked from contexts the graph does not see.
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == CallRef || e.Kind == CallGo {
				e.Callee.Root = true
			}
		}
	}

	g.SCCs = tarjanSCC(g)
	return g
}

// productionUnits drops external _test package units.
func productionUnits(units []*ModuleUnit) []*ModuleUnit {
	var out []*ModuleUnit
	for _, u := range units {
		if strings.HasSuffix(u.Pkg.Name(), "_test") {
			continue
		}
		out = append(out, u)
	}
	return out
}

func isTestFilename(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// declID computes the FuncID of a declaration in unit u.
func declID(u *ModuleUnit, fd *ast.FuncDecl) FuncID {
	pkg := u.Pkg.Path()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return FuncID(pkg + "." + fd.Name.Name)
	}
	recv := "?"
	if obj, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = receiverTypeName(sig.Recv().Type())
		}
	}
	return FuncID(pkg + ".(" + recv + ")." + fd.Name.Name)
}

// funcObjID maps a resolved *types.Func to the FuncID of its body.
func funcObjID(obj *types.Func) FuncID {
	if obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return FuncID(pkg + ".(" + receiverTypeName(sig.Recv().Type()) + ")." + obj.Name())
	}
	return FuncID(pkg + "." + obj.Name())
}

// namedImpl is one module named type considered for interface dispatch.
type namedImpl struct {
	named *types.Named
	pkg   string
}

type cgBuilder struct {
	g       *CallGraph
	fset    *token.FileSet
	modPkgs map[string]bool
	// impls lists every named (non-interface) type declared in the
	// module, for class-hierarchy resolution of interface calls.
	impls []namedImpl
}

// collectTypes records unit u's package-scope named types.
func (b *cgBuilder) collectTypes(u *ModuleUnit) {
	scope := u.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		b.impls = append(b.impls, namedImpl{named: named, pkg: u.Pkg.Path()})
	}
}

// addEdge appends one resolved edge.
func (b *cgBuilder) addEdge(caller, callee *CGNode, kind CallKind, pos token.Pos) {
	e := &CallEdge{Caller: caller, Callee: callee, Kind: kind, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// walkInto dispatches every child of n through walkNode, attributing
// effects to owner. It is the "generic node" traversal: any child with
// call-graph relevance is intercepted, everything else recurses.
func (b *cgBuilder) walkInto(owner *CGNode, n ast.Node, litN *int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil || sub == n {
			return true
		}
		switch sub.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.CallExpr, *ast.Ident, *ast.SelectorExpr:
			b.walkNode(owner, sub, litN)
			return false
		}
		return true
	})
}

// walkNode handles one call-graph-relevant node.
func (b *cgBuilder) walkNode(owner *CGNode, n ast.Node, litN *int) {
	info := owner.Unit.Info
	switch n := n.(type) {
	case *ast.FuncLit:
		child := b.litNode(owner, n, litN)
		b.addEdge(owner, child, CallLit, n.Pos())
		childLits := 0
		b.walkInto(child, n.Body, &childLits)

	case *ast.GoStmt:
		b.spawn(owner, n, litN)

	case *ast.CallExpr:
		b.callExpr(owner, n, litN, CallStatic)

	case *ast.Ident:
		if obj, ok := info.Uses[n].(*types.Func); ok {
			if callee := b.g.Lookup(funcObjID(obj)); callee != nil {
				b.addEdge(owner, callee, CallRef, n.Pos())
			}
		}

	case *ast.SelectorExpr:
		// A method value used as a value (s.run handed to a
		// supervisor); plain field selections just recurse into X.
		if obj, ok := info.Uses[n.Sel].(*types.Func); ok {
			if callee := b.g.Lookup(funcObjID(obj)); callee != nil {
				b.addEdge(owner, callee, CallRef, n.Pos())
			}
		}
		b.walkInto(owner, n.X, litN)
	}
}

// spawn resolves `go f(...)` / `go func(){...}()`: an asynchronous
// edge for the spawned body, synchronous traversal of the receiver and
// argument expressions (they evaluate on the spawning goroutine).
func (b *cgBuilder) spawn(owner *CGNode, g *ast.GoStmt, litN *int) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		child := b.litNode(owner, lit, litN)
		b.addEdge(owner, child, CallGo, g.Pos())
		childLits := 0
		b.walkInto(child, lit.Body, &childLits)
	} else {
		b.resolveEdges(owner, call, CallGo)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			b.walkInto(owner, sel.X, litN)
		}
	}
	for _, a := range call.Args {
		b.walkNodeOrInto(owner, a, litN)
	}
}

// callExpr resolves a direct call and then traverses its non-callee
// children (receiver chain and arguments).
func (b *cgBuilder) callExpr(owner *CGNode, call *ast.CallExpr, litN *int, _ CallKind) {
	b.resolveEdges(owner, call, CallStatic)
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Terminal callee ident: consumed by resolveEdges.
	case *ast.SelectorExpr:
		b.walkInto(owner, f.X, litN)
	case *ast.IndexExpr: // generic instantiation or func-valued element
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			_ = id // terminal; instantiation handled by resolveEdges
		} else {
			b.walkNodeOrInto(owner, f.X, litN)
		}
		b.walkNodeOrInto(owner, f.Index, litN)
	case *ast.IndexListExpr:
		b.walkNodeOrInto(owner, f.X, litN)
	default:
		// Curried call g()(), func literal call, etc.
		b.walkNodeOrInto(owner, f, litN)
	}
	for _, a := range call.Args {
		b.walkNodeOrInto(owner, a, litN)
	}
}

// walkNodeOrInto dispatches n directly when it is call-graph relevant,
// otherwise traverses its children.
func (b *cgBuilder) walkNodeOrInto(owner *CGNode, n ast.Node, litN *int) {
	switch n.(type) {
	case *ast.FuncLit, *ast.GoStmt, *ast.CallExpr, *ast.Ident, *ast.SelectorExpr:
		b.walkNode(owner, n, litN)
	default:
		b.walkInto(owner, n, litN)
	}
}

// resolveEdges adds the edge(s) for one call expression: static,
// concrete method, or CHA-expanded interface dispatch. baseKind is
// CallStatic for ordinary calls and CallGo for spawned ones.
func (b *cgBuilder) resolveEdges(owner *CGNode, call *ast.CallExpr, baseKind CallKind) {
	info := owner.Unit.Info
	obj := calleeFuncObj(call, info)
	if obj == nil {
		return // builtin, conversion, or call through a func value
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() == nil {
		if callee := b.g.Lookup(funcObjID(obj)); callee != nil {
			b.addEdge(owner, callee, baseKind, call.Pos())
		}
		return
	}
	recvT := sig.Recv().Type()
	if iface, isIface := recvT.Underlying().(*types.Interface); isIface {
		b.chaEdges(owner, call, recvT, iface, obj.Name(), baseKind)
		return
	}
	kind := CallMethod
	if baseKind == CallGo {
		kind = CallGo
	}
	if callee := b.g.Lookup(funcObjID(obj)); callee != nil {
		b.addEdge(owner, callee, kind, call.Pos())
	}
}

// calleeFuncObj extracts the called *types.Func, unwrapping generic
// instantiation syntax.
func calleeFuncObj(call *ast.CallExpr, info *types.Info) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// chaEdges applies class-hierarchy analysis to a call through a
// module-declared interface: one edge to method `method` of every
// module type whose method set satisfies the interface. Calls through
// foreign interfaces contribute nothing (see package comment).
func (b *cgBuilder) chaEdges(owner *CGNode, call *ast.CallExpr, recvT types.Type, iface *types.Interface, method string, baseKind CallKind) {
	named, ok := recvT.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !b.modPkgs[named.Obj().Pkg().Path()] {
		return
	}
	kind := CallIface
	if baseKind == CallGo {
		kind = CallGo
	}
	for _, impl := range b.impls {
		if !types.Implements(impl.named, iface) &&
			!types.Implements(types.NewPointer(impl.named), iface) {
			continue
		}
		id := FuncID(impl.pkg + ".(" + impl.named.Obj().Name() + ")." + method)
		if callee := b.g.Lookup(id); callee != nil {
			b.addEdge(owner, callee, kind, call.Pos())
		}
	}
}

// litNode creates the child node for a literal inside owner.
func (b *cgBuilder) litNode(owner *CGNode, lit *ast.FuncLit, litN *int) *CGNode {
	*litN++
	id := FuncID(fmt.Sprintf("%s$%d", owner.ID, *litN))
	child := &CGNode{ID: id, Unit: owner.Unit, Lit: lit, Body: lit.Body}
	b.g.Nodes[id] = child
	b.g.order = append(b.g.order, id)
	return child
}

// tarjanSCC computes strongly connected components over synchronous
// edges, returned callees-first (reverse topological order of the
// condensation). Iterative to keep deep call chains off the Go stack.
func tarjanSCC(g *CallGraph) [][]*CGNode {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	var sccs [][]*CGNode
	next := 0

	type frame struct {
		v    *CGNode
		edge int
	}
	var visit func(root *CGNode)
	visit = func(root *CGNode) {
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.edge < len(f.v.Out) {
				e := f.v.Out[f.edge]
				f.edge++
				if !e.Kind.Synchronous() {
					continue
				}
				w := e.Callee
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is done: pop and propagate lowlink.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []*CGNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}

	for _, n := range g.NodesInOrder() {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return sccs
}
