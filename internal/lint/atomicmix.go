package lint

import (
	"fmt"
	"sort"
)

// AnalyzerAtomicMix finds fields accessed both through sync/atomic and
// as plain memory anywhere in the module. Mixing the two is a race
// even when the plain side holds a mutex: the atomic reader does not
// acquire that mutex, so it can observe a plain write mid-flight. The
// correct patterns are all-atomic, all-mutex, or an atomic-typed field
// (atomic.Int64, atomic.Pointer) that makes plain access impossible —
// which is exactly what the suggested remediation proposes.
// Constructor-fresh initialization (s := &T{}; s.n = 0 before the
// value is shared) is exempt.
var AnalyzerAtomicMix = &ModuleAnalyzer{
	Name:    "atomicmix",
	Doc:     "find fields accessed both via sync/atomic and as plain memory",
	Version: 1,
	Run:     runAtomicMix,
}

func runAtomicMix(p *ModulePass) {
	type sites struct {
		atomics []accessAt
		plains  []accessAt
	}
	byClass := make(map[string]*sites)
	var classes []string

	for _, n := range p.Graph.NodesInOrder() {
		s := p.Summaries.Get(n.ID)
		for _, acc := range s.Fields {
			if acc.Fresh {
				continue
			}
			st := byClass[acc.Class]
			if st == nil {
				st = &sites{}
				byClass[acc.Class] = st
				classes = append(classes, acc.Class)
			}
			if acc.Atomic {
				st.atomics = append(st.atomics, accessAt{acc: acc, fn: n.ID, read: !acc.Write})
			} else {
				st.plains = append(st.plains, accessAt{acc: acc, fn: n.ID, read: !acc.Write})
			}
		}
	}

	sort.Strings(classes)
	for _, cls := range classes {
		st := byClass[cls]
		if len(st.atomics) == 0 || len(st.plains) == 0 {
			continue
		}
		sortAccesses(st.atomics)
		sortAccesses(st.plains)
		plain, at := st.plains[0], st.atomics[0]
		kind := "written"
		if plain.read {
			kind = "read"
		}
		steps := []TraceStep{
			{Pos: at.acc.Pos, Message: fmt.Sprintf("atomic access in %s", at.fn)},
		}
		for _, pl := range st.plains {
			steps = append(steps, TraceStep{Pos: pl.acc.Pos, Message: fmt.Sprintf("plain access in %s", pl.fn)})
		}
		p.Report(Diagnostic{
			Pos: p.Fset.Position(plain.acc.Pos),
			Message: fmt.Sprintf("field %s is accessed atomically (e.g. %s) but %s here as plain memory — use sync/atomic everywhere or an atomic-typed field",
				shortLockClass(LockClass(cls)), p.Fset.Position(at.acc.Pos), kind),
			Related: p.Trace(steps),
		})
	}
}
