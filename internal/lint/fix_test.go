package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// fixtureModule builds a minimal module in a temp dir and returns its
// root.
func fixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	writeFile(t, root, "go.mod", "module sandbox\n\ngo 1.22\n")
	for rel, content := range files {
		writeFile(t, root, rel, content)
	}
	return root
}

const fixableSrc = `package app

import "os"

func cleanup(path string) {
	os.Remove(path)
	os.Remove(path + ".bak")
}
`

// TestApplyFixesAndIdempotency runs the suite over a module with two
// fixable errcheck findings, applies the fixes, and verifies (a) the
// findings are gone, (b) the output is gofmt-clean, and (c) a second
// fix pass changes nothing — the property `make lint-fix-check`
// enforces in CI.
func TestApplyFixesAndIdempotency(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": fixableSrc})

	diags, err := Run(root, nil, []*Analyzer{AnalyzerErrCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("seed findings = %d, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Fatalf("finding carries no suggested fix: %v", d)
		}
	}

	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 0 || len(res.ChangedFiles) != 1 {
		t.Fatalf("fix result = %+v, want 2 applied in 1 file", res)
	}

	fixed, err := os.ReadFile(filepath.Join(root, "app/app.go"))
	if err != nil {
		t.Fatal(err)
	}
	want := `package app

import "os"

func cleanup(path string) {
	_ = os.Remove(path)
	_ = os.Remove(path + ".bak")
}
`
	if string(fixed) != want {
		t.Fatalf("fixed source:\n%s\nwant:\n%s", fixed, want)
	}

	// Idempotency: the fixed tree has no findings, so a second -fix run
	// has nothing to apply and the file bytes must not move.
	diags, err = Run(root, nil, []*Analyzer{AnalyzerErrCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("findings remain after fix: %v", diags)
	}
	res, err = ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.ChangedFiles) != 0 {
		t.Fatalf("second pass applied %d fixes to %v, want none", res.Applied, res.ChangedFiles)
	}
	again, err := os.ReadFile(filepath.Join(root, "app/app.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != want {
		t.Fatal("file changed on a no-op fix pass")
	}
}

// TestApplyFixesCtxCancel verifies the ctxcancel fix inserts a
// defer cancel() that survives a re-run (the inserted defer makes the
// analyzer treat the site as handled).
func TestApplyFixesCtxCancel(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": `package app

import "context"

func leak(ready bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	if !ready {
		return nil
	}
	_ = ctx
	cancel()
	return nil
}
`})
	diags, err := Run(root, nil, []*Analyzer{AnalyzerCtxCancel})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || len(diags[0].Fixes) == 0 {
		t.Fatalf("diags = %v, want one fixable ctxcancel finding", diags)
	}
	if _, err := ApplyFixes(diags); err != nil {
		t.Fatal(err)
	}
	diags, err = Run(root, nil, []*Analyzer{AnalyzerCtxCancel})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("findings remain after defer-cancel fix: %v", diags)
	}
}

// TestApplyFixesConflict: two fixes editing the same range must not
// both apply; the second is skipped, never half-applied.
func TestApplyFixesConflict(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": fixableSrc})
	diags, err := Run(root, nil, []*Analyzer{AnalyzerErrCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %d", len(diags))
	}
	// Duplicate the first diagnostic: same edit range twice.
	dup := append([]Diagnostic{diags[0]}, diags...)
	res, err := ApplyFixes(dup)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 1 {
		t.Fatalf("fix result = %+v, want 2 applied 1 skipped", res)
	}
}
