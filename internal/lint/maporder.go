package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerMapOrder flags values derived from map iteration order that
// reach an output, hash, encoder, metrics-export, return, or
// field-store sink without an intervening sort. Go randomizes map
// iteration, so such a flow makes stdout tables, CSV exports, JSON
// snapshots, and content-addressed cache keys differ run to run — the
// exact bug class that would silently break the repo's byte-identical
// Table III and deterministic-evaluation guarantees.
//
// The check is dataflow-based (CFG + reaching definitions + taint),
// not an AST pattern: collecting map keys into a slice and sorting it
// before use is recognized as clean, and purely commutative folds over
// a map (sum += v, n++) are not flagged.
var AnalyzerMapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "flag map-iteration-ordered values reaching output/hash/export sinks without a sort",
	Version: 1,
	Run:     runMapOrder,
}

// mapOrderTaintSpec is the shared flow specification: the unit analyzer
// runs it per package, and the summary layer (summary.go) runs it per
// call-graph node to record map-order escapes as nondeterminism facts
// for the interprocedural puredet analyzer.
func mapOrderTaintSpec() *taintSpec {
	return &taintSpec{
		sourceDef: func(pass *Pass, d *DefSite) bool {
			return d.Kind == DefRange && d.RHS != nil && isMapType(pass.TypeOf(d.RHS))
		},
		sanitized:            sortSanitized,
		commutativeReduction: true,
		sinks: func(pass *Pass, n ast.Node) []sinkUse {
			return outputSinks(pass, n, sinkOpts{
				metricsExport:          true,
				returns:                true,
				fieldStores:            true,
				commutativeFieldStores: true,
			})
		},
	}
}

func runMapOrder(pass *Pass) {
	for _, f := range runTaint(pass, mapOrderTaintSpec()) {
		origin := pass.Fset.Position(f.origin)
		pass.Reportf(f.pos, "value ordered by map iteration (range on line %d) reaches %s without an intervening sort", origin.Line, f.what)
	}
}

// sortSanitized recognizes the standard sorting calls as strong,
// clean re-definitions of their argument: sort.Strings/Ints/Float64s/
// Slice/SliceStable/Sort/Stable and slices.Sort/SortFunc/
// SortStableFunc. sort.Sort(sort.StringSlice(x)) digs through the
// interface conversion to x.
func sortSanitized(pass *Pass, n ast.Node) []types.Object {
	var out []types.Object
	walkShallowParts(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		pkg, recv, name, resolved := callee(pass, call)
		if !resolved || recv != "" {
			return
		}
		sorts := false
		switch pkg {
		case "sort":
			switch name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				sorts = true
			}
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				sorts = true
			}
		}
		if !sorts {
			return
		}
		arg := ast.Unparen(call.Args[0])
		// sort.Sort(byName(x)): unwrap a single-argument conversion.
		if conv, isCall := arg.(*ast.CallExpr); isCall && len(conv.Args) == 1 {
			arg = ast.Unparen(conv.Args[0])
		}
		if root := rootIdent(arg); root != nil {
			if obj := identObject(pass.TypesInfo, root); obj != nil {
				out = append(out, obj)
			}
		}
	})
	return out
}
