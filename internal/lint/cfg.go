package lint

import (
	"go/ast"
)

// This file is the control-flow layer under the dataflow analyzers
// (maporder, walltime, goroleak, ctxcancel). A CFG is built per
// function body — FuncDecl and each FuncLit get their own graph — and
// deliberately stays intraprocedural: the analyzers that consume it
// treat calls as opaque and model only what they can prove locally.
//
// The encoding is conventional: basic blocks hold statements (and the
// conditions that guard their successors) in execution order, edges
// follow the possible transfers of control. A synthetic Exit block
// collects every return and the natural fall-off of the body, so "all
// paths to function exit" questions become plain graph reachability.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	Entry  *Block
	// Exit is a synthetic empty block reached by every return statement
	// and by falling off the end of the body.
	Exit *Block
}

// Block is one basic block: a maximal straight-line sequence of
// statements with edges only at the end.
type Block struct {
	Index int
	// Nodes holds the block's statements and guarding expressions in
	// execution order. Conditions (if/for/switch tags) appear as bare
	// ast.Expr entries before the branch happens.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// addEdge wires b -> s.
func addEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// loopFrame tracks the jump targets of one enclosing loop or switch for
// break/continue resolution.
type loopFrame struct {
	label     string // enclosing label, "" when unlabeled
	breakTo   *Block
	contTo    *Block // nil inside switch/select frames (continue skips them)
	isLoop    bool
	rangeStmt ast.Node // the loop's Range/For statement, for diagnostics
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	// pendingLabel names the statement about to be built, so that a
	// labeled for/range/switch resolves "break label"/"continue label".
	pendingLabel string
}

// BuildCFG constructs the control-flow graph of body. It is resilient
// to any statement mix the parser accepts; goto is modeled
// conservatively as an edge to Exit (no analyzer in this package runs
// on code using goto, and ending the path keeps every dataflow client
// sound-by-termination rather than wrong).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	exit := &Block{Index: -1}
	b.cfg.Entry = entry
	b.cfg.Exit = exit
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		addEdge(b.cur, exit)
	}
	exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock makes blk current; a nil current block (after return/break)
// means subsequent statements are unreachable and land in a fresh
// predecessor-less block, keeping positions queryable without edges.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code island
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// jump terminates the current path with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		addEdge(b.cur, target)
	}
	b.cur = nil
}

// takeLabel consumes the pending label for the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break/continue target. label == "" selects the
// innermost applicable frame; continue skips switch/select frames.
func (b *cfgBuilder) findFrame(label string, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so the label is a join point, then let the
		// labeled statement pick the name up for break/continue.
		next := b.newBlock()
		b.jump(next)
		b.cur = next
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock()

		thenBlk := b.newBlock()
		addEdge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.jump(join)

		if s.Else != nil {
			elseBlk := b.newBlock()
			addEdge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(join)
		} else {
			addEdge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		b.jump(header)
		b.cur = header
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		addEdge(header, body)
		if s.Cond != nil {
			addEdge(header, exit)
		}
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: post, isLoop: true, rangeStmt: s})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if s.Post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			b.jump(header)
		} else {
			b.jump(header)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		b.jump(header)
		b.cur = header
		// The RangeStmt node itself carries the key/value definitions
		// and the ranged expression; dataflow reads them from here.
		b.add(s)
		body := b.newBlock()
		exit := b.newBlock()
		addEdge(header, body)
		addEdge(header, exit)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: header, isLoop: true, rangeStmt: s})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(header)
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		header := b.cur
		if header == nil {
			header = b.newBlock()
			b.cur = header
		}
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			addEdge(header, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			addEdge(header, join)
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if f := b.findFrame(label, false); f != nil {
				b.jump(f.breakTo)
			} else {
				b.cur = nil
			}
		case "continue":
			if f := b.findFrame(label, true); f != nil {
				b.jump(f.contTo)
			} else {
				b.cur = nil
			}
		case "goto":
			// Conservative: end the path (see BuildCFG doc).
			b.jump(b.cfg.Exit)
		case "fallthrough":
			// switchStmt wires the fallthrough edge; nothing here.
		}

	default:
		// Straight-line statements: assignments, declarations, calls,
		// go/defer/send/incdec/empty. Nested function literals are NOT
		// descended into — each gets its own CFG.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: the tag evaluates in
// the header, every clause is a successor, a missing default adds a
// header->join edge, and fallthrough chains clause bodies.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, clauses = s.Init, s.Body.List
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, clauses = s.Init, s.Body.List
		tag = s.Assign
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	header := b.cur
	if header == nil {
		header = b.newBlock()
		b.cur = header
	}
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join})

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		addEdge(header, blocks[i])
		if cc, ok := clauses[i].(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		addEdge(header, join)
	}
	b.cur = join
}

// FuncBodies yields every function body in the file — declarations and
// literals — paired with the node that owns it. Analyzers iterate this
// to run one intraprocedural pass per body.
func FuncBodies(f *ast.File, fn func(owner ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(n, n.Body)
		}
		return true
	})
}
