package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Per-function summaries over the call graph: what each body does that
// the interprocedural analyzers care about — locks acquired and
// released (abstracted to lock classes), struct-field accesses with the
// lock context they happen under, nondeterminism sources reached, calls
// through func values that cannot be resolved, goroutines spawned.
// Local facts come from one forward dataflow over the function's CFG;
// the two interprocedural facts — transitive lock acquisitions and the
// lock set guaranteed held on entry — come from fixpoints over the
// graph's SCC condensation (bottom-up and top-down respectively), so
// recursion converges instead of diverging.

// LockClass abstracts a mutex to its declaration site: "pkg.T.f" for a
// mutex field f of struct T, "pkg.v" for a package-level mutex var.
// The abstraction is instance-insensitive — every element of a slice of
// shards shares one class — which is what makes lock-order facts
// finite; it can merge locks that are never held together (documented
// precision trade-off, DESIGN.md §15). Locals and unresolvable
// receivers get no class and are invisible to lockorder.
type LockClass string

// LockSite is one acquire or release of a classified mutex.
type LockSite struct {
	Class LockClass
	Pos   token.Pos
	Read  bool // RLock/RUnlock
	// HeldMay lists the classes that may already be held when this
	// site executes (acquire sites only): the local pair source.
	HeldMay []LockClass
}

// FieldAccess is one read or write of a module struct field.
type FieldAccess struct {
	Class  string // "pkg.T.f"
	Struct string // "pkg.T"
	Pos    token.Pos
	Write  bool
	Atomic bool // sync/atomic call on &f, or f's type lives in sync/atomic
	// Fresh marks accesses through a local variable that only ever
	// holds freshly allocated memory (s := &T{...}; s.f = v):
	// constructor initialization is unshared by construction.
	Fresh bool
	// HeldMust / HeldMay are the lock classes held locally at the
	// access; callers' entry context is added by the analyzers via
	// SummarySet.EntryMust.
	HeldMust []LockClass
	HeldMay  []LockClass
}

// NondetSite is one local source of nondeterminism.
type NondetSite struct {
	Kind   string // "walltime" | "globalrand" | "maporder"
	Pos    token.Pos
	Detail string
}

// UnknownCall is a call the graph could not resolve — a func-typed
// parameter or field — whose effects are unknown. puredet reports
// these as unprovable rather than silently assuming purity.
type UnknownCall struct {
	Pos  token.Pos
	Desc string
}

// acqTrace witnesses one transitive lock acquisition: where it bottoms
// out and the call path from the summarized function to that site.
type acqTrace struct {
	Pos  token.Pos
	Path []TraceStep
}

// Summary holds everything the analyzers need to know about one
// function without re-reading its body.
type Summary struct {
	ID       FuncID
	Acquires []LockSite
	Releases []LockSite
	Fields   []FieldAccess
	Nondet   []NondetSite
	Unknown  []UnknownCall
	Spawns   []token.Pos

	// TransAcquires maps each lock class this function may acquire —
	// directly or through any synchronous callee — to a witness trace.
	TransAcquires map[LockClass]*acqTrace
	// EntryMust is the set of lock classes held on entry along every
	// visible call path (empty for roots).
	EntryMust []LockClass
}

// SummarySet is the module-wide summary table plus the shared
// registries the analyzers consult.
type SummarySet struct {
	Fset *token.FileSet
	ByID map[FuncID]*Summary
	// MutexFields maps a struct class "pkg.T" to the lock classes of
	// its sync.Mutex / sync.RWMutex fields (the sharedstate seeds).
	MutexFields map[string][]LockClass
	// DetRoots lists functions annotated //lint:deterministic, in
	// graph order.
	DetRoots []FuncID
}

// Get returns the summary for id, or nil.
func (ss *SummarySet) Get(id FuncID) *Summary { return ss.ByID[id] }

// ComputeSummaries runs the local pass over every graph node, then the
// bottom-up transitive-acquire fixpoint and the top-down entry-held
// fixpoint.
func ComputeSummaries(fset *token.FileSet, g *CallGraph) *SummarySet {
	ss := &SummarySet{
		Fset:        fset,
		ByID:        make(map[FuncID]*Summary, len(g.Nodes)),
		MutexFields: make(map[string][]LockClass),
	}
	sm := &summarizer{g: g, fset: fset, ss: ss, modPkgs: make(map[string]bool), passes: make(map[*ModuleUnit]*Pass)}
	seenPkg := make(map[string]bool)
	for _, n := range g.NodesInOrder() {
		sm.modPkgs[n.Unit.Pkg.Path()] = true
	}
	for _, n := range g.NodesInOrder() {
		if !seenPkg[n.Unit.Pkg.Path()] {
			seenPkg[n.Unit.Pkg.Path()] = true
			sm.collectMutexFields(n.Unit)
		}
		ss.ByID[n.ID] = sm.localSummary(n)
		if n.Decl != nil && hasDeterministicDirective(n.Decl) {
			ss.DetRoots = append(ss.DetRoots, n.ID)
		}
	}
	sm.transitiveAcquires()
	sm.entryHeld()
	return ss
}

// hasDeterministicDirective reports whether the declaration carries a
// //lint:deterministic annotation in its doc comment.
func hasDeterministicDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//lint:deterministic") {
			return true
		}
	}
	return false
}

type summarizer struct {
	g       *CallGraph
	fset    *token.FileSet
	ss      *SummarySet
	modPkgs map[string]bool
	passes  map[*ModuleUnit]*Pass
}

// passFor fabricates the unit-analyzer Pass shape for taint reuse.
func (sm *summarizer) passFor(u *ModuleUnit) *Pass {
	if p, ok := sm.passes[u]; ok {
		return p
	}
	p := &Pass{Fset: sm.fset, Files: u.Files, Pkg: u.Pkg, TypesInfo: u.Info}
	sm.passes[u] = p
	return p
}

// collectMutexFields registers u's struct-declared mutex fields.
func (sm *summarizer) collectMutexFields(u *ModuleUnit) {
	scope := u.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		structClass := u.Pkg.Path() + "." + tn.Name()
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isSyncMutexType(f.Type()) {
				cls := LockClass(structClass + "." + f.Name())
				sm.ss.MutexFields[structClass] = append(sm.ss.MutexFields[structClass], cls)
			}
		}
	}
}

// --- local pass ----------------------------------------------------------

// heldState is the forward dataflow fact: which lock classes may/must
// be held at a program point.
type heldState struct {
	may  map[LockClass]bool
	must map[LockClass]bool
}

func newHeldState() *heldState {
	return &heldState{may: map[LockClass]bool{}, must: map[LockClass]bool{}}
}

func (h *heldState) clone() *heldState {
	c := newHeldState()
	for k := range h.may {
		c.may[k] = true
	}
	for k := range h.must {
		c.must[k] = true
	}
	return c
}

// merge joins pred-out o into h (may: union, must: intersection),
// reporting change.
func (h *heldState) merge(o *heldState) bool {
	changed := false
	for k := range o.may {
		if !h.may[k] {
			h.may[k] = true
			changed = true
		}
	}
	for k := range h.must {
		if !o.must[k] {
			delete(h.must, k)
			changed = true
		}
	}
	return changed
}

func sortedClasses(m map[LockClass]bool) []LockClass {
	if len(m) == 0 {
		return nil
	}
	out := make([]LockClass, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localSummary computes node n's local facts.
func (sm *summarizer) localSummary(n *CGNode) *Summary {
	s := &Summary{ID: n.ID, TransAcquires: make(map[LockClass]*acqTrace)}
	cfg := BuildCFG(n.Body)

	// Lock dataflow to fixpoint over block entry states.
	in := map[*Block]*heldState{cfg.Entry: newHeldState()}
	work := []*Block{cfg.Entry}
	inWork := map[*Block]bool{cfg.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work, inWork[b] = work[1:], false
		out := in[b].clone()
		for _, node := range b.Nodes {
			sm.heldTransfer(n, out, node, nil)
		}
		for _, succ := range b.Succs {
			si, seen := in[succ]
			if !seen {
				in[succ] = out.clone()
			} else if !si.merge(out) {
				continue
			}
			if !inWork[succ] {
				work = append(work, succ)
				inWork[succ] = true
			}
		}
	}

	// Recording pass: replay each block from its (stable) entry state,
	// snapshotting lock context onto acquire sites, call edges, and
	// field accesses as they appear.
	edgesAt := make(map[token.Pos][]*CallEdge, len(n.Out))
	for _, e := range n.Out {
		edgesAt[e.Pos] = append(edgesAt[e.Pos], e)
		if e.Kind == CallGo {
			s.Spawns = append(s.Spawns, e.Pos)
		}
	}
	fresh := sm.freshLocals(n)
	for _, b := range cfg.Blocks {
		st, ok := in[b]
		if !ok {
			st = newHeldState() // unreachable island
		} else {
			st = st.clone()
		}
		for _, node := range b.Nodes {
			sm.recordNode(n, s, st, node, edgesAt, fresh)
			sm.heldTransfer(n, st, node, nil)
		}
	}

	s.Nondet = sm.nondetSites(n)
	s.Unknown = sm.unknownCalls(n)
	sortSummary(s)
	return s
}

// heldTransfer applies node's direct mutex operations to st. Lock ops
// under a defer run at function exit, not here, so a DeferStmt leaves
// the state untouched — which models the dominant
// `mu.Lock(); defer mu.Unlock()` idiom exactly: the body stays "held".
func (sm *summarizer) heldTransfer(n *CGNode, st *heldState, node ast.Node, onAcquire func(LockSite)) {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return
	}
	walkShallowParts(node, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		op, read, isLock := mutexOp(n.Unit.Info, call)
		if !isLock {
			return
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		cls := sm.lockClass(n.Unit, sel)
		if cls == "" {
			return
		}
		switch op {
		case lockAcquire:
			if onAcquire != nil {
				onAcquire(LockSite{Class: cls, Pos: call.Pos(), Read: read, HeldMay: sortedClasses(st.may)})
			}
			st.may[cls] = true
			st.must[cls] = true
		case lockRelease:
			delete(st.may, cls)
			delete(st.must, cls)
		}
	})
}

type lockOp int

const (
	lockAcquire lockOp = iota
	lockRelease
)

// mutexOp recognizes sync.Mutex / sync.RWMutex / sync.Locker lock and
// unlock calls.
func mutexOp(info *types.Info, call *ast.CallExpr) (op lockOp, read, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false, false
	}
	obj, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0, false, false
	}
	switch obj.Name() {
	case "Lock", "TryLock":
		return lockAcquire, false, true
	case "RLock", "TryRLock":
		return lockAcquire, true, true
	case "Unlock":
		return lockRelease, false, true
	case "RUnlock":
		return lockRelease, true, true
	}
	return 0, false, false
}

// lockClass resolves the receiver of a mutex method call to its class.
// sel is the full `x.Lock` selector.
func (sm *summarizer) lockClass(u *ModuleUnit, sel *ast.SelectorExpr) LockClass {
	// Embedded mutex (type T struct { sync.Mutex }; t.Lock()): the
	// selection path runs through the embedded field.
	if s, ok := u.Info.Selections[sel]; ok && len(s.Index()) > 1 {
		named := namedOf(s.Recv())
		if named == nil {
			return ""
		}
		st, isStruct := named.Underlying().(*types.Struct)
		if !isStruct {
			return ""
		}
		idx := s.Index()[0]
		if idx >= st.NumFields() {
			return ""
		}
		return sm.fieldLockClass(named, st.Field(idx))
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		fobj, isVar := u.Info.Uses[x.Sel].(*types.Var)
		if !isVar || !fobj.IsField() {
			return ""
		}
		named := namedOf(u.Info.TypeOf(x.X))
		if named == nil {
			return ""
		}
		return sm.fieldLockClass(named, fobj)
	case *ast.Ident:
		if v, isVar := u.Info.Uses[x].(*types.Var); isVar && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && sm.modPkgs[v.Pkg().Path()] {
			return LockClass(v.Pkg().Path() + "." + v.Name())
		}
	}
	return ""
}

func (sm *summarizer) fieldLockClass(named *types.Named, f *types.Var) LockClass {
	tn := named.Obj()
	if tn.Pkg() == nil || !sm.modPkgs[tn.Pkg().Path()] {
		return ""
	}
	return LockClass(tn.Pkg().Path() + "." + tn.Name() + "." + f.Name())
}

// namedOf digs the *types.Named behind t, through pointers and aliases.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// isSyncMutexType reports whether t (possibly *T) is sync.Mutex or
// sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// isSyncPrimitive reports whether a field of this type is a
// synchronization object rather than shared data.
func isSyncPrimitive(t types.Type) bool {
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
		return true
	}
	return false
}

// isAtomicType reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Pointer[T], ...), whose every access is atomic.
func isAtomicType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// recordNode snapshots lock context onto n's acquire sites and
// outgoing call edges, and collects its field accesses, all in source
// order within the node.
func (sm *summarizer) recordNode(n *CGNode, s *Summary, st *heldState, node ast.Node, edgesAt map[token.Pos][]*CallEdge, fresh map[types.Object]bool) {
	// Acquire sites, with the classes already held when they fire.
	stProbe := st.clone()
	sm.heldTransfer(n, stProbe, node, func(site LockSite) {
		s.Acquires = append(s.Acquires, site)
	})
	// Releases (recorded without context; deferred releases excluded
	// from the held dataflow but still listed as facts).
	walkShallowParts(node, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		if op, read, isLock := mutexOp(n.Unit.Info, call); isLock && op == lockRelease {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if cls := sm.lockClass(n.Unit, sel); cls != "" {
				s.Releases = append(s.Releases, LockSite{Class: cls, Pos: call.Pos(), Read: read})
			}
		}
	})

	// Call-edge lock context.
	may, must := sortedClasses(st.may), sortedClasses(st.must)
	stamp := func(pos token.Pos) {
		for _, e := range edgesAt[pos] {
			e.HeldMay, e.HeldMust = may, must
		}
	}
	walkShallowParts(node, func(sub ast.Node) {
		if call, ok := sub.(*ast.CallExpr); ok {
			stamp(call.Pos())
		}
	})
	// Function literals are opaque to walkShallow; their CallLit/CallGo
	// edges are keyed by the literal's own position.
	stampLits(node, stamp)

	sm.fieldAccesses(n, s, st, node, fresh)
}

// stampLits visits the first-level function literals of node (without
// entering them) and hands their positions to fn.
func stampLits(node ast.Node, fn func(token.Pos)) {
	ast.Inspect(node, func(sub ast.Node) bool {
		if lit, ok := sub.(*ast.FuncLit); ok && sub != node {
			fn(lit.Pos())
			return false
		}
		return true
	})
}

// fieldAccesses collects node's reads/writes of module struct fields.
func (sm *summarizer) fieldAccesses(n *CGNode, s *Summary, st *heldState, node ast.Node, fresh map[types.Object]bool) {
	info := n.Unit.Info
	must, may := sortedClasses(st.must), sortedClasses(st.may)
	recorded := make(map[*ast.SelectorExpr]bool)
	add := func(sel *ast.SelectorExpr, write, atomic bool) {
		if recorded[sel] {
			return
		}
		recorded[sel] = true
		cls, structCls, ok := sm.fieldClass(n.Unit, sel)
		if !ok {
			return
		}
		root := rootIdent(sel)
		isFresh := false
		if root != nil {
			if obj := identObject(info, root); obj != nil && fresh[obj] {
				isFresh = true
			}
		}
		ft := info.TypeOf(sel)
		s.Fields = append(s.Fields, FieldAccess{
			Class:    cls,
			Struct:   structCls,
			Pos:      sel.Sel.Pos(),
			Write:    write,
			Atomic:   atomic || isAtomicType(ft),
			Fresh:    isFresh,
			HeldMust: must,
			HeldMay:  may,
		})
	}

	// sync/atomic calls on &x.f are atomic accesses; &x.f anywhere else
	// is a conservative write (the address escapes).
	walkShallowParts(node, func(sub ast.Node) {
		switch sub := sub.(type) {
		case *ast.CallExpr:
			pkg, recvName, name, ok := callee(sm.passFor(n.Unit), sub)
			if ok && recvName == "" && pkg == "sync/atomic" && len(sub.Args) > 0 {
				if sel := addrOfSelector(sub.Args[0]); sel != nil {
					add(sel, !strings.HasPrefix(name, "Load"), true)
				}
			}
		case *ast.UnaryExpr:
			if sub.Op == token.AND {
				if sel, ok := ast.Unparen(sub.X).(*ast.SelectorExpr); ok {
					if !underAtomicCall(node, sub, info) {
						add(sel, true, false)
					}
				}
			}
		}
	})
	// Assignment / inc-dec writes.
	switch node := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range node.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				add(sel, true, false)
			}
		}
	case *ast.IncDecStmt:
		if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok {
			add(sel, true, false)
		}
	}
	// Everything else is a read.
	walkShallowParts(node, func(sub ast.Node) {
		if sel, ok := sub.(*ast.SelectorExpr); ok {
			add(sel, false, false)
		}
	})
}

// addrOfSelector unwraps &x.f to the selector, or nil.
func addrOfSelector(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// underAtomicCall reports whether unary &expr appears as an argument of
// a sync/atomic call within node (already handled by the atomic case).
func underAtomicCall(node ast.Node, target *ast.UnaryExpr, info *types.Info) bool {
	found := false
	walkShallowParts(node, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok || found {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		for _, a := range call.Args {
			if ast.Unparen(a) == target {
				found = true
			}
		}
	})
	return found
}

// fieldClass resolves a field selection to ("pkg.T.f", "pkg.T"),
// walking promoted-field paths to the struct that actually declares
// the field. Sync primitives (mutexes, channels, waitgroups) are not
// data and report ok=false.
func (sm *summarizer) fieldClass(u *ModuleUnit, sel *ast.SelectorExpr) (cls, structCls string, ok bool) {
	fobj, isVar := u.Info.Uses[sel.Sel].(*types.Var)
	if !isVar || !fobj.IsField() {
		return "", "", false
	}
	var named *types.Named
	if s, has := u.Info.Selections[sel]; has && len(s.Index()) > 1 {
		// Promoted: walk the embedding path to the declaring struct.
		t := s.Recv()
		idx := s.Index()
		for i, k := range idx {
			n := namedOf(t)
			if n == nil {
				return "", "", false
			}
			st, isStruct := n.Underlying().(*types.Struct)
			if !isStruct || k >= st.NumFields() {
				return "", "", false
			}
			if i == len(idx)-1 {
				named = n
				break
			}
			t = st.Field(k).Type()
		}
	} else {
		named = namedOf(u.Info.TypeOf(sel.X))
	}
	if named == nil {
		return "", "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || !sm.modPkgs[tn.Pkg().Path()] {
		return "", "", false
	}
	if isSyncPrimitive(fobj.Type()) {
		return "", "", false
	}
	structCls = tn.Pkg().Path() + "." + tn.Name()
	return structCls + "." + fobj.Name(), structCls, true
}

// freshLocals finds local variables that only ever hold freshly
// allocated memory: every assignment's RHS is a composite literal,
// &composite, or new(T). Writes through such variables initialize
// unshared state and are exempt from guardedness questions.
func (sm *summarizer) freshLocals(n *CGNode) map[types.Object]bool {
	info := n.Unit.Info
	assigned := make(map[types.Object][]ast.Expr)
	aliased := make(map[types.Object]bool)
	ast.Inspect(n.Body, func(sub ast.Node) bool {
		if _, isLit := sub.(*ast.FuncLit); isLit {
			return false
		}
		switch sub := sub.(type) {
		case *ast.AssignStmt:
			for i, lhs := range sub.Lhs {
				id, isID := ast.Unparen(lhs).(*ast.Ident)
				if !isID || id.Name == "_" {
					continue
				}
				obj := identObject(info, id)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(sub.Rhs) == len(sub.Lhs) {
					rhs = sub.Rhs[i]
				}
				assigned[obj] = append(assigned[obj], rhs)
			}
		case *ast.UnaryExpr:
			// &x escaping disqualifies freshness tracking of x's shape.
			if sub.Op == token.AND {
				if root := rootIdent(sub.X); root != nil {
					if obj := identObject(info, root); obj != nil {
						if _, isSel := ast.Unparen(sub.X).(*ast.SelectorExpr); !isSel {
							aliased[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	fresh := make(map[types.Object]bool)
	for obj, rhss := range assigned {
		if aliased[obj] || len(rhss) == 0 {
			continue
		}
		all := true
		for _, rhs := range rhss {
			if !isFreshAlloc(rhs) {
				all = false
				break
			}
		}
		if all {
			fresh[obj] = true
		}
	}
	return fresh
}

// isFreshAlloc recognizes T{...}, &T{...}, and new(T).
func isFreshAlloc(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isComposite := ast.Unparen(e.X).(*ast.CompositeLit)
			return isComposite
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// --- nondeterminism sources ----------------------------------------------

// wallClockProducers extends the walltime analyzer's source list with
// the timer constructors: a select arm racing a timer makes results
// timing-dependent even when the Time value itself never escapes.
var wallClockProducers = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// nondetSites collects node n's local nondeterminism sources:
// wall-clock reads, global math/rand calls, and map-iteration order
// escaping past the unit maporder exemptions (sorts, commutative
// folds, per-key stores).
func (sm *summarizer) nondetSites(n *CGNode) []NondetSite {
	pass := sm.passFor(n.Unit)
	info := n.Unit.Info
	var out []NondetSite

	ast.Inspect(n.Body, func(sub ast.Node) bool {
		if _, isLit := sub.(*ast.FuncLit); isLit {
			return false // owned by the literal's own node
		}
		switch sub := sub.(type) {
		case *ast.CallExpr:
			if pkg, recv, name, ok := callee(pass, sub); ok && recv == "" && pkg == "time" && wallClockProducers[name] {
				out = append(out, NondetSite{Kind: "walltime", Pos: sub.Pos(), Detail: "time." + name})
			}
		case *ast.SelectorExpr:
			id, isID := sub.X.(*ast.Ident)
			if !isID {
				return true
			}
			pn, isPkg := info.Uses[id].(*types.PkgName)
			if !isPkg {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if obj, isFn := info.Uses[sub.Sel].(*types.Func); isFn && !globalRandAllowed[obj.Name()] {
				out = append(out, NondetSite{Kind: "globalrand", Pos: sub.Pos(), Detail: "rand." + obj.Name()})
			}
		}
		return true
	})

	var owner ast.Node
	if n.Decl != nil {
		owner = n.Decl
	} else {
		owner = n.Lit
	}
	for _, f := range runTaintBody(pass, mapOrderTaintSpec(), owner, n.Body) {
		out = append(out, NondetSite{Kind: "maporder", Pos: f.pos, Detail: "map-iteration order reaches " + f.what})
	}
	return out
}

// --- unknown calls --------------------------------------------------------

// unknownCalls lists the calls whose target the graph cannot see: calls
// through func values with no benign local origin. Benign origins — a
// function literal, a named function or method value, or the result of
// a call with a resolvable callee — are already attributed through
// CallLit/CallRef/call edges on whatever produced them.
func (sm *summarizer) unknownCalls(n *CGNode) []UnknownCall {
	info := n.Unit.Info
	var out []UnknownCall
	ast.Inspect(n.Body, func(sub ast.Node) bool {
		if _, isLit := sub.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return true // CallLit edge exists
		}
		if calleeFuncObj(call, info) != nil {
			return true // resolved: static, method, or interface call
		}
		// Builtins and conversions are not calls through values.
		if id, isID := fun.(*ast.Ident); isID {
			if v, isVar := info.Uses[id].(*types.Var); isVar {
				if !sm.benignFuncVar(n, v) {
					out = append(out, UnknownCall{Pos: call.Pos(), Desc: "call through func value " + id.Name})
				}
			}
			return true
		}
		if sel, isSel := fun.(*ast.SelectorExpr); isSel {
			if _, isPkg := info.Uses[identOrNil(sel.X)].(*types.PkgName); isPkg {
				return true // qualified conversion (pkg.Type(x))
			}
			if tv, has := info.Types[sel]; has && tv.IsType() {
				return true
			}
			out = append(out, UnknownCall{Pos: call.Pos(), Desc: "call through func value " + exprString(sel)})
			return true
		}
		if tv, has := info.Types[fun]; has && tv.IsType() {
			return true // conversion through a type expression
		}
		out = append(out, UnknownCall{Pos: call.Pos(), Desc: "call through computed function value"})
		return true
	})
	return out
}

func identOrNil(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// benignFuncVar reports whether local func-typed variable v only ever
// holds values whose effects the graph already attributes elsewhere:
// function literals (CallLit edges), named function or method
// references (CallRef edges), or the result of a resolvable call
// (attributed to the producing function, which owns the literal it
// returned).
func (sm *summarizer) benignFuncVar(n *CGNode, v *types.Var) bool {
	info := n.Unit.Info
	found := false
	benign := true
	ast.Inspect(n.Body, func(sub ast.Node) bool {
		assign, ok := sub.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, isID := ast.Unparen(lhs).(*ast.Ident)
			if !isID || identObject(info, id) != v {
				continue
			}
			if len(assign.Rhs) != len(assign.Lhs) {
				benign = false // multi-value unpack: origin unknown
				found = true
				continue
			}
			found = true
			rhs := ast.Unparen(assign.Rhs[i])
			switch rhs := rhs.(type) {
			case *ast.FuncLit:
			case *ast.Ident:
				if _, isFn := info.Uses[rhs].(*types.Func); !isFn {
					benign = false
				}
			case *ast.SelectorExpr:
				if _, isFn := info.Uses[rhs.Sel].(*types.Func); !isFn {
					benign = false
				}
			case *ast.CallExpr:
				if calleeFuncObj(rhs, info) == nil {
					benign = false
				}
			default:
				benign = false
			}
		}
		return true
	})
	return found && benign
}

// --- interprocedural fixpoints -------------------------------------------

// maxTracePath bounds witness path length; beyond it the trace is
// truncated (the finding is still reported).
const maxTracePath = 8

// transitiveAcquires propagates lock acquisitions bottom-up over the
// SCC condensation. Within an SCC (mutual recursion) it iterates to a
// fixpoint; the class domain is finite so it terminates.
func (sm *summarizer) transitiveAcquires() {
	for _, n := range sm.g.NodesInOrder() {
		s := sm.ss.ByID[n.ID]
		for _, a := range s.Acquires {
			if _, have := s.TransAcquires[a.Class]; !have {
				s.TransAcquires[a.Class] = &acqTrace{
					Pos:  a.Pos,
					Path: []TraceStep{{Pos: a.Pos, Message: string(n.ID) + " acquires " + shortLockClass(a.Class)}},
				}
			}
		}
	}
	for _, scc := range sm.g.SCCs { // callees before callers
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				s := sm.ss.ByID[n.ID]
				for _, e := range n.Out {
					if !e.Kind.Synchronous() {
						continue
					}
					cs := sm.ss.ByID[e.Callee.ID]
					for cls, t := range cs.TransAcquires {
						if _, have := s.TransAcquires[cls]; have {
							continue
						}
						path := []TraceStep{{Pos: e.Pos, Message: string(n.ID) + " calls " + string(e.Callee.ID)}}
						if len(t.Path) < maxTracePath {
							path = append(path, t.Path...)
						} else {
							path = append(path, t.Path[:maxTracePath]...)
						}
						s.TransAcquires[cls] = &acqTrace{Pos: t.Pos, Path: path}
						changed = true
					}
				}
			}
		}
	}
}

// entryHeld computes each function's entry-must lock set: the classes
// held along EVERY synchronous call path from a root. Roots enter
// lock-free; everything else intersects (caller entry ∪ caller local
// held at the site) over its in-edges. The lattice is finite and the
// transfer monotone (sets only shrink from TOP), so the worklist
// terminates. This is what lets `fooLocked` helpers see their callers'
// lock context instead of looking bare.
func (sm *summarizer) entryHeld() {
	nodes := sm.g.NodesInOrder()
	const top = -1
	entry := make(map[FuncID]map[LockClass]bool, len(nodes))
	state := make(map[FuncID]int, len(nodes)) // top marker
	for _, n := range nodes {
		if n.Root {
			entry[n.ID] = map[LockClass]bool{}
		} else {
			state[n.ID] = top
		}
	}
	changedAny := true
	for iter := 0; changedAny && iter < len(nodes)+2; iter++ {
		changedAny = false
		for _, n := range nodes {
			if n.Root {
				continue
			}
			var acc map[LockClass]bool
			sawCaller := false
			for _, e := range n.In {
				if !e.Kind.Synchronous() {
					continue
				}
				callerEntry, ok := entry[e.Caller.ID]
				if !ok {
					continue // caller still TOP: ignore this round
				}
				held := make(map[LockClass]bool, len(callerEntry)+len(e.HeldMust))
				for c := range callerEntry {
					held[c] = true
				}
				for _, c := range e.HeldMust {
					held[c] = true
				}
				if !sawCaller {
					acc, sawCaller = held, true
					continue
				}
				for c := range acc {
					if !held[c] {
						delete(acc, c)
					}
				}
			}
			if !sawCaller {
				continue // all callers TOP (or none): stay TOP this round
			}
			prev, had := entry[n.ID]
			if !had || !sameClassSet(prev, acc) {
				entry[n.ID] = acc
				changedAny = true
			}
		}
	}
	for _, n := range nodes {
		s := sm.ss.ByID[n.ID]
		if e, ok := entry[n.ID]; ok {
			s.EntryMust = sortedClasses(e)
		}
		// Never-computed (unreachable, non-root): conservatively empty.
	}
}

func sameClassSet(a, b map[LockClass]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if !b[c] {
			return false
		}
	}
	return true
}

// shortLockClass trims the module path prefix for readable messages:
// "acsel/internal/query.Service.mu" -> "query.Service.mu".
func shortLockClass(c LockClass) string {
	s := string(c)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// sortSummary puts every section into deterministic order.
func sortSummary(s *Summary) {
	sort.Slice(s.Acquires, func(i, j int) bool { return lockSiteLess(s.Acquires[i], s.Acquires[j]) })
	sort.Slice(s.Releases, func(i, j int) bool { return lockSiteLess(s.Releases[i], s.Releases[j]) })
	sort.Slice(s.Fields, func(i, j int) bool {
		a, b := s.Fields[i], s.Fields[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Class < b.Class
	})
	sort.Slice(s.Nondet, func(i, j int) bool {
		a, b := s.Nondet[i], s.Nondet[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Kind < b.Kind
	})
	sort.Slice(s.Unknown, func(i, j int) bool { return s.Unknown[i].Pos < s.Unknown[j].Pos })
	sort.Slice(s.Spawns, func(i, j int) bool { return s.Spawns[i] < s.Spawns[j] })
}

func lockSiteLess(a, b LockSite) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Class < b.Class
}

// --- textual summary format ----------------------------------------------

// The line-based encoding below is the summaries' interchange format:
// `acsel-lint -summaries` dumps it, FuzzSummaryRoundTrip holds it
// canonical (decode ∘ encode ∘ decode is the identity on valid input),
// and summaryFormatVersion participates in the lint result cache key so
// cached diagnostics from an older summary shape never survive an
// upgrade.

// summaryFormatVersion identifies the encoding below AND the semantics
// of summary computation; bump on any change to either.
const summaryFormatVersion = 1

// EncodeSummary renders s in the canonical line format. Positions are
// raw token.Pos offsets: stable within one FileSet, opaque otherwise.
func EncodeSummary(s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary %s\n", s.ID)
	var lines []string
	emit := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, a := range s.Acquires {
		emit("acquire %s %d %s held=%s", a.Class, a.Pos, rwFlag(a.Read), joinClasses(a.HeldMay))
	}
	for _, r := range s.Releases {
		emit("release %s %d %s", r.Class, r.Pos, rwFlag(r.Read))
	}
	for _, f := range s.Fields {
		emit("field %s %d %s must=%s may=%s", f.Class, f.Pos, accessFlags(f), joinClasses(f.HeldMust), joinClasses(f.HeldMay))
	}
	for _, nd := range s.Nondet {
		emit("nondet %s %d %s", nd.Kind, nd.Pos, nd.Detail)
	}
	for _, u := range s.Unknown {
		emit("unknown %d %s", u.Pos, u.Desc)
	}
	for _, p := range s.Spawns {
		emit("spawn %d", p)
	}
	for _, c := range sortedTransClasses(s.TransAcquires) {
		emit("trans %s %d", c, s.TransAcquires[c].Pos)
	}
	if len(s.EntryMust) > 0 {
		emit("entry %s", joinClasses(s.EntryMust))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedTransClasses(m map[LockClass]*acqTrace) []LockClass {
	out := make([]LockClass, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func rwFlag(read bool) string {
	if read {
		return "r"
	}
	return "w"
}

func accessFlags(f FieldAccess) string {
	flags := "r"
	if f.Write {
		flags = "w"
	}
	if f.Atomic {
		flags += "a"
	}
	if f.Fresh {
		flags += "f"
	}
	return flags
}

func joinClasses(cs []LockClass) string {
	if len(cs) == 0 {
		return "-"
	}
	ss := make([]string, len(cs))
	for i, c := range cs {
		ss[i] = string(c)
	}
	return strings.Join(ss, ",")
}

func splitClasses(s string) ([]LockClass, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]LockClass, 0, len(parts))
	for _, p := range parts {
		if p == "" || p == "-" {
			return nil, fmt.Errorf("lint: empty lock class in %q", s)
		}
		out = append(out, LockClass(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// DecodeSummary parses the canonical format back into a Summary,
// canonicalizing section order as it goes. Derived trans/entry lines
// are restored as facts (with empty witness paths).
func DecodeSummary(text string) (*Summary, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("lint: empty summary")
	}
	header := lines[0]
	id, ok := strings.CutPrefix(header, "summary ")
	if !ok || id == "" || strings.ContainsAny(id, " \t") {
		return nil, fmt.Errorf("lint: bad summary header %q", header)
	}
	s := &Summary{ID: FuncID(id), TransAcquires: make(map[LockClass]*acqTrace)}
	parsePos := func(tok string) (token.Pos, error) {
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 {
			return token.NoPos, fmt.Errorf("lint: bad position %q", tok)
		}
		return token.Pos(v), nil
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil, fmt.Errorf("lint: blank summary line")
		}
		switch fields[0] {
		case "acquire":
			if len(fields) != 5 || !strings.HasPrefix(fields[4], "held=") {
				return nil, fmt.Errorf("lint: bad acquire line %q", line)
			}
			pos, err := parsePos(fields[2])
			if err != nil {
				return nil, err
			}
			if fields[3] != "r" && fields[3] != "w" {
				return nil, fmt.Errorf("lint: bad rw flag %q", fields[3])
			}
			held, err := splitClasses(strings.TrimPrefix(fields[4], "held="))
			if err != nil {
				return nil, err
			}
			s.Acquires = append(s.Acquires, LockSite{Class: LockClass(fields[1]), Pos: pos, Read: fields[3] == "r", HeldMay: held})
		case "release":
			if len(fields) != 4 {
				return nil, fmt.Errorf("lint: bad release line %q", line)
			}
			pos, err := parsePos(fields[2])
			if err != nil {
				return nil, err
			}
			if fields[3] != "r" && fields[3] != "w" {
				return nil, fmt.Errorf("lint: bad rw flag %q", fields[3])
			}
			s.Releases = append(s.Releases, LockSite{Class: LockClass(fields[1]), Pos: pos, Read: fields[3] == "r"})
		case "field":
			if len(fields) != 6 || !strings.HasPrefix(fields[4], "must=") || !strings.HasPrefix(fields[5], "may=") {
				return nil, fmt.Errorf("lint: bad field line %q", line)
			}
			pos, err := parsePos(fields[2])
			if err != nil {
				return nil, err
			}
			flags := fields[3]
			if len(flags) == 0 || (flags[0] != 'r' && flags[0] != 'w') {
				return nil, fmt.Errorf("lint: bad access flags %q", flags)
			}
			for _, c := range flags[1:] {
				if c != 'a' && c != 'f' {
					return nil, fmt.Errorf("lint: bad access flags %q", flags)
				}
			}
			must, err := splitClasses(strings.TrimPrefix(fields[4], "must="))
			if err != nil {
				return nil, err
			}
			may, err := splitClasses(strings.TrimPrefix(fields[5], "may="))
			if err != nil {
				return nil, err
			}
			cls := fields[1]
			dot := strings.LastIndex(cls, ".")
			if dot <= 0 {
				return nil, fmt.Errorf("lint: bad field class %q", cls)
			}
			s.Fields = append(s.Fields, FieldAccess{
				Class:    cls,
				Struct:   cls[:dot],
				Pos:      pos,
				Write:    flags[0] == 'w',
				Atomic:   strings.ContainsRune(flags, 'a'),
				Fresh:    strings.ContainsRune(flags, 'f'),
				HeldMust: must,
				HeldMay:  may,
			})
		case "nondet":
			if len(fields) < 3 {
				return nil, fmt.Errorf("lint: bad nondet line %q", line)
			}
			switch fields[1] {
			case "walltime", "globalrand", "maporder":
			default:
				return nil, fmt.Errorf("lint: bad nondet kind %q", fields[1])
			}
			pos, err := parsePos(fields[2])
			if err != nil {
				return nil, err
			}
			detail := ""
			if len(fields) > 3 {
				detail = strings.Join(fields[3:], " ")
			}
			s.Nondet = append(s.Nondet, NondetSite{Kind: fields[1], Pos: pos, Detail: detail})
		case "unknown":
			if len(fields) < 2 {
				return nil, fmt.Errorf("lint: bad unknown line %q", line)
			}
			pos, err := parsePos(fields[1])
			if err != nil {
				return nil, err
			}
			desc := ""
			if len(fields) > 2 {
				desc = strings.Join(fields[2:], " ")
			}
			s.Unknown = append(s.Unknown, UnknownCall{Pos: pos, Desc: desc})
		case "spawn":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lint: bad spawn line %q", line)
			}
			pos, err := parsePos(fields[1])
			if err != nil {
				return nil, err
			}
			s.Spawns = append(s.Spawns, pos)
		case "trans":
			if len(fields) != 3 {
				return nil, fmt.Errorf("lint: bad trans line %q", line)
			}
			pos, err := parsePos(fields[2])
			if err != nil {
				return nil, err
			}
			s.TransAcquires[LockClass(fields[1])] = &acqTrace{Pos: pos}
		case "entry":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lint: bad entry line %q", line)
			}
			entry, err := splitClasses(fields[1])
			if err != nil {
				return nil, err
			}
			if entry == nil {
				return nil, fmt.Errorf("lint: empty entry line %q", line)
			}
			s.EntryMust = entry
		default:
			return nil, fmt.Errorf("lint: unknown summary line kind %q", fields[0])
		}
	}
	sortSummary(s)
	return s, nil
}
