package fixture

import (
	"context"
	"time"
)

// Deferred is the canonical correct form.
func Deferred() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	work(ctx)
}

// AllPaths calls cancel explicitly on every path to return; the CFG
// check proves no path escapes it.
func AllPaths(ok bool) {
	ctx, cancel := context.WithCancel(context.Background())
	if ok {
		work(ctx)
		cancel()
		return
	}
	cancel()
}

// Handed passes the cancel function elsewhere; responsibility for
// calling it escapes this function.
func Handed() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	register(cancel)
	return ctx
}

// DeferredClosure cancels inside a deferred cleanup closure.
func DeferredClosure() {
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
	}()
	work(ctx)
}

func register(f context.CancelFunc) {}
func work(ctx context.Context)      {}
