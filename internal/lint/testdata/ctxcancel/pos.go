package fixture

import (
	"context"
	"time"
)

// Discarded drops the cancel function outright: the timer leaks until
// the parent context is done.
func Discarded() context.Context {
	ctx, _ := context.WithTimeout(context.Background(), time.Second)
	return ctx
}

// EarlyReturn cancels late, but the early return path skips it.
func EarlyReturn(ready bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	if !ready {
		return nil
	}
	use(ctx)
	cancel()
	return nil
}

func use(ctx context.Context) {}
