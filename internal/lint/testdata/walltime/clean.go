package fixture

import "time"

type histogram struct{}

func (h *histogram) Observe(v float64) {}

// Timed reports elapsed time to a metrics sink — exactly where
// wall-clock readings belong, so the analyzer stays quiet.
func Timed(h *histogram) {
	start := time.Now()
	work()
	h.Observe(time.Since(start).Seconds())
}

// Budget uses wall time only for control flow, never in an artifact.
func Budget(deadline time.Duration) int {
	start := time.Now()
	n := 0
	for time.Since(start) < deadline {
		n++
		work()
	}
	return n
}

func work() {}
