package fixture

import (
	"fmt"
	"time"
)

type model struct {
	TrainedAt time.Time
	Elapsed   float64
}

// Stamp embeds the wall clock in model state.
func Stamp(m *model) {
	m.TrainedAt = time.Now()
}

// Record stores elapsed seconds into exported state.
func Record(m *model, start time.Time) {
	m.Elapsed = time.Since(start).Seconds()
}

// Accumulate keeps a wall-clock running total in struct state; unlike
// map-order counters there is no commutative exemption, because the
// total itself is nondeterministic.
func Accumulate(m *model, start time.Time) {
	m.Elapsed += time.Since(start).Seconds()
}

// Export renders a timestamp into the artifact body.
func Export() string {
	return fmt.Sprintf("generated %s", time.Now())
}
