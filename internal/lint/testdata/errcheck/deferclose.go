package fixture

import (
	"io"
	"os"
)

// WriteOut discards the deferred Close error on a written file: a short
// write surfaces exactly there and is lost.
func WriteOut(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// AppendLog opens writable through os.OpenFile flags.
func AppendLog(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// ReadIn keeps the deferred idiom on a read-only file: Close after a
// read cannot lose data, so reaching definitions exempt it.
func ReadIn(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// ReadOnlyFlags is exempt through constant-folded OpenFile flags.
func ReadOnlyFlags(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// Named captures the close error in a named return: the corrected
// pattern the diagnostic recommends.
func Named(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}
