// Suppression cases for the errcheck analyzer.
package fixture

import "os"

func bestEffortCleanup() {
	//lint:ignore errcheck best-effort cleanup; the file may already be gone
	os.Remove("scratch")
}
