// errcheck skips _test.go files: tests drop cleanup errors freely.
package fixture

import "os"

func testCleanup() {
	os.Remove("scratch")
}
