// Positive cases for the errcheck analyzer.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func apply() error { return errors.New("rejected") }

func pair() (int, error) { return 0, nil }

func drops() {
	apply()          // dropped sole error
	pair()           // dropped trailing error
	os.Remove("tmp") // dropped stdlib error
}

func explicit() {
	_ = apply()   // explicit drop: allowed
	_, _ = pair() // explicit drop: allowed
	if err := apply(); err != nil {
		fmt.Println(err)
	}
}

func allowlisted() {
	fmt.Println("terminal printing is conventionally unchecked")
	var b strings.Builder
	b.WriteString("never fails by contract")
	fmt.Print(b.String())
}
