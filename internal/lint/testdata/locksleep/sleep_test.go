// Test-file cases for the locksleep analyzer: sleeping to "wait for
// the goroutine" is flagged; channel waits are the fix.
package fixture

import (
	"sync"
	"time"
)

func waitBadly(done chan struct{}) {
	go func() { close(done) }()
	time.Sleep(50 * time.Millisecond)
}

func waitWell(done chan struct{}) {
	go func() { close(done) }()
	<-done
}

func suppressedSleep() {
	//lint:ignore locksleep deliberate wall-clock pacing to exercise the sampling window
	time.Sleep(10 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Wait()
}
