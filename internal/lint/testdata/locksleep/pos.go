// Positive cases for the locksleep analyzer: lock-bearing values
// copied by parameter, receiver, or assignment.
package fixture

import (
	"sync"
	"time"
)

type guarded struct {
	mu  sync.Mutex
	val int
}

func byValueParam(g guarded) int { // copies g.mu
	return g.val
}

func (g guarded) byValueReceiver() int { // copies g.mu
	return g.val
}

func byPointer(g *guarded) int { // fine
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

func assignCopies(g *guarded) {
	cp := *g // copies the mutex out of live storage
	mu := g.mu
	_ = cp
	_ = mu
}

func freshValues() {
	g := guarded{val: 1} // composite literal: a fresh value, fine
	wg := newGroup()     // function result: a move, fine
	_ = g
	_ = wg
}

func newGroup() sync.WaitGroup { return sync.WaitGroup{} }

// time.Sleep outside _test.go files is not locksleep's business
// (pacing a sampling loop is legitimate).
func pace() { time.Sleep(time.Millisecond) }
