// Clean cases for the units analyzer.
package fixture

func clean(aWatts, bWatts, tSeconds float64) float64 {
	sum := aWatts + bWatts
	energy := sum * tSeconds
	plain := sum + 1.5
	return energy + plain
}
