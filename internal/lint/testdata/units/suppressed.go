// Suppression cases for the units analyzer.
package fixture

func suppressed(budgetWatts, spentJoules float64) float64 {
	//lint:ignore units both operands are pre-normalized to the same scale here
	return budgetWatts - spentJoules
}
