// Positive cases for the units analyzer.
package fixture

func mismatches(powerWatts, energyJoules, windowSeconds, freqHz float64) float64 {
	a := powerWatts + energyJoules    // watts + joules
	b := energyJoules - windowSeconds // joules - seconds
	ok := windowSeconds < freqHz      // seconds vs hz
	c := powerWatts * windowSeconds   // conversion: fine
	d := energyJoules / windowSeconds // conversion: fine
	e := powerWatts + 3.0             // unit + unknown: fine
	f := powerWatts - budgetWatts()   // same unit: fine
	g := freqMHz() + baseHz()         // MHz and Hz share a dimension
	if ok {
		return a + b
	}
	return c + d + e + f + g
}

func budgetWatts() float64 { return 95 }

func freqMHz() float64 { return 3700 }

func baseHz() float64 { return 100e6 }

type node struct {
	CapWatts   float64
	DrawJoules float64
}

func fields(n node) bool { return n.CapWatts > n.DrawJoules }

func snake(cap_watts, used_joules float64) float64 { return cap_watts + used_joules }
