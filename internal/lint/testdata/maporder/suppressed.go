package fixture

import "fmt"

// DebugDump deliberately prints in map order; the directive records why
// that is acceptable.
func DebugDump(m map[string]int) {
	for k, v := range m {
		//lint:ignore maporder debug output, ordering is irrelevant
		fmt.Println(k, v)
	}
}
