package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Emit prints map keys in iteration order: nondeterministic output.
func Emit(m map[string]float64) {
	for k := range m {
		fmt.Println(k)
	}
}

// Keys returns keys in map order without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Render writes map-ordered values into a builder.
func Render(m map[string]string) string {
	var b strings.Builder
	for _, v := range m {
		b.WriteString(v)
	}
	return b.String()
}

// SortedTooLate prints the partial slice inside the loop; the sort
// below only launders the final return.
func SortedTooLate(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
		fmt.Println(out)
	}
	sort.Strings(out)
	return out
}

type summary struct{ First string }

// Store stashes a map-ordered value into struct state.
func Store(m map[string]int, s *summary) {
	for k := range m {
		s.First = k
	}
}
