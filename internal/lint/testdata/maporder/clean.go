package fixture

import (
	"fmt"
	"sort"
)

// SortedKeys is the canonical sorted-after-collect pattern: the sort is
// a strong clean re-definition.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum folds commutatively; iteration order cannot matter.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Transform builds a same-keyed map; per-key stores are order-free.
func Transform(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v * 2
	}
	return dst
}

// Size depends only on the element count.
func Size(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

type counters struct{ Total int }

// Tally sums into a field; commutative compound stores stay clean.
func Tally(m map[string]int, c *counters) {
	for _, v := range m {
		c.Total += v
	}
}

// PrintSorted sorts a collected copy via sort.Slice before printing.
func PrintSorted(m map[string]float64) {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	fmt.Println(vals)
}
