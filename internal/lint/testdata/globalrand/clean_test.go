// globalrand skips _test.go files: shuffling inputs in a test helper
// is not a reproducibility hazard for the model pipeline.
package fixture

import "math/rand"

func shuffleInput(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
