// Positive cases for the globalrand analyzer.
package fixture

import "math/rand"

func draw() float64 {
	rand.Seed(42) // seeding the global source is still global state
	n := rand.Intn(10)
	return rand.Float64() * float64(n)
}

func seeded() float64 {
	rng := rand.New(rand.NewSource(7)) // constructors are allowed
	return rng.Float64()               // methods on *rand.Rand are allowed
}

func typeRef(r *rand.Rand) []int { // referencing the type is allowed
	return r.Perm(4)
}
