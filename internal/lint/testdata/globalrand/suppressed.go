// Suppression cases for the globalrand analyzer.
package fixture

import "math/rand"

func jitter() float64 {
	//lint:ignore globalrand backoff jitter does not need reproducibility
	return rand.Float64()
}
