// Suppression cases for the floatcmp analyzer.
package fixture

func suppressedAbove(a, b float64) bool {
	//lint:ignore floatcmp sentinel comparison is exact by construction
	return a == b
}

func suppressedInline(a, b float64) bool {
	return a == b //lint:ignore floatcmp deliberate bit-exact check
}

func wrongCheckName(a, b float64) bool {
	//lint:ignore units this directive names a different check and does not suppress floatcmp
	return a == b
}
