// floatcmp skips _test.go files: determinism tests legitimately
// compare floats bit-exactly.
package fixture

func exactInTest(a, b float64) bool { return a == b }
