// Positive cases for the floatcmp analyzer.
package fixture

func equal(a, b float64) bool { return a == b }

func notEqual(a, b float32) bool { return a != b }

func mixedConst(a float64) bool { return a == 0.5 }

// nanIdiom is the portable NaN test and must not be flagged.
func nanIdiom(x float64) bool { return x != x }

// constFold compares two constants; the compiler decides, not runtime.
func constFold() bool { return 1.0 == 2.0 }

// ints are not floats.
func intCmp(a, b int) bool { return a == b }
