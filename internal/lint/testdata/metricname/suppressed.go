// Suppression cases for the metricname analyzer.
package metrics

func NewCounter(name, help string) int { return 0 }

//lint:ignore metricname grandfathered dashboard name kept for query continuity
var legacy = NewCounter("acsel_legacy_steps", "pre-convention family")
