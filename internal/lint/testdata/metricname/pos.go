// Positive cases for the metricname analyzer. The stubs mirror the
// acsel/internal/metrics constructor signatures; fixtures type-check
// standalone, so the package is named metrics and declares its own.
package metrics

type Counter struct{}
type CounterVec struct{}
type Gauge struct{}
type GaugeVec struct{}
type Histogram struct{}
type HistogramVec struct{}

func NewCounter(name, help string) *Counter { return nil }
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return nil
}
func NewGauge(name, help string) *Gauge { return nil }
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return nil
}
func NewHistogram(name, help string, buckets []float64) *Histogram { return nil }
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}

var (
	bad1 = NewCounter("acsel_rts_steps", "counter without _total")
	bad2 = NewCounter("Acsel_Steps_total", "not snake_case")
	bad3 = NewGauge("acsel_divergence", "gauge without a unit suffix")
	bad4 = NewGauge("acsel_fallbacks_total", "gauge with the counter suffix")
	bad5 = NewHistogram("acsel_phase", "histogram without a unit suffix", nil)
	bad6 = NewCounterVec("acsel_faults_total", "bad label name", "Bad-Label")

	ok1 = NewCounter("acsel_rts_steps_total", "fine")
	ok2 = NewGauge("acsel_model_divergence_ratio", "fine")
	ok3 = NewHistogram("acsel_phase_seconds", "fine", nil)
	ok4 = NewHistogramVec("acsel_run_seconds", "fine", nil, "device", "phase")
	ok5 = NewGaugeVec("acsel_draw_watts", "fine", "domain")
)

// Dynamic names cannot be checked statically and are skipped.
var dynamicName = "runtime_chosen"
var ok6 = NewCounter(dynamicName, "skipped")
