// metricname skips _test.go files: tests register scratch families
// under throwaway names that never reach a dashboard.
package metrics

func NewCounter(name, help string) int { return 0 }

var scratch = NewCounter("whatever Name", "unchecked in tests")
