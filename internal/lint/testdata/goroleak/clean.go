package fixture

import "sync"

// WorkerPool is the repository's canonical discipline: WaitGroup.Add
// and the semaphore acquire both happen before the go statement.
func WorkerPool(items []int) []int {
	out := make([]int, len(items))
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for i := range items {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = work(i)
		}(i)
	}
	wg.Wait()
	return out
}

// AlwaysDrained sends on an unbuffered channel the parent receives
// from on every path to return.
func AlwaysDrained() int {
	ch := make(chan int)
	go func() {
		ch <- work(0)
	}()
	return <-ch
}

// Buffered result channels cannot block the sender.
func Buffered(n int) int {
	ch := make(chan int, 8)
	go func() {
		ch <- work(n)
	}()
	return <-ch
}

// SelectEscape sends under a select with a default clause: the
// goroutine can always make progress.
func SelectEscape() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// Escaping channels handed to another function may be drained by code
// outside this analysis window.
func Escaping() {
	ch := make(chan int)
	go func() {
		ch <- work(2)
	}()
	drain(ch)
}

func drain(ch chan int) { <-ch }
func work(i int) int    { return i }
