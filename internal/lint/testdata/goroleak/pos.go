package fixture

import "sync"

// LeakySend spawns a goroutine sending on an unbuffered channel that
// the parent skips draining on the error path: the goroutine blocks on
// the send forever.
func LeakySend(fail bool) int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	if fail {
		return 0
	}
	return <-ch
}

// AddInside calls WaitGroup.Add inside the goroutine: Wait in the
// parent can observe a zero counter before the goroutine runs.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			defer wg.Done()
			compute()
		}()
	}
	wg.Wait()
}

// AcquireInside grabs the semaphore slot inside the goroutine, so the
// whole fan-out materializes before any slot limits it.
func AcquireInside(items []int) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			compute()
		}()
	}
	wg.Wait()
}

func compute() int { return 1 }
