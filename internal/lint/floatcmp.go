package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatCmp flags == and != between floating-point expressions.
// The model/stat pipeline (regression fits, Pareto frontiers, k-medoid
// costs) accumulates rounding error, so exact equality is almost always
// a latent bug; compare with stats.AlmostEqual or an explicit epsilon.
//
// Deliberate exact comparisons do exist — sort tie-breaks, NaN checks,
// bit-exact determinism tests — so the check skips the x != x NaN
// idiom, constant-only comparisons and _test.go files, and anything
// else can be suppressed with //lint:ignore floatcmp <reason>.
var AnalyzerFloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag == and != on floating-point expressions in non-test code",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// x != x / x == x is the portable NaN test; leave it alone.
			if exprString(be.X) == exprString(be.Y) {
				return true
			}
			// Two constants compare exactly at compile time.
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use stats.AlmostEqual or an explicit epsilon", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
