package lint

import (
	"testing"
)

// TestRunExternalTestPackageSeesExportBridge pins the go tool's test
// compilation model: an external foo_test package resolves its import
// of foo to the in-package test variant, so export_test.go bridges are
// visible — including through a module sibling that itself imports the
// package under test (whose types must share one identity with the
// direct import).
func TestRunExternalTestPackageSeesExportBridge(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"svc/svc.go": `package svc

type Service struct{ n int }

func (s *Service) bump() { s.n++ }
`,
		"svc/export_test.go": `package svc

// Bump is the test-only bridge to the unexported method.
func (s *Service) Bump() { s.bump() }
`,
		// The external test uses the bridge directly AND hands a
		// *svc.Service to the driver sibling: both must see the same
		// svc package or the call does not type-check.
		"svc/svc_x_test.go": `package svc_test

import (
	"testing"

	"sandbox/driver"
	"sandbox/svc"
)

func TestBridge(t *testing.T) {
	s := &svc.Service{}
	s.Bump()
	driver.Drive(s)
}
`,
		"driver/driver.go": `package driver

import "sandbox/svc"

func Drive(s *svc.Service) {}
`,
		// A third package importing both siblings: after svc's pinned
		// external-test check, driver and svc must re-resolve to their
		// plain variants with consistent identities.
		"app/app.go": `package app

import (
	"sandbox/driver"
	"sandbox/svc"
)

func Use() { driver.Drive(&svc.Service{}) }
`,
	})
	if _, err := Run(root, nil, All()); err != nil {
		t.Fatalf("Run over export_test module: %v", err)
	}
}

// TestRunExternalTestBridgeStaysOutOfPlainImports asserts the inverse:
// the augmented variant must not leak into the cache — a package that
// imports svc normally cannot see the test-only bridge.
func TestRunExternalTestBridgeStaysOutOfPlainImports(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"svc/svc.go": `package svc

type Service struct{ n int }

func (s *Service) bump() { s.n++ }
`,
		"svc/export_test.go": `package svc

func (s *Service) Bump() { s.bump() }
`,
		"svc/svc_x_test.go": `package svc_test

import (
	"testing"

	"sandbox/svc"
)

func TestBridge(t *testing.T) { (&svc.Service{}).Bump() }
`,
		// zapp sorts after svc, so it is loaded after the pinned
		// check; Bump must be undefined for it.
		"zapp/app.go": `package zapp

import "sandbox/svc"

func Use() { (&svc.Service{}).Bump() }
`,
	})
	if _, err := Run(root, nil, All()); err == nil {
		t.Fatal("plain import saw the export_test bridge")
	}
}
