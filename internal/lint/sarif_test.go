package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:     token.Position{Filename: "/mod/internal/rts/rts.go", Line: 12, Column: 3},
			Check:   "maporder",
			Message: "value ordered by map iteration reaches output",
		},
		{
			Pos:     token.Position{Filename: "/mod/cmd/tool/main.go", Line: 40, Column: 2},
			Check:   "errcheck",
			Message: "error discarded",
		},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, "/mod", diags, Suite{Unit: All()}); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "acsel-lint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer must appear as a rule, plus the reserved "lint"
	// rule for malformed directives.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Fatalf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "maporder" || first.Level != "error" {
		t.Fatalf("first result = %+v", first)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/rts/rts.go" {
		t.Fatalf("URI = %q, want module-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Fatalf("region = %+v", loc.Region)
	}

	// Determinism: a second emission is byte-identical.
	var b2 strings.Builder
	if err := WriteSARIF(&b2, "/mod", diags, Suite{Unit: All()}); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("SARIF output not deterministic")
	}
}
