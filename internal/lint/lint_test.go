package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestAnalyzerGolden runs every analyzer over its fixture directory and
// compares the formatted findings of each fixture file against its
// .golden sibling. A missing or empty golden file asserts the fixture
// is clean. Run with -update to regenerate.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("no fixture dir for analyzer %s: %v", a.Name, err)
			}
			ran := false
			for _, e := range ents {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				ran = true
				fixture := filepath.Join(dir, e.Name())
				t.Run(e.Name(), func(t *testing.T) {
					got := formatForGolden(checkFixture(t, a, fixture))
					goldenPath := fixture + ".golden"
					if *update {
						if got == "" {
							os.Remove(goldenPath)
						} else if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want := ""
					if data, err := os.ReadFile(goldenPath); err == nil {
						want = string(data)
					}
					if got != want {
						t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", fixture, got, want)
					}
				})
			}
			if !ran {
				t.Fatalf("analyzer %s has no fixtures", a.Name)
			}
		})
	}
}

// checkFixture type-checks one standalone fixture file and runs a
// single analyzer (plus the suppression layer) over it.
func checkFixture(t *testing.T, a *Analyzer, path string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	return runUnit(fset, []*ast.File{f}, pkg, info, []*Analyzer{a})
}

// formatForGolden renders diagnostics without the filename so golden
// files stay machine-independent.
func formatForGolden(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%d:%d: [%s] %s\n", d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	return b.String()
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	subset, err := ByName("floatcmp, units")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "floatcmp" || subset[1].Name != "units" {
		t.Fatalf("ByName subset = %v", subset)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName accepted an unknown check")
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		checks []string
		ok     bool
	}{
		{"floatcmp deliberate exact comparison", []string{"floatcmp"}, true},
		{"floatcmp,units normalized beforehand", []string{"floatcmp", "units"}, true},
		{"floatcmp", nil, false},             // no reason
		{"", nil, false},                     // empty
		{", missing check name", nil, false}, // empty check in list
	}
	for _, c := range cases {
		checks, _, ok := splitDirective(c.in)
		if ok != c.ok {
			t.Errorf("splitDirective(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && strings.Join(checks, "+") != strings.Join(c.checks, "+") {
			t.Errorf("splitDirective(%q) checks = %v, want %v", c.in, checks, c.checks)
		}
	}
}

// TestMalformedDirective verifies that an ignore directive without a
// reason is itself reported and does not suppress anything.
func TestMalformedDirective(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`
	ds := checkSource(t, src, All())
	var got []string
	for _, d := range ds {
		got = append(got, d.Check)
	}
	sort.Strings(got)
	if strings.Join(got, "+") != "floatcmp+lint" {
		t.Fatalf("checks = %v, want the finding plus the malformed-directive report", got)
	}
}

// TestSuppressionDistance verifies a directive two lines above the
// finding does not suppress it.
func TestSuppressionDistance(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	//lint:ignore floatcmp too far away to apply

	return a == b
}
`
	ds := checkSource(t, src, []*Analyzer{AnalyzerFloatCmp})
	if len(ds) != 1 || ds[0].Check != "floatcmp" {
		t.Fatalf("diagnostics = %v, want one unsuppressed floatcmp finding", ds)
	}
}

func checkSource(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return runUnit(fset, []*ast.File{f}, pkg, info, analyzers)
}

// TestRunModule exercises the whole pipeline — module discovery,
// cross-package type-checking, analysis, sorting — on a synthetic
// two-package module.
func TestRunModule(t *testing.T) {
	root := t.TempDir()
	writeFile(t, root, "go.mod", "module sandbox\n\ngo 1.22\n")
	writeFile(t, root, "lib/lib.go", `package lib

// PowerWatts is a sample measurement.
func PowerWatts() float64 { return 42 }
`)
	writeFile(t, root, "app/app.go", `package app

import (
	"math/rand"

	"sandbox/lib"
)

func Draw(energyJoules float64) float64 {
	return lib.PowerWatts() + energyJoules + rand.Float64()
}
`)

	diags, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Check)
	}
	sort.Strings(got)
	if strings.Join(got, "+") != "globalrand+units" {
		t.Fatalf("checks = %v, want one units and one globalrand finding", got)
	}

	// Pattern selection: linting only lib must be clean.
	diags, err = Run(root, []string{"./lib"}, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("lib alone should be clean, got %v", diags)
	}
}

func writeFile(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
