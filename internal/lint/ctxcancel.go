package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxCancel flags context.WithCancel/WithTimeout/WithDeadline
// calls whose cancel function is discarded or not guaranteed to run:
// no defer cancel(), and at least one control-flow path to function
// exit that never calls it. A leaked cancel pins the context's timer
// and goroutine for the parent's lifetime — exactly the kind of slow
// resource leak a long-running power-capping runtime cannot afford.
//
// The all-paths question is answered on the CFG, so an early return
// between the With* call and a late cancel() is caught while
// cancel-on-every-branch code stays clean. Where it is syntactically
// safe, the finding carries a suggested fix inserting `defer cancel()`
// immediately after the assignment; acsel-lint -fix applies it.
var AnalyzerCtxCancel = &Analyzer{
	Name:    "ctxcancel",
	Doc:     "flag context cancel functions that are discarded or skipped on some path to return",
	Version: 1,
	Run:     runCtxCancel,
}

// ctxConstructors lists the context functions returning a CancelFunc.
var ctxConstructors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
}

func runCtxCancel(pass *Pass) {
	for _, f := range pass.Files {
		inBlock := stmtsDirectlyInBlocks(f)
		FuncBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
			runCtxCancelBody(pass, body, inBlock)
		})
	}
}

func runCtxCancelBody(pass *Pass, body *ast.BlockStmt, inBlock map[ast.Stmt]bool) {
	cfg := BuildCFG(body)
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
				continue
			}
			call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			pkg, recv, name, resolved := callee(pass, call)
			if !resolved || recv != "" || pkg != "context" || !ctxConstructors[name] {
				continue
			}
			cancelIdent, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident)
			if !ok {
				continue
			}
			if cancelIdent.Name == "_" {
				pass.Reportf(assign.Pos(), "cancel function of context.%s is discarded; the context (and its timer) leaks until the parent is done", name)
				continue
			}
			obj := identObject(pass.TypesInfo, cancelIdent)
			if obj == nil {
				continue
			}
			if cancelHandled(pass, cfg, obj) {
				continue
			}
			if !existsPathAvoiding(cfg, b, i+1, func(m ast.Node) bool { return nodeCallsObj(pass, m, obj) }) {
				continue // every path calls cancel() explicitly
			}
			d := Diagnostic{
				Pos:     pass.Fset.Position(assign.Pos()),
				Check:   pass.check,
				Message: "cancel function from context." + name + " is not deferred and some path returns without calling it",
			}
			if inBlock[assign] {
				// Safe insertion point: the assignment is a direct
				// statement of a block, so a defer can follow it.
				d.Fixes = []SuggestedFix{{
					Message: "defer " + cancelIdent.Name + "() after the assignment",
					Edits: []TextEdit{{
						Start:   pass.Fset.Position(assign.End()),
						End:     pass.Fset.Position(assign.End()),
						NewText: "\ndefer " + cancelIdent.Name + "()",
					}},
				}}
			}
			pass.Report(d)
		}
	}
}

// cancelHandled reports whether the cancel object is deferred (directly
// or inside a deferred closure) or escapes as a call argument / stored
// value, in which case responsibility moved elsewhere.
func cancelHandled(pass *Pass, cfg *CFG, obj types.Object) bool {
	handled := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			// Deferred cancel: walk the whole defer including closures.
			if def, ok := n.(*ast.DeferStmt); ok {
				ast.Inspect(def, func(sub ast.Node) bool {
					if call, isCall := sub.(*ast.CallExpr); isCall {
						if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && identObject(pass.TypesInfo, id) == obj {
							handled = true
						}
					}
					return !handled
				})
			}
			// Escape: cancel passed to another function or stored.
			if nodeMentionsAsArg(pass, n, func(id *ast.Ident) bool { return identObject(pass.TypesInfo, id) == obj }) {
				handled = true
			}
			if assign, ok := n.(*ast.AssignStmt); ok {
				for _, rhs := range assign.Rhs {
					if id, isID := ast.Unparen(rhs).(*ast.Ident); isID && identObject(pass.TypesInfo, id) == obj {
						handled = true
					}
				}
			}
			if handled {
				return true
			}
		}
	}
	return false
}

// nodeCallsObj reports whether the node calls obj directly.
func nodeCallsObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	walkShallowParts(n, func(sub ast.Node) {
		if call, ok := sub.(*ast.CallExpr); ok {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && identObject(pass.TypesInfo, id) == obj {
				found = true
			}
		}
	})
	return found
}

// stmtsDirectlyInBlocks records which statements sit directly in a
// block statement — the positions where inserting a following
// statement is syntactically safe (not if-init, not for-post).
func stmtsDirectlyInBlocks(f *ast.File) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if blk, ok := n.(*ast.BlockStmt); ok {
			for _, s := range blk.List {
				out[s] = true
			}
		}
		return true
	})
	return out
}
