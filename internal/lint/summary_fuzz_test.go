package lint

import "testing"

// FuzzSummaryRoundTrip holds the textual summary format canonical:
// for any input DecodeSummary accepts, encode ∘ decode is idempotent —
// one decode canonicalizes (sorting, whitespace normalization) and a
// second pass changes nothing. This is the property the result cache
// and the -summaries dump rely on: a summary has exactly one canonical
// byte representation.
func FuzzSummaryRoundTrip(f *testing.F) {
	f.Add("summary p.F\n")
	f.Add("summary p.F\nacquire p.T.mu 10 w held=-\nrelease p.T.mu 20 w\n")
	f.Add("summary p.(T).m\nfield p.T.n 30 w must=p.T.mu may=p.T.mu,p.U.mu\n")
	f.Add("summary p.F$1\nnondet walltime 5 time.Now\nnondet globalrand 6 rand.Intn\n")
	f.Add("summary p.F\nunknown 7 call through func value cb\nspawn 9\n")
	f.Add("summary p.F\ntrans p.T.mu 11\nentry p.T.mu\n")
	f.Add("summary p.F\nacquire p.B 2 r held=p.A\nacquire p.A 1 w held=-\n")

	f.Fuzz(func(t *testing.T, text string) {
		s, err := DecodeSummary(text)
		if err != nil {
			return // rejected input is out of scope; acceptance is what must be stable
		}
		enc := EncodeSummary(s)
		s2, err := DecodeSummary(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-decode: %v\n%s", err, enc)
		}
		if enc2 := EncodeSummary(s2); enc2 != enc {
			t.Fatalf("encoding is not canonical:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
	})
}
