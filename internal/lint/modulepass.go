package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural entry point: where lint.go's Pass
// hands one type-checked package unit to an Analyzer, a ModulePass
// hands the whole analyzed module — every unit, the call graph, and
// per-function summaries — to a ModuleAnalyzer. The four clients
// (lockorder, sharedstate, atomicmix, puredet) ask questions no single
// compilation unit can answer: "is this pair of mutexes ever nested in
// the opposite order two calls away", "does a wall-clock read reach
// this annotated root through three packages".
//
// Scope: module analyzers see the non-test production code only. Test
// functions exercise lock orders and nondeterminism deliberately
// (chaos suites, fuzzing), so their bodies contribute neither call
// edges nor summaries, and no module finding is ever positioned in a
// _test.go file.

// ModuleUnit is one type-checked package unit as the module pass sees
// it: the same (files, package, info) triple handed to unit analyzers.
type ModuleUnit struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ModuleAnalyzer is one whole-module check. Run inspects the complete
// program and reports findings through the ModulePass.
type ModuleAnalyzer struct {
	Name string // short lowercase identifier used in output and ignore directives
	Doc  string // one-line description
	// Version participates in the lint result cache key exactly like
	// Analyzer.Version: bump it whenever findings change.
	Version int
	Run     func(*ModulePass)
}

// ModulePass presents the analyzed module to one ModuleAnalyzer.
type ModulePass struct {
	Fset      *token.FileSet
	Units     []*ModuleUnit
	Graph     *CallGraph
	Summaries *SummarySet

	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Report records a pre-built diagnostic (used by analyzers that attach
// call-path traces via Diagnostic.Related). The Check field is stamped
// with the running analyzer's name.
func (p *ModulePass) Report(d Diagnostic) {
	d.Check = p.check
	p.report(d)
}

// Trace converts a call-path (positions with explanations) into the
// Related entries carried by an interprocedural diagnostic, so findings
// are explainable and suppressible at any step of the path.
func (p *ModulePass) Trace(steps []TraceStep) []RelatedPos {
	out := make([]RelatedPos, 0, len(steps))
	for _, s := range steps {
		out = append(out, RelatedPos{Pos: p.Fset.Position(s.Pos), Message: s.Message})
	}
	return out
}

// TraceStep is one hop of an interprocedural explanation.
type TraceStep struct {
	Pos     token.Pos
	Message string
}

// AllModule returns the module-analyzer suite in stable order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		AnalyzerLockOrder,
		AnalyzerSharedState,
		AnalyzerAtomicMix,
		AnalyzerPureDet,
	}
}

// Suite bundles the unit-level and module-level analyzers of one run.
type Suite struct {
	Unit   []*Analyzer
	Module []*ModuleAnalyzer
}

// FullSuite returns every analyzer, unit and module level.
func FullSuite() Suite {
	return Suite{Unit: All(), Module: AllModule()}
}

// SuiteByName resolves a comma-separated list of analyzer names across
// both suites. An empty spec selects everything.
func SuiteByName(spec string) (Suite, error) {
	if strings.TrimSpace(spec) == "" {
		return FullSuite(), nil
	}
	unitByName := make(map[string]*Analyzer)
	for _, a := range All() {
		unitByName[a.Name] = a
	}
	modByName := make(map[string]*ModuleAnalyzer)
	for _, a := range AllModule() {
		modByName[a.Name] = a
	}
	var s Suite
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if a, ok := unitByName[name]; ok {
			s.Unit = append(s.Unit, a)
			continue
		}
		if a, ok := modByName[name]; ok {
			s.Module = append(s.Module, a)
			continue
		}
		return Suite{}, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(SuiteNames(), ", "))
	}
	return s, nil
}

// SuiteNames lists every analyzer name, unit suite first.
func SuiteNames() []string {
	ns := Names()
	for _, a := range AllModule() {
		ns = append(ns, a.Name)
	}
	return ns
}

// runModule builds the interprocedural program — call graph plus
// summaries — and applies each module analyzer to it. Suppression uses
// the module-wide ignore index and, unlike the unit path, honors a
// directive placed on any step of a finding's call-path trace.
// Directive-syntax diagnostics are NOT re-emitted here (the unit pass
// owns them); only analyzer findings survive.
func runModule(fset *token.FileSet, units []*ModuleUnit, analyzers []*ModuleAnalyzer) []Diagnostic {
	prog := buildProgram(fset, units)
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{
			Fset:      fset,
			Units:     prog.units,
			Graph:     prog.graph,
			Summaries: prog.summaries,
			check:     a.Name,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}

	var allFiles []*ast.File
	for _, u := range units {
		allFiles = append(allFiles, u.Files...)
	}
	ignores, _ := collectIgnores(fset, allFiles)
	var out []Diagnostic
	for _, d := range raw {
		if ignores.suppresses(d) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

// program is the assembled interprocedural view.
type program struct {
	units     []*ModuleUnit
	graph     *CallGraph
	summaries *SummarySet
}

// buildProgram assembles the call graph and summary set over the
// production (non-test) portion of the units.
func buildProgram(fset *token.FileSet, units []*ModuleUnit) *program {
	graph := BuildCallGraph(fset, units)
	sums := ComputeSummaries(fset, graph)
	return &program{units: units, graph: graph, summaries: sums}
}
