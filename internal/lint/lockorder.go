package lint

import (
	"fmt"
	"sort"
)

// AnalyzerLockOrder detects inconsistent pairwise mutex acquisition
// order across any synchronous call path: if one path acquires class A
// and then (possibly several calls deep) class B while still holding A,
// and another path acquires B then A, the two can deadlock under
// concurrency. Order facts come from two sources: local acquire sites
// (the classes may-held when a Lock fires) and call edges (caller's
// may-held set crossed with the callee's transitive acquisitions from
// the bottom-up summary fixpoint).
//
// Precision notes: classes are instance-insensitive (see LockClass), so
// a==b self-pairs are skipped — two distinct shard instances locked in
// sequence share a class and would self-report otherwise. Goroutine
// spawns start a fresh stack and contribute no nesting; function-value
// references contribute none either (no call happens at the reference).
var AnalyzerLockOrder = &ModuleAnalyzer{
	Name:    "lockorder",
	Doc:     "detect opposite pairwise mutex acquisition orders across call paths (deadlock risk)",
	Version: 1,
	Run:     runLockOrder,
}

// orderWitness records the first-seen evidence that class First was
// held while class Second was acquired.
type orderWitness struct {
	first, second LockClass
	steps         []TraceStep // call path ending at the Second acquire
}

func runLockOrder(p *ModulePass) {
	type dirKey struct{ first, second LockClass }
	witnesses := make(map[dirKey]*orderWitness)
	var order []dirKey
	record := func(first, second LockClass, steps []TraceStep) {
		if first == second {
			return // instance-insensitive classes: a->a is not evidence
		}
		k := dirKey{first, second}
		if _, seen := witnesses[k]; seen {
			return
		}
		witnesses[k] = &orderWitness{first: first, second: second, steps: steps}
		order = append(order, k)
	}

	for _, n := range p.Graph.NodesInOrder() {
		s := p.Summaries.Get(n.ID)
		// Local nesting: a Lock that fires while other classes are held.
		for _, a := range s.Acquires {
			for _, held := range a.HeldMay {
				record(held, a.Class, []TraceStep{{
					Pos:     a.Pos,
					Message: fmt.Sprintf("%s acquires %s while holding %s", n.ID, shortLockClass(a.Class), shortLockClass(held)),
				}})
			}
		}
		// Interprocedural nesting: held classes crossing a call into a
		// callee that (transitively) acquires more.
		for _, e := range n.Out {
			if !e.Kind.Synchronous() || len(e.HeldMay) == 0 {
				continue
			}
			cs := p.Summaries.Get(e.Callee.ID)
			for _, cls := range sortedTransClasses(cs.TransAcquires) {
				t := cs.TransAcquires[cls]
				for _, held := range e.HeldMay {
					steps := append([]TraceStep{{
						Pos:     e.Pos,
						Message: fmt.Sprintf("%s calls %s while holding %s", n.ID, e.Callee.ID, shortLockClass(held)),
					}}, t.Path...)
					record(held, cls, steps)
				}
			}
		}
	}

	// A conflict is a pair with witnesses in both directions. Report
	// once per unordered pair, anchored at the lexically first
	// direction's acquire site, with both call paths attached.
	reported := make(map[dirKey]bool)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.first != b.first {
			return a.first < b.first
		}
		return a.second < b.second
	})
	for _, k := range order {
		rev := dirKey{k.second, k.first}
		if reported[k] || reported[rev] {
			continue
		}
		back, both := witnesses[rev]
		if !both {
			continue
		}
		reported[k] = true
		fwd := witnesses[k]
		pos := fwd.steps[len(fwd.steps)-1].Pos
		steps := append(append([]TraceStep{}, fwd.steps...), TraceStep{
			Pos:     back.steps[len(back.steps)-1].Pos,
			Message: "opposite order: " + back.steps[0].Message,
		})
		steps = append(steps, back.steps...)
		p.Report(Diagnostic{
			Pos: p.Fset.Position(pos),
			Message: fmt.Sprintf("inconsistent lock order: %s is acquired while holding %s here, but the opposite order exists (see %s) — potential deadlock",
				shortLockClass(k.second), shortLockClass(k.first), p.Fset.Position(back.steps[len(back.steps)-1].Pos)),
			Related: p.Trace(steps),
		})
	}
}
