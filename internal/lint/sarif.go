package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Minimal SARIF 2.1.0 emission for CI annotation (`acsel-lint -sarif`).
// Only the properties code-hosting UIs actually consume are produced:
// one run, the analyzer suite as driver rules, one result per
// diagnostic with a physical location. Output is deterministic — the
// diagnostics arrive sorted and rules follow suite order — so the
// artifact is stable across runs and diffable in CI.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. File paths are made
// root-relative (forward-slashed) so the artifact is machine-portable
// and CI annotation maps results onto checkout paths.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic, analyzers []*Analyzer) error {
	driver := sarifDriver{
		Name:           "acsel-lint",
		InformationURI: "https://github.com/acsel/acsel/tree/main/internal/lint",
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The reserved "lint" rule reports malformed ignore directives.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
