package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Minimal SARIF 2.1.0 emission for CI annotation (`acsel-lint -sarif`).
// Only the properties code-hosting UIs actually consume are produced:
// one run, the analyzer suite as driver rules, one result per
// diagnostic with a physical location. Output is deterministic — the
// diagnostics arrive sorted and rules follow suite order — so the
// artifact is stable across runs and diffable in CI.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. File paths are made
// root-relative (forward-slashed) so the artifact is machine-portable
// and CI annotation maps results onto checkout paths. Interprocedural
// findings carry their call-path trace as relatedLocations, each step
// with its own message, so code-hosting UIs render the full path from
// root to witness.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic, suite Suite) error {
	driver := sarifDriver{
		Name:           "acsel-lint",
		InformationURI: "https://github.com/acsel/acsel/tree/main/internal/lint",
	}
	for _, a := range suite.Unit {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	for _, a := range suite.Module {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The reserved "lint" rule reports malformed ignore directives.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"},
	})

	relURI := func(p string) string {
		if root != "" {
			if rel, err := filepath.Rel(root, p); err == nil && !filepath.IsAbs(rel) {
				p = rel
			}
		}
		return filepath.ToSlash(p)
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		for _, r := range d.Related {
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(r.Pos.Filename)},
					Region:           sarifRegion{StartLine: r.Pos.Line, StartColumn: r.Pos.Column},
				},
				Message: &sarifMessage{Text: r.Message},
			})
		}
		results = append(results, res)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
