// Package lint is a small static-analysis framework built entirely on
// the standard library (go/ast, go/parser, go/types). It exists because
// the reproduction's correctness rests on numeric invariants the
// compiler cannot see — watts vs. joules, exact float comparison in
// model code, deterministic seeding of the clustering/CART pipeline —
// and the module deliberately carries zero external dependencies, so
// golang.org/x/tools/go/analysis is off the table.
//
// The shape mirrors x/tools: an Analyzer owns a name, a doc string and
// a Run function; a Pass hands the Run function one type-checked
// package unit (its files, *types.Package and *types.Info) plus a
// position-accurate Reportf. Findings can be suppressed at the site
// with a justified directive:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. A
// directive without a reason is itself reported (check "lint") so
// suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name, e.g. "floatcmp"
	Message string
	// Fixes carries machine-applicable suggested fixes; acsel-lint -fix
	// applies the first one (see fix.go). Analyzers only attach a fix
	// when it is safe and semantics-preserving.
	Fixes []SuggestedFix `json:",omitempty"`
	// Related carries the call-path trace of an interprocedural finding
	// (module analyzers, modulepass.go): each step explains one hop from
	// the reported position to the root cause. Rendered as SARIF
	// relatedLocations, and a //lint:ignore directive on ANY step's line
	// suppresses the finding (ignore.go).
	Related []RelatedPos `json:",omitempty"`
}

// RelatedPos is one step of a diagnostic's interprocedural explanation.
type RelatedPos struct {
	Pos     token.Position
	Message string
}

// TextEdit replaces the source range [Start.Offset, End.Offset) of
// Start.Filename with NewText. Positions are fully resolved so the fix
// applier works from file bytes without re-parsing.
type TextEdit struct {
	Start   token.Position
	End     token.Position
	NewText string
}

// SuggestedFix is one machine-applicable remediation for a diagnostic.
// Edits must not overlap; the applier runs the result through gofmt,
// so edits may be loose about whitespace.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// String formats the diagnostic in the canonical CLI form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check. Run inspects a single package unit and
// reports findings through the Pass.
type Analyzer struct {
	Name string // short lowercase identifier used in output and ignore directives
	Doc  string // one-line description
	// Version participates in the lint result cache key (cache.go):
	// bump it whenever the analyzer's findings or fixes change, so
	// cached clean runs from older logic are invalidated.
	Version int
	Run     func(*Pass)
}

// Pass presents one type-checked package unit to an analyzer. A unit is
// either a package's non-test + in-package test files, or an external
// _test package; the two are checked separately, exactly as the go tool
// compiles them.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	check  string
	report func(Diagnostic)
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Report records a pre-built diagnostic (used by analyzers that attach
// suggested fixes). The Check field is stamped with the running
// analyzer's name.
func (p *Pass) Report(d Diagnostic) {
	d.Check = p.check
	p.report(d)
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several checks apply only inside or only outside tests.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerFloatCmp,
		AnalyzerUnits,
		AnalyzerGlobalRand,
		AnalyzerErrCheck,
		AnalyzerLockSleep,
		AnalyzerMetricName,
		AnalyzerMapOrder,
		AnalyzerGoroLeak,
		AnalyzerCtxCancel,
		AnalyzerWallTime,
	}
}

// ByName resolves a comma-separated list of analyzer names against the
// full suite. An empty spec selects everything.
func ByName(spec string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzer names in suite order.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return ns
}

// runUnit applies each analyzer to one package unit and returns the
// surviving (non-suppressed) diagnostics plus any directive errors.
func runUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			check:     a.Name,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		a.Run(pass)
	}
	ignores, directiveDiags := collectIgnores(fset, files)
	out := directiveDiags
	for _, d := range raw {
		if ignores.suppresses(d) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings by file, line, column, then check so
// output (and golden files) are deterministic.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
