package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//lint:ignore check1[,check2...] reason text
//
// and suppresses matching findings on the same line or the line
// immediately below the comment.
const ignorePrefix = "//lint:ignore "

// ignoreSet indexes suppression directives by file and line.
type ignoreSet struct {
	// byLine maps filename -> line -> set of suppressed check names.
	byLine map[string]map[int]map[string]bool
}

// suppresses reports whether a directive covers diagnostic d. A
// directive on line L covers findings on L (trailing comment) and L+1
// (comment above the statement). Interprocedural findings carry a call
// path in Related, and a directive on any step of that path suppresses
// the finding too: the natural place to justify a lock-order exception
// is the call site that creates it, which may not be the anchor line.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	if s.at(d.Pos, d.Check) {
		return true
	}
	for _, r := range d.Related {
		if s.at(r.Pos, d.Check) {
			return true
		}
	}
	return false
}

func (s ignoreSet) at(pos token.Position, check string) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if checks := lines[line]; checks != nil && checks[check] {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment in the unit for directives.
// Malformed directives — a missing check list or a missing reason —
// are returned as diagnostics under the reserved check name "lint", so
// an unjustified suppression cannot silently disable a check.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(ignorePrefix)) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(ignorePrefix))
				rest = strings.TrimSpace(rest)
				checks, reason, ok := splitDirective(rest)
				pos := fset.Position(c.Pos())
				if !ok {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: "malformed ignore directive: want //lint:ignore <check>[,<check>...] <reason>",
					})
					continue
				}
				_ = reason // the reason is for humans; presence is all we enforce
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set.byLine[pos.Filename] = lines
				}
				m := lines[pos.Line]
				if m == nil {
					m = make(map[string]bool)
					lines[pos.Line] = m
				}
				for _, ch := range checks {
					m[ch] = true
				}
			}
		}
	}
	return set, diags
}

// splitDirective parses "check1,check2 some reason" into its parts.
// ok is false when either the check list or the reason is missing.
func splitDirective(rest string) (checks []string, reason string, ok bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", false
	}
	for _, ch := range strings.Split(fields[0], ",") {
		ch = strings.TrimSpace(ch)
		if ch == "" {
			return nil, "", false
		}
		checks = append(checks, ch)
	}
	return checks, strings.Join(fields[1:], " "), true
}
