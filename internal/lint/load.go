package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Run loads, type-checks and lints the module rooted at root. Patterns
// follow the go tool's shape: "./..." selects every package, "./dir"
// one directory, "./dir/..." a subtree. It returns all surviving
// diagnostics sorted by position. Load or type errors abort the run:
// analyzers only ever see packages the compiler would accept.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := selectDirs(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}

	var all []Diagnostic
	for _, dir := range dirs {
		units, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			all = append(all, runUnit(fset, u.files, u.pkg, u.info, analyzers)...)
		}
	}
	sortDiagnostics(all)
	return all, nil
}

// RunSuite is Run extended to module-level analyzers. Unit analyzers
// see exactly the packages the patterns select; module analyzers
// always analyze the whole module — a call graph over a subset would
// silently miss edges — but only findings positioned inside the
// selected directories are reported, so `acsel-lint ./internal/query`
// behaves like a filter, not a different analysis.
func RunSuite(root string, patterns []string, suite Suite) ([]Diagnostic, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	selDirs, err := selectDirs(root, patterns)
	if err != nil {
		return nil, err
	}
	selected := make(map[string]bool, len(selDirs))
	for _, d := range selDirs {
		selected[d] = true
	}
	loadDirs := selDirs
	if len(suite.Module) > 0 {
		if loadDirs, err = selectDirs(root, nil); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}

	var all []Diagnostic
	var modUnits []*ModuleUnit
	for _, dir := range loadDirs {
		units, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			if selected[dir] && len(suite.Unit) > 0 {
				all = append(all, runUnit(fset, u.files, u.pkg, u.info, suite.Unit)...)
			}
			modUnits = append(modUnits, &ModuleUnit{Files: u.files, Pkg: u.pkg, Info: u.info})
		}
	}
	if len(suite.Module) > 0 {
		for _, d := range runModule(fset, modUnits, suite.Module) {
			if selected[filepath.Dir(d.Pos.Filename)] {
				all = append(all, d)
			}
		}
	}
	sortDiagnostics(all)
	return all, nil
}

// DumpSummaries loads the whole module and writes the interprocedural
// debugging view to w: the call-graph edge list followed by every
// function summary in its canonical line encoding (see EncodeSummary).
// This is what `acsel-lint -summaries` prints.
func DumpSummaries(root string, w io.Writer) error {
	root, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return err
	}
	dirs, err := selectDirs(root, nil)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}
	var modUnits []*ModuleUnit
	for _, dir := range dirs {
		units, err := ld.loadDir(dir)
		if err != nil {
			return err
		}
		for _, u := range units {
			modUnits = append(modUnits, &ModuleUnit{Files: u.files, Pkg: u.pkg, Info: u.info})
		}
	}
	prog := buildProgram(fset, modUnits)
	if _, err := io.WriteString(w, prog.graph.DumpEdges()); err != nil {
		return err
	}
	for _, n := range prog.graph.NodesInOrder() {
		if _, err := io.WriteString(w, EncodeSummary(prog.summaries.Get(n.ID))); err != nil {
			return err
		}
	}
	return nil
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// selectDirs expands go-style package patterns into the set of
// directories (under root) that contain Go source files.
func selectDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) bool {
		if !hasGoFiles(dir) {
			return false
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return true
	}
	for _, pat := range patterns {
		orig := pat
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		pat = filepath.Clean(pat)
		if !strings.HasPrefix(pat, root) {
			return nil, fmt.Errorf("lint: pattern escapes module root: %s", pat)
		}
		if !recursive {
			if !add(pat) {
				return nil, fmt.Errorf("lint: no Go files match pattern %s", orig)
			}
			continue
		}
		matched := false
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDir(d.Name()) && p != pat {
				return filepath.SkipDir
			}
			if add(p) {
				matched = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !matched {
			return nil, fmt.Errorf("lint: no Go files match pattern %s", orig)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a directory never contributes packages:
// VCS metadata, vendored code, fixtures, hidden and underscore dirs.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// unit is one type-checked compilation unit handed to analyzers.
type unit struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader type-checks module packages from source. Imports of sibling
// module packages resolve recursively through the loader itself (with
// a cache); everything else — the standard library — goes through the
// stdlib source importer sharing the same FileSet. This keeps the
// whole pipeline dependency-free and hermetic: no GOPATH, no go list.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package
}

// Import implements types.Importer for dependency resolution. Module
// packages are checked without test files, matching what an importing
// package is allowed to see.
func (l *loader) Import(path string) (*types.Package, error) {
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		return l.std.Import(path)
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses and type-checks every package rooted in dir: the main
// package (non-test plus in-package test files) and, when present, the
// external _test package.
func (l *loader) loadDir(dir string) ([]unit, error) {
	importPath := l.importPathFor(dir)
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	byName := make(map[string][]*ast.File)
	var names []string
	for _, f := range files {
		name := f.Name.Name
		if byName[name] == nil {
			names = append(names, name)
		}
		byName[name] = append(byName[name], f)
	}
	sort.Strings(names)

	// The in-package variants (checked first: sort puts "foo" before
	// "foo_test") include in-package _test.go files, so an external
	// _test package importing its own directory must resolve to that
	// augmented variant — that is how export_test.go bridges become
	// visible, exactly as the go tool compiles them. While the
	// external package is being checked, the augmented variant is
	// pinned into the import cache so the whole closure (including
	// module siblings that themselves import the package under test)
	// shares one identity for its types; every cache entry the pinned
	// check creates is evicted afterwards, because those siblings were
	// checked against the augmented variant and must be re-resolved
	// against the plain one for any later importer.
	checked := make(map[string]*types.Package)
	var units []unit
	for _, name := range names {
		group := byName[name]
		path := importPath
		var aug *types.Package
		if base, ok := strings.CutSuffix(name, "_test"); ok {
			path += "_test"
			aug = checked[base]
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var stash map[string]*types.Package
		var before map[string]bool
		if aug != nil {
			// Pin the augmented variant, and stash every cached
			// package whose transitive imports reach it: those were
			// checked against the plain variant and would clash with
			// the augmented one's type identities, so the pinned check
			// re-resolves them (against aug), mirroring how the go
			// tool recompiles the dependent closure for a test binary.
			stash = map[string]*types.Package{importPath: nil}
			if prev, ok := l.pkgs[importPath]; ok {
				stash[importPath] = prev
			}
			for p, cached := range l.pkgs {
				if p != importPath && dependsOn(cached, importPath) {
					stash[p] = cached
				}
			}
			for p := range stash {
				delete(l.pkgs, p)
			}
			before = make(map[string]bool, len(l.pkgs))
			for p := range l.pkgs {
				before[p] = true
			}
			l.pkgs[importPath] = aug
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, group, info)
		if aug != nil {
			// Evict everything the pinned check resolved, then put the
			// plain pre-check entries back.
			for p := range l.pkgs {
				if !before[p] {
					delete(l.pkgs, p)
				}
			}
			for p, cached := range stash {
				if cached != nil {
					l.pkgs[p] = cached
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		checked[name] = pkg
		units = append(units, unit{files: group, pkg: pkg, info: info})
	}
	return units, nil
}

// dependsOn reports whether pkg transitively imports target.
func dependsOn(pkg *types.Package, target string) bool {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) bool
	walk = func(p *types.Package) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == target || walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(pkg)
}

func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the directory's Go files, optionally including
// _test.go files, always retaining comments for ignore directives.
func (l *loader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
