package lint

import (
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadProgram type-checks a fixture module and assembles the
// interprocedural view, exactly as runModule does.
func loadProgram(t *testing.T, root string) (*token.FileSet, *program) {
	t.Helper()
	modPath, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := selectDirs(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}
	var mus []*ModuleUnit
	for _, dir := range dirs {
		units, err := ld.loadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range units {
			mus = append(mus, &ModuleUnit{Files: u.files, Pkg: u.pkg, Info: u.info})
		}
	}
	return fset, buildProgram(fset, mus)
}

const edgeKindsSrc = `package app

type Runner interface{ Run() }

type Job struct{}

func (Job) Run() {}

func Leaf() {}

func Entry(r Runner) {
	Leaf()      // static
	Job{}.Run() // method on a concrete receiver
	f := Leaf   // function-value reference
	f()
	r.Run()  // interface: CHA resolves to every module implementation
	go Leaf() // goroutine spawn
}
`

// TestCallGraphEdgeKinds is the golden fixture for edge construction:
// one source construct per CallKind, asserted against the canonical
// DumpEdges rendering.
func TestCallGraphEdgeKinds(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": edgeKindsSrc})
	_, prog := loadProgram(t, root)
	dump := prog.graph.DumpEdges()

	for _, want := range []string{
		"sandbox/app.Entry -> sandbox/app.Leaf [static]",
		"sandbox/app.Entry -> sandbox/app.(Job).Run [method]",
		"sandbox/app.Entry -> sandbox/app.Leaf [ref]",
		"sandbox/app.Entry -> sandbox/app.(Job).Run [iface]",
		"sandbox/app.Entry -> sandbox/app.Leaf [go]",
	} {
		if !strings.Contains(dump, want+"\n") {
			t.Errorf("edge dump is missing %q:\n%s", want, dump)
		}
	}
}

const mutualRecursionSrc = `package app

import "sync"

var mu sync.Mutex
var other sync.Mutex

func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	mu.Lock()
	mu.Unlock()
	if n > 0 {
		Ping(n - 1)
	}
}

func Solo() { other.Lock(); other.Unlock() }
`

// TestSCCFixpointMutualRecursion proves the bottom-up transitive
// acquisition fixpoint converges over a recursive SCC: Ping acquires
// nothing locally but must inherit mu through the Ping<->Pong cycle,
// while an unrelated function stays clean.
func TestSCCFixpointMutualRecursion(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": mutualRecursionSrc})
	_, prog := loadProgram(t, root)

	for _, fn := range []FuncID{"sandbox/app.Ping", "sandbox/app.Pong"} {
		s := prog.summaries.Get(fn)
		if _, ok := s.TransAcquires[LockClass("sandbox/app.mu")]; !ok {
			t.Errorf("%s: TransAcquires = %v, want sandbox/app.mu via the recursion fixpoint", fn, sortedTransClasses(s.TransAcquires))
		}
		if _, ok := s.TransAcquires[LockClass("sandbox/app.other")]; ok {
			t.Errorf("%s: TransAcquires leaked sandbox/app.other from an unconnected function", fn)
		}
	}
	if n := prog.graph.Lookup("sandbox/app.Ping"); n == nil {
		t.Fatal("Ping missing from graph")
	}
}

// TestSummaryEncodeDecodeRoundTrip pins the canonical form on a
// hand-built summary covering every section of the format.
func TestSummaryEncodeDecodeRoundTrip(t *testing.T) {
	enc := "summary p.F\n" +
		"acquire p.T.mu 10 w held=-\n" +
		"acquire p.T.mu2 20 r held=p.T.mu\n" +
		"entry p.T.mu\n" +
		"field p.T.n 30 w must=p.T.mu may=p.T.mu\n" +
		"field p.T.n 40 ra must=- may=-\n" +
		"nondet walltime 50 time.Now\n" +
		"release p.T.mu 60 w\n" +
		"spawn 70\n" +
		"trans p.T.mu 10\n" +
		"unknown 80 call through func value cb\n"
	s, err := DecodeSummary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeSummary(s); got != enc {
		t.Fatalf("round trip drifted:\n got: %q\nwant: %q", got, enc)
	}
	if !s.Fields[1].Atomic || s.Fields[1].Write {
		t.Fatalf("flags lost: %+v", s.Fields[1])
	}
	if s.Fields[0].Struct != "p.T" {
		t.Fatalf("struct = %q, want p.T", s.Fields[0].Struct)
	}
}

// TestDecodeSummaryRejectsMalformed locks in strict parsing: garbage
// must error, not silently decode into a wrong summary.
func TestDecodeSummaryRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"summary \n",
		"summary p.F extra\n",
		"nope p.F\n",
		"summary p.F\nacquire p.T.mu ten w held=-\n",
		"summary p.F\nacquire p.T.mu 10 x held=-\n",
		"summary p.F\nacquire p.T.mu 10 w\n",
		"summary p.F\nfield bare 10 w must=- may=-\n",
		"summary p.F\nnondet cosmic 10 x\n",
		"summary p.F\nfield p.T.n 10 q must=- may=-\n",
	} {
		if _, err := DecodeSummary(bad); err == nil {
			t.Errorf("DecodeSummary(%q) accepted malformed input", bad)
		}
	}
}
