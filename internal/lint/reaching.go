package lint

import (
	"go/ast"
	"go/types"
)

// Reaching definitions over the CFG of one function body. This is the
// substrate the taint engine (taint.go) and the defer-Close errcheck
// extension stand on: "which assignment(s) can the value of x at this
// statement come from" answered as a classic forward may-analysis with
// gen/kill sets and a worklist.

// DefKind classifies how a definition came to be; clients use it to
// decide what the defined value means (tainted source, sanitized, ...).
type DefKind int

const (
	// DefEntry marks a parameter, named result, receiver, or closure
	// free variable: defined before the body runs.
	DefEntry DefKind = iota
	// DefAssign is a plain assignment, := definition, or var declaration.
	DefAssign
	// DefRange is a loop variable bound by a range statement.
	DefRange
	// DefWeak is a partial or aliased update — a store through an index,
	// field, or pointer, or passing &x to a call. Weak definitions do
	// not kill prior definitions of the object.
	DefWeak
	// DefExtra is a client-declared definition from the ExtraDefs hook
	// (e.g. sort.Strings(x) re-defining x in sorted order).
	DefExtra
)

// DefSite is one definition of one object.
type DefSite struct {
	Obj  types.Object
	Node ast.Node // the defining statement (or func type for DefEntry)
	Kind DefKind
	// RHS is the defining expression when one exists: the matching
	// right-hand side of an assignment, or the ranged expression for
	// DefRange. Nil otherwise.
	RHS ast.Expr
	// IsValue marks the value (second) variable of a range binding.
	IsValue bool
	// Op is the assignment token string ("=", ":=", "+=", ...) for
	// DefAssign sites; empty otherwise.
	Op string
}

// defState maps each object to the set of definitions that may reach a
// program point.
type defState map[types.Object][]*DefSite

func (s defState) clone() defState {
	out := make(defState, len(s))
	for k, v := range s {
		out[k] = v // slices are treated as immutable; transfer replaces
	}
	return out
}

// mergeInto unions o into s, reporting whether s changed.
func (s defState) mergeInto(o defState) bool {
	changed := false
	for obj, defs := range o {
		have := s[obj]
		seen := make(map[*DefSite]bool, len(have))
		for _, d := range have {
			seen[d] = true
		}
		for _, d := range defs {
			if !seen[d] {
				have = append(have, d)
				seen[d] = true
				changed = true
			}
		}
		s[obj] = have
	}
	return changed
}

// ReachingDefs holds the fixpoint solution for one function body.
type ReachingDefs struct {
	CFG  *CFG
	Info *types.Info
	// ExtraDefs, when set, lets a client declare additional strong
	// definitions for a node (see DefExtra).
	ExtraDefs func(n ast.Node) []types.Object

	in     map[*Block]defState
	sites  []*DefSite // all sites, creation order
	byNode map[ast.Node][]*DefSite
	loc    map[ast.Node]nodeLoc
}

type nodeLoc struct {
	block *Block
	index int
}

// NewReachingDefs builds and solves reaching definitions for the body
// owned by owner (a *ast.FuncDecl or *ast.FuncLit). freeVars lists
// objects used but not defined in the body (closure captures); they get
// DefEntry sites alongside parameters.
func NewReachingDefs(owner ast.Node, cfg *CFG, info *types.Info, extra func(ast.Node) []types.Object) *ReachingDefs {
	rd := &ReachingDefs{
		CFG:       cfg,
		Info:      info,
		ExtraDefs: extra,
		in:        make(map[*Block]defState),
		byNode:    make(map[ast.Node][]*DefSite),
		loc:       make(map[ast.Node]nodeLoc),
	}
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			rd.loc[n] = nodeLoc{block: b, index: i}
		}
	}
	rd.solve(owner)
	return rd
}

// entryState seeds the Entry block: parameters, receivers, named
// results, and any object that is used in the body without a local
// definition (closure free variables, package globals).
func (rd *ReachingDefs) entryState(owner ast.Node) defState {
	state := defState{}
	var ftype *ast.FuncType
	switch o := owner.(type) {
	case *ast.FuncDecl:
		ftype = o.Type
		if o.Recv != nil {
			rd.entryFields(state, o.Recv, owner)
		}
	case *ast.FuncLit:
		ftype = o.Type
	}
	if ftype != nil {
		rd.entryFields(state, ftype.Params, owner)
		if ftype.Results != nil {
			rd.entryFields(state, ftype.Results, owner)
		}
	}

	// Objects with uses but no definition anywhere in the body.
	defined := make(map[types.Object]bool)
	for _, b := range rd.CFG.Blocks {
		for _, n := range b.Nodes {
			forEachDef(rd.Info, n, func(obj types.Object, _ DefKind, _ ast.Expr, _ bool, _ string) {
				defined[obj] = true
			})
		}
	}
	for _, b := range rd.CFG.Blocks {
		for _, n := range b.Nodes {
			forEachUsedIdent(n, func(id *ast.Ident) {
				obj := rd.Info.Uses[id]
				if obj == nil || defined[obj] {
					return
				}
				if _, ok := obj.(*types.Var); !ok {
					return
				}
				if _, have := state[obj]; !have {
					d := &DefSite{Obj: obj, Node: owner, Kind: DefEntry}
					rd.sites = append(rd.sites, d)
					state[obj] = []*DefSite{d}
				}
			})
		}
	}
	return state
}

func (rd *ReachingDefs) entryFields(state defState, fl *ast.FieldList, owner ast.Node) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			obj := rd.Info.Defs[name]
			if obj == nil {
				continue
			}
			d := &DefSite{Obj: obj, Node: owner, Kind: DefEntry}
			rd.sites = append(rd.sites, d)
			state[obj] = []*DefSite{d}
		}
	}
}

// solve runs the worklist to fixpoint.
func (rd *ReachingDefs) solve(owner ast.Node) {
	rd.in[rd.CFG.Entry] = rd.entryState(owner)
	work := []*Block{rd.CFG.Entry}
	inWork := map[*Block]bool{rd.CFG.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		out := rd.in[b].clone()
		for _, n := range b.Nodes {
			rd.transfer(out, n)
		}
		for _, s := range b.Succs {
			si := rd.in[s]
			if si == nil {
				si = defState{}
				rd.in[s] = si
			}
			if si.mergeInto(out) && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
}

// transfer applies one node's definitions to state in place. Sites are
// interned per (node, obj, kind) so the fixpoint terminates.
func (rd *ReachingDefs) transfer(state defState, n ast.Node) {
	apply := func(obj types.Object, kind DefKind, rhs ast.Expr, isValue bool, op string) {
		d := rd.site(n, obj, kind, rhs, isValue, op)
		if kind == DefWeak {
			// Weak update: old definitions survive.
			state[obj] = append(append([]*DefSite{}, state[obj]...), d)
			return
		}
		state[obj] = []*DefSite{d}
	}
	forEachDef(rd.Info, n, apply)
	if rd.ExtraDefs != nil {
		for _, obj := range rd.ExtraDefs(n) {
			apply(obj, DefExtra, nil, false, "")
		}
	}
}

// site interns DefSites so repeated transfers over loop back-edges
// reuse the same identity.
func (rd *ReachingDefs) site(n ast.Node, obj types.Object, kind DefKind, rhs ast.Expr, isValue bool, op string) *DefSite {
	for _, d := range rd.byNode[n] {
		if d.Obj == obj && d.Kind == kind {
			return d
		}
	}
	d := &DefSite{Obj: obj, Node: n, Kind: kind, RHS: rhs, IsValue: isValue, Op: op}
	rd.byNode[n] = append(rd.byNode[n], d)
	rd.sites = append(rd.sites, d)
	return d
}

// Sites returns every definition site discovered, in creation order.
func (rd *ReachingDefs) Sites() []*DefSite { return rd.sites }

// At returns the definitions of obj that may reach node (before the
// node executes). The node must be one of the CFG's block nodes.
func (rd *ReachingDefs) At(node ast.Node, obj types.Object) []*DefSite {
	state := rd.stateAt(node)
	if state == nil {
		return nil
	}
	return state[obj]
}

// stateAt replays the node's block from its In state up to (not
// including) the node.
func (rd *ReachingDefs) stateAt(node ast.Node) defState {
	l, ok := rd.loc[node]
	if !ok {
		return nil
	}
	state := rd.in[l.block]
	if state == nil {
		state = defState{}
	}
	state = state.clone()
	for i := 0; i < l.index; i++ {
		rd.transfer(state, l.block.Nodes[i])
	}
	return state
}

// forEachDef enumerates the definitions a single CFG node produces.
// Nested function literals are opaque: their bodies get their own CFG
// and reaching-defs instance, so this walker never descends into them.
func forEachDef(info *types.Info, n ast.Node, fn func(obj types.Object, kind DefKind, rhs ast.Expr, isValue bool, op string)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0] // multi-value call/map/type-assert form
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				if obj := identObject(info, l); obj != nil {
					fn(obj, DefAssign, rhs, false, n.Tok.String())
				}
			default:
				if root := rootIdent(lhs); root != nil {
					if obj := identObject(info, root); obj != nil {
						fn(obj, DefWeak, rhs, false, n.Tok.String())
					}
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				if obj := info.Defs[name]; obj != nil {
					fn(obj, DefAssign, rhs, false, "=")
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := ast.Unparen(n.Key).(*ast.Ident); ok && n.Key != nil && id.Name != "_" {
			if obj := identObject(info, id); obj != nil {
				fn(obj, DefRange, n.X, false, "")
			}
		}
		if n.Value != nil {
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && id.Name != "_" {
				if obj := identObject(info, id); obj != nil {
					fn(obj, DefRange, n.X, true, "")
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if obj := identObject(info, id); obj != nil {
				fn(obj, DefAssign, n.X, false, n.Tok.String())
			}
		} else if root := rootIdent(n.X); root != nil {
			if obj := identObject(info, root); obj != nil {
				fn(obj, DefWeak, nil, false, n.Tok.String())
			}
		}
	}
	// Address-taken arguments anywhere in the node: &x handed to a call
	// may be written through, so it is a weak definition of x.
	walkShallowParts(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
				if root := rootIdent(u.X); root != nil {
					if obj := identObject(info, root); obj != nil {
						fn(obj, DefWeak, nil, false, "")
					}
				}
			}
		}
	})
}

// identObject resolves an identifier to its object through either the
// Defs (for :=) or Uses (for =) map.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// rootIdent digs to the base identifier of an lvalue chain:
// a[i].f, *p, (x.y) all resolve to their leftmost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// walkShallow visits n and its children but never enters a nested
// function literal (whose body belongs to a different CFG).
func walkShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, isLit := sub.(*ast.FuncLit); isLit && sub != n {
			return false
		}
		if sub != nil {
			fn(sub)
		}
		return true
	})
}

// forEachUsedIdent visits every identifier used (read) in the node,
// skipping nested function literals and loop bodies that belong to
// other CFG blocks.
func forEachUsedIdent(n ast.Node, fn func(*ast.Ident)) {
	walkShallowParts(n, func(sub ast.Node) {
		if id, ok := sub.(*ast.Ident); ok {
			fn(id)
		}
	})
}
