package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerLockSleep covers two concurrency hygiene rules for the
// runtime/scheduler layers:
//
//  1. time.Sleep inside _test.go files — sleeping to "wait for the
//     goroutine" is the root cause of flaky concurrency tests; wait on
//     a channel, a sync.WaitGroup, or poll with a deadline instead.
//  2. Copying a value whose type contains a sync.Mutex, sync.RWMutex,
//     sync.WaitGroup, sync.Once or sync.Cond — a copied lock guards
//     nothing. Flagged for by-value parameters, receivers and
//     assignments from addressable expressions.
var AnalyzerLockSleep = &Analyzer{
	Name: "locksleep",
	Doc:  "flag time.Sleep-based synchronization in tests and copies of lock-bearing values",
	Run:  runLockSleep,
}

func runLockSleep(pass *Pass) {
	for _, f := range pass.Files {
		inTest := pass.IsTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inTest && isTimeSleep(pass, n) {
					pass.Reportf(n.Pos(), "time.Sleep as test synchronization is flaky; wait on a channel/WaitGroup or poll with a deadline")
				}
			case *ast.FuncDecl:
				checkLockParams(pass, n)
			case *ast.AssignStmt:
				checkLockAssign(pass, n)
			}
			return true
		})
	}
}

func isTimeSleep(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// checkLockParams flags by-value receivers and parameters of
// lock-bearing types.
func checkLockParams(pass *Pass, fn *ast.FuncDecl) {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, field := range fields {
		t := pass.TypeOf(field.Type)
		if t == nil || isPointerLike(t) {
			continue
		}
		if lock := lockInType(t, nil); lock != "" {
			pass.Reportf(field.Pos(), "by-value %s passes a copy of %s; use a pointer", describeField(fn, field), lock)
		}
	}
}

// checkLockAssign flags x = y and x := y where y is an addressable
// expression of a lock-bearing type (a true copy of a live lock).
// Composite literals and function results are fresh values and fine.
func checkLockAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// _ = x discards the value; no copy materializes.
		if lhs, ok := as.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
			continue
		}
		if !isAddressable(rhs) {
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil || isPointerLike(t) {
			continue
		}
		if lock := lockInType(t, nil); lock != "" {
			pass.Reportf(as.Pos(), "assignment copies %s (via %s); use a pointer", lock, exprString(rhs))
		}
	}
}

// isAddressable conservatively detects expressions that denote
// existing storage, whose copy would duplicate a possibly-held lock.
func isAddressable(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// lockBearing names the sync types whose values must not be copied
// after first use.
var lockBearing = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
}

// lockInType reports the first lock-bearing type found inside t
// (directly, as a struct field, or as an array element), or "".
func lockInType(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && lockBearing[pkg.Path()+"."+n.Obj().Name()] {
			return pkg.Path() + "." + n.Obj().Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInType(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInType(u.Elem(), seen)
	}
	return ""
}

// describeField renders "receiver of X" / "parameter p of X" for the
// copy-lock message.
func describeField(fn *ast.FuncDecl, field *ast.Field) string {
	kind := "parameter"
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			if f == field {
				kind = "receiver"
			}
		}
	}
	if len(field.Names) > 0 {
		return kind + " " + field.Names[0].Name + " of " + fn.Name.Name
	}
	return kind + " of " + fn.Name.Name
}
