package lint

import (
	"strings"
	"testing"
)

// runModuleChecks lints a fixture with the named module analyzers only.
func runModuleChecks(t *testing.T, root string, names ...string) []Diagnostic {
	t.Helper()
	suite, err := SuiteByName(strings.Join(names, ","))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunSuite(root, nil, suite)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const lockOrderBadSrc = `package app

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func Forward(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	grabB(b)
}

func grabB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func Backward(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n = 0
	a.mu.Unlock()
}
`

// TestLockOrderDetectsInversion: A-then-B two calls deep in one path,
// B-then-A locally in another — the classic deadlock pair, with the
// second leg of the forward witness only visible interprocedurally.
func TestLockOrderDetectsInversion(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": lockOrderBadSrc})
	diags := runModuleChecks(t, root, "lockorder")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one lockorder finding", diags)
	}
	d := diags[0]
	if d.Check != "lockorder" || !strings.Contains(d.Message, "deadlock") {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
	if len(d.Related) == 0 {
		t.Fatal("lockorder finding carries no call-path trace")
	}
}

const lockOrderCleanSrc = `package app

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func One(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	grabB(b)
}

func Two(a *A, b *B) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func grabB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func SameClassTwice(x, y *A) {
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
}
`

// TestLockOrderCleanPrecision: a consistent A-before-B order, strictly
// sequential acquisition, and two same-class instances locked in turn
// must all stay silent — the last one is exactly what the a==b
// self-pair skip exists for.
func TestLockOrderCleanPrecision(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": lockOrderCleanSrc})
	if diags := runModuleChecks(t, root, "lockorder"); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

const sharedStateBadSrc = `package app

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Peek() int {
	return c.n
}
`

func TestSharedStateDetectsBareRead(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": sharedStateBadSrc})
	diags := runModuleChecks(t, root, "sharedstate")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one sharedstate finding", diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "app.Counter.n") || !strings.Contains(d.Message, "read here without it") {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
}

const sharedStateCleanSrc = `package app

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func New(start int) *Counter {
	c := &Counter{}
	c.n = start // constructor-fresh: not yet shared
	return c
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

// incLocked inherits the caller's lock context through the entry-held
// fixpoint: every caller holds c.mu, so the bare-looking write is
// provably guarded.
func (c *Counter) incLocked() {
	c.n++
}

func (c *Counter) Peek() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
`

// TestSharedStateCleanPrecision: constructor-fresh initialization and
// the fooLocked helper idiom (guarded only via callers) must not fire.
func TestSharedStateCleanPrecision(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": sharedStateCleanSrc})
	if diags := runModuleChecks(t, root, "sharedstate"); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

const atomicMixBadSrc = `package app

import "sync/atomic"

type Stats struct {
	hits int64
}

func (s *Stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) Snapshot() int64 {
	return s.hits
}
`

func TestAtomicMixDetectsPlainRead(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": atomicMixBadSrc})
	diags := runModuleChecks(t, root, "atomicmix")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one atomicmix finding", diags)
	}
	if !strings.Contains(diags[0].Message, "app.Stats.hits") {
		t.Fatalf("unexpected diagnostic: %+v", diags[0])
	}
}

const atomicMixCleanSrc = `package app

import "sync/atomic"

type Stats struct {
	hits  int64
	plain int
}

func New(seed int64) *Stats {
	s := &Stats{}
	s.hits = seed // constructor-fresh plain init of an atomic field
	return s
}

func (s *Stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) Snapshot() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *Stats) Bump() {
	s.plain++ // never touched atomically: no mix
}
`

// TestAtomicMixCleanPrecision: all-atomic access, constructor-fresh
// plain initialization, and a purely plain field must all stay silent.
func TestAtomicMixCleanPrecision(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": atomicMixCleanSrc})
	if diags := runModuleChecks(t, root, "atomicmix"); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

const pureDetBadSrc = `package app

import "time"

//lint:deterministic
func Select(xs []int) int {
	best := 0
	for _, x := range xs {
		best = combine(best, x)
	}
	return best
}

func combine(a, b int) int {
	go audit()
	if b > a {
		return b
	}
	return a
}

func audit() {
	_ = time.Now()
}
`

// TestPureDetEscalatesThroughGoroutine: the wall-clock read is two
// calls away and behind a goroutine spawn — the unit walltime analyzer
// cannot connect it to the annotated root, puredet must.
func TestPureDetEscalatesThroughGoroutine(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": pureDetBadSrc})
	diags := runModuleChecks(t, root, "puredet")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one puredet finding", diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "walltime") || !strings.Contains(d.Message, "sandbox/app.Select") {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
	if len(d.Related) < 2 {
		t.Fatalf("want a multi-hop call-path trace, got %v", d.Related)
	}
}

const pureDetUnknownSrc = `package app

type Hooks struct {
	OnSelect func(int)
}

//lint:deterministic
func Select(h *Hooks, xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	h.OnSelect(best)
	return best
}
`

// TestPureDetReportsUnprovable: a call through a func-typed field has
// no resolvable target; claiming determinism anyway must fail as
// unprovable, not pass silently.
func TestPureDetReportsUnprovable(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": pureDetUnknownSrc})
	diags := runModuleChecks(t, root, "puredet")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one unprovable finding", diags)
	}
	if !strings.Contains(diags[0].Message, "cannot prove") {
		t.Fatalf("unexpected diagnostic: %+v", diags[0])
	}
}

const pureDetCleanSrc = `package app

import (
	"math/rand"
	"sort"
	"time"
)

//lint:deterministic
func Select(seed int64, xs []int) int {
	// Seeded local source: allowed — determinism comes from the seed.
	rng := rand.New(rand.NewSource(seed))
	ys := append([]int(nil), xs...)
	sort.Ints(ys)
	if len(ys) == 0 {
		return rng.Intn(10)
	}
	return ys[len(ys)-1]
}

func Unannotated() int64 {
	// Nondeterministic, but no //lint:deterministic root reaches it.
	return time.Now().UnixNano()
}
`

// TestPureDetCleanPrecision: a seeded local rand.Rand and sorting are
// deterministic, and nondeterminism outside any annotated root's
// reachable set is not puredet's business.
func TestPureDetCleanPrecision(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": pureDetCleanSrc})
	if diags := runModuleChecks(t, root, "puredet"); len(diags) != 0 {
		t.Fatalf("clean fixture produced findings: %v", diags)
	}
}

const traceIgnoreSrc = `package app

import "time"

//lint:deterministic
func Select(xs []int) int {
	best := 0
	for _, x := range xs {
		best = combine(best, x)
	}
	return best
}

func combine(a, b int) int {
	audit()
	if b > a {
		return b
	}
	return a
}

func audit() {
	//lint:ignore puredet audit timing is observability, not output
	_ = time.Now()
}
`

// TestIgnoreSuppressesOnTraceStep: the directive sits on the
// nondeterminism source deep in the call path — not on the diagnostic
// anchor — and must still suppress the interprocedural finding.
func TestIgnoreSuppressesOnTraceStep(t *testing.T) {
	root := fixtureModule(t, map[string]string{"app/app.go": traceIgnoreSrc})
	if diags := runModuleChecks(t, root, "puredet"); len(diags) != 0 {
		t.Fatalf("directive on the trace step did not suppress: %v", diags)
	}
}

// TestModuleFindingsSkipTestFiles: module analyzers see production
// code only — a lock inversion staged entirely in a _test.go file is a
// test's business (chaos suites do this deliberately), not a finding.
func TestModuleFindingsSkipTestFiles(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"app/app.go":      "package app\n\nfunc Ok() {}\n",
		"app/app_test.go": "package app\n\nimport \"time\"\n\n//lint:deterministic\nfunc helper() int64 { return time.Now().UnixNano() }\n",
	})
	if diags := runModuleChecks(t, root, "lockorder", "sharedstate", "atomicmix", "puredet"); len(diags) != 0 {
		t.Fatalf("test-file code produced module findings: %v", diags)
	}
}

// TestRunSuitePatternFilter: module analysis always spans the whole
// module, but findings are filtered to the selected packages.
func TestRunSuitePatternFilter(t *testing.T) {
	root := fixtureModule(t, map[string]string{
		"app/app.go": pureDetBadSrc,
		"lib/lib.go": "package lib\n\nfunc Pure(x int) int { return x + 1 }\n",
	})
	suite, err := SuiteByName("puredet")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunSuite(root, []string{"./lib"}, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("selecting ./lib must filter out app findings, got %v", diags)
	}
	diags, err = RunSuite(root, []string{"./app"}, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("selecting ./app must keep its finding, got %v", diags)
	}
}
