package lint

import (
	"fmt"
	"sort"
)

// AnalyzerSharedState finds struct fields that are mutex-guarded on
// some access paths but touched bare on others. Seeding is deliberate:
// only structs that declare a sync.Mutex / sync.RWMutex field are
// considered — the mutex's presence is the author's statement that the
// struct's state is shared — and a field only fires when it has at
// least one WRITE under the mutex (must-held, including lock context
// inherited from callers via the entry-held fixpoint) AND at least one
// access on a path where the mutex is provably not held (may-held
// empty). Accesses through constructor-fresh locals, atomic-typed
// fields, atomic calls, channels and sync primitives are exempt.
var AnalyzerSharedState = &ModuleAnalyzer{
	Name:    "sharedstate",
	Doc:     "find struct fields written under their mutex on some paths but accessed bare on others",
	Version: 1,
	Run:     runSharedState,
}

// fieldEvidence accumulates module-wide evidence about one field class.
type fieldEvidence struct {
	class  string
	strct  string
	guards []accessAt // guarded writes
	bares  []accessAt // accesses with the mutex provably unheld
}

type accessAt struct {
	acc  FieldAccess
	fn   FuncID
	read bool
}

func runSharedState(p *ModulePass) {
	evidence := make(map[string]*fieldEvidence)
	var classes []string

	for _, n := range p.Graph.NodesInOrder() {
		s := p.Summaries.Get(n.ID)
		for _, acc := range s.Fields {
			if acc.Atomic || acc.Fresh {
				continue
			}
			mutexes := p.Summaries.MutexFields[acc.Struct]
			if len(mutexes) == 0 {
				continue // struct declares no mutex: not shared state by its own account
			}
			mustHeld := classSet(acc.HeldMust, s.EntryMust)
			mayHeld := classSet(acc.HeldMay, s.EntryMust)
			guarded, possiblyHeld := false, false
			for _, m := range mutexes {
				if mustHeld[m] {
					guarded = true
				}
				if mayHeld[m] {
					possiblyHeld = true
				}
			}
			ev := evidence[acc.Class]
			if ev == nil {
				ev = &fieldEvidence{class: acc.Class, strct: acc.Struct}
				evidence[acc.Class] = ev
				classes = append(classes, acc.Class)
			}
			switch {
			case guarded && acc.Write:
				ev.guards = append(ev.guards, accessAt{acc: acc, fn: n.ID, read: !acc.Write})
			case !possiblyHeld:
				ev.bares = append(ev.bares, accessAt{acc: acc, fn: n.ID, read: !acc.Write})
			}
			// May-but-not-must contexts assert nothing either way.
		}
	}

	sort.Strings(classes)
	for _, cls := range classes {
		ev := evidence[cls]
		if len(ev.guards) == 0 || len(ev.bares) == 0 {
			continue
		}
		sortAccesses(ev.guards)
		sortAccesses(ev.bares)
		bare, guard := ev.bares[0], ev.guards[0]
		kind := "written"
		if bare.read {
			kind = "read"
		}
		steps := []TraceStep{
			{Pos: guard.acc.Pos, Message: fmt.Sprintf("guarded write in %s (mutex held)", guard.fn)},
		}
		for _, b := range ev.bares {
			steps = append(steps, TraceStep{Pos: b.acc.Pos, Message: fmt.Sprintf("bare access in %s", b.fn)})
		}
		p.Report(Diagnostic{
			Pos: p.Fset.Position(bare.acc.Pos),
			Message: fmt.Sprintf("field %s is written under its mutex (e.g. %s) but %s here without it — data race",
				shortLockClass(LockClass(cls)), p.Fset.Position(guard.acc.Pos), kind),
			Related: p.Trace(steps),
		})
	}
}

// classSet unions slices of lock classes into a membership set.
func classSet(slices ...[]LockClass) map[LockClass]bool {
	out := make(map[LockClass]bool)
	for _, s := range slices {
		for _, c := range s {
			out[c] = true
		}
	}
	return out
}

func sortAccesses(as []accessAt) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].acc.Pos != as[j].acc.Pos {
			return as[i].acc.Pos < as[j].acc.Pos
		}
		return as[i].fn < as[j].fn
	})
}
