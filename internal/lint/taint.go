package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A small flow-sensitive taint engine over the CFG + reaching-defs
// layer. Clients (maporder, walltime) declare what introduces taint,
// what launders it, and where tainted values must never arrive; the
// engine runs one intraprocedural fixpoint per function body.
//
// Precision choices, deliberately biased against false positives on
// this codebase's idioms:
//   - a sanitizer call (sort.Strings(keys)) is a strong re-definition,
//     so the sorted-after-collect pattern comes out clean;
//   - numeric self-accumulation (sum += v, n++) is treated as an
//     order-insensitive reduction when the spec opts in — map-order
//     taint does not survive a commutative fold (string concatenation
//     does: it stays tainted);
//   - len() and cap() never propagate taint: a collection's size does
//     not depend on iteration order;
//   - nested function literals are separate bodies with their own
//     fixpoint; captures arrive untainted (documented limitation).

// taintSpec configures one client analyzer.
type taintSpec struct {
	// sourceDef reports whether a definition site is inherently tainted
	// (e.g. a range binding over a map).
	sourceDef func(pass *Pass, d *DefSite) bool
	// sourceExpr reports whether a call expression produces a tainted
	// value (e.g. time.Now()).
	sourceExpr func(pass *Pass, call *ast.CallExpr) bool
	// sanitized lists objects strongly re-defined clean by this node
	// (e.g. sort.Strings(x) => x).
	sanitized func(pass *Pass, n ast.Node) []types.Object
	// sinks lists the uses at this node that must be clean.
	sinks func(pass *Pass, n ast.Node) []sinkUse
	// commutativeReduction exempts numeric self-accumulation from
	// propagation (see package comment).
	commutativeReduction bool
}

// sinkUse is one expression that must not be tainted at a node.
type sinkUse struct {
	expr ast.Expr
	pos  token.Pos
	what string // human description of the sink, e.g. "fmt.Fprintf argument"
}

// taintFinding is one tainted value arriving at a sink.
type taintFinding struct {
	pos    token.Pos // sink position
	what   string    // sink description
	origin token.Pos // the source that introduced the taint
}

// runTaint executes the spec over every function body in the pass.
func runTaint(pass *Pass, spec *taintSpec) []taintFinding {
	var out []taintFinding
	for _, f := range pass.Files {
		FuncBodies(f, func(owner ast.Node, body *ast.BlockStmt) {
			out = append(out, runTaintBody(pass, spec, owner, body)...)
		})
	}
	return out
}

// bodyTaint is the per-body solver state.
type bodyTaint struct {
	pass    *Pass
	spec    *taintSpec
	rd      *ReachingDefs
	tainted map[*DefSite]token.Pos // def -> origin source position
}

func runTaintBody(pass *Pass, spec *taintSpec, owner ast.Node, body *ast.BlockStmt) []taintFinding {
	cfg := BuildCFG(body)
	var extra func(ast.Node) []types.Object
	if spec.sanitized != nil {
		extra = func(n ast.Node) []types.Object { return spec.sanitized(pass, n) }
	}
	bt := &bodyTaint{
		pass:    pass,
		spec:    spec,
		rd:      NewReachingDefs(owner, cfg, pass.TypesInfo, extra),
		tainted: make(map[*DefSite]token.Pos),
	}
	bt.solve()

	var out []taintFinding
	if spec.sinks == nil {
		return nil
	}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			for _, u := range spec.sinks(pass, n) {
				if origin, bad := bt.exprTainted(u.expr, n); bad {
					out = append(out, taintFinding{pos: u.pos, what: u.what, origin: origin})
				}
			}
		}
	}
	return out
}

// solve iterates def-site taint to fixpoint: monotone (defs only ever
// become tainted), so it terminates.
func (bt *bodyTaint) solve() {
	for changed := true; changed; {
		changed = false
		for _, d := range bt.rd.Sites() {
			if _, done := bt.tainted[d]; done {
				continue
			}
			if origin, is := bt.defTainted(d); is {
				bt.tainted[d] = origin
				changed = true
			}
		}
	}
}

// defTainted decides whether definition d produces a tainted value
// under the current solution.
func (bt *bodyTaint) defTainted(d *DefSite) (token.Pos, bool) {
	switch d.Kind {
	case DefExtra:
		return token.NoPos, false // sanitizer: clean by construction
	case DefEntry:
		if bt.spec.sourceDef != nil && bt.spec.sourceDef(bt.pass, d) {
			return d.Node.Pos(), true
		}
		return token.NoPos, false
	}
	if bt.spec.sourceDef != nil && bt.spec.sourceDef(bt.pass, d) {
		return d.Node.Pos(), true
	}
	switch d.Kind {
	case DefRange:
		// Propagation through a range: the element values of a tainted
		// collection are tainted; the keys only when ranging a map.
		if d.RHS == nil {
			return token.NoPos, false
		}
		if !d.IsValue && !isMapType(bt.pass.TypeOf(d.RHS)) {
			return token.NoPos, false
		}
		return bt.exprTainted(d.RHS, d.Node)
	case DefAssign, DefWeak:
		if d.RHS == nil {
			// A weak def with no RHS models &x escaping into a call:
			// tainted when any sibling argument of that call is.
			return bt.addressTaken(d)
		}
		if bt.spec.commutativeReduction && bt.isCommutativeReduction(d) {
			return token.NoPos, false
		}
		if d.Kind == DefWeak && bt.isPerKeyMapStore(d) {
			return token.NoPos, false
		}
		return bt.exprTainted(d.RHS, d.Node)
	}
	return token.NoPos, false
}

// weakLHSExpr recovers the lvalue expression behind a weak definition:
// the assignment LHS whose root identifier is d.Obj and whose matching
// RHS is d.RHS, or the operand of an inc/dec statement.
func (bt *bodyTaint) weakLHSExpr(d *DefSite) ast.Expr {
	switch n := d.Node.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			root := rootIdent(lhs)
			if root == nil || identObject(bt.pass.TypesInfo, root) != d.Obj {
				continue
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if rhs == d.RHS {
				return lhs
			}
		}
	case *ast.IncDecStmt:
		return n.X
	}
	return nil
}

// isPerKeyMapStore recognizes `m[k] = v` (possibly m.f[k]) where k is a
// pure range key: every iteration writes a distinct key, so the built
// map is identical under any iteration order and the store does not
// taint the container. This is the canonical way Go code materializes a
// transformed map (`for k, v := range src { dst[k] = f(v) }`).
func (bt *bodyTaint) isPerKeyMapStore(d *DefSite) bool {
	assign, ok := d.Node.(*ast.AssignStmt)
	if !ok || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
		return false
	}
	for i, lhs := range assign.Lhs {
		root := rootIdent(lhs)
		if root == nil || identObject(bt.pass.TypesInfo, root) != d.Obj {
			continue
		}
		var rhs ast.Expr
		if len(assign.Rhs) == len(assign.Lhs) {
			rhs = assign.Rhs[i]
		} else if len(assign.Rhs) == 1 {
			rhs = assign.Rhs[0]
		}
		if rhs != d.RHS {
			continue
		}
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		key, ok := ast.Unparen(idx.Index).(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObject(bt.pass.TypesInfo, key)
		if obj == nil {
			return false
		}
		defs := bt.rd.At(d.Node, obj)
		if len(defs) == 0 {
			return false
		}
		for _, kd := range defs {
			if kd.Kind != DefRange || kd.IsValue {
				return false
			}
		}
		return true
	}
	return false
}

// addressTaken handles `f(..., &x, ...)`: x may be written from the
// call's other (tainted) inputs.
func (bt *bodyTaint) addressTaken(d *DefSite) (token.Pos, bool) {
	var origin token.Pos
	found := false
	walkShallowParts(d.Node, func(sub ast.Node) {
		if found {
			return
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok || !callTakesAddressOf(call, d.Obj, bt.pass) {
			return
		}
		for _, arg := range call.Args {
			if o, bad := bt.exprTainted(arg, d.Node); bad {
				origin, found = o, true
				return
			}
		}
	})
	return origin, found
}

// isCommutativeReduction reports whether d is a numeric
// self-accumulation: x++, x += e, or x = x + e with a commutative
// operator on a non-string type. For weak defs (x.f += e, x[i] += e)
// the stored-to lvalue is typed, not the root object: summing counters
// into struct fields over a map range is just as order-insensitive.
func (bt *bodyTaint) isCommutativeReduction(d *DefSite) bool {
	t := d.Obj.Type()
	if d.Kind == DefWeak {
		lhs := bt.weakLHSExpr(d)
		if lhs == nil {
			return false
		}
		t = bt.pass.TypeOf(lhs)
		if t == nil || !isNumeric(t) {
			return false
		}
		return commutativeCompoundOp[d.Op]
	}
	if t == nil || !isNumeric(t) {
		return false
	}
	switch d.Op {
	case "++", "--", "+=", "-=", "*=", "|=", "&=", "^=":
		return true
	case "=", ":=":
		bin, ok := ast.Unparen(d.RHS).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op.String() {
		case "+", "*", "|", "&", "^":
		default:
			return false
		}
		selfRef := false
		forEachUsedIdent(bin, func(id *ast.Ident) {
			if identObject(bt.pass.TypesInfo, id) == d.Obj {
				selfRef = true
			}
		})
		return selfRef
	}
	return false
}

// exprTainted reports whether evaluating e at node can observe a
// tainted value, and returns the origin of the first taint found.
func (bt *bodyTaint) exprTainted(e ast.Expr, node ast.Node) (token.Pos, bool) {
	if e == nil {
		return token.NoPos, false
	}
	var origin token.Pos
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate body
		case *ast.CallExpr:
			if bt.spec.sourceExpr != nil && bt.spec.sourceExpr(bt.pass, n) {
				origin, found = n.Pos(), true
				return false
			}
			if isLenOrCap(bt.pass, n) {
				return false // size is order-insensitive
			}
		case *ast.Ident:
			obj := bt.pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			for _, d := range bt.rd.At(node, obj) {
				if o, ok := bt.tainted[d]; ok {
					origin, found = o, true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(e, visit)
	return origin, found
}

// --- shared shape helpers -------------------------------------------------

// callee resolves a call to (package path, function name, receiver type
// name). For methods, recv is the receiver's base type name; for plain
// package functions it is empty. ok is false for builtins, conversions
// and indirect calls.
func callee(pass *Pass, call *ast.CallExpr) (pkgPath, recv, name string, ok bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj, isFn := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !isFn || obj.Pkg() == nil {
			return "", "", "", false
		}
		sig, isSig := obj.Type().(*types.Signature)
		if !isSig {
			return "", "", "", false
		}
		if r := sig.Recv(); r != nil {
			return obj.Pkg().Path(), receiverTypeName(r.Type()), obj.Name(), true
		}
		return obj.Pkg().Path(), "", obj.Name(), true
	case *ast.Ident:
		obj, isFn := pass.TypesInfo.Uses[fun].(*types.Func)
		if !isFn || obj.Pkg() == nil {
			return "", "", "", false
		}
		return obj.Pkg().Path(), "", obj.Name(), true
	}
	return "", "", "", false
}

// methodName returns the bare selector name of a method-shaped call
// ("x.Write(...)" => "Write"), without requiring type resolution.
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

func isLenOrCap(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
		return b.Name() == "len" || b.Name() == "cap"
	}
	return false
}

func callTakesAddressOf(call *ast.CallExpr, obj types.Object, pass *Pass) bool {
	for _, arg := range call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			if root := rootIdent(u.X); root != nil && identObject(pass.TypesInfo, root) == obj {
				return true
			}
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// walkShallowParts is walkShallow, except that composite loop nodes
// (RangeStmt) only expose their header expressions — their bodies live
// in other CFG blocks and must not be double-visited.
func walkShallowParts(n ast.Node, fn func(ast.Node)) {
	if r, ok := n.(*ast.RangeStmt); ok {
		for _, part := range []ast.Node{r.Key, r.Value, r.X} {
			if part != nil {
				walkShallow(part, fn)
			}
		}
		return
	}
	walkShallow(n, fn)
}
