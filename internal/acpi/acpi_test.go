package acpi

import (
	"sync"
	"testing"

	"acsel/internal/apu"
)

func TestGovernorStrings(t *testing.T) {
	if GovernorUserspace.String() != "userspace" ||
		GovernorPerformance.String() != "performance" ||
		GovernorPowersave.String() != "powersave" {
		t.Fatal("governor strings")
	}
	if Governor(9).String() == "" {
		t.Fatal("unknown governor should render")
	}
}

func TestNewManagerDefaults(t *testing.T) {
	m := NewManager()
	if m.Governor() != GovernorUserspace {
		t.Error("default governor should be userspace")
	}
	for cu := 0; cu < NumCU; cu++ {
		f, err := m.CUFrequency(cu)
		if err != nil {
			t.Fatal(err)
		}
		if f != apu.MinCPUFreq() {
			t.Errorf("CU %d starts at %v, want min", cu, f)
		}
	}
	if m.GPUFrequency() != apu.MinGPUFreq() {
		t.Error("GPU should start at min")
	}
	if m.Transitions() != 0 {
		t.Error("fresh manager has transitions")
	}
}

func TestRequestCPUAndPlaneVoltage(t *testing.T) {
	m := NewManager()
	if err := m.RequestCPU(0, len(apu.CPUPStates)-1); err != nil {
		t.Fatal(err)
	}
	// CU 0 fast, CU 1 slow: plane voltage follows the fastest CU.
	if v := m.PlaneVoltage(); v != apu.CPUPStates[len(apu.CPUPStates)-1].Voltage {
		t.Errorf("plane voltage = %v", v)
	}
	f0, _ := m.CUFrequency(0)
	f1, _ := m.CUFrequency(1)
	if f0 != apu.MaxCPUFreq() || f1 != apu.MinCPUFreq() {
		t.Errorf("frequencies = %v, %v", f0, f1)
	}
}

func TestEffectivePowerPenalty(t *testing.T) {
	m := NewManager()
	if err := m.RequestCPU(0, len(apu.CPUPStates)-1); err != nil {
		t.Fatal(err)
	}
	// The slow CU pays the fast CU's voltage: penalty > 1.
	pen, err := m.EffectivePower(1)
	if err != nil {
		t.Fatal(err)
	}
	vMax := apu.CPUPStates[len(apu.CPUPStates)-1].Voltage
	vMin := apu.CPUPStates[0].Voltage
	want := vMax * vMax / (vMin * vMin)
	if pen != want {
		t.Errorf("penalty = %v, want %v", pen, want)
	}
	// The fast CU pays no penalty.
	pen0, _ := m.EffectivePower(0)
	if pen0 != 1 {
		t.Errorf("fast CU penalty = %v", pen0)
	}
	if _, err := m.EffectivePower(-1); err == nil {
		t.Error("bad CU accepted")
	}
}

func TestRequestValidation(t *testing.T) {
	m := NewManager()
	if err := m.RequestCPU(-1, 0); err == nil {
		t.Error("negative CU accepted")
	}
	if err := m.RequestCPU(NumCU, 0); err == nil {
		t.Error("out-of-range CU accepted")
	}
	if err := m.RequestCPU(0, len(apu.CPUPStates)); err == nil {
		t.Error("out-of-range P-state accepted")
	}
	if err := m.RequestGPU(-1); err == nil {
		t.Error("negative GPU P-state accepted")
	}
	if err := m.RequestGPU(len(apu.GPUPStates)); err == nil {
		t.Error("out-of-range GPU P-state accepted")
	}
	if _, err := m.CUFrequency(NumCU); err == nil {
		t.Error("out-of-range CU frequency accepted")
	}
}

func TestRequestCPUFreq(t *testing.T) {
	m := NewManager()
	if err := m.RequestCPUFreq(0, 2.4); err != nil {
		t.Fatal(err)
	}
	f, _ := m.CUFrequency(0)
	if f != 2.4 {
		t.Errorf("freq = %v", f)
	}
	if err := m.RequestCPUFreq(0, 2.5); err == nil {
		t.Error("unknown frequency accepted")
	}
}

func TestGovernorPoliciesOverrideRequests(t *testing.T) {
	m := NewManager()
	m.SetGovernor(GovernorPerformance)
	for cu := 0; cu < NumCU; cu++ {
		f, _ := m.CUFrequency(cu)
		if f != apu.MaxCPUFreq() {
			t.Errorf("performance governor: CU %d at %v", cu, f)
		}
	}
	// Userspace requests are rejected while a policy governor is active.
	if err := m.RequestCPU(0, 0); err == nil {
		t.Error("request accepted under performance governor")
	}
	m.SetGovernor(GovernorPowersave)
	for cu := 0; cu < NumCU; cu++ {
		f, _ := m.CUFrequency(cu)
		if f != apu.MinCPUFreq() {
			t.Errorf("powersave governor: CU %d at %v", cu, f)
		}
	}
}

func TestTransitionAccounting(t *testing.T) {
	m := NewManager()
	if err := m.RequestCPU(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestCPU(0, 3); err != nil { // no-op: same state
		t.Fatal(err)
	}
	if err := m.RequestGPU(1); err != nil {
		t.Fatal(err)
	}
	if m.Transitions() != 2 {
		t.Errorf("transitions = %d, want 2", m.Transitions())
	}
	if m.TransitionOverheadSec() != 2*TransitionLatencySec {
		t.Errorf("overhead = %v", m.TransitionOverheadSec())
	}
}

func TestApplyCPUConfig(t *testing.T) {
	m := NewManager()
	cfg := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.8, Threads: 3, GPUFreqGHz: 0.311}
	if err := m.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	// 3 threads → 2 active CUs at 2.8 GHz.
	f0, _ := m.CUFrequency(0)
	f1, _ := m.CUFrequency(1)
	if f0 != 2.8 || f1 != 2.8 {
		t.Errorf("active CUs at %v, %v", f0, f1)
	}
	if m.GPUFrequency() != 0.311 {
		t.Errorf("GPU at %v", m.GPUFrequency())
	}
}

func TestApplyOneThreadParksSecondCU(t *testing.T) {
	m := NewManager()
	cfg := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 3.7, Threads: 1, GPUFreqGHz: 0.311}
	if err := m.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	f1, _ := m.CUFrequency(1)
	if f1 != apu.MinCPUFreq() {
		t.Errorf("idle CU at %v, want parked", f1)
	}
	// But it still pays the plane voltage of the active CU.
	pen, _ := m.EffectivePower(1)
	if pen <= 1 {
		t.Errorf("idle CU penalty = %v, want > 1", pen)
	}
}

func TestApplyGPUConfig(t *testing.T) {
	m := NewManager()
	cfg := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: 1.9, Threads: 1, GPUFreqGHz: 0.819}
	if err := m.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	f0, _ := m.CUFrequency(0)
	if f0 != 1.9 {
		t.Errorf("host CU at %v", f0)
	}
	if m.GPUFrequency() != 0.819 {
		t.Errorf("GPU at %v", m.GPUFrequency())
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	m := NewManager()
	if err := m.Apply(apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 9, Threads: 1, GPUFreqGHz: 0.311}); err == nil {
		t.Error("invalid config accepted")
	}
	boost := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.BoostPStates[0].FreqGHz, Threads: 1, GPUFreqGHz: 0.311}
	if err := m.Apply(boost); err == nil {
		t.Error("boost frequency should not be software-visible through ACPI")
	}
}

func TestConcurrentRequestsSafe(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = m.RequestCPU(i%NumCU, j%len(apu.CPUPStates))
				_ = m.PlaneVoltage()
				_, _ = m.EffectivePower(i % NumCU)
			}
		}(i)
	}
	wg.Wait()
	// Plane voltage must still be a valid table entry.
	v := m.PlaneVoltage()
	ok := false
	for _, p := range apu.CPUPStates {
		if p.Voltage == v {
			ok = true
		}
	}
	if !ok {
		t.Errorf("plane voltage %v not in table", v)
	}
}

func BenchmarkApply(b *testing.B) {
	m := NewManager()
	cfgs := []apu.Config{
		{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 4, GPUFreqGHz: 0.311},
		{Device: apu.GPUDevice, CPUFreqGHz: 3.7, Threads: 1, GPUFreqGHz: 0.819},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Apply(cfgs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
