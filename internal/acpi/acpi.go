// Package acpi models the P-state management layer of §IV-A:
// "Software-visible P-states are managed either by the OS through the
// Advanced Configuration and Power Interface (ACPI) specification or by
// the hardware." It exposes per-compute-unit P-state requests, enforces
// the Trinity voltage-plane rule — all CPU compute units share one
// voltage plane whose voltage is set by the fastest active CU — and
// implements the OS governor policies through which the schedulers
// drive DVFS, with transition-latency accounting.
package acpi

import (
	"errors"
	"fmt"
	"sync"

	"acsel/internal/apu"
	"acsel/internal/fault"
)

// NumCU is the number of CPU compute units (dual-core modules).
const NumCU = apu.NumCores / 2

// TransitionLatencySec is the cost of one P-state transition (voltage
// ramp + PLL relock); a few tens of microseconds on Trinity-class
// hardware.
const TransitionLatencySec = 50e-6

// Governor selects how P-state requests are resolved.
type Governor int

const (
	// GovernorUserspace honors explicit per-CU requests (what the
	// paper's runtime uses: "we require direct control over CPU
	// P-states").
	GovernorUserspace Governor = iota
	// GovernorPerformance pins every CU to the highest P-state.
	GovernorPerformance
	// GovernorPowersave pins every CU to the lowest P-state.
	GovernorPowersave
)

// String names the governor like sysfs does.
func (g Governor) String() string {
	switch g {
	case GovernorUserspace:
		return "userspace"
	case GovernorPerformance:
		return "performance"
	case GovernorPowersave:
		return "powersave"
	}
	return fmt.Sprintf("Governor(%d)", int(g))
}

// Manager tracks per-CU P-state requests and resolves the shared
// voltage plane. It is safe for concurrent use (the paper's runtime
// adjusts P-states from the application thread while measurement runs
// elsewhere).
type Manager struct {
	mu        sync.Mutex
	governor  Governor
	requested [NumCU]int // index into apu.CPUPStates
	gpuState  int        // index into apu.GPUPStates
	// transitions counts P-state changes, for overhead accounting.
	transitions int
	// faults, when non-nil, injects transition failures and delays
	// (fault.SitePState) into ApplyFor.
	faults *fault.Injector
	// failedApplies and delayedApplies count injected transition
	// faults; extraLatencySec accrues the delay penalty.
	failedApplies   int
	delayedApplies  int
	extraLatencySec float64
}

// NewManager starts at the lowest CPU and GPU P-states under the
// userspace governor.
func NewManager() *Manager {
	return &Manager{governor: GovernorUserspace}
}

// ErrBadCU is returned for out-of-range compute-unit indices.
var ErrBadCU = errors.New("acpi: compute unit index out of range")

// ErrBadPState is returned for out-of-range P-state indices.
var ErrBadPState = errors.New("acpi: P-state index out of range")

// ErrTransitionFailed is returned when an injected fault aborts a
// P-state transition before any state changed. The failure is
// transient: a retry (new attempt ordinal) may succeed, so callers
// should bound-retry rather than give up.
var ErrTransitionFailed = errors.New("acpi: P-state transition failed")

// SetFaultInjector wires a fault plan into the transition path. A nil
// injector restores clean behaviour.
func (m *Manager) SetFaultInjector(in *fault.Injector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = in
}

// SetGovernor switches policy; performance/powersave immediately
// overwrite all CU requests.
func (m *Manager) SetGovernor(g Governor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.governor = g
	switch g {
	case GovernorPerformance:
		for cu := range m.requested {
			if m.requested[cu] != len(apu.CPUPStates)-1 {
				m.requested[cu] = len(apu.CPUPStates) - 1
				m.transitions++
			}
		}
	case GovernorPowersave:
		for cu := range m.requested {
			if m.requested[cu] != 0 {
				m.requested[cu] = 0
				m.transitions++
			}
		}
	}
}

// Governor returns the active policy.
func (m *Manager) Governor() Governor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.governor
}

// RequestCPU asks for P-state index ps on compute unit cu. Under
// non-userspace governors the request is rejected, mirroring the sysfs
// behaviour of writing to scaling_setspeed without the userspace
// governor.
func (m *Manager) RequestCPU(cu, ps int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cu < 0 || cu >= NumCU {
		return fmt.Errorf("%w: %d", ErrBadCU, cu)
	}
	if ps < 0 || ps >= len(apu.CPUPStates) {
		return fmt.Errorf("%w: CPU %d", ErrBadPState, ps)
	}
	if m.governor != GovernorUserspace {
		return fmt.Errorf("acpi: governor %v rejects explicit requests", m.governor)
	}
	if m.requested[cu] != ps {
		m.requested[cu] = ps
		m.transitions++
	}
	return nil
}

// RequestCPUFreq is RequestCPU by frequency.
func (m *Manager) RequestCPUFreq(cu int, freqGHz float64) error {
	for i, p := range apu.CPUPStates {
		if apu.SameFreq(p.FreqGHz, freqGHz) {
			return m.RequestCPU(cu, i)
		}
	}
	return fmt.Errorf("%w: %.3g GHz", apu.ErrUnknownPState, freqGHz)
}

// RequestGPU sets the GPU P-state (its own plane, independent voltage).
func (m *Manager) RequestGPU(ps int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ps < 0 || ps >= len(apu.GPUPStates) {
		return fmt.Errorf("%w: GPU %d", ErrBadPState, ps)
	}
	if m.gpuState != ps {
		m.gpuState = ps
		m.transitions++
	}
	return nil
}

// CUFrequency returns the granted frequency of a compute unit. All CUs
// are granted their requested frequency — frequency is per-CU on
// Trinity — but voltage is not (see PlaneVoltage).
func (m *Manager) CUFrequency(cu int) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cu < 0 || cu >= NumCU {
		return 0, fmt.Errorf("%w: %d", ErrBadCU, cu)
	}
	return apu.CPUPStates[m.requested[cu]].FreqGHz, nil
}

// GPUFrequency returns the granted GPU frequency.
func (m *Manager) GPUFrequency() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return apu.GPUPStates[m.gpuState].FreqGHz
}

// PlaneVoltage resolves the shared CPU voltage plane: "since all
// compute units on the chip share a voltage plane, the voltage across
// all compute units is set by the CU with maximum frequency" (§IV-A).
func (m *Manager) PlaneVoltage() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	maxPS := 0
	for _, ps := range m.requested {
		if ps > maxPS {
			maxPS = ps
		}
	}
	return apu.CPUPStates[maxPS].Voltage
}

// EffectivePower returns the voltage-plane penalty factor of a CU: the
// ratio between the plane voltage squared and the CU's own P-state
// voltage squared. A CU parked at 1.4 GHz next to a CU at 3.7 GHz burns
// V(3.7)²/V(1.4)² times more dynamic power per cycle than it would on
// an independent plane — the reason the paper's schedulers run all
// active cores at one frequency.
func (m *Manager) EffectivePower(cu int) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cu < 0 || cu >= NumCU {
		return 0, fmt.Errorf("%w: %d", ErrBadCU, cu)
	}
	maxPS := 0
	for _, ps := range m.requested {
		if ps > maxPS {
			maxPS = ps
		}
	}
	own := apu.CPUPStates[m.requested[cu]].Voltage
	plane := apu.CPUPStates[maxPS].Voltage
	return (plane * plane) / (own * own), nil
}

// Transitions returns the total number of P-state changes performed.
func (m *Manager) Transitions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitions
}

// TransitionOverheadSec returns the cumulative DVFS transition cost,
// including the extra latency of injected delayed applies.
func (m *Manager) TransitionOverheadSec() float64 {
	m.mu.Lock()
	extra := m.extraLatencySec
	transitions := m.transitions
	m.mu.Unlock()
	return float64(transitions)*TransitionLatencySec + extra
}

// FailedApplies returns how many ApplyFor calls an injected fault
// aborted (counting each failed attempt).
func (m *Manager) FailedApplies() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failedApplies
}

// DelayedApplies returns how many applies completed late under an
// injected PStateDelay fault.
func (m *Manager) DelayedApplies() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delayedApplies
}

// ApplyFor is Apply under a fault plan: the transition event is keyed
// by the caller's identity (kernel key) and an attempt ordinal, so a
// failed transition can be retried deterministically — the retry is a
// different event and may succeed. An injected PStateFail aborts the
// apply with ErrTransitionFailed before any state changes; a
// PStateDelay lets it complete but books Magnitude× the transition
// latency into TransitionOverheadSec.
func (m *Manager) ApplyFor(cfg apu.Config, key string, attempt int) error {
	m.mu.Lock()
	faults := m.faults.At(fault.SitePState, key, attempt)
	for _, f := range faults {
		if f.Kind == fault.PStateFail {
			m.failedApplies++
			m.mu.Unlock()
			return fmt.Errorf("%w: %s attempt %d", ErrTransitionFailed, key, attempt)
		}
	}
	for _, f := range faults {
		if f.Kind == fault.PStateDelay {
			m.delayedApplies++
			m.extraLatencySec += (f.Magnitude - 1) * TransitionLatencySec
		}
	}
	m.mu.Unlock()
	return m.Apply(cfg)
}

// Apply configures the manager to realize an apu.Config: all CUs that
// host the configuration's threads at the config's CPU P-state, idle
// CUs at the lowest P-state, and the GPU at the config's GPU P-state.
func (m *Manager) Apply(cfg apu.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var cpuPS int = -1
	for i, p := range apu.CPUPStates {
		if apu.SameFreq(p.FreqGHz, cfg.CPUFreqGHz) {
			cpuPS = i
		}
	}
	if cpuPS < 0 {
		// Boost frequencies are outside ACPI's software-visible table.
		return fmt.Errorf("%w: %.3g GHz not software-visible", apu.ErrUnknownPState, cfg.CPUFreqGHz)
	}
	var gpuPS int = -1
	for i, p := range apu.GPUPStates {
		if apu.SameFreq(p.FreqGHz, cfg.GPUFreqGHz) {
			gpuPS = i
		}
	}
	if gpuPS < 0 {
		return fmt.Errorf("%w: GPU %.3g GHz", apu.ErrUnknownPState, cfg.GPUFreqGHz)
	}
	// Threads spread across modules first (cores 0,2 then 1,3), so the
	// number of active CUs is ceil(threads/2) for CPU configs and 1 for
	// the GPU host thread.
	activeCU := 1
	if cfg.Device == apu.CPUDevice {
		activeCU = (cfg.Threads + 1) / 2
	}
	for cu := 0; cu < NumCU; cu++ {
		want := 0 // idle CUs park at the lowest P-state
		if cu < activeCU {
			want = cpuPS
		}
		if err := m.RequestCPU(cu, want); err != nil {
			return err
		}
	}
	return m.RequestGPU(gpuPS)
}
