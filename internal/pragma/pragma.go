// Package pragma implements the source preprocessor of §III-D: "we
// currently instrument source code by hand with profiling pragmas,
// which a source preprocessor then converts into profiling library
// calls." It scans C-like source for
//
//	#pragma acsel profile("kernel-name")
//
// immediately preceding a statement or block, and rewrites the source
// so the statement is bracketed by acsel_profile_begin/_end calls. The
// preprocessor is purely textual (brace matching, no C parsing), which
// is exactly the fidelity the paper's tooling needed.
package pragma

import (
	"fmt"
	"regexp"
	"strings"
)

// Marker is the pragma the preprocessor recognizes.
const Marker = "#pragma acsel profile"

// BeginCall and EndCall are the emitted library calls.
const (
	BeginCall = "acsel_profile_begin"
	EndCall   = "acsel_profile_end"
)

var pragmaRe = regexp.MustCompile(`^\s*#pragma\s+acsel\s+profile\s*\(\s*"([^"]+)"\s*\)\s*$`)

// Instrumented describes one rewritten site.
type Instrumented struct {
	Kernel string
	// Line is the 1-based line number of the pragma in the input.
	Line int
}

// Error is a preprocessing failure with position information.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("pragma: line %d: %s", e.Line, e.Msg) }

// Preprocess rewrites src, converting every profile pragma into
// begin/end library calls around the following block or single
// statement. It returns the rewritten source and the list of
// instrumented kernels in order of appearance.
func Preprocess(src string) (string, []Instrumented, error) {
	lines := strings.Split(src, "\n")
	var out []string
	var sites []Instrumented

	for i := 0; i < len(lines); i++ {
		m := pragmaRe.FindStringSubmatch(lines[i])
		if m == nil {
			if strings.Contains(lines[i], Marker) {
				return "", nil, &Error{Line: i + 1, Msg: "malformed profile pragma"}
			}
			out = append(out, lines[i])
			continue
		}
		name := m[1]
		pragmaLine := i + 1
		indent := leadingWhitespace(lines[i])

		// Find the instrumented statement: the next non-blank line.
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			out = append(out, lines[j])
			j++
		}
		if j >= len(lines) {
			return "", nil, &Error{Line: i + 1, Msg: "pragma at end of file"}
		}

		out = append(out, fmt.Sprintf("%s%s(%q);", indent, BeginCall, name))
		if strings.Contains(lines[j], "{") {
			// Block form: copy lines until the braces balance.
			depth := 0
			k := j
			for ; k < len(lines); k++ {
				depth += strings.Count(lines[k], "{") - strings.Count(lines[k], "}")
				out = append(out, lines[k])
				if depth == 0 {
					break
				}
			}
			if depth != 0 {
				return "", nil, &Error{Line: j + 1, Msg: "unbalanced braces in instrumented block"}
			}
			i = k
		} else {
			// Single-statement form: it must end with a semicolon.
			if !strings.HasSuffix(strings.TrimSpace(lines[j]), ";") {
				return "", nil, &Error{Line: j + 1, Msg: "instrumented statement must be a block or end with ';'"}
			}
			out = append(out, lines[j])
			i = j
		}
		out = append(out, fmt.Sprintf("%s%s(%q);", indent, EndCall, name))
		sites = append(sites, Instrumented{Kernel: name, Line: pragmaLine})
	}
	return strings.Join(out, "\n"), sites, nil
}

func leadingWhitespace(s string) string {
	return s[:len(s)-len(strings.TrimLeft(s, " \t"))]
}

// Kernels lists the kernel names a source file instruments, without
// rewriting it.
func Kernels(src string) ([]string, error) {
	_, sites, err := Preprocess(src)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, s := range sites {
		names = append(names, s.Kernel)
	}
	return names, nil
}
