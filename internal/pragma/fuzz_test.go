package pragma

import (
	"strings"
	"testing"
)

// FuzzPreprocess checks that the preprocessor never panics, that its
// output never contains a recognized pragma (so preprocessing is
// idempotent), and that untouched input passes through unchanged.
func FuzzPreprocess(f *testing.F) {
	f.Add("#pragma acsel profile(\"k\")\n{\n  x();\n}")
	f.Add("#pragma acsel profile(\"a\")\ny();")
	f.Add("plain code\nno pragmas\n")
	f.Add("#pragma acsel profile(\"k\")")
	f.Add("#pragma acsel profile(bad)")
	f.Add("{ unbalanced\n#pragma acsel profile(\"k\")\n{\n")
	f.Fuzz(func(t *testing.T, src string) {
		out, sites, err := Preprocess(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if strings.Contains(out, "#pragma acsel profile(\"") && pragmaRe.MatchString(firstPragmaLine(out)) {
			t.Errorf("output still contains a recognizable pragma:\n%s", out)
		}
		if len(sites) == 0 && out != src {
			t.Errorf("no sites but output changed:\nin:  %q\nout: %q", src, out)
		}
		// Idempotence on successful output.
		out2, sites2, err2 := Preprocess(out)
		if err2 != nil {
			t.Errorf("reprocessing failed: %v", err2)
			return
		}
		if out2 != out || len(sites2) != 0 {
			t.Errorf("not idempotent")
		}
	})
}

func firstPragmaLine(s string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, Marker) {
			return l
		}
	}
	return ""
}
