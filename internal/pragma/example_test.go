package pragma_test

import (
	"fmt"

	"acsel/internal/pragma"
)

// Rewriting a profiling pragma into library calls, as the paper's
// source preprocessor does (§III-D).
func ExamplePreprocess() {
	src := `#pragma acsel profile("CalcQForElems")
{
  calc_q(domain);
}`
	out, sites, err := pragma.Preprocess(src)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	fmt.Printf("instrumented: %s (line %d)\n", sites[0].Kernel, sites[0].Line)
	// Output:
	// acsel_profile_begin("CalcQForElems");
	// {
	//   calc_q(domain);
	// }
	// acsel_profile_end("CalcQForElems");
	// instrumented: CalcQForElems (line 1)
}
