package pragma

import (
	"strings"
	"testing"
)

func TestPreprocessBlockForm(t *testing.T) {
	src := `void step() {
  #pragma acsel profile("CalcQForElems")
  for (int i = 0; i < n; i++) {
    q[i] = compute(i);
  }
  done();
}`
	out, sites, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0].Kernel != "CalcQForElems" || sites[0].Line != 2 {
		t.Fatalf("sites = %+v", sites)
	}
	wantBegin := `acsel_profile_begin("CalcQForElems");`
	wantEnd := `acsel_profile_end("CalcQForElems");`
	bi := strings.Index(out, wantBegin)
	li := strings.Index(out, "for (")
	ei := strings.Index(out, wantEnd)
	di := strings.Index(out, "done();")
	if bi < 0 || ei < 0 || !(bi < li && li < ei && ei < di) {
		t.Fatalf("instrumentation misplaced:\n%s", out)
	}
	if strings.Contains(out, "#pragma acsel") {
		t.Error("pragma left in output")
	}
}

func TestPreprocessSingleStatement(t *testing.T) {
	src := `  #pragma acsel profile("launch")
  run_kernel(a, b);`
	out, sites, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0].Kernel != "launch" {
		t.Fatalf("sites = %+v", sites)
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(lines[0], BeginCall) || !strings.Contains(lines[2], EndCall) {
		t.Fatalf("output:\n%s", out)
	}
	// Indentation preserved.
	if !strings.HasPrefix(lines[0], "  ") {
		t.Error("indentation lost")
	}
}

func TestPreprocessMultipleSites(t *testing.T) {
	src := `#pragma acsel profile("a")
x();
#pragma acsel profile("b")
{
  y();
}`
	_, sites, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 || sites[0].Kernel != "a" || sites[1].Kernel != "b" {
		t.Fatalf("sites = %+v", sites)
	}
}

func TestPreprocessNestedBraces(t *testing.T) {
	src := `#pragma acsel profile("nested")
{
  if (x) {
    while (y) { z(); }
  }
}
after();`
	out, _, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	ei := strings.Index(out, EndCall)
	ai := strings.Index(out, "after();")
	if ei < 0 || ai < ei {
		t.Fatalf("end call misplaced:\n%s", out)
	}
}

func TestPreprocessBlankLinesBetweenPragmaAndBlock(t *testing.T) {
	src := `#pragma acsel profile("k")

{
  body();
}`
	_, sites, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 {
		t.Fatalf("sites = %+v", sites)
	}
}

func TestPreprocessErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"malformed", `#pragma acsel profile(unquoted)`},
		{"at EOF", `#pragma acsel profile("k")`},
		{"unbalanced", "#pragma acsel profile(\"k\")\n{\n  x();"},
		{"no semicolon", "#pragma acsel profile(\"k\")\nbare_word"},
	}
	for _, c := range cases {
		if _, _, err := Preprocess(c.src); err == nil {
			t.Errorf("%s: error expected", c.name)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error type %T", c.name, err)
		}
	}
}

func TestPreprocessPassThrough(t *testing.T) {
	src := "int main() {\n  return 0;\n}"
	out, sites, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if out != src || len(sites) != 0 {
		t.Error("unannotated source should pass through unchanged")
	}
}

func TestKernels(t *testing.T) {
	src := `#pragma acsel profile("k1")
a();
#pragma acsel profile("k2")
b();`
	names, err := Kernels(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "k1" || names[1] != "k2" {
		t.Fatalf("names = %v", names)
	}
	if _, err := Kernels(`#pragma acsel profile(broken)`); err == nil {
		t.Error("error expected")
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Line: 3, Msg: "boom"}
	if !strings.Contains(e.Error(), "line 3") || !strings.Contains(e.Error(), "boom") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestPreprocessIdempotentOnOutput(t *testing.T) {
	// The rewritten source contains no pragmas, so preprocessing it
	// again is the identity.
	src := `#pragma acsel profile("k")
{
  work();
}`
	out1, _, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	out2, sites, err := Preprocess(out1)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out1 || len(sites) != 0 {
		t.Error("preprocessing not idempotent")
	}
}

func BenchmarkPreprocess(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString("#pragma acsel profile(\"k\")\n{\n  work();\n}\nplain();\n")
	}
	src := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Preprocess(src); err != nil {
			b.Fatal(err)
		}
	}
}
