package apu

import (
	"errors"
	"fmt"
	"math"
)

// HybridExecution is the outcome of a CPU+GPU co-run of one kernel,
// used to examine the paper's §III-A argument for excluding hybrid
// execution: "even if hybrid execution increases performance, it will
// strictly lower power-efficiency compared to the best single device".
type HybridExecution struct {
	CPUPart Execution
	GPUPart Execution
	// Split is the fraction of work sent to the GPU.
	Split float64
	// TimeSec is the co-run completion time (the slower partition,
	// plus combine overhead).
	TimeSec float64
	// CPUPowerW and NBGPUPowerW are the co-run's domain powers.
	CPUPowerW   float64
	NBGPUPowerW float64
}

// TotalPowerW is the package power of the co-run.
func (h HybridExecution) TotalPowerW() float64 { return h.CPUPowerW + h.NBGPUPowerW }

// Perf is the co-run throughput.
func (h HybridExecution) Perf() float64 { return 1 / h.TimeSec }

// hybridCombineOverhead is the fraction of the faster partition's time
// spent splitting inputs and merging outputs (§III-A: "the programmer
// [must] split kernel inputs and combine outputs").
const hybridCombineOverhead = 0.08

// ErrBadSplit is returned for splits outside (0, 1).
var ErrBadSplit = errors.New("apu: hybrid split must be in (0, 1)")

// RunHybrid executes workload w with fraction split of its work on the
// GPU and the remainder on the CPU, both partitions running
// concurrently at the given configurations. The CPU configuration must
// be a CPU-device config and the GPU configuration a GPU-device config;
// the shared memory controller and both power planes are active for the
// duration of the slower partition.
func (m *Machine) RunHybrid(w Workload, cpuCfg, gpuCfg Config, split float64) (HybridExecution, error) {
	if split <= 0 || split >= 1 {
		return HybridExecution{}, fmt.Errorf("%w: %v", ErrBadSplit, split)
	}
	if cpuCfg.Device != CPUDevice || gpuCfg.Device != GPUDevice {
		return HybridExecution{}, errors.New("apu: RunHybrid needs one CPU and one GPU configuration")
	}
	cpuPart := w
	cpuPart.FLOPs = w.FLOPs * (1 - split)
	cpuPart.Bytes = w.Bytes * (1 - split)
	gpuPart := w
	gpuPart.FLOPs = w.FLOPs * split
	gpuPart.Bytes = w.Bytes * split

	ec, err := m.runCPU(cpuPart, cpuCfg)
	if err != nil {
		return HybridExecution{}, err
	}
	eg, err := m.runGPU(gpuPart, gpuCfg)
	if err != nil {
		return HybridExecution{}, err
	}

	// Both partitions contend for the shared memory controller; the
	// slower side sets completion, and load imbalance plus the
	// split/combine overhead is pure loss.
	slower := math.Max(ec.TimeSec, eg.TimeSec)
	faster := math.Min(ec.TimeSec, eg.TimeSec)
	contention := 1 + 0.15*math.Min(1, (ec.AchievedBWGBs+eg.AchievedBWGBs)/m.PeakBWGBs)
	total := slower*contention + faster*hybridCombineOverhead

	// Power: energy-conserving accounting. Each domain draws its active
	// power while its partition runs and an idle floor afterwards; the
	// CPU partition's DRAM traffic also flows through the NB domain
	// (shared memory controller), which single-device runs don't pay on
	// top of a busy GPU.
	const cpuIdleFrac, nbIdleFrac = 0.35, 0.4
	cpuEnergy := ec.CPUPowerW*ec.TimeSec + cpuIdleFrac*ec.CPUPowerW*(total-ec.TimeSec)
	nbEnergy := eg.NBGPUPowerW*eg.TimeSec + nbIdleFrac*eg.NBGPUPowerW*(total-eg.TimeSec) +
		m.DRAMWPerGBs*ec.AchievedBWGBs*ec.TimeSec

	return HybridExecution{
		CPUPart: ec, GPUPart: eg, Split: split,
		TimeSec: total, CPUPowerW: cpuEnergy / total, NBGPUPowerW: nbEnergy / total,
	}, nil
}

// BestHybridSplit sweeps work splits and returns the hybrid execution
// with the highest throughput, for comparing against single-device
// configurations.
func (m *Machine) BestHybridSplit(w Workload, cpuCfg, gpuCfg Config, steps int) (HybridExecution, error) {
	if steps < 2 {
		steps = 9
	}
	var best HybridExecution
	bestPerf := math.Inf(-1)
	for i := 1; i <= steps; i++ {
		split := float64(i) / float64(steps+1)
		h, err := m.RunHybrid(w, cpuCfg, gpuCfg, split)
		if err != nil {
			return HybridExecution{}, err
		}
		if h.Perf() > bestPerf {
			bestPerf = h.Perf()
			best = h
		}
	}
	return best, nil
}
