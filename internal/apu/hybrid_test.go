package apu

import (
	"math/rand"
	"testing"
)

func hybridConfigs() (Config, Config) {
	return Config{CPUDevice, MaxCPUFreq(), 4, MinGPUFreq()},
		Config{GPUDevice, MaxCPUFreq(), 1, MaxGPUFreq()}
}

func TestRunHybridValidation(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	cpu, gpu := hybridConfigs()
	if _, err := m.RunHybrid(w, cpu, gpu, 0); err == nil {
		t.Error("split 0 accepted")
	}
	if _, err := m.RunHybrid(w, cpu, gpu, 1); err == nil {
		t.Error("split 1 accepted")
	}
	if _, err := m.RunHybrid(w, gpu, cpu, 0.5); err == nil {
		t.Error("swapped device configs accepted")
	}
}

func TestRunHybridBasics(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	cpu, gpu := hybridConfigs()
	h, err := m.RunHybrid(w, cpu, gpu, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.TimeSec <= 0 || h.TotalPowerW() <= 0 {
		t.Fatalf("hybrid execution: %+v", h)
	}
	// The co-run cannot finish before its slower partition.
	slower := h.CPUPart.TimeSec
	if h.GPUPart.TimeSec > slower {
		slower = h.GPUPart.TimeSec
	}
	if h.TimeSec < slower {
		t.Errorf("hybrid time %v below slower partition %v", h.TimeSec, slower)
	}
}

func TestHybridCanBeatSingleDeviceOnPerf(t *testing.T) {
	// §III-A concedes hybrid can raise raw performance (up to 2× in the
	// best case). With a balanced kernel an optimal split should beat
	// the best single device on throughput.
	m := DefaultMachine()
	w := testWorkload()
	w.GPUAffinity = 0.12 // make devices comparable in speed
	cpu, gpu := hybridConfigs()
	ec, err := m.Run(w, cpu)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := m.Run(w, gpu)
	if err != nil {
		t.Fatal(err)
	}
	bestSingle := ec.Perf()
	if eg.Perf() > bestSingle {
		bestSingle = eg.Perf()
	}
	h, err := m.BestHybridSplit(w, cpu, gpu, 19)
	if err != nil {
		t.Fatal(err)
	}
	if h.Perf() <= bestSingle {
		t.Skipf("hybrid did not beat single device for this kernel (%.3g vs %.3g) — allowed, but weakens the test premise", h.Perf(), bestSingle)
	}
	if h.Perf() > 2*bestSingle {
		t.Errorf("hybrid exceeded the paper's 2x bound: %v vs %v", h.Perf(), bestSingle)
	}
}

// The §III-A claim this model must reproduce: hybrid execution
// (almost) never improves power efficiency over the best single device,
// and when static-power amortization lets it edge ahead, the margin is
// small — "the benefit of hybrid execution in a power-constrained
// environment is often much lower than the best case". The claim is a
// qualitative engineering argument, not a theorem, so the assertion is
// statistical: hybrid wins perf/W in at most a small minority of
// kernels and never by a meaningful factor.
func TestHybridRarelyImprovesPowerEfficiency(t *testing.T) {
	m := DefaultMachine()
	rng := rand.New(rand.NewSource(41))
	cpu, gpu := hybridConfigs()
	const trials = 40
	wins := 0
	for trial := 0; trial < trials; trial++ {
		w := randomWorkload(rng)
		ec, err := m.Run(w, cpu)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := m.Run(w, gpu)
		if err != nil {
			t.Fatal(err)
		}
		bestEff := ec.Perf() / ec.TotalPowerW()
		if e := eg.Perf() / eg.TotalPowerW(); e > bestEff {
			bestEff = e
		}
		h, err := m.BestHybridSplit(w, cpu, gpu, 9)
		if err != nil {
			t.Fatal(err)
		}
		hybridEff := h.Perf() / h.TotalPowerW()
		if hybridEff > bestEff {
			wins++
			if hybridEff > bestEff*1.15 {
				t.Errorf("trial %d: hybrid perf/W %v beats best single device %v by >15%%",
					trial, hybridEff, bestEff)
			}
		}
	}
	if wins > trials/5 {
		t.Errorf("hybrid improved power efficiency in %d/%d kernels — contradicts §III-A premise", wins, trials)
	}
	t.Logf("hybrid perf/W wins: %d/%d (all within 15%%)", wins, trials)
}

func TestBestHybridSplitDefaultSteps(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	cpu, gpu := hybridConfigs()
	if _, err := m.BestHybridSplit(w, cpu, gpu, 0); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunHybrid(b *testing.B) {
	m := DefaultMachine()
	w := testWorkload()
	cpu, gpu := hybridConfigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunHybrid(w, cpu, gpu, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
