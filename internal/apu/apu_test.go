package apu

import (
	"math"
	"math/rand"
	"testing"
)

func testWorkload() Workload {
	return Workload{
		Name:           "test-kernel",
		FLOPs:          2e8,
		Bytes:          5e7,
		ParFrac:        0.95,
		VecFrac:        0.5,
		BranchFrac:     0.08,
		GPUAffinity:    0.25,
		GPUBytesFactor: 1.1,
		LaunchCycles:   3e6,
		L1MissRate:     0.03,
		L2MissRate:     0.3,
		TLBMissRate:    0.002,
		InstrPerFlop:   1.6,
	}
}

func TestDeviceString(t *testing.T) {
	if CPUDevice.String() != "CPU" || GPUDevice.String() != "GPU" {
		t.Fatal("device strings")
	}
	if Device(9).String() == "" {
		t.Fatal("unknown device should still render")
	}
}

func TestVoltageLookups(t *testing.T) {
	for _, p := range CPUPStates {
		v, err := CPUVoltage(p.FreqGHz)
		if err != nil || v != p.Voltage {
			t.Errorf("CPUVoltage(%v) = %v, %v", p.FreqGHz, v, err)
		}
	}
	for _, p := range GPUPStates {
		v, err := GPUVoltage(p.FreqGHz)
		if err != nil || v != p.Voltage {
			t.Errorf("GPUVoltage(%v) = %v, %v", p.FreqGHz, v, err)
		}
	}
	if _, err := CPUVoltage(9.9); err == nil {
		t.Error("expected ErrUnknownPState")
	}
	if _, err := GPUVoltage(9.9); err == nil {
		t.Error("expected ErrUnknownPState")
	}
	// Boost states are accepted by CPUVoltage.
	if _, err := CPUVoltage(BoostPStates[0].FreqGHz); err != nil {
		t.Errorf("boost voltage lookup: %v", err)
	}
}

func TestVoltagesMonotoneInFrequency(t *testing.T) {
	for i := 1; i < len(CPUPStates); i++ {
		if CPUPStates[i].Voltage <= CPUPStates[i-1].Voltage || CPUPStates[i].FreqGHz <= CPUPStates[i-1].FreqGHz {
			t.Fatal("CPU P-state table must be sorted ascending in f and V")
		}
	}
	for i := 1; i < len(GPUPStates); i++ {
		if GPUPStates[i].Voltage <= GPUPStates[i-1].Voltage || GPUPStates[i].FreqGHz <= GPUPStates[i-1].FreqGHz {
			t.Fatal("GPU P-state table must be sorted ascending in f and V")
		}
	}
}

func TestStepDownUpCPU(t *testing.T) {
	f, ok := StepDownCPU(1.9)
	if !ok || f != 1.4 {
		t.Errorf("StepDownCPU(1.9) = %v, %v", f, ok)
	}
	if _, ok := StepDownCPU(MinCPUFreq()); ok {
		t.Error("StepDownCPU at min should fail")
	}
	f, ok = StepUpCPU(1.4)
	if !ok || f != 1.9 {
		t.Errorf("StepUpCPU(1.4) = %v, %v", f, ok)
	}
	if _, ok := StepUpCPU(MaxCPUFreq()); ok {
		t.Error("StepUpCPU at max should fail")
	}
	// Boost steps down into regular top state.
	f, ok = StepDownCPU(BoostPStates[0].FreqGHz)
	if !ok || f != MaxCPUFreq() {
		t.Errorf("StepDownCPU(boost0) = %v, %v", f, ok)
	}
	f, ok = StepDownCPU(BoostPStates[1].FreqGHz)
	if !ok || f != BoostPStates[0].FreqGHz {
		t.Errorf("StepDownCPU(boost1) = %v, %v", f, ok)
	}
	if f, ok := StepDownCPU(2.22); ok || f != 2.22 {
		t.Error("StepDownCPU with unknown frequency should be a no-op")
	}
}

func TestStepDownUpGPU(t *testing.T) {
	f, ok := StepDownGPU(0.649)
	if !ok || f != 0.311 {
		t.Errorf("StepDownGPU = %v, %v", f, ok)
	}
	if _, ok := StepDownGPU(MinGPUFreq()); ok {
		t.Error("StepDownGPU at min should fail")
	}
	f, ok = StepUpGPU(0.649)
	if !ok || f != 0.819 {
		t.Errorf("StepUpGPU = %v, %v", f, ok)
	}
	if _, ok := StepUpGPU(MaxGPUFreq()); ok {
		t.Error("StepUpGPU at max should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{CPUDevice, 2.4, 4, 0.311}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{CPUDevice, 2.5, 4, 0.311}, // unknown CPU freq
		{CPUDevice, 2.4, 0, 0.311}, // zero threads
		{CPUDevice, 2.4, 5, 0.311}, // too many threads
		{CPUDevice, 2.4, 4, 0.5},   // unknown GPU freq
		{GPUDevice, 2.4, 2, 0.819}, // GPU with 2 host threads
		{Device(3), 2.4, 1, 0.311}, // unknown device
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %v", i, c)
		}
	}
}

func TestConfigFeatures(t *testing.T) {
	c := Config{GPUDevice, 3.7, 1, 0.819}
	f := c.Features()
	if len(f) != len(FeatureNames()) {
		t.Fatal("feature/name length mismatch")
	}
	if f[0] != 3.7 || f[1] != 1 || f[2] != 0.819 {
		t.Errorf("features = %v", f)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestSpaceEnumeration(t *testing.T) {
	s := NewSpace()
	// 6 CPU P-states × 4 threads + 3 GPU P-states × 6 CPU P-states = 42.
	if s.Len() != 42 {
		t.Fatalf("space size = %d, want 42", s.Len())
	}
	seen := map[Config]bool{}
	for id, c := range s.Configs {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", id, err)
		}
		if seen[c] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c] = true
		if s.IDOf(c) != id {
			t.Errorf("IDOf round trip failed for %v", c)
		}
		got, err := s.ByID(id)
		if err != nil || got != c {
			t.Errorf("ByID round trip failed for %d", id)
		}
	}
	if s.IDOf(Config{CPUDevice, 9, 1, 0.311}) != -1 {
		t.Error("IDOf unknown config should be -1")
	}
	if _, err := s.ByID(-1); err == nil {
		t.Error("ByID(-1) should fail")
	}
	if _, err := s.ByID(42); err == nil {
		t.Error("ByID(42) should fail")
	}
}

func TestSpaceWithBoost(t *testing.T) {
	s := NewSpaceWithBoost()
	if s.Len() != 42+len(BoostPStates)*NumCores {
		t.Fatalf("boost space size = %d", s.Len())
	}
}

func TestDeviceConfigs(t *testing.T) {
	s := NewSpace()
	cpu := s.DeviceConfigs(CPUDevice)
	gpu := s.DeviceConfigs(GPUDevice)
	if len(cpu) != 24 || len(gpu) != 18 {
		t.Fatalf("device partition = %d/%d, want 24/18", len(cpu), len(gpu))
	}
}

func TestSampleConfigs(t *testing.T) {
	// Table II: CPU 3.7 GHz / 4 threads / GPU 311 MHz;
	// GPU 819 MHz / 1 thread / CPU 3.7 GHz.
	c := SampleConfigCPU()
	if c.Device != CPUDevice || c.CPUFreqGHz != 3.7 || c.Threads != 4 || c.GPUFreqGHz != 0.311 {
		t.Errorf("CPU sample = %v", c)
	}
	g := SampleConfigGPU()
	if g.Device != GPUDevice || g.CPUFreqGHz != 3.7 || g.Threads != 1 || g.GPUFreqGHz != 0.819 {
		t.Errorf("GPU sample = %v", g)
	}
	s := NewSpace()
	if s.IDOf(c) < 0 || s.IDOf(g) < 0 {
		t.Error("sample configs must be members of the space")
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := testWorkload().Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	mutations := []func(*Workload){
		func(w *Workload) { w.FLOPs = 0 },
		func(w *Workload) { w.Bytes = -1 },
		func(w *Workload) { w.ParFrac = 1.5 },
		func(w *Workload) { w.VecFrac = -0.1 },
		func(w *Workload) { w.BranchFrac = 2 },
		func(w *Workload) { w.GPUAffinity = 0 },
		func(w *Workload) { w.GPUBytesFactor = 0 },
		func(w *Workload) { w.LaunchCycles = -5 },
		func(w *Workload) { w.L1MissRate = 1.2 },
		func(w *Workload) { w.L2MissRate = -0.2 },
		func(w *Workload) { w.TLBMissRate = 3 },
		func(w *Workload) { w.InstrPerFlop = 0 },
	}
	for i, mut := range mutations {
		w := testWorkload()
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunCPUBasics(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	e, err := m.Run(w, Config{CPUDevice, 2.4, 4, 0.311})
	if err != nil {
		t.Fatal(err)
	}
	if e.TimeSec <= 0 || math.IsNaN(e.TimeSec) {
		t.Fatalf("TimeSec = %v", e.TimeSec)
	}
	if e.CPUPowerW <= 0 || e.NBGPUPowerW <= 0 {
		t.Fatalf("powers = %v, %v", e.CPUPowerW, e.NBGPUPowerW)
	}
	if e.GPUUtil != 0 {
		t.Errorf("CPU run has GPUUtil = %v", e.GPUUtil)
	}
	if e.TotalPowerW() != e.CPUPowerW+e.NBGPUPowerW {
		t.Error("TotalPowerW mismatch")
	}
	if math.Abs(e.Perf()-1/e.TimeSec) > 1e-18 {
		t.Error("Perf mismatch")
	}
	if math.Abs(e.EnergyJ()-e.TotalPowerW()*e.TimeSec) > 1e-12 {
		t.Error("EnergyJ mismatch")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	m := DefaultMachine()
	if _, err := m.Run(Workload{}, Config{CPUDevice, 2.4, 4, 0.311}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := m.Run(testWorkload(), Config{CPUDevice, 2.5, 4, 0.311}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCPUFreqSpeedsUpCompute(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	w.Bytes = 1e5 // compute-bound
	slow, _ := m.Run(w, Config{CPUDevice, 1.4, 4, 0.311})
	fast, _ := m.Run(w, Config{CPUDevice, 3.7, 4, 0.311})
	ratio := slow.TimeSec / fast.TimeSec
	if ratio < 2.2 || ratio > 2.9 {
		t.Errorf("compute-bound f-scaling ratio = %v, want ≈ 3.7/1.4", ratio)
	}
}

func TestMemoryBoundInsensitiveToFreq(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	w.FLOPs = 1e6
	w.Bytes = 5e8 // memory-bound
	slow, _ := m.Run(w, Config{CPUDevice, 1.4, 4, 0.311})
	fast, _ := m.Run(w, Config{CPUDevice, 3.7, 4, 0.311})
	ratio := slow.TimeSec / fast.TimeSec
	if ratio > 1.6 {
		t.Errorf("memory-bound f-scaling ratio = %v, want close to 1", ratio)
	}
}

func TestThreadScaling(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	w.Bytes = 1e5
	w.ParFrac = 0.99
	var prev float64 = math.Inf(1)
	for n := 1; n <= 4; n++ {
		e, err := m.Run(w, Config{CPUDevice, 2.4, n, 0.311})
		if err != nil {
			t.Fatal(err)
		}
		if e.TimeSec >= prev {
			t.Errorf("no speedup from %d threads: %v >= %v", n, e.TimeSec, prev)
		}
		prev = e.TimeSec
	}
}

func TestSerialKernelDoesNotScale(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	w.ParFrac = 0.05
	one, _ := m.Run(w, Config{CPUDevice, 2.4, 1, 0.311})
	four, _ := m.Run(w, Config{CPUDevice, 2.4, 4, 0.311})
	if one.TimeSec/four.TimeSec > 1.15 {
		t.Errorf("serial kernel sped up %vx with 4 threads", one.TimeSec/four.TimeSec)
	}
	// But it should cost more power with 4 active cores.
	if four.CPUPowerW <= one.CPUPowerW {
		t.Error("4 threads should draw more CPU power")
	}
}

func TestGPUFreqScaling(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	w.Bytes = 1e5 // compute-bound on GPU too
	slow, _ := m.Run(w, Config{GPUDevice, 3.7, 1, 0.311})
	fast, _ := m.Run(w, Config{GPUDevice, 3.7, 1, 0.819})
	if slow.TimeSec <= fast.TimeSec {
		// expected: higher GPU frequency is faster for compute-bound
		t.Errorf("GPU freq scaling inverted: %v <= %v", slow.TimeSec, fast.TimeSec)
	}
}

func TestGPULaunchOverheadSensitiveToCPUFreq(t *testing.T) {
	// Table I: GPU configurations at varying CPU frequency differ
	// because launch overhead runs on the CPU.
	m := DefaultMachine()
	w := testWorkload()
	w.LaunchCycles = 5e7 // launch-dominated
	w.FLOPs = 1e6
	w.Bytes = 1e5
	slow, _ := m.Run(w, Config{GPUDevice, 1.4, 1, 0.819})
	fast, _ := m.Run(w, Config{GPUDevice, 3.7, 1, 0.819})
	ratio := slow.TimeSec / fast.TimeSec
	if ratio < 1.5 {
		t.Errorf("launch-bound kernel insensitive to CPU freq: ratio %v", ratio)
	}
}

func TestGPUPowerScalesWithFreq(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	lo, _ := m.Run(w, Config{GPUDevice, 1.4, 1, 0.311})
	hi, _ := m.Run(w, Config{GPUDevice, 1.4, 1, 0.819})
	if hi.NBGPUPowerW <= lo.NBGPUPowerW {
		t.Errorf("GPU power not increasing with frequency: %v <= %v", hi.NBGPUPowerW, lo.NBGPUPowerW)
	}
}

func TestPowerMagnitudesPlausible(t *testing.T) {
	// The paper reports per-kernel package power between ~12 and ~55 W
	// across the whole space; the calibrated model must stay in that
	// ballpark for a generic kernel.
	m := DefaultMachine()
	w := testWorkload()
	s := NewSpace()
	for _, cfg := range s.Configs {
		e, err := m.Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p := e.TotalPowerW(); p < 5 || p > 70 {
			t.Errorf("config %v: package power %v W out of plausible range", cfg, p)
		}
	}
}

func TestMinCPUConfigIsLowestPower(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	s := NewSpace()
	minCfg := Config{CPUDevice, MinCPUFreq(), 1, MinGPUFreq()}
	eMin, _ := m.Run(w, minCfg)
	for _, cfg := range s.Configs {
		e, _ := m.Run(w, cfg)
		if e.TotalPowerW() < eMin.TotalPowerW()-1e-9 {
			t.Errorf("config %v draws less power (%v) than the minimum config (%v)",
				cfg, e.TotalPowerW(), eMin.TotalPowerW())
		}
	}
}

func TestRunNoisyDeterministicBySeed(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	cfg := Config{CPUDevice, 2.4, 2, 0.311}
	a, err := m.RunNoisy(w, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.RunNoisy(w, cfg, rand.New(rand.NewSource(5)))
	if a.TimeSec != b.TimeSec || a.CPUPowerW != b.CPUPowerW {
		t.Error("RunNoisy not reproducible for equal seeds")
	}
	c, _ := m.RunNoisy(w, cfg, rand.New(rand.NewSource(6)))
	if a.TimeSec == c.TimeSec {
		t.Error("RunNoisy identical across different seeds")
	}
}

func TestRunNoisyCloseToDeterministic(t *testing.T) {
	m := DefaultMachine()
	w := testWorkload()
	cfg := Config{CPUDevice, 2.4, 2, 0.311}
	base, _ := m.Run(w, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		e, err := m.RunNoisy(w, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r := e.TimeSec / base.TimeSec; r < 0.9 || r > 1.1 {
			t.Fatalf("noise too large: time ratio %v", r)
		}
	}
}

func TestThermalHeadroom(t *testing.T) {
	m := DefaultMachine()
	if !m.ThermalHeadroom(50, 100) {
		t.Error("50W under 100W TDP should have headroom")
	}
	if m.ThermalHeadroom(90, 100) {
		t.Error("90W under 100W TDP should not boost")
	}
}

func TestMachineString(t *testing.T) {
	if DefaultMachine().String() == "" {
		t.Error("empty String")
	}
}

func TestArithmeticIntensity(t *testing.T) {
	w := testWorkload()
	if ai := w.ArithmeticIntensity(); math.Abs(ai-4) > 1e-12 {
		t.Errorf("AI = %v, want 4", ai)
	}
}

func BenchmarkRunCPU(b *testing.B) {
	m := DefaultMachine()
	w := testWorkload()
	cfg := Config{CPUDevice, 2.4, 4, 0.311}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunGPU(b *testing.B) {
	m := DefaultMachine()
	w := testWorkload()
	cfg := Config{GPUDevice, 3.7, 1, 0.819}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
