package apu_test

import (
	"fmt"

	"acsel/internal/apu"
)

// Running one kernel on the machine model at a specific configuration.
// The analytic model is deterministic: this output is reproducible.
func ExampleMachine_Run() {
	m := apu.DefaultMachine()
	w := apu.Workload{
		Name:           "stream-like",
		FLOPs:          1e8,
		Bytes:          4e8, // memory-bound: AI = 0.25
		ParFrac:        0.95,
		VecFrac:        0.4,
		BranchFrac:     0.05,
		GPUAffinity:    0.2,
		GPUBytesFactor: 1.0,
		LaunchCycles:   2e6,
		L1MissRate:     0.05,
		L2MissRate:     0.5,
		TLBMissRate:    0.002,
		InstrPerFlop:   2.0,
	}
	cfg := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	e, err := m.Run(w, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("memory-bound: stall fraction %.2f, bandwidth %.1f GB/s\n", e.StallFrac, e.AchievedBWGBs)
	fmt.Printf("power: CPU %.1f W + NB/GPU %.1f W\n", e.CPUPowerW, e.NBGPUPowerW)
	// Output:
	// memory-bound: stall fraction 0.86, bandwidth 19.2 GB/s
	// power: CPU 12.6 W + NB/GPU 7.8 W
}
