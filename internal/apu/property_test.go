package apu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomWorkload draws a valid workload from bounded uniform ranges.
func randomWorkload(rng *rand.Rand) Workload {
	return Workload{
		Name:           "prop",
		FLOPs:          1e6 + rng.Float64()*5e9,
		Bytes:          1e5 + rng.Float64()*2e9,
		ParFrac:        rng.Float64(),
		VecFrac:        rng.Float64(),
		BranchFrac:     rng.Float64() * 0.5,
		GPUAffinity:    0.01 + rng.Float64()*0.99,
		GPUBytesFactor: 0.5 + rng.Float64()*1.5,
		LaunchCycles:   rng.Float64() * 1e8,
		L1MissRate:     rng.Float64() * 0.2,
		L2MissRate:     rng.Float64(),
		TLBMissRate:    rng.Float64() * 0.01,
		InstrPerFlop:   0.5 + rng.Float64()*3,
	}
}

// Property: every execution over the whole space is finite and
// positive, for arbitrary valid workloads.
func TestPropertyExecutionsAlwaysFinite(t *testing.T) {
	m := DefaultMachine()
	space := NewSpace()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng)
		for _, cfg := range space.Configs {
			e, err := m.Run(w, cfg)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, cfg, err)
			}
			for name, v := range map[string]float64{
				"time": e.TimeSec, "cpuW": e.CPUPowerW, "nbW": e.NBGPUPowerW,
			} {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trial %d %v: %s = %v", trial, cfg, name, v)
				}
			}
			if math.Abs(e.EnergyJ()-e.TotalPowerW()*e.TimeSec) > 1e-9*e.EnergyJ() {
				t.Fatalf("energy identity violated")
			}
		}
	}
}

// Property: CPU power is non-decreasing in thread count at fixed
// frequency (more active cores never draw less power).
func TestPropertyCPUPowerMonotoneInThreads(t *testing.T) {
	m := DefaultMachine()
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng)
		for _, ps := range CPUPStates {
			prev := -1.0
			for n := 1; n <= NumCores; n++ {
				e, err := m.Run(w, Config{CPUDevice, ps.FreqGHz, n, MinGPUFreq()})
				if err != nil {
					t.Fatal(err)
				}
				if e.CPUPowerW < prev-1e-9 {
					t.Fatalf("trial %d f=%v: power decreased from %v to %v at %d threads",
						trial, ps.FreqGHz, prev, e.CPUPowerW, n)
				}
				prev = e.CPUPowerW
			}
		}
	}
}

// Property: package power is non-decreasing in CPU frequency at fixed
// thread count (V²f dominates activity effects in this machine).
func TestPropertyPowerMonotoneInCPUFreq(t *testing.T) {
	m := DefaultMachine()
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng)
		for n := 1; n <= NumCores; n++ {
			prev := -1.0
			for _, ps := range CPUPStates {
				e, err := m.Run(w, Config{CPUDevice, ps.FreqGHz, n, MinGPUFreq()})
				if err != nil {
					t.Fatal(err)
				}
				if e.CPUPowerW < prev-1e-9 {
					t.Fatalf("trial %d t=%d: CPU power decreased at f=%v", trial, n, ps.FreqGHz)
				}
				prev = e.CPUPowerW
			}
		}
	}
}

// Property: execution time is non-increasing in CPU frequency on the
// CPU device (frequency never hurts in this machine model).
func TestPropertyTimeMonotoneInCPUFreq(t *testing.T) {
	m := DefaultMachine()
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng)
		for n := 1; n <= NumCores; n++ {
			prev := math.Inf(1)
			for _, ps := range CPUPStates {
				e, err := m.Run(w, Config{CPUDevice, ps.FreqGHz, n, MinGPUFreq()})
				if err != nil {
					t.Fatal(err)
				}
				if e.TimeSec > prev*(1+1e-9) {
					t.Fatalf("trial %d t=%d: time increased with frequency at f=%v", trial, n, ps.FreqGHz)
				}
				prev = e.TimeSec
			}
		}
	}
}

// Property: GPU execution time is non-increasing in GPU frequency.
func TestPropertyGPUTimeMonotoneInGPUFreq(t *testing.T) {
	m := DefaultMachine()
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng)
		for _, cp := range CPUPStates {
			prev := math.Inf(1)
			for _, gp := range GPUPStates {
				e, err := m.Run(w, Config{GPUDevice, cp.FreqGHz, 1, gp.FreqGHz})
				if err != nil {
					t.Fatal(err)
				}
				if e.TimeSec > prev*(1+1e-9) {
					t.Fatalf("trial %d: GPU time increased with frequency", trial)
				}
				prev = e.TimeSec
			}
		}
	}
}

// Property (testing/quick): the configuration space's ID mapping is a
// bijection — IDOf(ByID(i)) == i for all i the generator produces.
func TestPropertySpaceBijection(t *testing.T) {
	s := NewSpaceWithBoost()
	f := func(raw uint32) bool {
		id := int(raw) % s.Len()
		cfg, err := s.ByID(id)
		if err != nil {
			return false
		}
		return s.IDOf(cfg) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): voltage lookups succeed exactly for
// frequencies in the P-state tables.
func TestPropertyVoltageLookupClosed(t *testing.T) {
	f := func(raw uint8) bool {
		i := int(raw) % len(CPUPStates)
		v, err := CPUVoltage(CPUPStates[i].FreqGHz)
		return err == nil && v > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Perturbed frequencies must fail.
	g := func(raw uint8, eps float64) bool {
		i := int(raw) % len(CPUPStates)
		d := math.Mod(math.Abs(eps), 0.05) + 0.001
		_, err := CPUVoltage(CPUPStates[i].FreqGHz + d)
		return err != nil
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the minimum-power configuration of any workload is the
// 1-thread minimum-frequency CPU configuration (the machine's floor),
// which is what the oracle's fallback and the FL baselines rely on.
func TestPropertyPowerFloorConfig(t *testing.T) {
	m := DefaultMachine()
	space := NewSpace()
	rng := rand.New(rand.NewSource(36))
	floor := Config{CPUDevice, MinCPUFreq(), 1, MinGPUFreq()}
	for trial := 0; trial < 60; trial++ {
		w := randomWorkload(rng)
		eFloor, err := m.Run(w, floor)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range space.Configs {
			e, err := m.Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if e.TotalPowerW() < eFloor.TotalPowerW()-1e-9 {
				t.Fatalf("trial %d: %v draws %v W, below floor %v W", trial, cfg, e.TotalPowerW(), eFloor.TotalPowerW())
			}
		}
	}
}
