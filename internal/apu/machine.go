package apu

import (
	"fmt"
	"math"
	"math/rand"
)

// Machine is the analytic performance/power model of the Trinity APU.
// All coefficients are exported so experiments can perturb the machine
// (sensitivity ablations) without editing the package. Use
// DefaultMachine for the calibrated instance; the calibration targets
// the magnitudes reported in the paper (package-level power between
// roughly 12 and 55 W across kernels and configurations, GPU peak
// throughput an order of magnitude above one CPU core, and visible
// kernel-launch sensitivity to CPU frequency on GPU configurations).
type Machine struct {
	// --- CPU timing ---

	// CoreFlopsPerCycle is scalar flop issue per core per cycle.
	CoreFlopsPerCycle float64
	// VecWidth is the SIMD width; a kernel's VecFrac interpolates
	// between scalar and full-width issue.
	VecWidth float64
	// FPUShareBase and FPUShareVec control the throughput loss when the
	// two cores of a module contend for the shared FPU: the second core
	// of a module contributes (1 − base − vec·VecFrac) of a core.
	FPUShareBase float64
	FPUShareVec  float64
	// PeakBWGBs is the peak DRAM bandwidth in GB/s (shared controller).
	PeakBWGBs float64
	// CoreBWGBs is the bandwidth one core can demand at maximum
	// frequency, in GB/s.
	CoreBWGBs float64
	// BWFreqFloor is the fraction of per-core bandwidth still
	// achievable at the minimum CPU frequency (request-rate limit).
	BWFreqFloor float64
	// OverlapResidual is the fraction of the smaller of compute/memory
	// time that is not hidden by overlap.
	OverlapResidual float64
	// BarrierCyclesPerThread models OpenMP fork/join and barrier cost.
	BarrierCyclesPerThread float64

	// --- GPU timing ---

	// GPUFlopsPerCycle is peak flop issue per GPU cycle (384 FMAC
	// cores × 2 flops).
	GPUFlopsPerCycle float64
	// GPUBWGBs is the GPU's achievable DRAM bandwidth at maximum GPU
	// frequency, in GB/s.
	GPUBWGBs float64
	// GPUBWFreqFloor is the fraction of GPU bandwidth available at the
	// minimum GPU frequency.
	GPUBWFreqFloor float64
	// GPUOverlapResidual mirrors OverlapResidual for the GPU.
	GPUOverlapResidual float64

	// --- CPU power ---

	// CPUStaticWPerV2 scales leakage for the CPU plane: P = c·V².
	CPUStaticWPerV2 float64
	// CPUDynWPerV2GHz scales per-core dynamic power: P = c·a·V²·f.
	CPUDynWPerV2GHz float64
	// ModuleOverheadW is front-end/L2 power per active module.
	ModuleOverheadW float64
	// ActivityFloor is the activity factor of a fully stalled core;
	// fully busy cores have activity 1.
	ActivityFloor float64
	// HostActivity is the activity of the host core while it drives the
	// OpenCL runtime during GPU kernels.
	HostActivity float64

	// --- NB + GPU power (the paper's second measurement domain) ---

	// NBBaseW is northbridge base power.
	NBBaseW float64
	// DRAMWPerGBs converts achieved bandwidth into DRAM/controller power.
	DRAMWPerGBs float64
	// GPUStaticWPerV2 scales GPU leakage: P = c·V².
	GPUStaticWPerV2 float64
	// GPUActiveW is drawn whenever the GPU executes a kernel (clock
	// trees and SIMD front-ends ungated), independent of frequency. It
	// sets the GPU's power floor: even at the minimum GPU P-state the
	// paper's Table I shows ~24 W package power.
	GPUActiveW float64
	// GPUDynWPerV2GHz scales GPU dynamic power: P = c·u·V²·f.
	GPUDynWPerV2GHz float64

	// --- Measurement noise (applied by RunNoisy) ---

	// TimeNoise and PowerNoise are relative standard deviations of
	// multiplicative run-to-run jitter.
	TimeNoise  float64
	PowerNoise float64
}

// DefaultMachine returns the calibrated Trinity model.
func DefaultMachine() *Machine {
	return &Machine{
		CoreFlopsPerCycle:      2.0,
		VecWidth:               4.0,
		FPUShareBase:           0.15,
		FPUShareVec:            0.45,
		PeakBWGBs:              20.0,
		CoreBWGBs:              9.0,
		BWFreqFloor:            0.55,
		OverlapResidual:        0.25,
		BarrierCyclesPerThread: 20000,

		GPUFlopsPerCycle:   768.0,
		GPUBWGBs:           26.0,
		GPUBWFreqFloor:     0.6,
		GPUOverlapResidual: 0.25,

		CPUStaticWPerV2: 4.0,
		CPUDynWPerV2GHz: 1.5,
		ModuleOverheadW: 0.5,
		ActivityFloor:   0.45,
		HostActivity:    0.25,

		NBBaseW:         2.5,
		DRAMWPerGBs:     0.15,
		GPUStaticWPerV2: 3.5,
		GPUActiveW:      4.5,
		GPUDynWPerV2GHz: 42.0,

		TimeNoise:  0.015,
		PowerNoise: 0.02,
	}
}

// Execution is the outcome of running a workload once at a
// configuration: virtual wall time, average power in the two measured
// domains, and activity details consumed by the counter model.
type Execution struct {
	Config  Config
	TimeSec float64

	// CPUPowerW is the CPU-cores power domain (paper: "the CPU cores").
	CPUPowerW float64
	// NBGPUPowerW is the northbridge + GPU power domain.
	NBGPUPowerW float64

	// Decomposition of TimeSec.
	CompTimeSec   float64
	MemTimeSec    float64
	LaunchTimeSec float64
	SyncTimeSec   float64

	// StallFrac is the fraction of core cycles stalled on memory.
	StallFrac float64
	// AchievedBWGBs is the DRAM bandwidth actually consumed.
	AchievedBWGBs float64
	// GPUUtil is the GPU's busy fraction (0 for CPU configurations).
	GPUUtil float64
}

// TotalPowerW is the package power: the sum of both measured domains.
func (e Execution) TotalPowerW() float64 { return e.CPUPowerW + e.NBGPUPowerW }

// Perf is throughput: invocations per second.
func (e Execution) Perf() float64 { return 1 / e.TimeSec }

// EnergyJ is the package energy of the invocation.
func (e Execution) EnergyJ() float64 { return e.TotalPowerW() * e.TimeSec }

// Run executes workload w at configuration cfg under the analytic
// model. It is fully deterministic; RunNoisy adds measurement jitter.
func (m *Machine) Run(w Workload, cfg Config) (Execution, error) {
	if err := w.Validate(); err != nil {
		return Execution{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Execution{}, err
	}
	switch cfg.Device {
	case CPUDevice:
		return m.runCPU(w, cfg)
	default:
		return m.runGPU(w, cfg)
	}
}

func (m *Machine) runCPU(w Workload, cfg Config) (Execution, error) {
	f := cfg.CPUFreqGHz
	n := cfg.Threads

	// Compute throughput: one core's flop rate, SIMD boost, module
	// FPU sharing, and Amdahl's law over effective execution units.
	vecBoost := 1 + w.VecFrac*(m.VecWidth-1)
	ratePerCore := f * 1e9 * m.CoreFlopsPerCycle * vecBoost
	shareEff := 1 - m.FPUShareBase - m.FPUShareVec*w.VecFrac
	if shareEff < 0.1 {
		shareEff = 0.1
	}
	// Threads spread across modules first: 1→1 unit, 2→2 units,
	// 3 and 4 add second cores of each module at shareEff.
	effUnits := []float64{0, 1, 2, 2 + shareEff, 2 + 2*shareEff}[n]
	speedup := 1 / ((1 - w.ParFrac) + w.ParFrac/effUnits)
	compTime := w.FLOPs / (ratePerCore * speedup)

	// Memory throughput: per-core demand limited by frequency, summed
	// across the threads actually streaming (parallel fraction), capped
	// at the shared-controller peak.
	freqScale := m.BWFreqFloor + (1-m.BWFreqFloor)*(f/MaxCPUFreq())
	demand := m.CoreBWGBs * freqScale * (float64(n)*w.ParFrac + (1 - w.ParFrac))
	bw := math.Min(m.PeakBWGBs, demand)
	memTime := w.Bytes / (bw * 1e9)

	syncTime := float64(n) * m.BarrierCyclesPerThread / (f * 1e9)

	run := math.Max(compTime, memTime) + m.OverlapResidual*math.Min(compTime, memTime)
	total := run + syncTime

	stallFrac := memTime / (compTime + memTime)
	achievedBW := w.Bytes / run / 1e9

	v, err := CPUVoltage(f)
	if err != nil {
		return Execution{}, err
	}
	activity := m.ActivityFloor + (1-m.ActivityFloor)*(1-stallFrac)
	modules := 1
	if n > 2 {
		modules = 2
	}
	cpuPower := m.CPUStaticWPerV2*v*v +
		m.CPUDynWPerV2GHz*activity*v*v*f*float64(n) +
		m.ModuleOverheadW*float64(modules)

	gv, err := GPUVoltage(cfg.GPUFreqGHz)
	if err != nil {
		return Execution{}, err
	}
	nbPower := m.NBBaseW + m.DRAMWPerGBs*achievedBW + m.GPUStaticWPerV2*gv*gv

	return Execution{
		Config:        cfg,
		TimeSec:       total,
		CPUPowerW:     cpuPower,
		NBGPUPowerW:   nbPower,
		CompTimeSec:   compTime,
		MemTimeSec:    memTime,
		SyncTimeSec:   syncTime,
		StallFrac:     stallFrac,
		AchievedBWGBs: achievedBW,
	}, nil
}

func (m *Machine) runGPU(w Workload, cfg Config) (Execution, error) {
	fg := cfg.GPUFreqGHz
	fc := cfg.CPUFreqGHz

	compTime := w.FLOPs / (fg * 1e9 * m.GPUFlopsPerCycle * w.GPUAffinity)

	bwScale := m.GPUBWFreqFloor + (1-m.GPUBWFreqFloor)*(fg/MaxGPUFreq())
	bw := m.GPUBWGBs * bwScale
	memTime := w.Bytes * w.GPUBytesFactor / (bw * 1e9)

	launchTime := w.LaunchCycles / (fc * 1e9)

	run := math.Max(compTime, memTime) + m.GPUOverlapResidual*math.Min(compTime, memTime)
	total := run + launchTime

	gpuUtil := run / total * (compTime / (compTime + memTime))
	achievedBW := w.Bytes * w.GPUBytesFactor / total / 1e9

	v, err := CPUVoltage(fc)
	if err != nil {
		return Execution{}, err
	}
	// Host core drives the OpenCL runtime (one thread, low activity).
	cpuPower := m.CPUStaticWPerV2*v*v +
		m.CPUDynWPerV2GHz*m.HostActivity*v*v*fc +
		m.ModuleOverheadW

	gv, err := GPUVoltage(fg)
	if err != nil {
		return Execution{}, err
	}
	nbPower := m.NBBaseW + m.DRAMWPerGBs*achievedBW +
		m.GPUStaticWPerV2*gv*gv + m.GPUActiveW +
		m.GPUDynWPerV2GHz*gpuUtil*gv*gv*fg

	return Execution{
		Config:        cfg,
		TimeSec:       total,
		CPUPowerW:     cpuPower,
		NBGPUPowerW:   nbPower,
		CompTimeSec:   compTime,
		MemTimeSec:    memTime,
		LaunchTimeSec: launchTime,
		StallFrac:     memTime / (compTime + memTime),
		AchievedBWGBs: achievedBW,
		GPUUtil:       gpuUtil,
	}, nil
}

// RunNoisy executes the workload and applies multiplicative lognormal
// measurement jitter drawn from rng, modeling run-to-run variation and
// the error of the on-chip power estimator. Determinism is preserved by
// seeding rng explicitly (see kernels.IterationRNG).
func (m *Machine) RunNoisy(w Workload, cfg Config, rng *rand.Rand) (Execution, error) {
	e, err := m.Run(w, cfg)
	if err != nil {
		return Execution{}, err
	}
	e.TimeSec *= lognorm(rng, m.TimeNoise)
	e.CPUPowerW *= lognorm(rng, m.PowerNoise)
	e.NBGPUPowerW *= lognorm(rng, m.PowerNoise)
	return e, nil
}

func lognorm(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
}

// ThermalHeadroom reports whether a CPU boost state may engage given a
// package power reading: the paper's opportunistic-overclocking
// extension gates boost on headroom below the thermal design power.
func (m *Machine) ThermalHeadroom(packagePowerW, tdpW float64) bool {
	return packagePowerW < 0.85*tdpW
}

// String summarizes the machine for reports.
func (m *Machine) String() string {
	return fmt.Sprintf("Trinity model: %d CPU P-states (%.2g–%.2g GHz), %d GPU P-states (%.3g–%.3g GHz), peak BW %.3g GB/s",
		len(CPUPStates), MinCPUFreq(), MaxCPUFreq(), len(GPUPStates), MinGPUFreq(), MaxGPUFreq(), m.PeakBWGBs)
}
