package apu

import (
	"errors"
	"fmt"
)

// Workload describes one computational kernel's intrinsic
// characteristics — the quantities that, together with a Config,
// determine execution time, power draw, and performance-counter
// activity under the analytic machine model. The kernel catalog
// (internal/kernels) instantiates one Workload per kernel and input
// size.
type Workload struct {
	// Name identifies the kernel (e.g. "CalcFBHourglassForceForElems").
	Name string

	// FLOPs is the floating-point work per kernel invocation.
	FLOPs float64
	// Bytes is the DRAM traffic per invocation on the CPU path.
	Bytes float64

	// ParFrac is the Amdahl parallel fraction of the OpenMP
	// implementation (0..1).
	ParFrac float64
	// VecFrac is the fraction of dynamic instructions that are vector
	// (SIMD) operations; it boosts CPU flop throughput and shows up in
	// the vector-instruction counter.
	VecFrac float64
	// BranchFrac is the conditional-branch fraction of dynamic
	// instructions; branchy kernels vectorize poorly on the GPU.
	BranchFrac float64

	// GPUAffinity in (0..1] scales the GPU's achievable fraction of its
	// peak throughput for this kernel: data-parallel dense kernels sit
	// near 1, divergent or irregular kernels far below.
	GPUAffinity float64
	// GPUBytesFactor scales DRAM traffic on the GPU path relative to
	// Bytes (layout changes, staging copies).
	GPUBytesFactor float64
	// LaunchCycles is CPU work (cycles) spent in the OpenCL driver and
	// runtime per invocation — the kernel-launch overhead that makes
	// GPU configurations sensitive to CPU frequency (Table I note).
	LaunchCycles float64

	// L1MissRate, L2MissRate, TLBMissRate parameterize the cache
	// hierarchy behaviour per memory operation (L2 rate is per L1 miss).
	L1MissRate  float64
	L2MissRate  float64
	TLBMissRate float64

	// InstrPerFlop converts floating-point work into total dynamic
	// instructions (loads/stores, address arithmetic, control).
	InstrPerFlop float64
}

// ErrBadWorkload is returned by Validate for out-of-range parameters.
var ErrBadWorkload = errors.New("apu: invalid workload")

// Validate range-checks the workload parameters.
func (w Workload) Validate() error {
	fail := func(field string, v float64) error {
		return fmt.Errorf("%w: %s=%v (%s)", ErrBadWorkload, field, v, w.Name)
	}
	if w.FLOPs <= 0 {
		return fail("FLOPs", w.FLOPs)
	}
	if w.Bytes <= 0 {
		return fail("Bytes", w.Bytes)
	}
	if w.ParFrac < 0 || w.ParFrac > 1 {
		return fail("ParFrac", w.ParFrac)
	}
	if w.VecFrac < 0 || w.VecFrac > 1 {
		return fail("VecFrac", w.VecFrac)
	}
	if w.BranchFrac < 0 || w.BranchFrac > 1 {
		return fail("BranchFrac", w.BranchFrac)
	}
	if w.GPUAffinity <= 0 || w.GPUAffinity > 1 {
		return fail("GPUAffinity", w.GPUAffinity)
	}
	if w.GPUBytesFactor <= 0 {
		return fail("GPUBytesFactor", w.GPUBytesFactor)
	}
	if w.LaunchCycles < 0 {
		return fail("LaunchCycles", w.LaunchCycles)
	}
	if w.L1MissRate < 0 || w.L1MissRate > 1 {
		return fail("L1MissRate", w.L1MissRate)
	}
	if w.L2MissRate < 0 || w.L2MissRate > 1 {
		return fail("L2MissRate", w.L2MissRate)
	}
	if w.TLBMissRate < 0 || w.TLBMissRate > 1 {
		return fail("TLBMissRate", w.TLBMissRate)
	}
	if w.InstrPerFlop <= 0 {
		return fail("InstrPerFlop", w.InstrPerFlop)
	}
	return nil
}

// ArithmeticIntensity returns FLOPs per DRAM byte on the CPU path — the
// roofline position that determines whether a kernel is compute- or
// memory-bound.
func (w Workload) ArithmeticIntensity() float64 { return w.FLOPs / w.Bytes }
