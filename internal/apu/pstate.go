// Package apu models the AMD Trinity A10-5800K heterogeneous processor
// used as the paper's test system (§IV-A): two dual-core Piledriver
// modules (compute units) sharing a front-end, FPU, and L2 per module;
// a 384-core Radeon GPU on a separate power plane; and a shared memory
// controller. The package provides the software-visible knobs the paper
// schedules over — CPU P-states, CPU thread count, GPU P-states, and
// device selection — plus an analytic time/power model that stands in
// for the real hardware (see DESIGN.md, substitution table).
package apu

import (
	"errors"
	"fmt"

	"acsel/internal/stats"
)

// Device selects which processor executes a kernel.
type Device int

const (
	// CPUDevice runs the OpenMP implementation on the Piledriver cores.
	CPUDevice Device = iota
	// GPUDevice runs the OpenCL implementation on the Radeon GPU with a
	// single host thread driving the runtime.
	GPUDevice
)

// String returns "CPU" or "GPU".
func (d Device) String() string {
	switch d {
	case CPUDevice:
		return "CPU"
	case GPUDevice:
		return "GPU"
	}
	return fmt.Sprintf("Device(%d)", int(d))
}

// PState is one DVFS operating point: a frequency and the minimum
// voltage that sustains it.
type PState struct {
	FreqGHz float64
	Voltage float64
}

// CPUPStates are the six software-visible CPU P-states of the
// A10-5800K (§IV-A: 1.4–3.7 GHz). Voltages follow the typical
// Piledriver V/f curve shape.
var CPUPStates = []PState{
	{1.4, 0.850},
	{1.9, 0.925},
	{2.4, 1.000},
	{2.8, 1.075},
	{3.3, 1.175},
	{3.7, 1.300},
}

// BoostPStates are opportunistic-overclocking states (paper §VI,
// future work): available only when thermal/power headroom exists.
var BoostPStates = []PState{
	{4.0, 1.375},
	{4.2, 1.425},
}

// GPUPStates are the three effective GPU P-states the paper considers
// (§IV-A: 311, 649, and 819 MHz). Frequencies are stored in GHz.
var GPUPStates = []PState{
	{0.311, 0.825},
	{0.649, 0.950},
	{0.819, 1.050},
}

// ErrUnknownPState is returned when a frequency does not match any
// P-state in the relevant table.
var ErrUnknownPState = errors.New("apu: frequency does not match a P-state")

// SameFreq reports whether two frequencies denote the same P-state.
// Table lookups tolerate rounding error so a frequency that went
// through arithmetic (unit conversion, serialization) still matches
// its table entry instead of silently missing it.
func SameFreq(a, b float64) bool { return stats.AlmostEqual(a, b) }

// CPUVoltage returns the voltage for a CPU frequency (including boost
// states). The CPU cores share a voltage plane, so with mixed per-CU
// P-states the plane voltage is the maximum across active CUs; this
// package runs all active cores at one P-state, so the lookup is direct.
func CPUVoltage(freqGHz float64) (float64, error) {
	for _, p := range CPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			return p.Voltage, nil
		}
	}
	for _, p := range BoostPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			return p.Voltage, nil
		}
	}
	return 0, fmt.Errorf("%w: CPU %.3g GHz", ErrUnknownPState, freqGHz)
}

// GPUVoltage returns the voltage for a GPU frequency.
func GPUVoltage(freqGHz float64) (float64, error) {
	for _, p := range GPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			return p.Voltage, nil
		}
	}
	return 0, fmt.Errorf("%w: GPU %.3g GHz", ErrUnknownPState, freqGHz)
}

// MinCPUFreq returns the lowest CPU P-state frequency.
func MinCPUFreq() float64 { return CPUPStates[0].FreqGHz }

// MaxCPUFreq returns the highest non-boost CPU P-state frequency.
func MaxCPUFreq() float64 { return CPUPStates[len(CPUPStates)-1].FreqGHz }

// MinGPUFreq returns the lowest GPU P-state frequency.
func MinGPUFreq() float64 { return GPUPStates[0].FreqGHz }

// MaxGPUFreq returns the highest GPU P-state frequency.
func MaxGPUFreq() float64 { return GPUPStates[len(GPUPStates)-1].FreqGHz }

// StepDownCPU returns the next lower CPU P-state frequency, with ok
// false when already at the minimum. Used by the frequency limiter.
func StepDownCPU(freqGHz float64) (float64, bool) {
	for i, p := range CPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			if i == 0 {
				return freqGHz, false
			}
			return CPUPStates[i-1].FreqGHz, true
		}
	}
	// Boost states step down into the top regular state.
	for i, p := range BoostPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			if i == 0 {
				return MaxCPUFreq(), true
			}
			return BoostPStates[i-1].FreqGHz, true
		}
	}
	return freqGHz, false
}

// StepUpCPU returns the next higher regular CPU P-state frequency, with
// ok false when already at the maximum (boost states are only entered
// via TryBoost).
func StepUpCPU(freqGHz float64) (float64, bool) {
	for i, p := range CPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			if i == len(CPUPStates)-1 {
				return freqGHz, false
			}
			return CPUPStates[i+1].FreqGHz, true
		}
	}
	return freqGHz, false
}

// StepDownGPU returns the next lower GPU P-state frequency, with ok
// false at the minimum.
func StepDownGPU(freqGHz float64) (float64, bool) {
	for i, p := range GPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			if i == 0 {
				return freqGHz, false
			}
			return GPUPStates[i-1].FreqGHz, true
		}
	}
	return freqGHz, false
}

// StepUpGPU returns the next higher GPU P-state frequency, with ok
// false at the maximum.
func StepUpGPU(freqGHz float64) (float64, bool) {
	for i, p := range GPUPStates {
		if SameFreq(p.FreqGHz, freqGHz) {
			if i == len(GPUPStates)-1 {
				return freqGHz, false
			}
			return GPUPStates[i+1].FreqGHz, true
		}
	}
	return freqGHz, false
}
