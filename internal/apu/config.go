package apu

import (
	"fmt"
)

// Config is one hardware configuration: the device a kernel executes
// on, the CPU P-state and thread count, and the GPU P-state. This is
// the unit of selection throughout the paper.
//
// Conventions, matching the paper's methodology (§V-A, Table I):
//   - CPU configurations keep the GPU parked at its minimum P-state.
//   - GPU configurations use a single host thread; the CPU P-state
//     still matters because the OpenCL runtime and kernel-launch path
//     run on the CPU.
type Config struct {
	Device     Device
	CPUFreqGHz float64
	Threads    int
	GPUFreqGHz float64
}

// NumCores is the number of CPU cores on the Trinity die (two dual-core
// Piledriver modules).
const NumCores = 4

// Validate checks that the configuration is realizable on the machine.
func (c Config) Validate() error {
	if _, err := CPUVoltage(c.CPUFreqGHz); err != nil {
		return err
	}
	if _, err := GPUVoltage(c.GPUFreqGHz); err != nil {
		return err
	}
	switch c.Device {
	case CPUDevice:
		if c.Threads < 1 || c.Threads > NumCores {
			return fmt.Errorf("apu: CPU config with %d threads (want 1..%d)", c.Threads, NumCores)
		}
	case GPUDevice:
		if c.Threads != 1 {
			return fmt.Errorf("apu: GPU config with %d host threads (want 1)", c.Threads)
		}
	default:
		return fmt.Errorf("apu: unknown device %d", int(c.Device))
	}
	return nil
}

// String renders the configuration compactly, e.g.
// "CPU f=2.4GHz t=4 gpu=0.311GHz".
func (c Config) String() string {
	return fmt.Sprintf("%s f=%.3gGHz t=%d gpu=%.3gGHz", c.Device, c.CPUFreqGHz, c.Threads, c.GPUFreqGHz)
}

// Features returns the raw regression features for this configuration:
// [CPU GHz, threads, GPU GHz]. First-order interactions are appended by
// the regression layer itself (paper §III-B: "the configuration
// variables (frequency, number of cores, etc.) and their first-order
// interactions").
func (c Config) Features() []float64 {
	return []float64{c.CPUFreqGHz, float64(c.Threads), c.GPUFreqGHz}
}

// FeatureNames labels Features entries, for reporting.
func FeatureNames() []string { return []string{"cpu_ghz", "threads", "gpu_ghz"} }

// Space is an enumerated configuration space with stable integer IDs.
// IDs index into Configs and are the identifiers used on Pareto
// frontiers.
type Space struct {
	Configs []Config
	index   map[Config]int
}

// NewSpace enumerates the full configuration space of the machine:
// every CPU P-state × thread count with the GPU parked (24 configs),
// plus every GPU P-state × CPU P-state with one host thread (18
// configs) — 42 in total, mirroring the dense space of §III.
func NewSpace() *Space {
	s := &Space{index: make(map[Config]int)}
	for _, cp := range CPUPStates {
		for t := 1; t <= NumCores; t++ {
			s.add(Config{Device: CPUDevice, CPUFreqGHz: cp.FreqGHz, Threads: t, GPUFreqGHz: MinGPUFreq()})
		}
	}
	for _, gp := range GPUPStates {
		for _, cp := range CPUPStates {
			s.add(Config{Device: GPUDevice, CPUFreqGHz: cp.FreqGHz, Threads: 1, GPUFreqGHz: gp.FreqGHz})
		}
	}
	return s
}

// NewSpaceWithBoost enumerates the regular space plus opportunistic
// CPU boost states (paper §VI) for CPU-device configurations.
func NewSpaceWithBoost() *Space {
	s := NewSpace()
	for _, bp := range BoostPStates {
		for t := 1; t <= NumCores; t++ {
			s.add(Config{Device: CPUDevice, CPUFreqGHz: bp.FreqGHz, Threads: t, GPUFreqGHz: MinGPUFreq()})
		}
	}
	return s
}

func (s *Space) add(c Config) {
	if _, dup := s.index[c]; dup {
		return
	}
	s.index[c] = len(s.Configs)
	s.Configs = append(s.Configs, c)
}

// Len returns the number of configurations.
func (s *Space) Len() int { return len(s.Configs) }

// IDOf returns the stable ID of a configuration, or -1 if it is not in
// the space.
func (s *Space) IDOf(c Config) int {
	if id, ok := s.index[c]; ok {
		return id
	}
	return -1
}

// ByID returns the configuration with the given ID.
func (s *Space) ByID(id int) (Config, error) {
	if id < 0 || id >= len(s.Configs) {
		return Config{}, fmt.Errorf("apu: config ID %d out of range [0,%d)", id, len(s.Configs))
	}
	return s.Configs[id], nil
}

// DeviceConfigs returns the IDs of all configurations on a device.
func (s *Space) DeviceConfigs(d Device) []int {
	var ids []int
	for i, c := range s.Configs {
		if c.Device == d {
			ids = append(ids, i)
		}
	}
	return ids
}

// SampleConfigCPU is the CPU sample configuration from Table II: all
// cores at maximum frequency with the GPU parked — the common
// unconstrained CPU execution setup.
func SampleConfigCPU() Config {
	return Config{Device: CPUDevice, CPUFreqGHz: MaxCPUFreq(), Threads: NumCores, GPUFreqGHz: MinGPUFreq()}
}

// SampleConfigGPU is the GPU sample configuration from Table II: GPU at
// maximum frequency with the host at maximum frequency.
func SampleConfigGPU() Config {
	return Config{Device: GPUDevice, CPUFreqGHz: MaxCPUFreq(), Threads: 1, GPUFreqGHz: MaxGPUFreq()}
}
