package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDissimilarityWorkersEquivalent is the determinism contract of the
// parallel pair computation: any worker count produces exactly the same
// matrix, bit for bit, because each pair depends only on its two
// profiles and each goroutine writes disjoint cells.
func TestDissimilarityWorkersEquivalent(t *testing.T) {
	profs, _, _ := trained(t)
	seq := DissimilarityMatrixWorkers(profs, 1)
	for _, workers := range []int{2, 4, 8} {
		par := DissimilarityMatrixWorkers(profs, workers)
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d: len %d, want %d", workers, par.Len(), seq.Len())
		}
		for i := 0; i < seq.Len(); i++ {
			for j := 0; j < seq.Len(); j++ {
				if par.At(i, j) != seq.At(i, j) {
					t.Fatalf("workers=%d: At(%d,%d) = %v, want %v",
						workers, i, j, par.At(i, j), seq.At(i, j))
				}
			}
		}
	}
}

// TestSubsetMatchesRecomputation is the property the fold pipeline rests
// on: a Subset view over the full-suite matrix holds exactly the values
// a fresh DissimilarityMatrix over the selected profiles would compute.
// Exact equality (not epsilon) is intentional — each pair value is a
// pure function of its two profiles, so reuse must be bit-identical.
func TestSubsetMatchesRecomputation(t *testing.T) {
	profs, _, _ := trained(t)
	full := DissimilarityMatrix(profs)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(len(profs)-2)
		idx := rng.Perm(len(profs))[:k]
		view := full.Subset(idx)
		sub := make([]*KernelProfile, k)
		for i, v := range idx {
			sub[i] = profs[v]
		}
		fresh := DissimilarityMatrix(sub)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if got, want := view.At(a, b), fresh.At(a, b); got != want {
					t.Fatalf("trial %d: view.At(%d,%d) = %v, recomputed = %v",
						trial, a, b, got, want)
				}
			}
		}
		if err := view.ValidateBounded(1); err != nil {
			t.Fatalf("trial %d: subset view invariants: %v", trial, err)
		}
	}
}

// TestTrainWithDissimilarityMatchesTrain checks that handing Train a
// precomputed matrix yields the identical model to letting it compute
// its own.
func TestTrainWithDissimilarityMatchesTrain(t *testing.T) {
	profs, _, space := trained(t)
	opts := DefaultTrainOptions()
	opts.Iterations = 2
	base, err := Train(space, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	dis := DissimilarityMatrix(profs)
	pre, err := TrainWithDissimilarity(space, profs, dis, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Assignments, pre.Assignments) {
		t.Fatalf("assignments differ:\nbase %v\npre  %v", base.Assignments, pre.Assignments)
	}
	if !reflect.DeepEqual(base.Clusters, pre.Clusters) {
		t.Fatal("cluster regressions differ between Train and TrainWithDissimilarity")
	}
	if !reflect.DeepEqual(base.Tree, pre.Tree) {
		t.Fatal("classifier trees differ between Train and TrainWithDissimilarity")
	}
}

// TestTrainWithDissimilaritySizeMismatch checks the defensive error for
// a matrix whose dimension does not match the profile count.
func TestTrainWithDissimilaritySizeMismatch(t *testing.T) {
	profs, _, space := trained(t)
	dis := DissimilarityMatrix(profs[:10])
	if _, err := TrainWithDissimilarity(space, profs, dis, DefaultTrainOptions()); err == nil {
		t.Fatal("size-mismatched matrix accepted")
	}
}
