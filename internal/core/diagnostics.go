package core

import (
	"fmt"
	"sort"
	"strings"

	"acsel/internal/apu"
)

// ClusterDiagnostics summarizes one cluster's fitted models.
type ClusterDiagnostics struct {
	Cluster int
	Size    int
	// R² of each regression on its training data.
	PerfR2CPU  float64
	PerfR2GPU  float64
	PowerR2CPU float64
	PowerR2GPU float64
	// Residual standard deviations (the uncertainty the variance-aware
	// selector consumes).
	PowerStdCPU float64
	PowerStdGPU float64
}

// Diagnostics reports the offline stage's fit quality — the numbers a
// practitioner checks before trusting the model on new kernels.
type Diagnostics struct {
	K        int
	Clusters []ClusterDiagnostics
	// TreeDepth and TreeLeaves describe the classifier.
	TreeDepth  int
	TreeLeaves int
}

// Diagnose extracts fit diagnostics from a trained model.
func (m *Model) Diagnose() (Diagnostics, error) {
	if m.Tree == nil || len(m.Clusters) == 0 {
		return Diagnostics{}, ErrNoModel
	}
	sizes := m.ClusterSizes()
	d := Diagnostics{K: m.K, TreeDepth: m.Tree.Depth(), TreeLeaves: m.Tree.Leaves()}
	for c, cm := range m.Clusters {
		cd := ClusterDiagnostics{Cluster: c}
		if c < len(sizes) {
			cd.Size = sizes[c]
		}
		if r := cm.PerfByDevice[apu.CPUDevice]; r != nil {
			cd.PerfR2CPU = r.R2
		}
		if r := cm.PerfByDevice[apu.GPUDevice]; r != nil {
			cd.PerfR2GPU = r.R2
		}
		if r := cm.PowerByDevice[apu.CPUDevice]; r != nil {
			cd.PowerR2CPU = r.R2
			cd.PowerStdCPU = r.ResidualStd
		}
		if r := cm.PowerByDevice[apu.GPUDevice]; r != nil {
			cd.PowerR2GPU = r.R2
			cd.PowerStdGPU = r.ResidualStd
		}
		d.Clusters = append(d.Clusters, cd)
	}
	return d, nil
}

// ReportDiagnostics renders the diagnostics as a table.
func (m *Model) ReportDiagnostics() (string, error) {
	d, err := m.Diagnose()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "model diagnostics: k=%d, classifier depth %d (%d leaves)\n", d.K, d.TreeDepth, d.TreeLeaves)
	fmt.Fprintf(&b, "%-8s %-5s %-22s %-22s %-20s\n", "cluster", "size", "perf R² (cpu/gpu)", "power R² (cpu/gpu)", "power σ W (cpu/gpu)")
	sort.Slice(d.Clusters, func(i, j int) bool { return d.Clusters[i].Cluster < d.Clusters[j].Cluster })
	for _, c := range d.Clusters {
		fmt.Fprintf(&b, "%-8d %-5d %-22s %-22s %-20s\n",
			c.Cluster, c.Size,
			fmt.Sprintf("%.3f / %.3f", c.PerfR2CPU, c.PerfR2GPU),
			fmt.Sprintf("%.3f / %.3f", c.PowerR2CPU, c.PowerR2GPU),
			fmt.Sprintf("%.2f / %.2f", c.PowerStdCPU, c.PowerStdGPU))
	}
	return b.String(), nil
}
