package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"acsel/internal/apu"
	"acsel/internal/cluster"
	"acsel/internal/kernels"
	"acsel/internal/pareto"
	"acsel/internal/profiler"
	"acsel/internal/stats"
	"acsel/internal/tree"
)

// TrainOptions configures the offline stage.
type TrainOptions struct {
	// K is the cluster count; the paper found k=5 optimal empirically.
	K int
	// Iterations is how many profiling iterations are averaged per
	// (kernel, configuration) pair during characterization.
	Iterations int
	// LogTargets applies the variance-stabilizing log transform to
	// regression targets (paper §VI, future work).
	LogTargets bool
	// TreeMaxDepth and TreeMinLeaf control the classification tree.
	TreeMaxDepth int
	TreeMinLeaf  int
	// Seed feeds the clustering tie-breaker.
	Seed int64
}

// DefaultTrainOptions mirrors the paper's settings.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{K: 5, Iterations: 3, TreeMaxDepth: 5, TreeMinLeaf: 2, Seed: 1}
}

// Characterize profiles every kernel at every configuration of the
// profiler's space, averaging over opts.Iterations, and records the two
// sample-configuration runs. Kernels are profiled concurrently; results
// are deterministic regardless of scheduling.
func Characterize(p *profiler.Profiler, ks []kernels.Kernel, opts TrainOptions) ([]*KernelProfile, error) {
	defer mPhaseSeconds.With("characterize").Time()()
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	profiles := make([]*KernelProfile, len(ks))
	errs := make([]error, len(ks))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, k := range ks {
		// Acquire the slot before spawning: a large suite must never
		// materialize one goroutine per kernel up front, only one per
		// available slot. Results stay deterministic because each
		// goroutine writes its own index.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, k kernels.Kernel) {
			defer wg.Done()
			defer func() { <-sem }()
			profiles[i], errs[i] = characterizeOne(p, k, opts)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return profiles, nil
}

func characterizeOne(p *profiler.Profiler, k kernels.Kernel, opts TrainOptions) (*KernelProfile, error) {
	kp := &KernelProfile{
		KernelID:  k.ID(),
		Benchmark: k.Benchmark,
		Input:     k.Input,
		Name:      k.Name,
		TimeShare: k.TimeShare,
		Stats:     make([]ConfigStats, p.Space.Len()),
	}
	for id := 0; id < p.Space.Len(); id++ {
		var t, pw, cw, nw float64
		for it := 0; it < opts.Iterations; it++ {
			s, err := p.Run(k, id, it)
			if err != nil {
				return nil, err
			}
			t += s.TimeSec
			pw += s.TotalPowerW()
			cw += s.CPUPowerW
			nw += s.NBGPUW
		}
		n := float64(opts.Iterations)
		kp.Stats[id] = ConfigStats{
			ConfigID:  id,
			MeanTime:  t / n,
			MeanPerf:  n / t,
			MeanPower: pw / n,
			MeanCPUW:  cw / n,
			MeanNBW:   nw / n,
		}
	}
	kp.buildFrontier()
	var err error
	// The sample runs replay the first two iterations the online stage
	// would observe: one on each device's sample configuration.
	kp.CPUSample, err = p.RunConfig(k, apu.SampleConfigCPU(), 0)
	if err != nil {
		return nil, err
	}
	kp.GPUSample, err = p.RunConfig(k, apu.SampleConfigGPU(), 1)
	if err != nil {
		return nil, err
	}
	return kp, nil
}

// DissimilarityMatrix builds the kernel dissimilarity matrix from
// pairwise comparison of Pareto frontiers (§III-B): the Kendall rank
// correlation of the shared configurations' orderings, weighted by how
// much of the two frontiers is shared at all. The paper's insight is
// that similar kernels "have the same configurations on their
// respective frontiers, arranged in the same order" — membership and
// order both carry signal, so similarity is (τ+1)/2 · Jaccard and
// dissimilarity its complement. Pairs sharing fewer than two frontier
// configurations get the maximum dissimilarity of 1.
//
// Pair computation runs on up to GOMAXPROCS workers; each pair depends
// only on its two profiles, so the result is identical to the
// sequential computation bit for bit.
func DissimilarityMatrix(profiles []*KernelProfile) *cluster.DissimilarityMatrix {
	return DissimilarityMatrixWorkers(profiles, runtime.GOMAXPROCS(0))
}

// DissimilarityMatrixWorkers is DissimilarityMatrix with an explicit
// worker-pool bound; workers <= 1 computes sequentially. Exposed so
// benchmarks and the evaluation harness can pin the concurrency level.
func DissimilarityMatrixWorkers(profiles []*KernelProfile, workers int) *cluster.DissimilarityMatrix {
	n := len(profiles)
	m := cluster.NewDissimilarityMatrix(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, pairDissimilarity(profiles[i], profiles[j]))
			}
		}
		return m
	}
	// One task per row, bounded by the semaphore-before-spawn pattern
	// (see Characterize): row i owns every (i, j>i) pair, so no two
	// workers ever touch the same cell and the result is deterministic.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			for j := i + 1; j < n; j++ {
				m.Set(i, j, pairDissimilarity(profiles[i], profiles[j]))
			}
		}(i)
	}
	wg.Wait()
	return m
}

// pairDissimilarity compares two kernels' frontier orderings: 1 −
// (τ+1)/2 · Jaccard, with maximum dissimilarity when fewer than two
// configurations are shared.
func pairDissimilarity(a, b *KernelProfile) float64 {
	ra, rb, shared := pareto.SharedOrder(a.Frontier, b.Frontier)
	if len(ra) < 2 {
		return 1
	}
	tau, err := stats.KendallTauRanks(ra, rb)
	if err != nil {
		return 1
	}
	union := a.Frontier.Len() + b.Frontier.Len() - len(shared)
	jaccard := float64(len(shared)) / float64(union)
	similarity := (tau + 1) / 2 * jaccard
	return 1 - similarity
}

// ErrTooFewKernels is returned when training lacks enough kernels for
// the requested cluster count.
var ErrTooFewKernels = errors.New("core: too few training kernels")

// Train runs the complete offline stage on characterized profiles and
// returns the fitted model.
func Train(space *apu.Space, profiles []*KernelProfile, opts TrainOptions) (*Model, error) {
	return TrainWithDissimilarity(space, profiles, nil, opts)
}

// TrainWithDissimilarity is Train with an optional precomputed
// dissimilarity matrix over exactly these profiles (in order). A nil
// matrix is computed from scratch; a non-nil one — typically a Subset
// view of a suite-wide matrix — skips the O(n²) pairwise Kendall-tau
// stage, which is what makes leave-one-out retraining cheap. Because
// each matrix entry depends only on its two profiles, a reused matrix
// yields a model identical to a fresh computation.
func TrainWithDissimilarity(space *apu.Space, profiles []*KernelProfile, dis *cluster.DissimilarityMatrix, opts TrainOptions) (*Model, error) {
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.TreeMaxDepth <= 0 {
		opts.TreeMaxDepth = 5
	}
	if opts.TreeMinLeaf <= 0 {
		opts.TreeMinLeaf = 2
	}
	if len(profiles) < opts.K {
		return nil, fmt.Errorf("%w: %d kernels for k=%d", ErrTooFewKernels, len(profiles), opts.K)
	}
	for _, kp := range profiles {
		if err := kp.Validate(space); err != nil {
			return nil, err
		}
	}

	// 1. Relational clustering on frontier-order dissimilarity.
	stopCluster := mPhaseSeconds.With("cluster").Time()
	if dis == nil {
		dis = DissimilarityMatrix(profiles)
	} else if dis.Len() != len(profiles) {
		stopCluster()
		return nil, fmt.Errorf("core: dissimilarity matrix is %d×%d for %d profiles", dis.Len(), dis.Len(), len(profiles))
	}
	clu, err := cluster.PAM(dis, opts.K, opts.Seed)
	stopCluster()
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}

	m := &Model{
		K:           opts.K,
		Space:       space,
		Clusters:    make([]ClusterModel, opts.K),
		Assignments: make(map[string]int, len(profiles)),
		Options:     opts,
	}
	for i, kp := range profiles {
		m.Assignments[kp.KernelID] = clu.Assignments[i]
	}

	// 2. Per-cluster, per-device regressions.
	stopRegress := mPhaseSeconds.With("regressions").Time()
	for c := 0; c < opts.K; c++ {
		var members []*KernelProfile
		for i, kp := range profiles {
			if clu.Assignments[i] == c {
				members = append(members, kp)
			}
		}
		cm, err := fitClusterModels(space, members, opts)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %d: %w", c, err)
		}
		m.Clusters[c] = cm
	}
	stopRegress()

	// 3. Classification tree on sample-configuration signatures.
	stopTree := mPhaseSeconds.With("classifier").Time()
	var X [][]float64
	var y []int
	for i, kp := range profiles {
		X = append(X, ClassifierFeatures(kp.CPUSample, kp.GPUSample))
		y = append(y, clu.Assignments[i])
	}
	tr, err := tree.Train(X, y, tree.Options{
		MaxDepth:     opts.TreeMaxDepth,
		MinLeaf:      opts.TreeMinLeaf,
		FeatureNames: ClassifierFeatureNames(),
	})
	stopTree()
	if err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}
	m.Tree = tr
	return m, nil
}

// fitClusterModels fits the four regressions of one cluster: a
// performance-scaling model and a power model per device.
func fitClusterModels(space *apu.Space, members []*KernelProfile, opts TrainOptions) (ClusterModel, error) {
	cm := ClusterModel{
		PerfByDevice:  map[apu.Device]*stats.Regression{},
		PowerByDevice: map[apu.Device]*stats.Regression{},
	}
	if len(members) == 0 {
		return cm, errors.New("empty cluster")
	}
	for _, dev := range []apu.Device{apu.CPUDevice, apu.GPUDevice} {
		var perfX, powX [][]float64
		var perfY, powY []float64
		for _, kp := range members {
			ref := kp.SamplePerf(dev)
			if ref <= 0 {
				continue
			}
			for _, id := range space.DeviceConfigs(dev) {
				cfg := space.Configs[id]
				st := kp.Stats[id]
				perfX = append(perfX, cfg.Features())
				perfY = append(perfY, st.MeanPerf/ref)
				powX = append(powX, cfg.Features())
				powY = append(powY, st.MeanPower)
			}
		}
		// Performance model: pure scaling, no intercept (§III-B:
		// P_perf = (Σ aᵢxᵢ)·S_perf). Power model: intercept included
		// (P_power = b₀ + Σ bᵢxᵢ).
		perfReg, err := stats.FitRegression(perfX, perfY, stats.RegressionOptions{
			Interactions: true, LogTarget: false,
		})
		if err != nil {
			return cm, fmt.Errorf("perf model (%v): %w", dev, err)
		}
		powOpts := stats.RegressionOptions{Intercept: true, Interactions: true, LogTarget: opts.LogTargets}
		powReg, err := stats.FitRegression(powX, powY, powOpts)
		if err != nil {
			return cm, fmt.Errorf("power model (%v): %w", dev, err)
		}
		cm.PerfByDevice[dev] = perfReg
		cm.PowerByDevice[dev] = powReg
	}
	return cm, nil
}
