package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/stats"
)

// trainedModel caches a full characterization + training run: the suite
// has 36 kernels × 42 configs and several tests need the result.
var (
	trainOnce    sync.Once
	cachedProfs  []*KernelProfile
	cachedModel  *Model
	cachedSpace  *apu.Space
	trainFailure error
)

func allKernels() []kernels.Kernel {
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	return ks
}

func trained(t *testing.T) ([]*KernelProfile, *Model, *apu.Space) {
	t.Helper()
	trainOnce.Do(func() {
		p := profiler.New()
		opts := DefaultTrainOptions()
		opts.Iterations = 2
		profs, err := Characterize(p, allKernels(), opts)
		if err != nil {
			trainFailure = err
			return
		}
		m, err := Train(p.Space, profs, opts)
		if err != nil {
			trainFailure = err
			return
		}
		cachedProfs, cachedModel, cachedSpace = profs, m, p.Space
	})
	if trainFailure != nil {
		t.Fatal(trainFailure)
	}
	return cachedProfs, cachedModel, cachedSpace
}

func TestCharacterizeShape(t *testing.T) {
	profs, _, space := trained(t)
	if len(profs) != 65 {
		t.Fatalf("profiles = %d, want 65", len(profs))
	}
	for _, kp := range profs {
		if err := kp.Validate(space); err != nil {
			t.Error(err)
		}
		if kp.Frontier.Len() < 2 {
			t.Errorf("%s: frontier has %d points", kp.KernelID, kp.Frontier.Len())
		}
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	b := kernels.Suite()[3] // LU, single kernel: cheap
	k := kernels.Instantiate(b.Name, b.Kernels[0], "Small")
	opts := DefaultTrainOptions()
	opts.Iterations = 2
	p1, err := Characterize(profiler.New(), []kernels.Kernel{k}, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Characterize(profiler.New(), []kernels.Kernel{k}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := range p1[0].Stats {
		if p1[0].Stats[id] != p2[0].Stats[id] {
			t.Fatalf("config %d stats differ between runs", id)
		}
	}
}

// TestCharacterizeOrderIndependent regresses the bounded-spawn fix in
// Characterize: results must be positional (profiles[i] belongs to
// ks[i]) and identical regardless of input order, because each worker
// writes only its own index.
func TestCharacterizeOrderIndependent(t *testing.T) {
	ks := allKernels()[:8]
	rev := make([]kernels.Kernel, len(ks))
	for i, k := range ks {
		rev[len(ks)-1-i] = k
	}
	opts := DefaultTrainOptions()
	opts.Iterations = 1
	fwd, err := Characterize(profiler.New(), ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := Characterize(profiler.New(), rev, opts)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*KernelProfile{}
	for _, kp := range bwd {
		byID[kp.KernelID] = kp
	}
	for i, kp := range fwd {
		if kp.KernelID != ks[i].ID() {
			t.Fatalf("profile %d is %s, want input-order %s", i, kp.KernelID, ks[i].ID())
		}
		other := byID[kp.KernelID]
		if other == nil {
			t.Fatalf("%s missing from reversed run", kp.KernelID)
		}
		for id := range kp.Stats {
			if kp.Stats[id] != other.Stats[id] {
				t.Fatalf("%s config %d: stats depend on input order", kp.KernelID, id)
			}
		}
	}
}

func TestFrontiersDifferAcrossArchetypes(t *testing.T) {
	profs, _, _ := trained(t)
	// A branchy kernel and a compute-SIMD kernel should have different
	// frontier device compositions: branchy stays CPU-heavy.
	var simd, branchy *KernelProfile
	for _, kp := range profs {
		switch kp.Name {
		case "CalcFBHourglassForceForElems":
			if kp.Input == "Large" {
				simd = kp
			}
		case "CalcMonotonicQRegionForElems":
			if kp.Input == "Large" {
				branchy = kp
			}
		}
	}
	if simd == nil || branchy == nil {
		t.Fatal("missing expected kernels")
	}
	gpuOnFrontier := func(kp *KernelProfile) int {
		n := 0
		for _, pt := range kp.Frontier.Points() {
			if cachedSpace.Configs[pt.ID].Device == apu.GPUDevice {
				n++
			}
		}
		return n
	}
	if gpuOnFrontier(simd) == 0 {
		t.Error("compute-SIMD kernel has no GPU configs on its frontier")
	}
	if gpuOnFrontier(branchy) >= gpuOnFrontier(simd) {
		t.Errorf("branchy kernel has %d GPU frontier configs vs %d for SIMD",
			gpuOnFrontier(branchy), gpuOnFrontier(simd))
	}
}

func TestDissimilarityMatrixProperties(t *testing.T) {
	profs, _, _ := trained(t)
	m := DissimilarityMatrix(profs[:20])
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < m.Len(); j++ {
			d := m.At(i, j)
			if d < 0 || d > 1 {
				t.Fatalf("dissimilarity out of [0,1]: %v", d)
			}
		}
	}
}

func TestSimilarKernelsLessDissimilar(t *testing.T) {
	profs, _, _ := trained(t)
	// Two compute-SIMD LULESH kernels should be closer to each other
	// than either is to a branchy kernel, on average.
	var a, b, c *KernelProfile
	var ai, bi, ci int
	for i, kp := range profs {
		if kp.Input != "Large" || kp.Benchmark != "LULESH" {
			continue
		}
		switch kp.Name {
		case "CalcFBHourglassForceForElems":
			a, ai = kp, i
		case "CalcHourglassControlForElems":
			b, bi = kp, i
		case "CalcMonotonicQRegionForElems":
			c, ci = kp, i
		}
	}
	if a == nil || b == nil || c == nil {
		t.Fatal("missing kernels")
	}
	m := DissimilarityMatrix(profs)
	dAB := m.At(ai, bi)
	dAC := m.At(ai, ci)
	if dAB >= dAC {
		t.Errorf("same-archetype dissimilarity %v >= cross-archetype %v", dAB, dAC)
	}
}

func TestTrainProducesCompleteModel(t *testing.T) {
	_, m, _ := trained(t)
	if m.K != 5 || len(m.Clusters) != 5 {
		t.Fatalf("K = %d, clusters = %d", m.K, len(m.Clusters))
	}
	for c, cm := range m.Clusters {
		for _, dev := range []apu.Device{apu.CPUDevice, apu.GPUDevice} {
			if cm.PerfByDevice[dev] == nil || cm.PowerByDevice[dev] == nil {
				t.Errorf("cluster %d missing %v models", c, dev)
			}
		}
	}
	if m.Tree == nil {
		t.Fatal("no classifier")
	}
	sizes := m.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 65 {
		t.Errorf("cluster sizes %v sum to %d, want 65", sizes, total)
	}
}

func TestTrainErrorsOnTooFewKernels(t *testing.T) {
	profs, _, space := trained(t)
	if _, err := Train(space, profs[:3], DefaultTrainOptions()); err == nil {
		t.Fatal("expected ErrTooFewKernels")
	}
}

func TestClassifierSelfAccuracy(t *testing.T) {
	profs, m, _ := trained(t)
	// On training kernels the tree should recover the cluster labels
	// reasonably well (not perfectly: depth-limited).
	correct := 0
	for _, kp := range profs {
		c, err := m.Classify(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
		if err != nil {
			t.Fatal(err)
		}
		if c == m.Assignments[kp.KernelID] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(profs))
	if acc < 0.7 {
		t.Errorf("training-set classification accuracy = %v, want >= 0.7", acc)
	}
}

func TestPredictAllFinite(t *testing.T) {
	profs, m, space := trained(t)
	for _, kp := range profs[:10] {
		preds, c, err := m.PredictAll(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
		if err != nil {
			t.Fatal(err)
		}
		if c < 0 || c >= m.K {
			t.Fatalf("cluster %d", c)
		}
		if len(preds) != space.Len() {
			t.Fatalf("predictions = %d", len(preds))
		}
		for _, p := range preds {
			if p.Perf <= 0 || math.IsNaN(p.Perf) || math.IsInf(p.Perf, 0) {
				t.Fatalf("%s config %d: perf %v", kp.KernelID, p.ConfigID, p.Perf)
			}
			if p.PowerW < minPredictedPowerW || math.IsNaN(p.PowerW) {
				t.Fatalf("%s config %d: power %v", kp.KernelID, p.ConfigID, p.PowerW)
			}
		}
	}
}

func TestPredictionAccuracyOnTraining(t *testing.T) {
	profs, m, _ := trained(t)
	// Median relative errors over training kernels should be modest:
	// the models are linear and clustered, not exact.
	var perfErrs, powErrs []float64
	for _, kp := range profs {
		preds, _, err := m.PredictAll(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
		if err != nil {
			t.Fatal(err)
		}
		for id, p := range preds {
			truePerf := kp.Stats[id].MeanPerf
			truePow := kp.Stats[id].MeanPower
			perfErrs = append(perfErrs, math.Abs(p.Perf-truePerf)/truePerf)
			powErrs = append(powErrs, math.Abs(p.PowerW-truePow)/truePow)
		}
	}
	medPerf := median(perfErrs)
	medPow := median(powErrs)
	if medPerf > 0.5 {
		t.Errorf("median perf relative error = %v", medPerf)
	}
	if medPow > 0.3 {
		t.Errorf("median power relative error = %v", medPow)
	}
	t.Logf("median relative errors: perf %.3f, power %.3f", medPerf, medPow)
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestPredictedFrontier(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[0]
	f, preds, err := m.PredictedFrontier(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() < 2 {
		t.Errorf("predicted frontier has %d points", f.Len())
	}
	if len(preds) != cachedSpace.Len() {
		t.Errorf("preds = %d", len(preds))
	}
}

func TestSelectUnderCapRespectsPrediction(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[0]
	sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	for _, cap := range []float64{12, 18, 25, 35, 60} {
		sel, err := m.SelectUnderCap(sr, cap)
		if err != nil {
			t.Fatal(err)
		}
		if sel.MeetsCapPredicted && sel.Predicted.PowerW > cap {
			t.Errorf("cap %v: claims to meet cap but predicts %v W", cap, sel.Predicted.PowerW)
		}
		if sel.ConfigID < 0 || sel.ConfigID >= cachedSpace.Len() {
			t.Errorf("cap %v: config ID %d", cap, sel.ConfigID)
		}
	}
}

func TestSelectUnderCapMonotonePerf(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[5]
	sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	prevPerf := -1.0
	for _, cap := range []float64{14, 18, 22, 28, 36, 50} {
		sel, err := m.SelectUnderCap(sr, cap)
		if err != nil {
			t.Fatal(err)
		}
		if sel.MeetsCapPredicted {
			if sel.Predicted.Perf < prevPerf-1e-9 {
				t.Errorf("predicted perf decreased as cap rose: %v -> %v at cap %v", prevPerf, sel.Predicted.Perf, cap)
			}
			prevPerf = sel.Predicted.Perf
		}
	}
}

func TestSelectUnderCapFallback(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[0]
	sel, err := m.SelectUnderCap(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.MeetsCapPredicted {
		t.Error("impossible cap cannot be met")
	}
	// The fallback must be the minimum-predicted-power config.
	preds, _, _ := m.PredictAll(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
	for _, p := range preds {
		if p.PowerW < sel.Predicted.PowerW-1e-9 {
			t.Errorf("fallback %v W is not minimal (%v W exists)", sel.Predicted.PowerW, p.PowerW)
		}
	}
}

func TestVarAwareSelectionMoreConservative(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[2]
	sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	base, err := m.SelectUnderCap(sr, 25)
	if err != nil {
		t.Fatal(err)
	}
	va, err := m.SelectUnderCapVarAware(sr, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if va.MeetsCapPredicted && base.MeetsCapPredicted && va.Predicted.PowerW > base.Predicted.PowerW+1e-9 {
		t.Errorf("variance-aware pick draws more predicted power (%v) than base (%v)",
			va.Predicted.PowerW, base.Predicted.PowerW)
	}
	if _, err := m.SelectUnderCapVarAware(sr, 25, -1); err == nil {
		t.Error("negative z accepted")
	}
}

func TestRenderTreeMentionsClusters(t *testing.T) {
	_, m, _ := trained(t)
	out := m.RenderTree()
	if !strings.Contains(out, "cluster") {
		t.Errorf("tree rendering:\n%s", out)
	}
	empty := &Model{}
	if empty.RenderTree() != "<no classifier>" {
		t.Error("empty model tree rendering")
	}
}

func TestClassifierFeatureNamesParallel(t *testing.T) {
	profs, _, _ := trained(t)
	kp := profs[0]
	f := ClassifierFeatures(kp.CPUSample, kp.GPUSample)
	if len(f) != len(ClassifierFeatureNames()) {
		t.Fatalf("features %d names %d", len(f), len(ClassifierFeatureNames()))
	}
}

func TestOnlineSelectionLatency(t *testing.T) {
	// §II/IV-C: "requires less than one millisecond to make each
	// configuration selection". Verify in-process.
	profs, m, _ := trained(t)
	kp := profs[0]
	sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.SelectUnderCap(sr, 25); err != nil {
				b.Fatal(err)
			}
		}
	})
	perOp := res.NsPerOp()
	if perOp > 1_000_000 {
		t.Errorf("selection latency = %d ns, paper claims < 1 ms", perOp)
	}
	t.Logf("online selection latency: %d ns/op", perOp)
}

func BenchmarkTrainFullSuite(b *testing.B) {
	p := profiler.New()
	opts := DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := Characterize(p, allKernels(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(p.Space, profs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineSelection(b *testing.B) {
	p := profiler.New()
	opts := DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := Characterize(p, allKernels(), opts)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Train(p.Space, profs, opts)
	if err != nil {
		b.Fatal(err)
	}
	sr := SampleRuns{CPU: profs[0].CPUSample, GPU: profs[0].GPUSample}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SelectUnderCap(sr, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the predicted frontier is a subset of the prediction set
// and is internally non-dominated, for every profiled kernel.
func TestPropertyPredictedFrontierConsistent(t *testing.T) {
	profs, m, _ := trained(t)
	for _, kp := range profs {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		frontier, preds, err := m.PredictedFrontier(sr)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[int]Prediction{}
		for _, p := range preds {
			byID[p.ConfigID] = p
		}
		pts := frontier.Points()
		for i, pt := range pts {
			p, ok := byID[pt.ID]
			if !ok {
				t.Fatalf("%s: frontier point %d not in predictions", kp.KernelID, pt.ID)
			}
			if p.Perf != pt.Perf || p.PowerW != pt.Power {
				t.Fatalf("%s: frontier point disagrees with prediction", kp.KernelID)
			}
			if i > 0 && (pt.Power <= pts[i-1].Power || pt.Perf <= pts[i-1].Perf) {
				t.Fatalf("%s: frontier not strictly increasing", kp.KernelID)
			}
		}
	}
}

// Property: for every kernel and every cap, a selection that claims to
// meet the cap predicts power within it, and the selected config always
// belongs to the space.
func TestPropertySelectionInvariants(t *testing.T) {
	profs, m, space := trained(t)
	caps := []float64{5, 11, 14, 17, 20, 24, 29, 35, 45, 60}
	for _, kp := range profs[:20] {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		for _, capW := range caps {
			sel, err := m.SelectUnderCap(sr, capW)
			if err != nil {
				t.Fatal(err)
			}
			if sel.ConfigID < 0 || sel.ConfigID >= space.Len() {
				t.Fatalf("config ID %d out of space", sel.ConfigID)
			}
			if sel.MeetsCapPredicted && sel.Predicted.PowerW > capW+1e-9 {
				t.Fatalf("%s cap %v: claims compliance at predicted %v W",
					kp.KernelID, capW, sel.Predicted.PowerW)
			}
			if !sel.MeetsCapPredicted {
				// Fallback must be the minimum-predicted-power config.
				preds, _, err := m.PredictAll(sr)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range preds {
					if p.PowerW < sel.Predicted.PowerW-1e-9 {
						t.Fatalf("%s cap %v: fallback not minimal", kp.KernelID, capW)
					}
				}
			}
		}
	}
}

// Failure injection: a model whose classifier was trained but whose
// cluster list is truncated must fail loudly, not index out of range.
func TestPredictAllClusterOutOfRange(t *testing.T) {
	_, m, _ := trained(t)
	broken := *m
	broken.Clusters = m.Clusters[:1] // classifier may emit cluster >= 1
	profs := cachedProfs
	var tripped bool
	for _, kp := range profs {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		c, err := broken.Classify(sr)
		if err != nil {
			t.Fatal(err)
		}
		if c >= 1 {
			if _, _, err := broken.PredictAll(sr); err == nil {
				t.Fatalf("%s: out-of-range cluster %d not rejected", kp.KernelID, c)
			}
			tripped = true
			break
		}
	}
	if !tripped {
		t.Skip("no kernel classified into a truncated cluster")
	}
}

// Failure injection: a cluster missing a device regression must be
// reported as ErrNoModel.
func TestPredictAllMissingDeviceModel(t *testing.T) {
	profs, m, _ := trained(t)
	broken := *m
	broken.Clusters = append([]ClusterModel(nil), m.Clusters...)
	for i := range broken.Clusters {
		cm := broken.Clusters[i]
		cm.PerfByDevice = map[apu.Device]*stats.Regression{apu.CPUDevice: cm.PerfByDevice[apu.CPUDevice]}
		broken.Clusters[i] = cm
	}
	sr := SampleRuns{CPU: profs[0].CPUSample, GPU: profs[0].GPUSample}
	if _, _, err := broken.PredictAll(sr); err == nil {
		t.Fatal("missing GPU regression not detected")
	}
}

func TestDiagnostics(t *testing.T) {
	_, m, _ := trained(t)
	d, err := m.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 5 || len(d.Clusters) != 5 {
		t.Fatalf("diagnostics shape: %+v", d)
	}
	totalSize := 0
	for _, c := range d.Clusters {
		totalSize += c.Size
		// R² can be poor for tiny clusters but must be finite and <= 1.
		for _, r2 := range []float64{c.PerfR2CPU, c.PerfR2GPU, c.PowerR2CPU, c.PowerR2GPU} {
			if math.IsNaN(r2) || r2 > 1+1e-9 {
				t.Errorf("cluster %d: R² = %v", c.Cluster, r2)
			}
		}
		if c.PowerStdCPU < 0 || c.PowerStdGPU < 0 {
			t.Errorf("cluster %d: negative residual std", c.Cluster)
		}
	}
	if totalSize != 65 {
		t.Errorf("cluster sizes sum to %d", totalSize)
	}
	out, err := m.ReportDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perf R²") {
		t.Errorf("report:\n%s", out)
	}
	if _, err := (&Model{}).Diagnose(); err == nil {
		t.Error("untrained model diagnosed")
	}
	if _, err := (&Model{}).ReportDiagnostics(); err == nil {
		t.Error("untrained model reported")
	}
}

// The offline stage characterizes one machine (§III: "the offline stage
// is conducted only once to characterize a new system"). A model
// trained on one machine must not silently transfer to different
// hardware: on a machine with a much faster GPU, the Trinity-trained
// model's power predictions degrade, and re-characterizing on the new
// machine restores accuracy.
func TestModelDoesNotTransferAcrossMachines(t *testing.T) {
	opts := DefaultTrainOptions()
	opts.Iterations = 1
	ks := allKernels()

	// Machine A: default Trinity.
	pA := profiler.New()
	profsA, err := Characterize(pA, ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	modelA, err := Train(pA.Space, profsA, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Machine B: a hypothetical successor — much faster, hungrier GPU.
	pB := profiler.New()
	pB.Machine.GPUFlopsPerCycle *= 2
	pB.Machine.GPUDynWPerV2GHz *= 1.6
	profsB, err := Characterize(pB, ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	modelB, err := Train(pB.Space, profsB, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Error over GPU configurations only — that's where machine B
	// differs (CPU-config power is identical on both machines, so a
	// whole-space median would mask the transfer failure).
	powerErr := func(m *Model, profs []*KernelProfile) float64 {
		var errs []float64
		for _, kp := range profs {
			preds, _, err := m.PredictAll(SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample})
			if err != nil {
				t.Fatal(err)
			}
			for id, p := range preds {
				if m.Space.Configs[id].Device != apu.GPUDevice {
					continue
				}
				tw := kp.Stats[id].MeanPower
				errs = append(errs, math.Abs(p.PowerW-tw)/tw)
			}
		}
		return median(errs)
	}

	stale := powerErr(modelA, profsB)     // Trinity model judged on machine B
	refreshed := powerErr(modelB, profsB) // model retrained on machine B
	if stale < refreshed*1.25 {
		t.Errorf("stale cross-machine model error %.3f not clearly worse than refreshed %.3f — offline characterization would be redundant", stale, refreshed)
	}
	t.Logf("median power APE on machine B: stale Trinity model %.1f%%, recharacterized %.1f%%",
		stale*100, refreshed*100)
}
