package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	profs, m, _ := trained(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K != m.K || len(m2.Clusters) != len(m.Clusters) {
		t.Fatalf("shape lost: k=%d clusters=%d", m2.K, len(m2.Clusters))
	}
	// Loaded model must make identical predictions and classifications.
	for _, kp := range profs[:6] {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		c1, err := m.Classify(sr)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := m2.Classify(sr)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("%s: classification differs after reload (%d vs %d)", kp.KernelID, c1, c2)
		}
		p1, _, err := m.PredictAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		p2, _, err := m2.PredictAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if p1[i].Perf != p2[i].Perf || p1[i].PowerW != p2[i].PowerW {
				t.Fatalf("%s config %d: predictions differ after reload", kp.KernelID, i)
			}
		}
	}
}

func TestSaveUntrainedModelFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).Save(&buf); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "space_len": 7}`)); err == nil {
		t.Fatal("expected space mismatch error")
	}
}

func TestLoadRejectsMissingPieces(t *testing.T) {
	_, m, _ := trained(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop the tree.
	s := buf.String()
	s = strings.Replace(s, `"tree"`, `"tree_gone"`, 1)
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Fatal("expected missing-classifier error")
	}
}
