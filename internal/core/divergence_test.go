package core

import (
	"math"
	"testing"
)

func TestDivergenceTrackerBasics(t *testing.T) {
	var d DivergenceTracker
	if d.Value() != 0 || d.Samples() != 0 {
		t.Fatal("fresh tracker not zero")
	}
	if d.Diverged(0) {
		t.Error("fresh tracker reports divergence")
	}
	// First observation seeds the EWMA directly.
	got := d.Observe(20, 30)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("first rel = %v, want 0.5", got)
	}
	if d.Samples() != 1 {
		t.Errorf("samples = %d", d.Samples())
	}
	// Second observation blends with DefaultDivergenceAlpha.
	got = d.Observe(20, 20) // rel 0
	want := 0.5 * 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("second ewma = %v, want %v", got, want)
	}
	if !d.Diverged(0.2) || d.Diverged(0.3) {
		t.Errorf("Diverged thresholds around %v wrong", d.Value())
	}
	d.Reset()
	if d.Value() != 0 || d.Samples() != 0 || d.Diverged(0) {
		t.Error("reset incomplete")
	}
}

func TestDivergenceTrackerIgnoresUnusableInputs(t *testing.T) {
	var d DivergenceTracker
	d.Observe(20, 25)
	before := d.Value()
	for _, pair := range [][2]float64{
		{math.NaN(), 20}, {20, math.NaN()},
		{math.Inf(1), 20}, {20, math.Inf(-1)},
		{0, 20}, {20, 0}, {-5, 20}, {20, -5},
	} {
		if got := d.Observe(pair[0], pair[1]); math.Abs(got-before) > 1e-15 {
			t.Errorf("Observe(%v, %v) moved ewma to %v", pair[0], pair[1], got)
		}
	}
	if d.Samples() != 1 {
		t.Errorf("unusable inputs counted: samples = %d", d.Samples())
	}
}

func TestDivergenceTrackerCustomAlpha(t *testing.T) {
	d := DivergenceTracker{Alpha: 0.1}
	d.Observe(10, 10) // rel 0 seeds ewma at 0
	d.Observe(10, 20) // rel 1
	if math.Abs(d.Value()-0.1) > 1e-12 {
		t.Errorf("alpha 0.1 ewma = %v, want 0.1", d.Value())
	}
	// Out-of-range alphas fall back to the default.
	bad := DivergenceTracker{Alpha: 1.5}
	bad.Observe(10, 10)
	bad.Observe(10, 20)
	if math.Abs(bad.Value()-DefaultDivergenceAlpha) > 1e-12 {
		t.Errorf("alpha 1.5 ewma = %v, want default blend %v", bad.Value(), DefaultDivergenceAlpha)
	}
}

func TestDivergenceSustainedDriftSurfaces(t *testing.T) {
	// Sustained 50% divergence must cross a 0.35 threshold within a few
	// iterations despite starting from a healthy history.
	var d DivergenceTracker
	for i := 0; i < 10; i++ {
		d.Observe(20, 20)
	}
	steps := 0
	for !d.Diverged(0.35) {
		d.Observe(20, 30)
		steps++
		if steps > 10 {
			t.Fatal("sustained divergence never surfaced")
		}
	}
	if steps > 3 {
		t.Errorf("took %d steps to surface 50%% divergence", steps)
	}
}
