package core

import "math"

// DivergenceTracker smooths the relative disagreement between the
// model's predicted power and the measured power of the configuration
// actually running — the watchdog signal that decides when a runtime
// should stop trusting its predictions and walk down the degradation
// ladder. An exponentially weighted moving average keeps one noisy
// sample from triggering a demotion while letting sustained
// divergence (sensor drift, misclassification, corrupted counters)
// surface within a few iterations.
type DivergenceTracker struct {
	// Alpha is the EWMA weight of the newest observation; 0 uses
	// DefaultDivergenceAlpha.
	Alpha float64

	ewma float64
	n    int
}

// DefaultDivergenceAlpha weighs the newest observation: high enough
// that three consecutive bad readings dominate the average, low
// enough that one does not.
const DefaultDivergenceAlpha = 0.5

// Observe feeds one (predicted, measured) watt pair and returns the
// updated smoothed relative error |measured-predicted|/predicted.
// Non-finite or non-positive inputs are ignored (the sanity gate
// quarantines those upstream); the current value is returned.
func (d *DivergenceTracker) Observe(predictedW, measuredW float64) float64 {
	if !isUsableW(predictedW) || !isUsableW(measuredW) {
		return d.ewma
	}
	rel := math.Abs(measuredW-predictedW) / predictedW
	a := d.Alpha
	if a <= 0 || a > 1 {
		a = DefaultDivergenceAlpha
	}
	if d.n == 0 {
		d.ewma = rel
	} else {
		d.ewma = a*rel + (1-a)*d.ewma
	}
	d.n++
	return d.ewma
}

// Value returns the current smoothed relative error (0 before any
// observation).
func (d *DivergenceTracker) Value() float64 { return d.ewma }

// Samples returns how many pairs have been observed.
func (d *DivergenceTracker) Samples() int { return d.n }

// Diverged reports whether the smoothed relative error exceeds frac.
// It is false until at least one pair has been observed.
func (d *DivergenceTracker) Diverged(frac float64) bool {
	return d.n > 0 && d.ewma > frac
}

// Reset clears the tracker (e.g. after re-selection under a new cap,
// when the old prediction no longer describes the running config).
func (d *DivergenceTracker) Reset() {
	d.ewma = 0
	d.n = 0
}

// State exposes the tracker's internals for checkpointing: the current
// EWMA and the observation count.
func (d *DivergenceTracker) State() (ewma float64, samples int) {
	return d.ewma, d.n
}

// SetState restores a tracker to a checkpointed State. A negative
// sample count is clamped to zero so a corrupt checkpoint cannot make
// Diverged report true with no observations.
func (d *DivergenceTracker) SetState(ewma float64, samples int) {
	if samples < 0 {
		samples = 0
	}
	d.ewma = ewma
	d.n = samples
}

func isUsableW(w float64) bool {
	return !math.IsNaN(w) && !math.IsInf(w, 0) && w > 0
}
