package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"acsel/internal/apu"
	"acsel/internal/stats"
	"acsel/internal/tree"
)

// persistedModel is the on-disk form of Model. The configuration space
// is canonical (apu.NewSpace / NewSpaceWithBoost) and therefore stored
// only as a flavor tag plus a length check.
type persistedModel struct {
	Version     int                  `json:"version"`
	K           int                  `json:"k"`
	SpaceLen    int                  `json:"space_len"`
	Boost       bool                 `json:"boost_space"`
	Clusters    []persistedCluster   `json:"clusters"`
	Tree        *tree.Tree           `json:"tree"`
	Assignments map[string]int       `json:"assignments"`
	Options     persistedTrainOption `json:"options"`
}

type persistedCluster struct {
	PerfCPU  *stats.Regression `json:"perf_cpu"`
	PerfGPU  *stats.Regression `json:"perf_gpu"`
	PowerCPU *stats.Regression `json:"power_cpu"`
	PowerGPU *stats.Regression `json:"power_gpu"`
}

type persistedTrainOption struct {
	K            int   `json:"k"`
	Iterations   int   `json:"iterations"`
	LogTargets   bool  `json:"log_targets"`
	TreeMaxDepth int   `json:"tree_max_depth"`
	TreeMinLeaf  int   `json:"tree_min_leaf"`
	Seed         int64 `json:"seed"`
}

// modelVersion guards the serialization format.
const modelVersion = 1

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.Tree == nil {
		return errors.New("core: saving an untrained model")
	}
	pm := persistedModel{
		Version:     modelVersion,
		K:           m.K,
		SpaceLen:    m.Space.Len(),
		Boost:       m.Space.Len() > apu.NewSpace().Len(),
		Tree:        m.Tree,
		Assignments: m.Assignments,
		Options: persistedTrainOption{
			K: m.Options.K, Iterations: m.Options.Iterations, LogTargets: m.Options.LogTargets,
			TreeMaxDepth: m.Options.TreeMaxDepth, TreeMinLeaf: m.Options.TreeMinLeaf, Seed: m.Options.Seed,
		},
	}
	for _, c := range m.Clusters {
		pm.Clusters = append(pm.Clusters, persistedCluster{
			PerfCPU:  c.PerfByDevice[apu.CPUDevice],
			PerfGPU:  c.PerfByDevice[apu.GPUDevice],
			PowerCPU: c.PowerByDevice[apu.CPUDevice],
			PowerGPU: c.PowerByDevice[apu.GPUDevice],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pm)
}

// Load restores a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var pm persistedModel
	if err := json.NewDecoder(r).Decode(&pm); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if pm.Version != modelVersion {
		return nil, fmt.Errorf("core: model version %d, want %d", pm.Version, modelVersion)
	}
	space := apu.NewSpace()
	if pm.Boost {
		space = apu.NewSpaceWithBoost()
	}
	if space.Len() != pm.SpaceLen {
		return nil, fmt.Errorf("core: model space size %d does not match machine %d", pm.SpaceLen, space.Len())
	}
	if pm.Tree == nil {
		return nil, errors.New("core: model missing classifier")
	}
	m := &Model{
		K:           pm.K,
		Space:       space,
		Tree:        pm.Tree,
		Assignments: pm.Assignments,
		Options: TrainOptions{
			K: pm.Options.K, Iterations: pm.Options.Iterations, LogTargets: pm.Options.LogTargets,
			TreeMaxDepth: pm.Options.TreeMaxDepth, TreeMinLeaf: pm.Options.TreeMinLeaf, Seed: pm.Options.Seed,
		},
	}
	for i, c := range pm.Clusters {
		if c.PerfCPU == nil || c.PerfGPU == nil || c.PowerCPU == nil || c.PowerGPU == nil {
			return nil, fmt.Errorf("core: cluster %d missing regressions", i)
		}
		m.Clusters = append(m.Clusters, ClusterModel{
			PerfByDevice:  map[apu.Device]*stats.Regression{apu.CPUDevice: c.PerfCPU, apu.GPUDevice: c.PerfGPU},
			PowerByDevice: map[apu.Device]*stats.Regression{apu.CPUDevice: c.PowerCPU, apu.GPUDevice: c.PowerGPU},
		})
	}
	if len(m.Clusters) != m.K {
		return nil, fmt.Errorf("core: %d clusters for k=%d", len(m.Clusters), m.K)
	}
	return m, nil
}
