package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"

	"acsel/internal/apu"
	"acsel/internal/cluster"
	"acsel/internal/profiler"
	"acsel/internal/stats"
	"acsel/internal/tree"
)

// persistedModel is the on-disk form of Model. The configuration space
// is canonical (apu.NewSpace / NewSpaceWithBoost) and therefore stored
// only as a flavor tag plus a length check.
type persistedModel struct {
	Version     int                  `json:"version"`
	K           int                  `json:"k"`
	SpaceLen    int                  `json:"space_len"`
	Boost       bool                 `json:"boost_space"`
	Clusters    []persistedCluster   `json:"clusters"`
	Tree        *tree.Tree           `json:"tree"`
	Assignments map[string]int       `json:"assignments"`
	Options     persistedTrainOption `json:"options"`
}

type persistedCluster struct {
	PerfCPU  *stats.Regression `json:"perf_cpu"`
	PerfGPU  *stats.Regression `json:"perf_gpu"`
	PowerCPU *stats.Regression `json:"power_cpu"`
	PowerGPU *stats.Regression `json:"power_gpu"`
}

type persistedTrainOption struct {
	K            int   `json:"k"`
	Iterations   int   `json:"iterations"`
	LogTargets   bool  `json:"log_targets"`
	TreeMaxDepth int   `json:"tree_max_depth"`
	TreeMinLeaf  int   `json:"tree_min_leaf"`
	Seed         int64 `json:"seed"`
}

// modelVersion guards the serialization format.
const modelVersion = 1

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.Tree == nil {
		return errors.New("core: saving an untrained model")
	}
	pm := persistedModel{
		Version:     modelVersion,
		K:           m.K,
		SpaceLen:    m.Space.Len(),
		Boost:       m.Space.Len() > apu.NewSpace().Len(),
		Tree:        m.Tree,
		Assignments: m.Assignments,
		Options: persistedTrainOption{
			K: m.Options.K, Iterations: m.Options.Iterations, LogTargets: m.Options.LogTargets,
			TreeMaxDepth: m.Options.TreeMaxDepth, TreeMinLeaf: m.Options.TreeMinLeaf, Seed: m.Options.Seed,
		},
	}
	for _, c := range m.Clusters {
		pm.Clusters = append(pm.Clusters, persistedCluster{
			PerfCPU:  c.PerfByDevice[apu.CPUDevice],
			PerfGPU:  c.PerfByDevice[apu.GPUDevice],
			PowerCPU: c.PowerByDevice[apu.CPUDevice],
			PowerGPU: c.PowerByDevice[apu.GPUDevice],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pm)
}

// Load restores a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var pm persistedModel
	if err := json.NewDecoder(r).Decode(&pm); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if pm.Version != modelVersion {
		return nil, fmt.Errorf("core: model version %d, want %d", pm.Version, modelVersion)
	}
	space := apu.NewSpace()
	if pm.Boost {
		space = apu.NewSpaceWithBoost()
	}
	if space.Len() != pm.SpaceLen {
		return nil, fmt.Errorf("core: model space size %d does not match machine %d", pm.SpaceLen, space.Len())
	}
	if pm.Tree == nil {
		return nil, errors.New("core: model missing classifier")
	}
	m := &Model{
		K:           pm.K,
		Space:       space,
		Tree:        pm.Tree,
		Assignments: pm.Assignments,
		Options: TrainOptions{
			K: pm.Options.K, Iterations: pm.Options.Iterations, LogTargets: pm.Options.LogTargets,
			TreeMaxDepth: pm.Options.TreeMaxDepth, TreeMinLeaf: pm.Options.TreeMinLeaf, Seed: pm.Options.Seed,
		},
	}
	for i, c := range pm.Clusters {
		if c.PerfCPU == nil || c.PerfGPU == nil || c.PowerCPU == nil || c.PowerGPU == nil {
			return nil, fmt.Errorf("core: cluster %d missing regressions", i)
		}
		m.Clusters = append(m.Clusters, ClusterModel{
			PerfByDevice:  map[apu.Device]*stats.Regression{apu.CPUDevice: c.PerfCPU, apu.GPUDevice: c.PerfGPU},
			PowerByDevice: map[apu.Device]*stats.Regression{apu.CPUDevice: c.PowerCPU, apu.GPUDevice: c.PowerGPU},
		})
	}
	if len(m.Clusters) != m.K {
		return nil, fmt.Errorf("core: %d clusters for k=%d", len(m.Clusters), m.K)
	}
	return m, nil
}

// Hash returns the model's content address: a SHA-256 over its Save
// serialization (encoding/json emits map keys sorted, so the bytes —
// and therefore the hash — are deterministic for a given model). Two
// models predict identically if and only if their serializations
// match, which makes this hash the correct invalidation key for any
// cache of predictions or selections: the query service stamps every
// response with it and purges cached selections whose hash no longer
// matches the live model after a hot reload.
func (m *Model) Hash() (string, error) {
	h := sha256.New()
	if err := m.Save(h); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// cacheKeyVersion guards the hash layout of ModelCacheKey: bump it
// whenever the hashed fields or their encoding change, so stale cache
// entries miss instead of colliding.
const cacheKeyVersion = 1

// ModelCacheKey derives the content address of a training run: a
// SHA-256 over everything that determines the trained model — the
// configuration space, every training option, and each profile's
// identity, measurements, and sample runs. Two calls with identical
// inputs produce the same key; any change to a measurement, option, or
// the profile set (including order) changes it.
func ModelCacheKey(space *apu.Space, profiles []*KernelProfile, opts TrainOptions) string {
	h := sha256.New()
	hashInt(h, cacheKeyVersion)
	hashInt(h, int64(modelVersion))
	hashInt(h, int64(space.Len()))
	hashInt(h, int64(opts.K))
	hashInt(h, int64(opts.Iterations))
	hashBool(h, opts.LogTargets)
	hashInt(h, int64(opts.TreeMaxDepth))
	hashInt(h, int64(opts.TreeMinLeaf))
	hashInt(h, opts.Seed)
	hashInt(h, int64(len(profiles)))
	for _, kp := range profiles {
		hashString(h, kp.KernelID)
		hashString(h, kp.Benchmark)
		hashString(h, kp.Input)
		hashString(h, kp.Name)
		hashFloat(h, kp.TimeShare)
		hashInt(h, int64(len(kp.Stats)))
		for _, s := range kp.Stats {
			hashInt(h, int64(s.ConfigID))
			for _, v := range []float64{s.MeanTime, s.MeanPerf, s.MeanPower, s.MeanCPUW, s.MeanNBW} {
				hashFloat(h, v)
			}
		}
		hashSample(h, kp.CPUSample)
		hashSample(h, kp.GPUSample)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func hashInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:]) //lint:ignore errcheck hash.Hash.Write never fails
}

func hashFloat(h hash.Hash, v float64) { hashInt(h, int64(math.Float64bits(v))) }

func hashString(h hash.Hash, s string) {
	hashInt(h, int64(len(s)))
	io.WriteString(h, s) //lint:ignore errcheck hash.Hash.Write never fails
}

func hashBool(h hash.Hash, v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.Write([]byte{b}) //lint:ignore errcheck hash.Hash.Write never fails
}

// hashSample folds the sample-run fields the model consumes — timing,
// per-domain power, and the full counter readout — into the cache key.
func hashSample(h hash.Hash, s profiler.Sample) {
	c := s.Counters
	for _, v := range []float64{
		s.TimeSec, s.CPUPowerW, s.NBGPUW,
		c.Instructions, c.L1DMisses, c.L2DMisses, c.TLBMisses,
		c.CondBranches, c.VectorInstr, c.StalledCycles, c.CoreCycles,
		c.RefCycles, c.IdleFPUCycles, c.Interrupts, c.DRAMAccesses,
	} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:]) //lint:ignore errcheck hash.Hash.Write never fails
	}
}

// TrainCached is Train backed by a content-addressed model cache in
// dir: the cache key hashes the profiles and options, a hit loads the
// stored model instead of retraining, and a miss trains then persists.
// An empty dir disables caching. The returned bool reports a cache hit.
//
// A corrupt, truncated, or otherwise unloadable cache entry is never an
// error: it counts into acsel_core_model_cache_invalid_total and falls
// back to retraining (overwriting the bad entry). JSON round-trips
// float64 values exactly, so a cached model predicts identically to the
// freshly trained one.
func TrainCached(space *apu.Space, profiles []*KernelProfile, opts TrainOptions, dir string) (*Model, bool, error) {
	return TrainCachedWithDissimilarity(space, profiles, nil, opts, dir)
}

// TrainCachedWithDissimilarity combines the model cache with a
// precomputed dissimilarity matrix (see TrainWithDissimilarity): on a
// cache miss the matrix still spares the pairwise Kendall-tau stage.
func TrainCachedWithDissimilarity(space *apu.Space, profiles []*KernelProfile, dis *cluster.DissimilarityMatrix, opts TrainOptions, dir string) (*Model, bool, error) {
	if dir == "" {
		m, err := TrainWithDissimilarity(space, profiles, dis, opts)
		return m, false, err
	}
	path := filepath.Join(dir, "model-"+ModelCacheKey(space, profiles, opts)+".json")
	if f, err := os.Open(path); err == nil {
		m, lerr := Load(f)
		f.Close() //lint:ignore errcheck read-only file
		if lerr == nil {
			mModelCacheHits.Inc()
			return m, true, nil
		}
		// Unreadable entry: fall through to retraining, which rewrites it.
		mModelCacheInvalid.Inc()
	}
	mModelCacheMisses.Inc()
	m, err := TrainWithDissimilarity(space, profiles, dis, opts)
	if err != nil {
		return nil, false, err
	}
	if err := writeModelFile(path, m); err != nil {
		return nil, false, fmt.Errorf("core: caching model: %w", err)
	}
	return m, false, nil
}

// writeModelFile persists a model atomically: write to a temp file in
// the same directory, then rename over the final path, so a concurrent
// or interrupted writer can never leave a truncated entry under the
// content-addressed name.
func writeModelFile(path string, m *Model) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := m.Save(tmp); err != nil {
		tmp.Close()           //lint:ignore errcheck already failing
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	return os.Rename(tmp.Name(), path)
}
