package core

import (
	"bytes"
	"math"
	"testing"
)

// TestSelectAmongMatchesSelectUnderCap pins the refactor contract:
// SelectUnderCap (and its variance-aware variant) must be exactly
// PredictAll followed by SelectAmong, so any caller holding cached
// predictions reproduces the direct selection bitwise.
func TestSelectAmongMatchesSelectUnderCap(t *testing.T) {
	profs, m, _ := trained(t)
	for _, kp := range profs[:6] {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		preds, c, err := m.PredictAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range []float64{0, 1.5} {
			for cap := 2.0; cap <= 40; cap += 1.7 {
				var direct Selection
				var derr error
				if z > 0 {
					direct, derr = m.SelectUnderCapVarAware(sr, cap, z)
				} else {
					direct, derr = m.SelectUnderCap(sr, cap)
				}
				if derr != nil {
					t.Fatal(derr)
				}
				got, err := SelectAmong(preds, c, cap, z)
				if err != nil {
					t.Fatal(err)
				}
				if got != direct {
					t.Fatalf("%s cap=%v z=%v: SelectAmong %+v != SelectUnderCap %+v",
						kp.KernelID, cap, z, got, direct)
				}
			}
		}
	}
}

func TestSelectAmongEmptyPredictions(t *testing.T) {
	if _, err := SelectAmong(nil, 0, 20, 0); err == nil {
		t.Fatal("empty predictions accepted")
	}
}

// TestMinPredictedPowerW checks the feasibility floor agrees with the
// fallback selection: an unsatisfiable cap must land on the
// minimum-power configuration, whose predicted power is the floor.
func TestMinPredictedPowerW(t *testing.T) {
	profs, m, _ := trained(t)
	kp := profs[0]
	sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	preds, _, err := m.PredictAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	minW := MinPredictedPowerW(preds)
	if math.IsInf(minW, 1) || minW < minPredictedPowerW {
		t.Fatalf("MinPredictedPowerW = %v", minW)
	}
	sel, err := m.SelectUnderCap(sr, minW-1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.MeetsCapPredicted {
		t.Fatalf("cap below the floor reported as met: %+v", sel)
	}
	if sel.Predicted.PowerW != minW {
		t.Fatalf("fallback power %v != floor %v", sel.Predicted.PowerW, minW)
	}
}

// TestModelHashStableAndSensitive: the content address is deterministic
// across calls and across a Save/Load round trip, and differs between
// models trained with different options.
func TestModelHashStableAndSensitive(t *testing.T) {
	profs, m, space := trained(t)
	h1, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash not stable: %q vs %q", h1, h2)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := loaded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatalf("hash changed across Save/Load: %q vs %q", h3, h1)
	}

	opts := m.Options
	opts.Seed++
	other, err := Train(space, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h1 {
		t.Fatal("models trained with different seeds share a hash")
	}
}
