// Package core implements the paper's contribution: the two-stage
// power/performance model for adaptive configuration selection.
//
// Offline (once per machine): profile a training set of kernels at
// every configuration; derive per-kernel power–performance Pareto
// frontiers; compute a Kendall-tau dissimilarity matrix over frontier
// orderings; cluster kernels (PAM, k=5); fit per-cluster, per-device
// linear regressions for performance scaling and power; and train a
// classification tree that maps sample-configuration signatures to
// clusters.
//
// Online (per new kernel): run the first two iterations on the two
// sample configurations (Table II), classify into a cluster, predict
// power and performance for every configuration, derive the predicted
// Pareto frontier, and select a configuration under the power cap.
package core

import (
	"fmt"
	"math"

	"acsel/internal/apu"
	"acsel/internal/pareto"
	"acsel/internal/profiler"
)

// ConfigStats aggregates a kernel's measured behaviour at one
// configuration over profiling iterations.
type ConfigStats struct {
	ConfigID  int
	MeanTime  float64
	MeanPerf  float64
	MeanPower float64 // package (both domains)
	MeanCPUW  float64
	MeanNBW   float64
}

// KernelProfile is the complete offline characterization of one kernel:
// per-configuration statistics, the derived Pareto frontier, and the
// two sample-configuration runs used for classification.
type KernelProfile struct {
	KernelID  string
	Benchmark string
	Input     string
	Name      string
	TimeShare float64

	// Stats is indexed by configuration ID.
	Stats []ConfigStats
	// Frontier is the measured power–performance Pareto frontier.
	Frontier *pareto.Frontier
	// CPUSample and GPUSample are single-iteration runs at the sample
	// configurations — exactly the information available online.
	CPUSample profiler.Sample
	GPUSample profiler.Sample
}

// SamplePerf returns the measured sample-configuration performance on a
// device, the scaling reference S_perf of the performance model.
func (kp *KernelProfile) SamplePerf(d apu.Device) float64 {
	if d == apu.CPUDevice {
		return kp.CPUSample.Perf()
	}
	return kp.GPUSample.Perf()
}

// BestPerf returns the maximum measured performance across all
// configurations (the oracle's normalization reference).
func (kp *KernelProfile) BestPerf() float64 {
	best := math.Inf(-1)
	for _, s := range kp.Stats {
		if s.MeanPerf > best {
			best = s.MeanPerf
		}
	}
	return best
}

// buildFrontier derives the Pareto frontier from the per-config stats.
func (kp *KernelProfile) buildFrontier() {
	pts := make([]pareto.Point, len(kp.Stats))
	for i, s := range kp.Stats {
		pts[i] = pareto.Point{ID: s.ConfigID, Power: s.MeanPower, Perf: s.MeanPerf}
	}
	kp.Frontier = pareto.New(pts)
}

// Validate checks internal consistency.
func (kp *KernelProfile) Validate(space *apu.Space) error {
	if len(kp.Stats) != space.Len() {
		return fmt.Errorf("core: profile %s has %d config stats, want %d", kp.KernelID, len(kp.Stats), space.Len())
	}
	for i, s := range kp.Stats {
		if s.ConfigID != i {
			return fmt.Errorf("core: profile %s stats misordered at %d", kp.KernelID, i)
		}
		if s.MeanTime <= 0 || s.MeanPower <= 0 {
			return fmt.Errorf("core: profile %s config %d has non-positive measurements", kp.KernelID, i)
		}
	}
	if kp.Frontier == nil || kp.Frontier.Len() == 0 {
		return fmt.Errorf("core: profile %s has no frontier", kp.KernelID)
	}
	if kp.CPUSample.TimeSec <= 0 || kp.GPUSample.TimeSec <= 0 {
		return fmt.Errorf("core: profile %s missing sample runs", kp.KernelID)
	}
	return nil
}
