package core

import (
	"os"
	"path/filepath"
	"testing"
)

// assertSamePredictions fails unless a and b classify and predict
// identically for the given profiles.
func assertSamePredictions(t *testing.T, a, b *Model, profs []*KernelProfile) {
	t.Helper()
	for _, kp := range profs {
		sr := SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		ca, err := a.Classify(sr)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Classify(sr)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("%s: classification differs (%d vs %d)", kp.KernelID, ca, cb)
		}
		pa, _, err := a.PredictAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		pb, _, err := b.PredictAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pa {
			if pa[i].Perf != pb[i].Perf || pa[i].PowerW != pb[i].PowerW {
				t.Fatalf("%s config %d: predictions differ", kp.KernelID, i)
			}
		}
	}
}

// cacheEntry returns the single model-*.json file in dir.
func cacheEntry(t *testing.T, dir string) string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "model-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache holds %d entries, want 1: %v", len(entries), entries)
	}
	return entries[0]
}

func TestTrainCachedRoundTrip(t *testing.T) {
	profs, _, space := trained(t)
	opts := DefaultTrainOptions()
	opts.Iterations = 2
	dir := t.TempDir()

	m1, hit, err := TrainCached(space, profs, opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first TrainCached reported a hit on an empty cache")
	}
	cacheEntry(t, dir)

	m2, hit, err := TrainCached(space, profs, opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second TrainCached missed a populated cache")
	}
	assertSamePredictions(t, m1, m2, profs)
}

func TestTrainCachedKeySensitivity(t *testing.T) {
	profs, _, space := trained(t)
	opts := DefaultTrainOptions()
	k1 := ModelCacheKey(space, profs, opts)
	if k2 := ModelCacheKey(space, profs, opts); k2 != k1 {
		t.Fatal("cache key not deterministic")
	}
	opts2 := opts
	opts2.Seed++
	if ModelCacheKey(space, profs, opts2) == k1 {
		t.Fatal("seed change did not change the cache key")
	}
	if ModelCacheKey(space, profs[:len(profs)-1], opts) == k1 {
		t.Fatal("dropping a profile did not change the cache key")
	}
	bumped := *profs[0]
	bumped.TimeShare += 1e-9
	swapped := append([]*KernelProfile{&bumped}, profs[1:]...)
	if ModelCacheKey(space, swapped, opts) == k1 {
		t.Fatal("perturbing a measurement did not change the cache key")
	}
}

func TestTrainCachedDisabledByEmptyDir(t *testing.T) {
	profs, _, space := trained(t)
	opts := DefaultTrainOptions()
	opts.Iterations = 2
	m, hit, err := TrainCached(space, profs, opts, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit || m == nil {
		t.Fatalf("empty dir: hit=%v model=%v", hit, m != nil)
	}
}

// TestTrainCachedCorruptEntryFallsBack covers the failure ladder: a
// corrupt or truncated cache entry must silently retrain (counting into
// acsel_core_model_cache_invalid_total), never surface an error, and
// leave a valid entry behind.
func TestTrainCachedCorruptEntryFallsBack(t *testing.T) {
	profs, _, space := trained(t)
	opts := DefaultTrainOptions()
	opts.Iterations = 2
	dir := t.TempDir()

	m1, _, err := TrainCached(space, profs, opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	path := cacheEntry(t, dir)

	for _, corrupt := range []struct {
		name string
		mut  func() error
	}{
		{"garbage", func() error { return os.WriteFile(path, []byte("{not json"), 0o644) }},
		{"truncated", func() error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		}},
		{"empty", func() error { return os.WriteFile(path, nil, 0o644) }},
	} {
		t.Run(corrupt.name, func(t *testing.T) {
			if err := corrupt.mut(); err != nil {
				t.Fatal(err)
			}
			before := mModelCacheInvalid.Value()
			m, hit, err := TrainCached(space, profs, opts, dir)
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error: %v", err)
			}
			if hit {
				t.Fatal("corrupt entry reported as a hit")
			}
			if got := mModelCacheInvalid.Value() - before; got != 1 {
				t.Fatalf("model_cache_invalid_total delta = %v, want 1", got)
			}
			assertSamePredictions(t, m1, m, profs[:6])
			// The retrain must have healed the entry: next lookup hits.
			if _, hit, err := TrainCached(space, profs, opts, dir); err != nil || !hit {
				t.Fatalf("after retrain: hit=%v err=%v", hit, err)
			}
		})
	}
}
