package core

import (
	"errors"
	"fmt"
	"math"

	"acsel/internal/apu"
	"acsel/internal/counters"
	"acsel/internal/pareto"
	"acsel/internal/profiler"
	"acsel/internal/stats"
	"acsel/internal/tree"
)

func counterNames() []string { return counters.Names() }

// ClusterModel holds one cluster's fitted regressions: a
// performance-scaling model and a power model per device.
type ClusterModel struct {
	PerfByDevice  map[apu.Device]*stats.Regression
	PowerByDevice map[apu.Device]*stats.Regression
}

// Model is the trained offline model: cluster regressions plus the
// classification tree that assigns new kernels to clusters.
type Model struct {
	K        int
	Space    *apu.Space
	Clusters []ClusterModel
	Tree     *tree.Tree
	// Assignments records the training kernels' cluster memberships.
	Assignments map[string]int
	// Options echoes the training configuration.
	Options TrainOptions
}

// SampleRuns carries the two online sample-configuration measurements
// of a new kernel: its first iteration on each device (Table II).
type SampleRuns struct {
	CPU profiler.Sample
	GPU profiler.Sample
}

// ClassifierFeatures builds the classification-tree input from the two
// sample runs: the CPU run's normalized counter metrics, both runs'
// package power, and the GPU:CPU performance ratio — everything
// observable after the kernel's first two iterations.
func ClassifierFeatures(cpu, gpu profiler.Sample) []float64 {
	f := cpu.Counters.Normalize().Vector()
	f = append(f, cpu.TotalPowerW(), gpu.TotalPowerW(), gpu.Perf()/cpu.Perf())
	return f
}

// ClassifierFeatureNames labels ClassifierFeatures entries.
func ClassifierFeatureNames() []string {
	names := append([]string(nil), counterNames()...)
	return append(names, "cpu_sample_power_w", "gpu_sample_power_w", "gpu_cpu_perf_ratio")
}

// Prediction is the model's estimate for one configuration.
type Prediction struct {
	ConfigID int
	Config   apu.Config
	Perf     float64 // predicted throughput (1/s)
	PowerW   float64 // predicted package power
	// PerfStd and PowerStd are residual-based uncertainty estimates,
	// used by the variance-aware selection extension (§VI).
	PerfStd  float64
	PowerStd float64
}

// ErrNoModel is returned when the model lacks a required component.
var ErrNoModel = errors.New("core: model component missing")

// ErrCapInfeasible marks a power cap below the model's minimum feasible
// predicted power: no configuration is predicted to fit, so a selection
// can only be the minimum-power fallback. SelectUnderCap itself still
// returns that fallback (the runtime's degradation ladder wants it);
// callers that treat an unsatisfiable cap as a hard failure — the
// acsel-predict CLI, the query service's remote clients — wrap this
// sentinel so the condition stays testable across process boundaries.
var ErrCapInfeasible = errors.New("core: power cap below minimum feasible predicted power")

// Classify assigns a new kernel to a cluster from its sample runs.
// Its cost is O(tree depth), matching §IV-C.
func (m *Model) Classify(sr SampleRuns) (int, error) {
	if m.Tree == nil {
		return 0, fmt.Errorf("%w: classifier", ErrNoModel)
	}
	return m.Tree.Classify(ClassifierFeatures(sr.CPU, sr.GPU))
}

// minPredictedPerfFrac floors predicted performance at this fraction of
// the device's sample performance; linear extrapolation can otherwise
// go non-positive at space corners.
const minPredictedPerfFrac = 1e-3

// minPredictedPowerW floors predicted power; no configuration of the
// machine idles below a few watts.
const minPredictedPowerW = 3.0

// PredictAll predicts power and performance for every configuration in
// the space for a new kernel, given its sample runs. The per-device
// sample performance anchors the scaling model; power comes directly
// from the cluster's power regression.
func (m *Model) PredictAll(sr SampleRuns) ([]Prediction, int, error) {
	c, err := m.Classify(sr)
	if err != nil {
		return nil, 0, err
	}
	if c < 0 || c >= len(m.Clusters) {
		return nil, 0, fmt.Errorf("core: classifier produced cluster %d of %d", c, len(m.Clusters))
	}
	cm := m.Clusters[c]
	samplePerf := map[apu.Device]float64{
		apu.CPUDevice: sr.CPU.Perf(),
		apu.GPUDevice: sr.GPU.Perf(),
	}
	out := make([]Prediction, m.Space.Len())
	for id, cfg := range m.Space.Configs {
		perfReg := cm.PerfByDevice[cfg.Device]
		powReg := cm.PowerByDevice[cfg.Device]
		if perfReg == nil || powReg == nil {
			return nil, 0, fmt.Errorf("%w: cluster %d device %v", ErrNoModel, c, cfg.Device)
		}
		feats := cfg.Features()
		scale, scaleStd, err := perfReg.PredictWithStd(feats)
		if err != nil {
			return nil, 0, err
		}
		ref := samplePerf[cfg.Device]
		perf := scale * ref
		if min := ref * minPredictedPerfFrac; perf < min {
			perf = min
		}
		pow, powStd, err := powReg.PredictWithStd(feats)
		if err != nil {
			return nil, 0, err
		}
		if pow < minPredictedPowerW {
			pow = minPredictedPowerW
		}
		out[id] = Prediction{
			ConfigID: id,
			Config:   cfg,
			Perf:     perf,
			PowerW:   pow,
			PerfStd:  scaleStd * ref,
			PowerStd: powStd,
		}
	}
	return out, c, nil
}

// PredictedFrontier derives the predicted Pareto frontier for a new
// kernel (§III-C): the object a scheduler consults as power constraints
// change, without re-examining every configuration.
func (m *Model) PredictedFrontier(sr SampleRuns) (*pareto.Frontier, []Prediction, error) {
	preds, _, err := m.PredictAll(sr)
	if err != nil {
		return nil, nil, err
	}
	pts := make([]pareto.Point, len(preds))
	for i, p := range preds {
		pts[i] = pareto.Point{ID: p.ConfigID, Power: p.PowerW, Perf: p.Perf}
	}
	return pareto.New(pts), preds, nil
}

// Selection is the outcome of an online configuration choice.
type Selection struct {
	ConfigID  int
	Config    apu.Config
	Predicted Prediction
	// MeetsCapPredicted reports whether the predicted power respects
	// the cap (false when the model had to fall back to the
	// minimum-predicted-power configuration).
	MeetsCapPredicted bool
	Cluster           int
}

// SelectUnderCap picks the configuration predicted to maximize
// performance within capW. When no configuration is predicted to fit,
// it falls back to the minimum-predicted-power configuration, mirroring
// the oracle's fallback so comparisons stay aligned.
func (m *Model) SelectUnderCap(sr SampleRuns, capW float64) (Selection, error) {
	return m.selectUnderCap(sr, capW, 0)
}

// SelectUnderCapVarAware is the variance-aware extension (§VI): it
// requires predicted power plus z·σ to fit under the cap, trading
// expected performance for confidence.
func (m *Model) SelectUnderCapVarAware(sr SampleRuns, capW, z float64) (Selection, error) {
	if z < 0 {
		return Selection{}, errors.New("core: negative z")
	}
	return m.selectUnderCap(sr, capW, z)
}

func (m *Model) selectUnderCap(sr SampleRuns, capW, z float64) (Selection, error) {
	preds, c, err := m.PredictAll(sr)
	if err != nil {
		return Selection{}, err
	}
	return SelectAmong(preds, c, capW, z)
}

// SelectAmong runs the cap-selection sweep over already-computed
// predictions (as produced by PredictAll: indexed by configuration ID)
// without copying them. It is the single selection loop behind
// SelectUnderCap, the batch paths, and the query service's per-kernel
// prediction cache, so every path yields bitwise-identical Selections
// by construction.
//
//lint:deterministic
func SelectAmong(preds []Prediction, cluster int, capW, z float64) (Selection, error) {
	if len(preds) == 0 {
		return Selection{}, fmt.Errorf("%w: no predictions", ErrNoModel)
	}
	bestID, fallbackID := -1, -1
	bestPerf := math.Inf(-1)
	minPow := math.Inf(1)
	for _, p := range preds {
		bound := p.PowerW + z*p.PowerStd
		if bound <= capW && p.Perf > bestPerf {
			bestPerf = p.Perf
			bestID = p.ConfigID
		}
		if p.PowerW < minPow {
			minPow = p.PowerW
			fallbackID = p.ConfigID
		}
	}
	sel := Selection{Cluster: cluster}
	if bestID >= 0 {
		sel.ConfigID = bestID
		sel.MeetsCapPredicted = true
	} else {
		sel.ConfigID = fallbackID
	}
	if sel.ConfigID < 0 || sel.ConfigID >= len(preds) {
		return Selection{}, fmt.Errorf("%w: prediction index %d of %d", ErrNoModel, sel.ConfigID, len(preds))
	}
	sel.Config = preds[sel.ConfigID].Config
	sel.Predicted = preds[sel.ConfigID]
	return sel, nil
}

// MinPredictedPowerW returns the minimum predicted package power across
// predictions — the feasibility floor a cap is measured against.
func MinPredictedPowerW(preds []Prediction) float64 {
	minPow := math.Inf(1)
	for _, p := range preds {
		if p.PowerW < minPow {
			minPow = p.PowerW
		}
	}
	return minPow
}

// RenderTree returns the classification tree in the indented format of
// the paper's Figure 3.
func (m *Model) RenderTree() string {
	if m.Tree == nil {
		return "<no classifier>"
	}
	return m.Tree.Render()
}

// ClusterSizes returns the number of training kernels per cluster.
func (m *Model) ClusterSizes() []int {
	sizes := make([]int, m.K)
	for _, c := range m.Assignments {
		if c >= 0 && c < m.K {
			sizes[c]++
		}
	}
	return sizes
}
