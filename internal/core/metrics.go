package core

import "acsel/internal/metrics"

// mPhaseSeconds times the offline-stage pipeline phases: suite
// characterization, frontier-order clustering, per-cluster regression
// fitting, and classifier training. Future performance PRs get a
// measured baseline per phase instead of end-to-end anecdotes.
var mPhaseSeconds = metrics.NewHistogramVec("acsel_core_phase_seconds",
	"Wall time of offline-stage pipeline phases (characterize, cluster, regressions, classifier).",
	metrics.TimeBuckets, "phase")

// Model-cache outcomes (TrainCached): hits load a previously trained
// model by content address, misses train and persist, invalid counts
// corrupt or truncated entries that fell back to retraining instead of
// erroring.
var (
	mModelCacheHits = metrics.NewCounter("acsel_core_model_cache_hits_total",
		"TrainCached lookups served from the content-addressed model cache.")
	mModelCacheMisses = metrics.NewCounter("acsel_core_model_cache_misses_total",
		"TrainCached lookups that trained from scratch (no usable cache entry).")
	mModelCacheInvalid = metrics.NewCounter("acsel_core_model_cache_invalid_total",
		"Corrupt or truncated model-cache entries that triggered a silent retrain.")
)
