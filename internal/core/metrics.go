package core

import "acsel/internal/metrics"

// mPhaseSeconds times the offline-stage pipeline phases: suite
// characterization, frontier-order clustering, per-cluster regression
// fitting, and classifier training. Future performance PRs get a
// measured baseline per phase instead of end-to-end anecdotes.
var mPhaseSeconds = metrics.NewHistogramVec("acsel_core_phase_seconds",
	"Wall time of offline-stage pipeline phases (characterize, cluster, regressions, classifier).",
	metrics.TimeBuckets, "phase")
