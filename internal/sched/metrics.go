package sched

import "acsel/internal/metrics"

// Metric families of the selection policies: how often each method
// decides, how many frequency-limiter steps the FL variants burn, and
// how often a policy finds nothing under the cap and activates its
// minimum-power fallback.
var (
	mDecisions = metrics.NewCounterVec("acsel_sched_decisions_total",
		"Configuration-selection decisions completed, by method.", "method")
	mFallback = metrics.NewCounterVec("acsel_sched_fallback_activations_total",
		"Decisions that found no configuration under the cap and fell back to minimum power, by method.", "method")
	mFLSteps = metrics.NewCounter("acsel_sched_fl_steps_total",
		"Frequency-limiter P-state steps taken across all decisions.")
)
