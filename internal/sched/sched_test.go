package sched

import (
	"math"
	"sync"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

var (
	setupOnce sync.Once
	setupErr  error
	gSpace    *apu.Space
	gModel    *core.Model
	gProfiles []*core.KernelProfile
)

func setup(t *testing.T) (*apu.Space, *core.Model, []*core.KernelProfile) {
	t.Helper()
	setupOnce.Do(func() {
		p := profiler.New()
		var ks []kernels.Kernel
		for _, c := range kernels.Combos() {
			ks = append(ks, c.Kernels...)
		}
		opts := core.DefaultTrainOptions()
		opts.Iterations = 2
		profs, err := core.Characterize(p, ks, opts)
		if err != nil {
			setupErr = err
			return
		}
		m, err := core.Train(p.Space, profs, opts)
		if err != nil {
			setupErr = err
			return
		}
		gSpace, gModel, gProfiles = p.Space, m, profs
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return gSpace, gModel, gProfiles
}

func sampleRunsOf(kp *core.KernelProfile) core.SampleRuns {
	return core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		MethodOracle: "Oracle", MethodModel: "Model", MethodModelFL: "Model+FL",
		MethodCPUFL: "CPU+FL", MethodGPUFL: "GPU+FL",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method should render")
	}
	if len(Methods()) != 4 {
		t.Errorf("Methods() = %v", Methods())
	}
}

func TestOracleIsOptimal(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	for _, kp := range profs[:8] {
		truth := ProfileTruth{kp}
		for _, cap := range []float64{15, 20, 25, 30, 40} {
			d := r.Oracle(truth, cap)
			if !d.MeetsCap(cap) {
				// Only allowed when no config fits; then it must be the
				// machine's minimum-power configuration.
				for id := 0; id < space.Len(); id++ {
					if truth.PowerAt(id) <= cap {
						t.Fatalf("%s cap %v: oracle violated cap although config %d fits", kp.KernelID, cap, id)
					}
					if truth.PowerAt(id) < d.TruePower-1e-9 {
						t.Fatalf("%s cap %v: oracle fallback not minimal power", kp.KernelID, cap)
					}
				}
				continue
			}
			// No config under the cap may beat the oracle.
			for id := 0; id < space.Len(); id++ {
				if truth.PowerAt(id) <= cap+capSlack && truth.PerfAt(id) > d.TruePerf+1e-12 {
					t.Fatalf("%s cap %v: config %d beats oracle", kp.KernelID, cap, id)
				}
			}
		}
	}
}

func TestCPUFLUsesAllCoresAndParksGPU(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{profs[0]}
	d := r.CPUFL(truth, 25)
	if d.Config.Device != apu.CPUDevice || d.Config.Threads != apu.NumCores {
		t.Errorf("CPU+FL config = %v", d.Config)
	}
	if d.Config.GPUFreqGHz != apu.MinGPUFreq() {
		t.Errorf("CPU+FL GPU not parked: %v", d.Config)
	}
}

func TestCPUFLStepsDownUnderTightCap(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{profs[0]}
	loose := r.CPUFL(truth, 100)
	tight := r.CPUFL(truth, 18)
	if loose.Config.CPUFreqGHz != apu.MaxCPUFreq() {
		t.Errorf("loose cap should keep max frequency, got %v", loose.Config)
	}
	if tight.Config.CPUFreqGHz >= loose.Config.CPUFreqGHz {
		t.Errorf("tight cap did not reduce frequency: %v", tight.Config)
	}
	if tight.FLSteps == 0 {
		t.Error("expected limiter steps under tight cap")
	}
}

func TestCPUFLCannotDropThreads(t *testing.T) {
	// §V-D: "CPU+FL always runs on four threads, thus violating the
	// lower constraints." Under an impossible cap it stays at 4 threads
	// and min frequency, over the cap.
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{profs[0]}
	d := r.CPUFL(truth, 5)
	if d.Config.Threads != apu.NumCores || d.Config.CPUFreqGHz != apu.MinCPUFreq() {
		t.Errorf("config = %v", d.Config)
	}
	if d.MeetsCap(5) {
		t.Error("5 W cap should be impossible for 4 threads")
	}
}

func TestGPUFLStructure(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{profs[0]}
	d := r.GPUFL(truth, 100)
	if d.Config.Device != apu.GPUDevice {
		t.Errorf("GPU+FL device = %v", d.Config.Device)
	}
	// With unlimited cap the GPU stays at max and CPU is raised fully.
	if d.Config.GPUFreqGHz != apu.MaxGPUFreq() || d.Config.CPUFreqGHz != apu.MaxCPUFreq() {
		t.Errorf("unconstrained GPU+FL = %v", d.Config)
	}
}

func TestGPUFLStepsDownAndRaisesCPU(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	// Find a kernel/cap where stepping matters: use a GPU-friendly
	// kernel with a mid cap.
	var kp *core.KernelProfile
	for _, p := range profs {
		if p.Benchmark == "LU" && p.Input == "Large" {
			kp = p
		}
	}
	if kp == nil {
		t.Fatal("missing LU Large")
	}
	truth := ProfileTruth{kp}
	full := r.GPUFL(truth, 1000)
	mid := r.GPUFL(truth, full.TruePower*0.8)
	if mid.Config.GPUFreqGHz >= full.Config.GPUFreqGHz && mid.TruePower > full.TruePower*0.8+capSlack {
		t.Errorf("GPU+FL did not step down: %v (%.1f W)", mid.Config, mid.TruePower)
	}
	// The invariant from §V-A: never raise CPU beyond what the cap allows
	// (if under cap at the end, fine; if over, GPU must be at min).
	if !mid.MeetsCap(full.TruePower*0.8) && mid.Config.GPUFreqGHz != apu.MinGPUFreq() {
		t.Errorf("over cap with GPU not at min: %v", mid.Config)
	}
}

func TestGPUFLCannotLeaveGPU(t *testing.T) {
	// GPU+FL's failure mode in the paper: it cannot relocate to the CPU,
	// so very low caps are violated.
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{profs[0]}
	d := r.GPUFL(truth, 10)
	if d.Config.Device != apu.GPUDevice {
		t.Error("GPU+FL must stay on the GPU")
	}
	if d.MeetsCap(10) {
		t.Error("10 W should be impossible on the GPU")
	}
}

func TestModelMethodsNeedModel(t *testing.T) {
	space, _, profs := setup(t)
	r := &Runner{Space: space} // no model
	truth := ProfileTruth{profs[0]}
	if _, err := r.ModelOnly(truth, sampleRunsOf(profs[0]), 25); err == nil {
		t.Error("expected ErrNeedModel")
	}
	if _, err := r.ModelFL(truth, sampleRunsOf(profs[0]), 25); err == nil {
		t.Error("expected ErrNeedModel")
	}
}

func TestModelFLNeverWorseThanModelOnPower(t *testing.T) {
	space, model, profs := setup(t)
	r := &Runner{Space: space, Model: model}
	for _, kp := range profs[:12] {
		truth := ProfileTruth{kp}
		sr := sampleRunsOf(kp)
		for _, cap := range []float64{16, 22, 30} {
			dm, err := r.ModelOnly(truth, sr, cap)
			if err != nil {
				t.Fatal(err)
			}
			df, err := r.ModelFL(truth, sr, cap)
			if err != nil {
				t.Fatal(err)
			}
			if df.TruePower > dm.TruePower+capSlack {
				t.Errorf("%s cap %v: Model+FL power %v > Model %v", kp.KernelID, cap, df.TruePower, dm.TruePower)
			}
			// Model+FL keeps the model's structural choices.
			if df.Config.Device != dm.Config.Device || df.Config.Threads != dm.Config.Threads {
				t.Errorf("%s cap %v: FL changed device/threads: %v -> %v", kp.KernelID, cap, dm.Config, df.Config)
			}
		}
	}
}

func TestModelFLMeetsCapsMoreOftenThanModel(t *testing.T) {
	// The headline ordering of Table III: Model+FL ≥ Model on
	// cap compliance.
	space, model, profs := setup(t)
	r := &Runner{Space: space, Model: model}
	var modelMeets, flMeets, total int
	for _, kp := range profs {
		truth := ProfileTruth{kp}
		sr := sampleRunsOf(kp)
		for _, pt := range kp.Frontier.Points() {
			cap := pt.Power
			dm, err := r.ModelOnly(truth, sr, cap)
			if err != nil {
				t.Fatal(err)
			}
			df, err := r.ModelFL(truth, sr, cap)
			if err != nil {
				t.Fatal(err)
			}
			if dm.MeetsCap(cap) {
				modelMeets++
			}
			if df.MeetsCap(cap) {
				flMeets++
			}
			total++
		}
	}
	if flMeets < modelMeets {
		t.Errorf("Model+FL meets %d/%d vs Model %d/%d", flMeets, total, modelMeets, total)
	}
	t.Logf("cap compliance: Model %d/%d, Model+FL %d/%d", modelMeets, total, flMeets, total)
}

func TestDecideDispatch(t *testing.T) {
	space, model, profs := setup(t)
	r := &Runner{Space: space, Model: model}
	truth := ProfileTruth{profs[0]}
	sr := sampleRunsOf(profs[0])
	for _, m := range []Method{MethodOracle, MethodModel, MethodModelFL, MethodCPUFL, MethodGPUFL} {
		d, err := r.Decide(m, truth, sr, 25)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d.Method != m {
			t.Errorf("dispatch mislabeled: %v vs %v", d.Method, m)
		}
		if d.TruePerf <= 0 || d.TruePower <= 0 || math.IsNaN(d.TruePower) {
			t.Errorf("%v: decision %+v", m, d)
		}
	}
	if _, err := r.Decide(Method(9), truth, sr, 25); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMeetsCapTolerance(t *testing.T) {
	d := Decision{TruePower: 20}
	if !d.MeetsCap(20) {
		t.Error("equality must meet the cap")
	}
	if d.MeetsCap(19.99) {
		t.Error("19.99 cap met by 20 W")
	}
}

func BenchmarkOracle(b *testing.B) {
	p := profiler.New()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, []kernels.Kernel{k}, opts)
	if err != nil {
		b.Fatal(err)
	}
	r := &Runner{Space: p.Space}
	truth := ProfileTruth{profs[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Oracle(truth, 22)
	}
}
