// Package sched implements the configuration-selection policies the
// paper evaluates (§V-A): an oracle with perfect knowledge, the
// state-of-the-practice RAPL-style frequency-limiting baselines CPU+FL
// and GPU+FL, the model-driven selector, and the combination Model+FL.
//
// All policies consume a kernel's true measured behaviour through the
// Truth interface; the frequency limiter iteratively "measures" the
// power of its current configuration and steps P-states, exactly like
// the hardware limiter the paper simulates.
package sched

import (
	"errors"
	"fmt"
	"math"

	"acsel/internal/apu"
	"acsel/internal/core"
)

// Method enumerates the power-limiting policies.
type Method int

const (
	// MethodOracle has perfect knowledge of the kernel's behaviour.
	MethodOracle Method = iota
	// MethodModel uses the predicted frontier without feedback.
	MethodModel
	// MethodModelFL combines the model's device/thread selection with a
	// frequency limiter driven by measured power.
	MethodModelFL
	// MethodCPUFL runs all CPU cores, GPU parked, and lets the
	// frequency limiter set CPU P-states.
	MethodCPUFL
	// MethodGPUFL runs on the GPU at maximum frequency with the CPU at
	// minimum, limits GPU P-states, then raises CPU frequency into any
	// remaining headroom.
	MethodGPUFL
)

// Methods lists every policy in presentation order (Table III).
func Methods() []Method {
	return []Method{MethodModel, MethodModelFL, MethodGPUFL, MethodCPUFL}
}

// String names the method as in the paper's tables.
func (m Method) String() string {
	switch m {
	case MethodOracle:
		return "Oracle"
	case MethodModel:
		return "Model"
	case MethodModelFL:
		return "Model+FL"
	case MethodCPUFL:
		return "CPU+FL"
	case MethodGPUFL:
		return "GPU+FL"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Truth exposes a kernel's true behaviour per configuration — what the
// hardware would measure. The evaluation backs it with the offline
// characterization's per-config means.
type Truth interface {
	// PerfAt returns true throughput at a configuration ID.
	PerfAt(configID int) float64
	// PowerAt returns true package power at a configuration ID.
	PowerAt(configID int) float64
}

// ProfileTruth adapts a KernelProfile to Truth.
type ProfileTruth struct{ Profile *core.KernelProfile }

// PerfAt implements Truth.
func (t ProfileTruth) PerfAt(id int) float64 { return t.Profile.Stats[id].MeanPerf }

// PowerAt implements Truth.
func (t ProfileTruth) PowerAt(id int) float64 { return t.Profile.Stats[id].MeanPower }

// Decision is a policy's final configuration choice for one kernel at
// one power cap, with the true behaviour it obtains.
type Decision struct {
	Method    Method
	ConfigID  int
	Config    apu.Config
	TruePerf  float64
	TruePower float64
	// FLSteps counts frequency-limiter iterations taken.
	FLSteps int
}

// capSlack absorbs floating-point comparison noise when checking caps.
const capSlack = 1e-9

// MeetsCap reports whether the decision's true power respects the cap.
func (d Decision) MeetsCap(capW float64) bool { return d.TruePower <= capW+capSlack }

// Runner evaluates policies over a configuration space. Model may be
// nil when only oracle and FL baselines are used.
type Runner struct {
	Space *apu.Space
	Model *core.Model
	// VarAwareZ, when positive, makes the model-based policies select
	// with the §VI variance-aware margin (predicted power + z·σ ≤ cap).
	VarAwareZ float64
}

// ErrNeedModel is returned when a model-based method runs without one.
var ErrNeedModel = errors.New("sched: method requires a trained model")

// ErrEmptySpace is returned when a policy runs over an empty
// configuration space. Every policy ultimately indexes
// Space.Configs[id] with its chosen ID; with no configurations there
// is no valid ID (Oracle's fallback stays -1, the FL baselines' IDOf
// misses), so without this guard Decide would panic instead of
// erroring.
var ErrEmptySpace = errors.New("sched: empty configuration space")

// Decide runs one policy for a kernel (true behaviour via truth; sample
// runs for the model-based policies) under a power cap.
func (r *Runner) Decide(m Method, truth Truth, sr core.SampleRuns, capW float64) (Decision, error) {
	if r.Space == nil || r.Space.Len() == 0 {
		return Decision{}, fmt.Errorf("%w: cannot run %s", ErrEmptySpace, m)
	}
	switch m {
	case MethodOracle:
		return r.Oracle(truth, capW), nil
	case MethodCPUFL:
		return r.CPUFL(truth, capW), nil
	case MethodGPUFL:
		return r.GPUFL(truth, capW), nil
	case MethodModel:
		return r.ModelOnly(truth, sr, capW)
	case MethodModelFL:
		return r.ModelFL(truth, sr, capW)
	}
	return Decision{}, fmt.Errorf("sched: unknown method %d", int(m))
}

// Oracle selects the highest-true-performance configuration with true
// power within the cap; if none fits it falls back to the
// minimum-power configuration (§V-B: a method "may fail to meet a power
// constraint by selecting a configuration that cannot be sufficiently
// scaled via DVFS" — the oracle's floor is the machine's floor).
func (r *Runner) Oracle(truth Truth, capW float64) Decision {
	bestID, fbID := -1, -1
	bestPerf, minPow := math.Inf(-1), math.Inf(1)
	for id := 0; id < r.Space.Len(); id++ {
		p, w := truth.PerfAt(id), truth.PowerAt(id)
		if w <= capW+capSlack && p > bestPerf {
			bestPerf, bestID = p, id
		}
		if w < minPow {
			minPow, fbID = w, id
		}
	}
	id := bestID
	if id < 0 {
		id = fbID
		mFallback.With(MethodOracle.String()).Inc()
	}
	return r.finish(MethodOracle, truth, id, 0)
}

func (r *Runner) finish(m Method, truth Truth, id, flSteps int) Decision {
	mDecisions.With(m.String()).Inc()
	mFLSteps.Add(float64(flSteps))
	return Decision{
		Method:    m,
		ConfigID:  id,
		Config:    r.Space.Configs[id],
		TruePerf:  truth.PerfAt(id),
		TruePower: truth.PowerAt(id),
		FLSteps:   flSteps,
	}
}

// CPUFL is the CPU-focused frequency limiter: all cores enabled, GPU
// parked at minimum frequency, CPU P-state stepped down from maximum
// until measured power fits the cap (or the minimum P-state is hit).
func (r *Runner) CPUFL(truth Truth, capW float64) Decision {
	cfg := apu.Config{
		Device:     apu.CPUDevice,
		CPUFreqGHz: apu.MaxCPUFreq(),
		Threads:    apu.NumCores,
		GPUFreqGHz: apu.MinGPUFreq(),
	}
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if truth.PowerAt(id) <= capW+capSlack {
			return r.finish(MethodCPUFL, truth, id, steps)
		}
		next, ok := apu.StepDownCPU(cfg.CPUFreqGHz)
		if !ok {
			return r.finish(MethodCPUFL, truth, id, steps)
		}
		cfg.CPUFreqGHz = next
		steps++
	}
}

// GPUFL is the GPU-focused frequency limiter: GPU at maximum frequency
// with the CPU at minimum; the limiter steps the GPU P-state down until
// the cap is met, then raises the CPU frequency into any remaining
// headroom (§V-A).
func (r *Runner) GPUFL(truth Truth, capW float64) Decision {
	cfg := apu.Config{
		Device:     apu.GPUDevice,
		CPUFreqGHz: apu.MinCPUFreq(),
		Threads:    1,
		GPUFreqGHz: apu.MaxGPUFreq(),
	}
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if truth.PowerAt(id) <= capW+capSlack {
			break
		}
		next, ok := apu.StepDownGPU(cfg.GPUFreqGHz)
		if !ok {
			return r.finish(MethodGPUFL, truth, id, steps)
		}
		cfg.GPUFreqGHz = next
		steps++
	}
	// Raise CPU frequency while the cap still holds.
	for {
		next, ok := apu.StepUpCPU(cfg.CPUFreqGHz)
		if !ok {
			break
		}
		trial := cfg
		trial.CPUFreqGHz = next
		if truth.PowerAt(r.Space.IDOf(trial)) > capW+capSlack {
			break
		}
		cfg = trial
		steps++
	}
	return r.finish(MethodGPUFL, truth, r.Space.IDOf(cfg), steps)
}

// ModelOnly applies the model's prediction directly: the configuration
// predicted to maximize performance under the cap, with no feedback.
func (r *Runner) ModelOnly(truth Truth, sr core.SampleRuns, capW float64) (Decision, error) {
	if r.Model == nil {
		return Decision{}, ErrNeedModel
	}
	sel, err := r.selectModel(sr, capW)
	if err != nil {
		return Decision{}, err
	}
	if !sel.MeetsCapPredicted {
		mFallback.With(MethodModel.String()).Inc()
	}
	return r.finish(MethodModel, truth, sel.ConfigID, 0), nil
}

// selectModel applies the configured selection variant.
func (r *Runner) selectModel(sr core.SampleRuns, capW float64) (core.Selection, error) {
	if r.VarAwareZ > 0 {
		return r.Model.SelectUnderCapVarAware(sr, capW, r.VarAwareZ)
	}
	return r.Model.SelectUnderCap(sr, capW)
}

// ModelFL combines the model with frequency limiting: the model picks
// the device and thread count (its structural choices the limiter
// cannot make), then the limiter steps the chosen device's frequency —
// GPU first on GPU configurations, then the host CPU — while measured
// power exceeds the cap.
func (r *Runner) ModelFL(truth Truth, sr core.SampleRuns, capW float64) (Decision, error) {
	if r.Model == nil {
		return Decision{}, ErrNeedModel
	}
	sel, err := r.selectModel(sr, capW)
	if err != nil {
		return Decision{}, err
	}
	if !sel.MeetsCapPredicted {
		mFallback.With(MethodModelFL.String()).Inc()
	}
	cfg := sel.Config
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if truth.PowerAt(id) <= capW+capSlack {
			return r.finish(MethodModelFL, truth, id, steps), nil
		}
		if cfg.Device == apu.GPUDevice {
			if next, ok := apu.StepDownGPU(cfg.GPUFreqGHz); ok {
				cfg.GPUFreqGHz = next
				steps++
				continue
			}
		}
		next, ok := apu.StepDownCPU(cfg.CPUFreqGHz)
		if !ok {
			return r.finish(MethodModelFL, truth, id, steps), nil
		}
		cfg.CPUFreqGHz = next
		steps++
	}
}
