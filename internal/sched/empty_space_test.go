package sched

import (
	"errors"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/core"
)

// TestDecideEmptySpace is the regression test for the empty-space
// panic: Oracle's fallback ID stays -1 over zero configurations and
// the FL baselines' IDOf lookups miss, so every policy used to index
// Space.Configs[-1] and panic. Decide must return ErrEmptySpace
// instead — for a nil space too.
func TestDecideEmptySpace(t *testing.T) {
	truth := ProfileTruth{Profile: &core.KernelProfile{}}
	for _, r := range []*Runner{
		{Space: &apu.Space{}},
		{Space: nil},
	} {
		for _, m := range append(Methods(), MethodOracle) {
			d, err := r.Decide(m, truth, core.SampleRuns{}, 24)
			if err == nil {
				t.Fatalf("%s over an empty space: got decision %+v, want error", m, d)
			}
			if !errors.Is(err, ErrEmptySpace) {
				t.Fatalf("%s over an empty space: error %v is not ErrEmptySpace", m, err)
			}
		}
	}
}
