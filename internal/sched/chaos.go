// Chaos-mode decision variants: the same power-limiting policies as
// sched.Runner.Decide, but with the frequency limiter consuming its
// power readings through a sensor that may lie. The naive variants
// model the state of the practice — a limiter that takes every reading
// at face value, so a dropout (0 W) silently convinces it the cap is
// met — while the hardened variants add the sanity gate, bounded
// re-reads, and a conservative fail-safe ladder mirroring the online
// runtime's degradation behaviour.
package sched

import (
	"errors"
	"fmt"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/power"
)

// Readings exposes what the power sensor reports for a configuration —
// possibly distorted by injected faults. step is the limiter's
// iteration ordinal and attempt the re-read ordinal within one step;
// together with the configuration they key the deterministic fault
// event, so a retry is a fresh decision that may succeed.
type Readings interface {
	ReadPowerW(configID, step, attempt int) (float64, error)
}

// TrueReadings is a perfect sensor over the truth.
type TrueReadings struct{ Truth Truth }

// ReadPowerW implements Readings.
func (t TrueReadings) ReadPowerW(id, _, _ int) (float64, error) { return t.Truth.PowerAt(id), nil }

// FaultyReadings distorts true power through a fault plan, one event
// per (key, config, step, attempt).
type FaultyReadings struct {
	Truth  Truth
	Faults *fault.Injector
	// Key identifies the consumer (kernel, cap, method) so distinct
	// decision processes draw independent deterministic fault streams.
	Key string
}

// ReadPowerW implements Readings: the true power passed through the
// event's sensor faults. Dropout surfaces as power.ErrSensorDropout.
func (fr FaultyReadings) ReadPowerW(id, step, attempt int) (float64, error) {
	w := fr.Truth.PowerAt(id)
	key := fault.EventKey(fr.Key, id)
	if attempt > 0 {
		key = fmt.Sprintf("%s#r%d", key, attempt)
	}
	return power.DistortReading(w, fr.Faults.At(fault.SiteSMU, key, step))
}

// Hardened-controller tuning, mirroring the runtime's defaults.
const (
	// hardenedReadRetries bounds re-reads after a dropout.
	hardenedReadRetries = 2
	// hardenedMaxDistrust is how many untrusted limiter readings a
	// kernel tolerates before falling to its conservative floor.
	hardenedMaxDistrust = 3
	// maxPlausibleW is the sanity-gate ceiling for a single reading,
	// matching power.DefaultSMU().
	maxPlausibleW = 120
	// minPlausibleLoadW is the gate's floor: a package running a kernel
	// cannot draw less than its idle power (~12 W on this machine), so
	// a lower claim — a sensor stuck at a stale low value, or a dropout
	// read as zero — is as implausible as a spike.
	minPlausibleLoadW = 10
)

// DecideNaive runs one policy with the limiter reading power through
// readings and believing every value it sees: dropouts read as 0 W
// (the sensor returned nothing, the register reads zero), spikes and
// stuck values are taken at face value. Methods that never consult the
// sensor (Oracle, Model) are unaffected by construction.
func (r *Runner) DecideNaive(m Method, truth Truth, readings Readings, sr core.SampleRuns, capW float64) (Decision, error) {
	read := func(id, step int) float64 {
		w, err := readings.ReadPowerW(id, step, 0)
		if err != nil {
			return 0 // naive: a dead sensor reads zero, and zero is under any cap
		}
		return w
	}
	switch m {
	case MethodOracle:
		return r.Oracle(truth, capW), nil
	case MethodModel:
		return r.ModelOnly(truth, sr, capW)
	case MethodCPUFL:
		return r.limitNaive(MethodCPUFL, truth, read, capW), nil
	case MethodGPUFL:
		return r.limitNaiveGPU(truth, read, capW), nil
	case MethodModelFL:
		sel, err := r.selectModel(sr, capW)
		if err != nil {
			return Decision{}, err
		}
		return r.limitNaiveFrom(MethodModelFL, truth, read, sel.Config, capW), nil
	}
	return Decision{}, fmt.Errorf("sched: unknown method %d", int(m))
}

// limitNaive is CPUFL with sensor-mediated readings.
func (r *Runner) limitNaive(m Method, truth Truth, read func(id, step int) float64, capW float64) Decision {
	cfg := apu.Config{
		Device:     apu.CPUDevice,
		CPUFreqGHz: apu.MaxCPUFreq(),
		Threads:    apu.NumCores,
		GPUFreqGHz: apu.MinGPUFreq(),
	}
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if read(id, steps) <= capW+capSlack {
			return r.finish(m, truth, id, steps)
		}
		next, ok := apu.StepDownCPU(cfg.CPUFreqGHz)
		if !ok {
			return r.finish(m, truth, id, steps)
		}
		cfg.CPUFreqGHz = next
		steps++
	}
}

// limitNaiveGPU is GPUFL with sensor-mediated readings.
func (r *Runner) limitNaiveGPU(truth Truth, read func(id, step int) float64, capW float64) Decision {
	cfg := apu.Config{
		Device:     apu.GPUDevice,
		CPUFreqGHz: apu.MinCPUFreq(),
		Threads:    1,
		GPUFreqGHz: apu.MaxGPUFreq(),
	}
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if read(id, steps) <= capW+capSlack {
			break
		}
		next, ok := apu.StepDownGPU(cfg.GPUFreqGHz)
		if !ok {
			return r.finish(MethodGPUFL, truth, id, steps)
		}
		cfg.GPUFreqGHz = next
		steps++
	}
	for {
		next, ok := apu.StepUpCPU(cfg.CPUFreqGHz)
		if !ok {
			break
		}
		trial := cfg
		trial.CPUFreqGHz = next
		if read(r.Space.IDOf(trial), steps) > capW+capSlack {
			break
		}
		cfg = trial
		steps++
	}
	return r.finish(MethodGPUFL, truth, r.Space.IDOf(cfg), steps)
}

// limitNaiveFrom is ModelFL's limiting phase with sensor-mediated
// readings, starting from the model's structural selection.
func (r *Runner) limitNaiveFrom(m Method, truth Truth, read func(id, step int) float64, cfg apu.Config, capW float64) Decision {
	steps := 0
	for {
		id := r.Space.IDOf(cfg)
		if read(id, steps) <= capW+capSlack {
			return r.finish(m, truth, id, steps)
		}
		if cfg.Device == apu.GPUDevice {
			if next, ok := apu.StepDownGPU(cfg.GPUFreqGHz); ok {
				cfg.GPUFreqGHz = next
				steps++
				continue
			}
		}
		next, ok := apu.StepDownCPU(cfg.CPUFreqGHz)
		if !ok {
			return r.finish(m, truth, id, steps)
		}
		cfg.CPUFreqGHz = next
		steps++
	}
}

// DecideHardened runs one policy with the robust controller: every
// limiter reading passes the sanity gate (finite, positive-or-zero,
// under the plausibility ceiling), dropouts are re-read up to
// hardenedReadRetries times, any untrusted reading is treated as
// fail-safe "assume over cap" (step down rather than stop), and after
// hardenedMaxDistrust untrusted readings the controller abandons
// feedback and falls to the method's conservative floor — the bottom
// of its frequency line, or the model's minimum predicted-power
// configuration.
func (r *Runner) DecideHardened(m Method, truth Truth, readings Readings, sr core.SampleRuns, capW float64) (Decision, error) {
	switch m {
	case MethodOracle:
		return r.Oracle(truth, capW), nil
	case MethodModel:
		return r.ModelOnly(truth, sr, capW)
	case MethodCPUFL:
		start := apu.Config{
			Device:     apu.CPUDevice,
			CPUFreqGHz: apu.MaxCPUFreq(),
			Threads:    apu.NumCores,
			GPUFreqGHz: apu.MinGPUFreq(),
		}
		return r.limitHardened(MethodCPUFL, truth, readings, start, capW, -1), nil
	case MethodGPUFL:
		start := apu.Config{
			Device:     apu.GPUDevice,
			CPUFreqGHz: apu.MinCPUFreq(),
			Threads:    1,
			GPUFreqGHz: apu.MaxGPUFreq(),
		}
		// The hardened GPU limiter skips the raise-CPU-into-headroom
		// phase when distrust accrues, so only the step-down line runs.
		return r.limitHardened(MethodGPUFL, truth, readings, start, capW, -1), nil
	case MethodModelFL:
		sel, err := r.selectModel(sr, capW)
		if err != nil {
			return Decision{}, err
		}
		floorID := r.modelFloorID(sr)
		return r.limitHardened(MethodModelFL, truth, readings, sel.Config, capW, floorID), nil
	}
	return Decision{}, fmt.Errorf("sched: unknown method %d", int(m))
}

// modelFloorID is the model's minimum predicted-power configuration —
// the hardened ladder's bottom rung. Returns -1 when predictions are
// unavailable (the caller then floors at the frequency line's bottom).
func (r *Runner) modelFloorID(sr core.SampleRuns) int {
	if r.Model == nil {
		return -1
	}
	preds, _, err := r.Model.PredictAll(sr)
	if err != nil {
		return -1
	}
	bestID := -1
	minW := -1.0
	for _, p := range preds {
		if bestID < 0 || p.PowerW < minW {
			minW, bestID = p.PowerW, p.ConfigID
		}
	}
	return bestID
}

// readAgreeFrac is the maximum relative disagreement between two
// redundant reads that still counts as confirmation.
const readAgreeFrac = 0.25

// trustedRead reads a configuration's power through the sanity gate
// with redundant confirmation: readings are re-taken (each re-read a
// fresh deterministic fault event) until two plausible readings agree
// within readAgreeFrac, whose mean is returned. Redundancy is what
// catches the faults the plausibility gate cannot — a sensor stuck at
// a believable wattage lies consistently only while its fault fires,
// so a disagreeing second read unmasks it. ok=false means no
// confirmed reading was obtained within the retry budget.
func trustedRead(readings Readings, id, step int) (float64, bool) {
	var got []float64
	for attempt := 0; attempt <= hardenedReadRetries; attempt++ {
		w, err := readings.ReadPowerW(id, step, attempt)
		if err != nil {
			// Dropout: no data this attempt; other errors are equally
			// unusable here.
			if !errors.Is(err, power.ErrSensorDropout) {
				return 0, false
			}
			continue
		}
		if w < minPlausibleLoadW || w > maxPlausibleW {
			continue // implausible: quarantine and re-read
		}
		for _, prev := range got {
			if readsAgree(prev, w) {
				return (prev + w) / 2, true
			}
		}
		got = append(got, w)
	}
	return 0, false
}

func readsAgree(a, b float64) bool {
	hi := a
	if b > hi {
		hi = b
	}
	if hi <= 0 {
		return true // two zero-watt readings agree (an idle trace)
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d/hi <= readAgreeFrac
}

// limitHardened steps cfg's frequency down while trusted readings
// exceed the cap. Untrusted readings step down fail-safe; persistent
// distrust drops to the floor (floorID, or the bottom of the line when
// floorID < 0).
func (r *Runner) limitHardened(m Method, truth Truth, readings Readings, cfg apu.Config, capW float64, floorID int) Decision {
	steps := 0
	distrust := 0
	for {
		id := r.Space.IDOf(cfg)
		w, ok := trustedRead(readings, id, steps)
		if ok && w <= capW+capSlack {
			return r.finish(m, truth, id, steps)
		}
		if !ok {
			distrust++
			if distrust >= hardenedMaxDistrust {
				// The sensor cannot be trusted at all: abandon feedback
				// and take the conservative floor.
				if floorID >= 0 {
					return r.finish(m, truth, floorID, steps)
				}
				return r.finish(m, truth, r.Space.IDOf(r.floorOfLine(cfg)), steps)
			}
		}
		// Trusted-over-cap and untrusted alike: step down fail-safe.
		if cfg.Device == apu.GPUDevice {
			if next, okStep := apu.StepDownGPU(cfg.GPUFreqGHz); okStep {
				cfg.GPUFreqGHz = next
				steps++
				continue
			}
		}
		next, okStep := apu.StepDownCPU(cfg.CPUFreqGHz)
		if !okStep {
			return r.finish(m, truth, id, steps)
		}
		cfg.CPUFreqGHz = next
		steps++
	}
}

// floorOfLine is cfg with every steppable frequency at its minimum —
// the most conservative configuration reachable by the limiter's knobs.
func (r *Runner) floorOfLine(cfg apu.Config) apu.Config {
	cfg.CPUFreqGHz = apu.MinCPUFreq()
	if cfg.Device == apu.GPUDevice {
		cfg.GPUFreqGHz = apu.MinGPUFreq()
	}
	return cfg
}
