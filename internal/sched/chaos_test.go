package sched

import (
	"math"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/fault"
	"acsel/internal/power"
)

// stubReadings scripts the sensor: the value/err at (step, attempt),
// falling back to truthW.
type stubReadings struct {
	truthW float64
	at     map[[2]int]stubRead
}

type stubRead struct {
	w   float64
	err error
}

func (s stubReadings) ReadPowerW(_, step, attempt int) (float64, error) {
	if r, ok := s.at[[2]int{step, attempt}]; ok {
		return r.w, r.err
	}
	return s.truthW, nil
}

func TestTrueReadingsPassThrough(t *testing.T) {
	space, _, profs := setup(t)
	truth := ProfileTruth{Profile: profs[0]}
	tr := TrueReadings{Truth: truth}
	for id := 0; id < space.Len(); id += 7 {
		w, err := tr.ReadPowerW(id, 3, 1)
		if err != nil || w != truth.PowerAt(id) { //lint:ignore floatcmp pass-through must be exact
			t.Fatalf("config %d: %v %v", id, w, err)
		}
	}
}

func TestFaultyReadingsCleanInjectorIsExact(t *testing.T) {
	_, _, profs := setup(t)
	truth := ProfileTruth{Profile: profs[1]}
	fr := FaultyReadings{Truth: truth, Faults: nil, Key: "k"}
	w, err := fr.ReadPowerW(5, 0, 0)
	if err != nil || w != truth.PowerAt(5) { //lint:ignore floatcmp nil injector must not perturb the reading
		t.Fatalf("clean faulty reading: %v %v", w, err)
	}
}

func TestFaultyReadingsDeterministic(t *testing.T) {
	_, _, profs := setup(t)
	truth := ProfileTruth{Profile: profs[2]}
	sc, ok := fault.ScenarioByName("sensor-dropout")
	if !ok {
		t.Fatal("missing scenario")
	}
	a := FaultyReadings{Truth: truth, Faults: fault.NewInjector(sc, 9), Key: "x"}
	b := FaultyReadings{Truth: truth, Faults: fault.NewInjector(sc, 9), Key: "x"}
	sawDropout := false
	for step := 0; step < 60; step++ {
		wa, ea := a.ReadPowerW(3, step, 0)
		wb, eb := b.ReadPowerW(3, step, 0)
		if wa != wb || (ea == nil) != (eb == nil) { //lint:ignore floatcmp replay must be bit-identical
			t.Fatalf("step %d: %v/%v vs %v/%v", step, wa, ea, wb, eb)
		}
		if ea != nil {
			sawDropout = true
		}
	}
	if !sawDropout {
		t.Error("20% dropout never fired in 60 reads")
	}
}

func TestTrustedReadConfirmsWithRedundancy(t *testing.T) {
	// Healthy sensor: first two reads agree, mean returned.
	w, ok := trustedRead(stubReadings{truthW: 30}, 0, 0)
	if !ok || math.Abs(w-30) > 1e-12 {
		t.Fatalf("healthy read: %v %v", w, ok)
	}
	// Stuck first read (plausible band excluded: 9 W is below the load
	// floor) — the re-reads confirm the true value.
	s := stubReadings{truthW: 30, at: map[[2]int]stubRead{{0, 0}: {w: 9}}}
	if w, ok := trustedRead(s, 0, 0); !ok || math.Abs(w-30) > 1e-12 {
		t.Fatalf("stuck-then-clean: %v %v", w, ok)
	}
	// Spike first read: quarantined by the ceiling, re-reads confirm.
	s = stubReadings{truthW: 30, at: map[[2]int]stubRead{{0, 0}: {w: 240}}}
	if w, ok := trustedRead(s, 0, 0); !ok || math.Abs(w-30) > 1e-12 {
		t.Fatalf("spike-then-clean: %v %v", w, ok)
	}
	// One dropout, then two agreeing reads.
	s = stubReadings{truthW: 30, at: map[[2]int]stubRead{{0, 0}: {err: power.ErrSensorDropout}}}
	if w, ok := trustedRead(s, 0, 0); !ok || math.Abs(w-30) > 1e-12 {
		t.Fatalf("dropout-then-clean: %v %v", w, ok)
	}
	// All reads dead: no confirmation.
	s = stubReadings{at: map[[2]int]stubRead{
		{0, 0}: {err: power.ErrSensorDropout},
		{0, 1}: {err: power.ErrSensorDropout},
		{0, 2}: {err: power.ErrSensorDropout},
	}}
	if _, ok := trustedRead(s, 0, 0); ok {
		t.Fatal("three dropouts confirmed a reading")
	}
	// Three wildly disagreeing plausible reads: no pair confirms.
	s = stubReadings{at: map[[2]int]stubRead{
		{0, 0}: {w: 20},
		{0, 1}: {w: 50},
		{0, 2}: {w: 110},
	}}
	if _, ok := trustedRead(s, 0, 0); ok {
		t.Fatal("disagreeing reads confirmed")
	}
}

func TestReadsAgree(t *testing.T) {
	if !readsAgree(30, 30) || !readsAgree(30, 36) {
		t.Error("close reads should agree")
	}
	if readsAgree(9, 40) || readsAgree(40, 9) {
		t.Error("far reads should disagree")
	}
}

func TestNaiveMatchesCleanDecisionsWithPerfectSensor(t *testing.T) {
	// With a truthful sensor the naive variants must reproduce Decide
	// exactly, FLSteps included — the chaos path adds no behaviour of
	// its own on clean hardware.
	space, model, profs := setup(t)
	r := &Runner{Space: space, Model: model}
	for _, kp := range profs[:10] {
		truth := ProfileTruth{Profile: kp}
		sr := sampleRunsOf(kp)
		tr := TrueReadings{Truth: truth}
		for _, capW := range []float64{15, 22, 30, 45} {
			for _, m := range Methods() {
				want, err := r.Decide(m, truth, sr, capW)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.DecideNaive(m, truth, tr, sr, capW)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %v cap %v: naive %+v != clean %+v", kp.KernelID, m, capW, got, want)
				}
			}
		}
	}
}

func TestHardenedMatchesCleanConfigWithPerfectSensor(t *testing.T) {
	// The hardened controller takes redundant reads, so FLSteps may
	// match or not — but the chosen configuration and its true
	// behaviour must be identical on clean hardware.
	space, model, profs := setup(t)
	r := &Runner{Space: space, Model: model}
	for _, kp := range profs[:10] {
		truth := ProfileTruth{Profile: kp}
		sr := sampleRunsOf(kp)
		tr := TrueReadings{Truth: truth}
		for _, capW := range []float64{15, 22, 30, 45} {
			for _, m := range Methods() {
				want, err := r.Decide(m, truth, sr, capW)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.DecideHardened(m, truth, tr, sr, capW)
				if err != nil {
					t.Fatal(err)
				}
				if m == MethodGPUFL {
					// The hardened GPU limiter deliberately skips the
					// raise-CPU phase; it may land on a lower-power config.
					if got.TruePower > want.TruePower+capSlack {
						t.Fatalf("%s GPU+FL cap %v: hardened drew more power (%v) than clean (%v)",
							kp.KernelID, capW, got.TruePower, want.TruePower)
					}
					continue
				}
				if got.ConfigID != want.ConfigID {
					t.Fatalf("%s %v cap %v: hardened config %d != clean %d",
						kp.KernelID, m, capW, got.ConfigID, want.ConfigID)
				}
			}
		}
	}
}

func TestNaiveDropoutCausesSilentViolation(t *testing.T) {
	// The failure mode that motivates the hardening: a dead sensor
	// reads 0 W, the naive limiter believes it and stops at maximum
	// frequency regardless of the cap.
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{Profile: profs[0]}
	read := func(_, _ int) float64 { return 0 } // every read claims 0 W
	d := r.limitNaive(MethodCPUFL, truth, read, 15)
	if d.FLSteps != 0 {
		t.Errorf("naive limiter stepped %d times on a dead sensor", d.FLSteps)
	}
	if d.Config.CPUFreqGHz != apu.MaxCPUFreq() { //lint:ignore floatcmp discrete frequency line
		t.Errorf("naive limiter left max frequency: %v", d.Config)
	}
}

func TestHardenedDeadSensorFallsToFloor(t *testing.T) {
	// A permanently dead sensor must drive the hardened limiter to its
	// conservative floor, never leave it at maximum frequency.
	space, _, profs := setup(t)
	r := &Runner{Space: space}
	truth := ProfileTruth{Profile: profs[0]}
	start := apu.Config{
		Device:     apu.CPUDevice,
		CPUFreqGHz: apu.MaxCPUFreq(),
		Threads:    apu.NumCores,
		GPUFreqGHz: apu.MinGPUFreq(),
	}
	d := r.limitHardened(MethodCPUFL, truth, deadReadings{}, start, 15, -1)
	if d.Config.CPUFreqGHz != apu.MinCPUFreq() { //lint:ignore floatcmp discrete frequency line
		t.Errorf("dead sensor left CPU+FL at %v GHz", d.Config.CPUFreqGHz)
	}
}

type deadReadings struct{}

func (deadReadings) ReadPowerW(_, _, _ int) (float64, error) {
	return 0, power.ErrSensorDropout
}
