package eval

import (
	"fmt"
	"math"
	"strings"

	"acsel/internal/apu"
)

// asciiPlot renders a power-vs-performance scatter as a text grid —
// the closest a terminal gets to the paper's Figures 2 and 7. CPU
// configurations print as 'c', GPU as 'g'; Pareto-frontier members are
// capitalized.
type asciiPlot struct {
	width, height int
	minX, maxX    float64
	minY, maxY    float64
	cells         [][]byte
}

func newASCIIPlot(width, height int, minX, maxX, minY, maxY float64) *asciiPlot {
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	return &asciiPlot{width: width, height: height, minX: minX, maxX: maxX, minY: minY, maxY: maxY, cells: cells}
}

func (p *asciiPlot) mark(x, y float64, ch byte) {
	cx := int(math.Round((x - p.minX) / (p.maxX - p.minX) * float64(p.width-1)))
	cy := int(math.Round((y - p.minY) / (p.maxY - p.minY) * float64(p.height-1)))
	if cx < 0 || cx >= p.width || cy < 0 || cy >= p.height {
		return
	}
	row := p.height - 1 - cy // origin bottom-left
	// Frontier marks (uppercase) win over plain marks.
	if cur := p.cells[row][cx]; cur == ' ' || (cur >= 'a' && cur <= 'z' && ch >= 'A' && ch <= 'Z') {
		p.cells[row][cx] = ch
	}
}

func (p *asciiPlot) render(xlabel, ylabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ylabel)
	for i, row := range p.cells {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%5.2f ", p.maxY)
		}
		if i == p.height-1 {
			label = fmt.Sprintf("%5.2f ", p.minY)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", p.width+2))
	fmt.Fprintf(&b, "      %-8.1f%s%8.1f\n", p.minX, centerPad(xlabel, p.width-14), p.maxX)
	return b.String()
}

func centerPad(s string, w int) string {
	if w < len(s) {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}

// PlotFrontier renders a kernel's full configuration scatter with its
// Pareto frontier highlighted, in the style of Figure 2 / Figure 7.
func (ev *Evaluation) PlotFrontier(space *apu.Space, kernelID string) (string, error) {
	kp, ok := ev.ProfileByID(kernelID)
	if !ok {
		return "", fmt.Errorf("eval: no profile for %s", kernelID)
	}
	best := kp.BestPerf()
	minP, maxP := math.Inf(1), math.Inf(-1)
	for _, st := range kp.Stats {
		minP = math.Min(minP, st.MeanPower)
		maxP = math.Max(maxP, st.MeanPower)
	}
	plot := newASCIIPlot(64, 20, minP, maxP, 0, 1)
	onFront := map[int]bool{}
	for _, pt := range kp.Frontier.Points() {
		onFront[pt.ID] = true
	}
	for _, st := range kp.Stats {
		ch := byte('c')
		if space.Configs[st.ConfigID].Device == apu.GPUDevice {
			ch = 'g'
		}
		if onFront[st.ConfigID] {
			ch -= 'a' - 'A' // capitalize frontier members
		}
		plot.mark(st.MeanPower, st.MeanPerf/best, ch)
	}
	header := fmt.Sprintf("%s — c/g = CPU/GPU config, capitals on the Pareto frontier\n", kernelID)
	return header + plot.render("power (W)", "normalized performance"), nil
}
