package eval

import (
	"fmt"
	"sort"
	"strings"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/sched"
)

// FrontierKernelID is the kernel whose frontier the paper shows in
// Table I and Figure 2 (CalcFBHourglass from LULESH).
const FrontierKernelID = "LULESH/Large/CalcFBHourglassForceForElems"

// Fig7KernelID is the LU Small kernel of Figure 7.
const Fig7KernelID = "LU/Small/lud"

// ReportTable1 renders the Pareto frontier of the Table I kernel in the
// paper's column layout: device, GPU frequency, threads, CPU frequency,
// power, normalized performance.
func (ev *Evaluation) ReportTable1(space *apu.Space) (string, error) {
	return ev.reportFrontier(space, FrontierKernelID,
		"Table I: configurations on the power-performance Pareto frontier of CalcFBHourglass (LULESH)")
}

// ReportFig7 renders the LU Small frontier of Figure 7.
func (ev *Evaluation) ReportFig7(space *apu.Space) (string, error) {
	return ev.reportFrontier(space, Fig7KernelID,
		"Fig 7: power-performance frontier of LU Small")
}

func (ev *Evaluation) reportFrontier(space *apu.Space, kernelID, title string) (string, error) {
	kp, ok := ev.ProfileByID(kernelID)
	if !ok {
		return "", fmt.Errorf("eval: no profile for %s", kernelID)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %-8s %-7s %-8s %-8s %-6s\n", "Device", "GPU f.", "Threads", "CPU f.", "Power", "Perf*")
	best := kp.BestPerf()
	for _, pt := range kp.Frontier.Points() {
		cfg := space.Configs[pt.ID]
		fmt.Fprintf(&b, "%-6s %-8s %-7d %-8s %-8s %-6.2f\n",
			cfg.Device,
			fmt.Sprintf("%.1f GHz", cfg.GPUFreqGHz),
			cfg.Threads,
			fmt.Sprintf("%.1f GHz", cfg.CPUFreqGHz),
			fmt.Sprintf("%.1f w", pt.Power),
			pt.Perf/best)
	}
	b.WriteString("*Normalized performance\n")
	return b.String(), nil
}

// Fig2Point is one scatter point of Figure 2: every configuration of
// the Table I kernel (frontier and dominated alike).
type Fig2Point struct {
	ConfigID   int
	Device     apu.Device
	PowerW     float64
	NormPerf   float64
	OnFrontier bool
}

// Fig2Series returns the full scatter of Figure 2.
func (ev *Evaluation) Fig2Series(space *apu.Space) ([]Fig2Point, error) {
	kp, ok := ev.ProfileByID(FrontierKernelID)
	if !ok {
		return nil, fmt.Errorf("eval: no profile for %s", FrontierKernelID)
	}
	best := kp.BestPerf()
	onFront := map[int]bool{}
	for _, pt := range kp.Frontier.Points() {
		onFront[pt.ID] = true
	}
	var out []Fig2Point
	for _, st := range kp.Stats {
		out = append(out, Fig2Point{
			ConfigID:   st.ConfigID,
			Device:     space.Configs[st.ConfigID].Device,
			PowerW:     st.MeanPower,
			NormPerf:   st.MeanPerf / best,
			OnFrontier: onFront[st.ConfigID],
		})
	}
	return out, nil
}

// ReportFig2 renders the Figure 2 scatter as text rows.
func (ev *Evaluation) ReportFig2(space *apu.Space) (string, error) {
	pts, err := ev.Fig2Series(space)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 2: power-performance scatter of CalcFBHourglass (LULESH); * marks frontier\n")
	fmt.Fprintf(&b, "%-4s %-6s %-9s %-9s\n", "id", "dev", "power_w", "norm_perf")
	for _, p := range pts {
		mark := " "
		if p.OnFrontier {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-4d %-6s %-9.2f %-9.3f %s\n", p.ConfigID, p.Device, p.PowerW, p.NormPerf, mark)
	}
	return b.String(), nil
}

// ReportTable2 renders the two sample configurations (Table II).
func ReportTable2() string {
	var b strings.Builder
	b.WriteString("Table II: sample configurations\n")
	fmt.Fprintf(&b, "%-6s %-14s %-11s %-14s\n", "Device", "CPU frequency", "CPU threads", "GPU frequency")
	for _, c := range []apu.Config{apu.SampleConfigCPU(), apu.SampleConfigGPU()} {
		fmt.Fprintf(&b, "%-6s %-14s %-11d %-14s\n",
			c.Device, fmt.Sprintf("%.1f GHz", c.CPUFreqGHz), c.Threads,
			fmt.Sprintf("%.0f MHz", c.GPUFreqGHz*1000))
	}
	return b.String()
}

// ReportFig1 describes the offline/online pipeline (the flowchart of
// Figure 1) as executable stage names.
func ReportFig1() string {
	return strings.Join([]string{
		"Fig 1: system pipeline",
		"offline: profile training kernels at all configurations",
		"offline: derive per-kernel power-performance Pareto frontiers",
		"offline: pairwise Kendall-tau frontier comparison -> dissimilarity matrix",
		"offline: relational clustering (PAM, k=5)",
		"offline: fit per-cluster per-device performance and power regressions",
		"offline: train classification tree on sample-configuration signatures",
		"online: run new kernel once per device at the sample configurations",
		"online: classify kernel into a cluster (O(tree depth))",
		"online: predict power and performance for all configurations",
		"online: derive predicted Pareto frontier",
		"online: select configuration maximizing performance under the power cap",
	}, "\n") + "\n"
}

// ReportFig3 renders a fold's classification tree (Figure 3 shows an
// example tree). The fold is identified by its held-out benchmark.
func (ev *Evaluation) ReportFig3(heldOut string) (string, error) {
	m, ok := ev.FoldModels[heldOut]
	if !ok {
		var names []string
		for n := range ev.FoldModels {
			names = append(names, n)
		}
		sort.Strings(names)
		return "", fmt.Errorf("eval: no fold %q (have %v)", heldOut, names)
	}
	return "Fig 3: cluster classification tree (fold holding out " + heldOut + ")\n" + m.RenderTree(), nil
}

// ReportTable3 renders the method-comparison table in the paper's
// layout: % under-limit, under-limit % of oracle performance and power,
// over-limit % of oracle power and performance.
func (ev *Evaluation) ReportTable3() string {
	var b strings.Builder
	b.WriteString("Table III: comparison of methods, normalized to an oracle\n")
	fmt.Fprintf(&b, "%-10s %-13s %-14s %-14s %-14s %-14s\n",
		"Method", "% Under-limit", "% Oracle Perf.", "% Oracle Power", "% Oracle Power", "% Oracle Perf.")
	fmt.Fprintf(&b, "%-10s %-13s %-29s %-29s\n", "", "", "  (under-limit)", "  (over-limit)")
	for _, m := range sched.Methods() {
		agg := ev.Overall[m]
		over := func(v float64) string {
			if !agg.HasOver {
				return "-"
			}
			return fmt.Sprintf("%.0f", v*100)
		}
		under := func(v float64) string {
			if !agg.HasUnder {
				return "-"
			}
			return fmt.Sprintf("%.0f", v*100)
		}
		fmt.Fprintf(&b, "%-10s %-13.0f %-14s %-14s %-14s %-14s\n",
			m, agg.PctUnder*100,
			under(agg.UnderPerfRatio), under(agg.UnderPowerRatio),
			over(agg.OverPowerRatio), over(agg.OverPerfRatio))
	}
	return b.String()
}

// Fig4Point is one method's position in Figure 4: cap-compliance rate
// versus achieved under-limit performance, both against the oracle.
type Fig4Point struct {
	Method        sched.Method
	PctUnder      float64
	UnderPerfFrac float64
}

// Fig4Series returns Figure 4's points.
func (ev *Evaluation) Fig4Series() []Fig4Point {
	var out []Fig4Point
	for _, m := range sched.Methods() {
		agg := ev.Overall[m]
		out = append(out, Fig4Point{Method: m, PctUnder: agg.PctUnder, UnderPerfFrac: agg.UnderPerfRatio})
	}
	return out
}

// ReportFig4 renders Figure 4 as text.
func (ev *Evaluation) ReportFig4() string {
	var b strings.Builder
	b.WriteString("Fig 4: methods vs oracle (overall)\n")
	fmt.Fprintf(&b, "%-10s %-18s %-24s\n", "Method", "% constraints met", "% optimal perf (under)")
	for _, p := range ev.Fig4Series() {
		fmt.Fprintf(&b, "%-10s %-18.1f %-24.1f\n", p.Method, p.PctUnder*100, p.UnderPerfFrac*100)
	}
	return b.String()
}

// perComboMetric renders one per-benchmark bar chart (Figures 5, 6, 8,
// 9) as a text table: rows = combos, columns = methods.
func (ev *Evaluation) perComboMetric(title string, get func(MethodAgg) (float64, bool)) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, m := range sched.Methods() {
		fmt.Fprintf(&b, " %-10s", m)
	}
	b.WriteString("\n")
	for _, combo := range ev.PerCombo {
		fmt.Fprintf(&b, "%-14s", combo.Combo)
		for _, m := range sched.Methods() {
			v, ok := get(combo.PerMethod[m])
			if !ok {
				fmt.Fprintf(&b, " %-10s", "-")
			} else {
				fmt.Fprintf(&b, " %-10.1f", v*100)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ReportFig5 renders under-limit performance vs oracle per benchmark.
func (ev *Evaluation) ReportFig5() string {
	return ev.perComboMetric("Fig 5: percent of optimal performance by benchmark (under-limit cases)",
		func(a MethodAgg) (float64, bool) { return a.UnderPerfRatio, a.HasUnder })
}

// ReportFig6 renders the percentage of cases under-limit per benchmark.
func (ev *Evaluation) ReportFig6() string {
	return ev.perComboMetric("Fig 6: percent of cases under-limit by benchmark",
		func(a MethodAgg) (float64, bool) { return a.PctUnder, true })
}

// ReportFig8 renders over-limit power vs oracle per benchmark.
func (ev *Evaluation) ReportFig8() string {
	return ev.perComboMetric("Fig 8: over-limit power vs oracle by benchmark",
		func(a MethodAgg) (float64, bool) { return a.OverPowerRatio, a.HasOver })
}

// ReportFig9 renders over-limit performance vs oracle per benchmark.
func (ev *Evaluation) ReportFig9() string {
	return ev.perComboMetric("Fig 9: over-limit performance vs oracle by benchmark",
		func(a MethodAgg) (float64, bool) { return a.OverPerfRatio, a.HasOver })
}

// ReportClusterAssignments dumps one fold's training-kernel clusters,
// for inspecting the offline stage.
func ReportClusterAssignments(m *core.Model) string {
	byCluster := make([][]string, m.K)
	for id, c := range m.Assignments {
		byCluster[c] = append(byCluster[c], id)
	}
	var b strings.Builder
	for c, members := range byCluster {
		sort.Strings(members)
		fmt.Fprintf(&b, "cluster %d (%d kernels):\n", c, len(members))
		for _, id := range members {
			fmt.Fprintf(&b, "  %s\n", id)
		}
	}
	return b.String()
}
