// Package eval reproduces the paper's experimental methodology (§V):
// leave-one-benchmark-out cross-validation of the model, evaluation of
// every power-limiting method against an oracle at the power levels of
// each kernel's oracle frontier, classification of outcomes into
// under-limit and over-limit cases, and aggregation per benchmark/input
// combination weighted by kernel time share.
package eval

import (
	"fmt"
	"math"
	"sort"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

// Case is one (kernel, power cap, method) outcome compared with the
// oracle at the same cap.
type Case struct {
	KernelID   string
	Combo      string // benchmark/input label, e.g. "LULESH Small"
	Method     sched.Method
	CapW       float64
	Decision   sched.Decision
	Oracle     sched.Decision
	Under      bool
	PerfRatio  float64 // true perf / oracle perf at the same cap
	PowerRatio float64 // true power / oracle power at the same cap
	Weight     float64 // kernel's share of benchmark runtime
	// Infeasible marks a cap no configuration can meet: the oracle's
	// own selection violates it. Oracle-relative ratios are meaningless
	// there, so the case is flagged, its ratios are guarded, and
	// aggregation skips it rather than letting it poison the weighted
	// sums. Never set on clean runs, where every cap comes from the
	// kernel's own measured frontier.
	Infeasible bool
}

// safeRatio divides num by den, returning 0 when the quotient would be
// NaN or infinite (zero or non-finite denominator, non-finite
// numerator). Downstream weighted sums must stay finite no matter how
// degenerate the oracle's situation is.
func safeRatio(num, den float64) float64 {
	r := num / den
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// KernelSummary aggregates one kernel's cases for one method.
type KernelSummary struct {
	KernelID string
	Method   sched.Method
	Weight   float64

	Cases      int
	UnderCases int

	// Means over the respective category; zero when the category is
	// empty (check the counts).
	UnderPerfRatio  float64
	UnderPowerRatio float64
	OverPerfRatio   float64
	OverPowerRatio  float64
}

// PctUnder is the fraction of caps met.
func (k KernelSummary) PctUnder() float64 {
	if k.Cases == 0 {
		return 0
	}
	return float64(k.UnderCases) / float64(k.Cases)
}

// MethodAgg is the weighted aggregate for one method over one scope (a
// benchmark/input combo, or the whole suite) — one row of Table III.
type MethodAgg struct {
	Method sched.Method

	PctUnder        float64
	UnderPerfRatio  float64
	UnderPowerRatio float64
	OverPerfRatio   float64
	OverPowerRatio  float64

	// HasOver reports whether any over-limit case exists in the scope
	// (GPU-hostile benchmarks may never violate).
	HasOver  bool
	HasUnder bool
}

// ComboAgg groups per-method aggregates for one benchmark/input combo —
// one bar group of Figures 5, 6, 8, 9.
type ComboAgg struct {
	Combo     string
	PerMethod map[sched.Method]MethodAgg
}

// Evaluation is the complete cross-validated result set.
type Evaluation struct {
	Cases     []Case
	PerKernel []KernelSummary
	PerCombo  []ComboAgg
	Overall   map[sched.Method]MethodAgg
	// FoldModels maps each held-out benchmark to the model trained on
	// the remaining benchmarks (for tree dumps etc.).
	FoldModels map[string]*core.Model
	// Profiles is the full characterization, for frontier reports.
	Profiles []*core.KernelProfile
}

// Harness drives a full evaluation.
type Harness struct {
	Profiler *profiler.Profiler
	Opts     core.TrainOptions
	// MethodsUnderTest defaults to sched.Methods().
	MethodsUnderTest []sched.Method
}

// NewHarness builds a harness with the paper's defaults.
func NewHarness() *Harness {
	return &Harness{Profiler: profiler.New(), Opts: core.DefaultTrainOptions()}
}

// Run characterizes the whole suite, then for each benchmark trains on
// the other benchmarks (leave-one-benchmark-out, §V-C) and evaluates
// every method on the held-out kernels at the oracle-frontier power
// caps (§V-B).
func (h *Harness) Run() (*Evaluation, error) {
	methods := h.MethodsUnderTest
	if len(methods) == 0 {
		methods = sched.Methods()
	}
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	stopChar := mEvalPhase.With("characterize").Time()
	profiles, err := core.Characterize(h.Profiler, ks, h.Opts)
	stopChar()
	if err != nil {
		return nil, fmt.Errorf("eval: characterize: %w", err)
	}

	ev := &Evaluation{FoldModels: map[string]*core.Model{}, Profiles: profiles}
	benchNames := map[string]bool{}
	for _, kp := range profiles {
		benchNames[kp.Benchmark] = true
	}
	var benches []string
	for b := range benchNames {
		benches = append(benches, b)
	}
	sort.Strings(benches)

	stopFolds := mEvalPhase.With("folds").Time()
	for _, bench := range benches {
		stopFold := mFoldSeconds.Time()
		var train []*core.KernelProfile
		var test []*core.KernelProfile
		for _, kp := range profiles {
			if kp.Benchmark == bench {
				test = append(test, kp)
			} else {
				train = append(train, kp)
			}
		}
		model, err := core.Train(h.Profiler.Space, train, h.Opts)
		if err != nil {
			return nil, fmt.Errorf("eval: training fold %q: %w", bench, err)
		}
		ev.FoldModels[bench] = model
		runner := &sched.Runner{Space: h.Profiler.Space, Model: model}
		for _, kp := range test {
			cases, err := evaluateKernel(runner, kp, methods)
			if err != nil {
				return nil, fmt.Errorf("eval: kernel %s: %w", kp.KernelID, err)
			}
			ev.Cases = append(ev.Cases, cases...)
		}
		stopFold()
	}
	stopFolds()

	stopAgg := mEvalPhase.With("aggregate").Time()
	ev.aggregate(methods)
	stopAgg()
	return ev, nil
}

// evaluateKernel runs every method at every oracle-frontier power level
// of one kernel.
func evaluateKernel(r *sched.Runner, kp *core.KernelProfile, methods []sched.Method) ([]Case, error) {
	truth := sched.ProfileTruth{Profile: kp}
	sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	combo := comboLabel(kp)
	var out []Case
	for _, pt := range kp.Frontier.Points() {
		capW := pt.Power
		oracle := r.Oracle(truth, capW)
		// An oracle that cannot meet the cap itself means the cap is
		// infeasible for every configuration; comparisons against it
		// are flagged instead of silently producing NaN/Inf ratios.
		infeasible := !oracle.MeetsCap(capW)
		if infeasible {
			mInfeasibleCases.Inc()
		}
		for _, m := range methods {
			d, err := r.Decide(m, truth, sr, capW)
			if err != nil {
				return nil, err
			}
			out = append(out, Case{
				KernelID:   kp.KernelID,
				Combo:      combo,
				Method:     m,
				CapW:       capW,
				Decision:   d,
				Oracle:     oracle,
				Under:      d.MeetsCap(capW),
				PerfRatio:  safeRatio(d.TruePerf, oracle.TruePerf),
				PowerRatio: safeRatio(d.TruePower, oracle.TruePower),
				Weight:     kp.TimeShare,
				Infeasible: infeasible,
			})
		}
	}
	return out, nil
}

func comboLabel(kp *core.KernelProfile) string {
	if kp.Input == "Default" {
		return kp.Benchmark
	}
	return kp.Benchmark + " " + kp.Input
}

// aggregate reduces cases to per-kernel summaries, per-combo weighted
// aggregates, and the overall Table III numbers.
func (ev *Evaluation) aggregate(methods []sched.Method) {
	type key struct {
		kernel string
		method sched.Method
	}
	byKernel := map[key][]Case{}
	comboOf := map[string]string{}
	weightOf := map[string]float64{}
	for _, c := range ev.Cases {
		if c.Infeasible {
			// No configuration could meet this cap; oracle-relative
			// ratios carry no signal, so the case stays out of every
			// summary (it remains visible in ev.Cases and CSV exports).
			continue
		}
		k := key{c.KernelID, c.Method}
		byKernel[k] = append(byKernel[k], c)
		comboOf[c.KernelID] = c.Combo
		weightOf[c.KernelID] = c.Weight
	}

	for k, cases := range byKernel {
		s := KernelSummary{KernelID: k.kernel, Method: k.method, Weight: weightOf[k.kernel], Cases: len(cases)}
		var upSum, uwSum, opSum, owSum float64
		var overCases int
		for _, c := range cases {
			if c.Under {
				s.UnderCases++
				upSum += c.PerfRatio
				uwSum += c.PowerRatio
			} else {
				overCases++
				opSum += c.PerfRatio
				owSum += c.PowerRatio
			}
		}
		if s.UnderCases > 0 {
			s.UnderPerfRatio = upSum / float64(s.UnderCases)
			s.UnderPowerRatio = uwSum / float64(s.UnderCases)
		}
		if overCases > 0 {
			s.OverPerfRatio = opSum / float64(overCases)
			s.OverPowerRatio = owSum / float64(overCases)
		}
		ev.PerKernel = append(ev.PerKernel, s)
	}
	sort.Slice(ev.PerKernel, func(i, j int) bool {
		if ev.PerKernel[i].KernelID != ev.PerKernel[j].KernelID {
			return ev.PerKernel[i].KernelID < ev.PerKernel[j].KernelID
		}
		return ev.PerKernel[i].Method < ev.PerKernel[j].Method
	})

	combos := map[string]bool{}
	for _, c := range comboOf {
		combos[c] = true
	}
	var comboNames []string
	for c := range combos {
		comboNames = append(comboNames, c)
	}
	sort.Strings(comboNames)

	for _, combo := range comboNames {
		agg := ComboAgg{Combo: combo, PerMethod: map[sched.Method]MethodAgg{}}
		for _, m := range methods {
			var scoped []KernelSummary
			for _, s := range ev.PerKernel {
				if s.Method == m && comboOf[s.KernelID] == combo {
					scoped = append(scoped, s)
				}
			}
			agg.PerMethod[m] = aggregateSummaries(m, scoped)
		}
		ev.PerCombo = append(ev.PerCombo, agg)
	}

	ev.Overall = map[sched.Method]MethodAgg{}
	for _, m := range methods {
		var scoped []KernelSummary
		for _, s := range ev.PerKernel {
			if s.Method == m {
				scoped = append(scoped, s)
			}
		}
		ev.Overall[m] = aggregateSummaries(m, scoped)
	}
}

// aggregateSummaries computes the time-share-weighted aggregate the
// paper uses ("averaged across all kernels that compose each benchmark,
// weighted by how much of the benchmark time is spent in each kernel").
// Category means only weight kernels that have cases in that category.
func aggregateSummaries(m sched.Method, ss []KernelSummary) MethodAgg {
	agg := MethodAgg{Method: m}
	var wAll, wUnder, wOver float64
	for _, s := range ss {
		w := s.Weight
		wAll += w
		agg.PctUnder += w * s.PctUnder()
		if s.UnderCases > 0 {
			wUnder += w
			agg.UnderPerfRatio += w * s.UnderPerfRatio
			agg.UnderPowerRatio += w * s.UnderPowerRatio
		}
		if s.Cases-s.UnderCases > 0 {
			wOver += w
			agg.OverPerfRatio += w * s.OverPerfRatio
			agg.OverPowerRatio += w * s.OverPowerRatio
		}
	}
	if wAll > 0 {
		agg.PctUnder /= wAll
	}
	if wUnder > 0 {
		agg.UnderPerfRatio /= wUnder
		agg.UnderPowerRatio /= wUnder
		agg.HasUnder = true
	}
	if wOver > 0 {
		agg.OverPerfRatio /= wOver
		agg.OverPowerRatio /= wOver
		agg.HasOver = true
	}
	return agg
}

// ComboNames returns the evaluated combo labels in order.
func (ev *Evaluation) ComboNames() []string {
	var out []string
	for _, c := range ev.PerCombo {
		out = append(out, c.Combo)
	}
	return out
}

// ProfileByID finds a characterized kernel profile.
func (ev *Evaluation) ProfileByID(id string) (*core.KernelProfile, bool) {
	for _, kp := range ev.Profiles {
		if kp.KernelID == id {
			return kp, true
		}
	}
	return nil, false
}
