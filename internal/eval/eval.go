// Package eval reproduces the paper's experimental methodology (§V):
// leave-one-benchmark-out cross-validation of the model, evaluation of
// every power-limiting method against an oracle at the power levels of
// each kernel's oracle frontier, classification of outcomes into
// under-limit and over-limit cases, and aggregation per benchmark/input
// combination weighted by kernel time share.
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"acsel/internal/cluster"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/sched"
)

// Case is one (kernel, power cap, method) outcome compared with the
// oracle at the same cap.
type Case struct {
	KernelID   string
	Combo      string // benchmark/input label, e.g. "LULESH Small"
	Method     sched.Method
	CapW       float64
	Decision   sched.Decision
	Oracle     sched.Decision
	Under      bool
	PerfRatio  float64 // true perf / oracle perf at the same cap
	PowerRatio float64 // true power / oracle power at the same cap
	Weight     float64 // kernel's share of benchmark runtime
	// Infeasible marks a cap no configuration can meet: the oracle's
	// own selection violates it. Oracle-relative ratios are meaningless
	// there, so the case is flagged, its ratios are guarded, and
	// aggregation skips it rather than letting it poison the weighted
	// sums. Never set on clean runs, where every cap comes from the
	// kernel's own measured frontier.
	Infeasible bool
}

// safeRatio divides num by den, returning 0 when the quotient would be
// NaN or infinite (zero or non-finite denominator, non-finite
// numerator). Downstream weighted sums must stay finite no matter how
// degenerate the oracle's situation is.
func safeRatio(num, den float64) float64 {
	r := num / den
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// KernelSummary aggregates one kernel's cases for one method.
type KernelSummary struct {
	KernelID string
	Method   sched.Method
	Weight   float64

	Cases      int
	UnderCases int

	// Means over the respective category; zero when the category is
	// empty (check the counts).
	UnderPerfRatio  float64
	UnderPowerRatio float64
	OverPerfRatio   float64
	OverPowerRatio  float64
}

// PctUnder is the fraction of caps met.
func (k KernelSummary) PctUnder() float64 {
	if k.Cases == 0 {
		return 0
	}
	return float64(k.UnderCases) / float64(k.Cases)
}

// MethodAgg is the weighted aggregate for one method over one scope (a
// benchmark/input combo, or the whole suite) — one row of Table III.
type MethodAgg struct {
	Method sched.Method

	PctUnder        float64
	UnderPerfRatio  float64
	UnderPowerRatio float64
	OverPerfRatio   float64
	OverPowerRatio  float64

	// HasOver reports whether any over-limit case exists in the scope
	// (GPU-hostile benchmarks may never violate).
	HasOver  bool
	HasUnder bool
}

// ComboAgg groups per-method aggregates for one benchmark/input combo —
// one bar group of Figures 5, 6, 8, 9.
type ComboAgg struct {
	Combo     string
	PerMethod map[sched.Method]MethodAgg
}

// Evaluation is the complete cross-validated result set.
type Evaluation struct {
	Cases     []Case
	PerKernel []KernelSummary
	PerCombo  []ComboAgg
	Overall   map[sched.Method]MethodAgg
	// FoldModels maps each held-out benchmark to the model trained on
	// the remaining benchmarks (for tree dumps etc.).
	FoldModels map[string]*core.Model
	// Profiles is the full characterization, for frontier reports.
	Profiles []*core.KernelProfile
}

// Harness drives a full evaluation.
type Harness struct {
	Profiler *profiler.Profiler
	Opts     core.TrainOptions
	// MethodsUnderTest defaults to sched.Methods().
	MethodsUnderTest []sched.Method
	// Workers bounds how many cross-validation folds train and
	// evaluate concurrently; 0 means GOMAXPROCS, 1 forces the
	// sequential path. Every worker count produces an identical
	// Evaluation: folds are independent, each is seeded by its own
	// copy of Opts, and results assemble in fold order.
	Workers int
	// ModelCacheDir, when non-empty, routes fold training through the
	// content-addressed model cache (core.TrainCached): re-running the
	// same evaluation reloads each fold's model instead of retraining.
	ModelCacheDir string
	// varAwareZ is the §VI variance-aware selection margin the
	// extension study threads into every fold's runner (0 disables).
	varAwareZ float64
}

// NewHarness builds a harness with the paper's defaults.
func NewHarness() *Harness {
	return &Harness{Profiler: profiler.New(), Opts: core.DefaultTrainOptions()}
}

// Run characterizes the whole suite, then for each benchmark trains on
// the other benchmarks (leave-one-benchmark-out, §V-C) and evaluates
// every method on the held-out kernels at the oracle-frontier power
// caps (§V-B).
func (h *Harness) Run() (*Evaluation, error) {
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	stopChar := mEvalPhase.With("characterize").Time()
	profiles, err := core.Characterize(h.Profiler, ks, h.Opts)
	stopChar()
	if err != nil {
		return nil, fmt.Errorf("eval: characterize: %w", err)
	}
	return h.RunOnProfiles(profiles)
}

// RunOnProfiles runs the cross-validated evaluation over an existing
// characterization — the incremental entry point: a caller holding
// fresh profiles (a re-characterized machine, an adaptive-retraining
// loop, a benchmark) pays only for folding, never for re-profiling.
//
// The suite-wide dissimilarity matrix is computed once; every fold
// reuses it through a Subset view instead of rebuilding its own O(n²)
// pairwise Kendall taus. Folds then train and evaluate on up to
// h.Workers goroutines. Both levels of concurrency are deterministic —
// the Evaluation is identical for any worker count, bit for bit.
//
//lint:deterministic
func (h *Harness) RunOnProfiles(profiles []*core.KernelProfile) (*Evaluation, error) {
	methods := h.MethodsUnderTest
	if len(methods) == 0 {
		methods = sched.Methods()
	}
	ev := &Evaluation{FoldModels: map[string]*core.Model{}, Profiles: profiles}
	benchNames := map[string]bool{}
	for _, kp := range profiles {
		benchNames[kp.Benchmark] = true
	}
	var benches []string
	for b := range benchNames {
		benches = append(benches, b)
	}
	sort.Strings(benches)

	stopMatrix := mMatrixSeconds.With("full").Time()
	fullDis := core.DissimilarityMatrix(profiles)
	stopMatrix()

	workers := h.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Each fold writes only its own slot; results are stitched together
	// in bench order afterwards, so the Cases sequence (and therefore
	// every aggregate and report) matches the sequential path exactly.
	type foldResult struct {
		model *core.Model
		cases []Case
		err   error
	}
	results := make([]foldResult, len(benches))
	stopFolds := mEvalPhase.With("folds").Time()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for bi, bench := range benches {
		// Semaphore before spawn (see core.Characterize): never more
		// than `workers` fold goroutines exist at once.
		sem <- struct{}{}
		wg.Add(1)
		go func(bi int, bench string) {
			defer wg.Done()
			defer func() { <-sem }()
			mFoldWorkers.Add(1)
			defer mFoldWorkers.Add(-1)
			model, cases, err := h.runFold(profiles, bench, fullDis, methods)
			results[bi] = foldResult{model: model, cases: cases, err: err}
		}(bi, bench)
	}
	wg.Wait()
	stopFolds()

	for bi, bench := range benches {
		if err := results[bi].err; err != nil {
			return nil, fmt.Errorf("eval: fold %q: %w", bench, err)
		}
		ev.FoldModels[bench] = results[bi].model
		ev.Cases = append(ev.Cases, results[bi].cases...)
	}

	stopAgg := mEvalPhase.With("aggregate").Time()
	ev.aggregate(methods)
	stopAgg()
	return ev, nil
}

// runFold trains one leave-one-benchmark-out fold — reusing the
// suite-wide dissimilarity matrix through a Subset view — and evaluates
// every method on the held-out kernels. The fold trains from its own
// copy of h.Opts, so its clustering seed is the same deterministic
// value the sequential path would use.
func (h *Harness) runFold(profiles []*core.KernelProfile, bench string, fullDis *cluster.DissimilarityMatrix, methods []sched.Method) (*core.Model, []Case, error) {
	stopFold := mFoldSeconds.Time()
	defer stopFold()
	var train, test []*core.KernelProfile
	var trainIdx []int
	for i, kp := range profiles {
		if kp.Benchmark == bench {
			test = append(test, kp)
		} else {
			train = append(train, kp)
			trainIdx = append(trainIdx, i)
		}
	}
	stopSub := mMatrixSeconds.With("subset").Time()
	dis := fullDis.Subset(trainIdx)
	stopSub()
	opts := h.Opts
	model, _, err := core.TrainCachedWithDissimilarity(h.Profiler.Space, train, dis, opts, h.ModelCacheDir)
	if err != nil {
		return nil, nil, fmt.Errorf("training: %w", err)
	}
	runner := &sched.Runner{Space: h.Profiler.Space, Model: model, VarAwareZ: h.varAwareZ}
	var out []Case
	for _, kp := range test {
		cases, err := evaluateKernel(runner, kp, methods)
		if err != nil {
			return nil, nil, fmt.Errorf("kernel %s: %w", kp.KernelID, err)
		}
		out = append(out, cases...)
	}
	return model, out, nil
}

// evaluateKernel runs every method at every oracle-frontier power level
// of one kernel.
func evaluateKernel(r *sched.Runner, kp *core.KernelProfile, methods []sched.Method) ([]Case, error) {
	truth := sched.ProfileTruth{Profile: kp}
	sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	combo := comboLabel(kp)
	var out []Case
	for _, pt := range kp.Frontier.Points() {
		capW := pt.Power
		oracle := r.Oracle(truth, capW)
		// An oracle that cannot meet the cap itself means the cap is
		// infeasible for every configuration; comparisons against it
		// are flagged instead of silently producing NaN/Inf ratios.
		infeasible := !oracle.MeetsCap(capW)
		if infeasible {
			mInfeasibleCases.Inc()
		}
		for _, m := range methods {
			d, err := r.Decide(m, truth, sr, capW)
			if err != nil {
				return nil, err
			}
			out = append(out, Case{
				KernelID:   kp.KernelID,
				Combo:      combo,
				Method:     m,
				CapW:       capW,
				Decision:   d,
				Oracle:     oracle,
				Under:      d.MeetsCap(capW),
				PerfRatio:  safeRatio(d.TruePerf, oracle.TruePerf),
				PowerRatio: safeRatio(d.TruePower, oracle.TruePower),
				Weight:     kp.TimeShare,
				Infeasible: infeasible,
			})
		}
	}
	return out, nil
}

func comboLabel(kp *core.KernelProfile) string {
	if kp.Input == "Default" {
		return kp.Benchmark
	}
	return kp.Benchmark + " " + kp.Input
}

// aggregate reduces cases to per-kernel summaries, per-combo weighted
// aggregates, and the overall Table III numbers.
func (ev *Evaluation) aggregate(methods []sched.Method) {
	type key struct {
		kernel string
		method sched.Method
	}
	byKernel := map[key][]Case{}
	comboOf := map[string]string{}
	weightOf := map[string]float64{}
	for _, c := range ev.Cases {
		if c.Infeasible {
			// No configuration could meet this cap; oracle-relative
			// ratios carry no signal, so the case stays out of every
			// summary (it remains visible in ev.Cases and CSV exports).
			continue
		}
		k := key{c.KernelID, c.Method}
		byKernel[k] = append(byKernel[k], c)
		comboOf[c.KernelID] = c.Combo
		weightOf[c.KernelID] = c.Weight
	}

	// Iterate kernel groups in sorted order rather than map order: the
	// appended summaries are sorted again below, but building them
	// deterministically keeps every intermediate (and any future
	// accumulation across groups) independent of map iteration.
	keys := make([]key, 0, len(byKernel))
	for k := range byKernel {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kernel != keys[j].kernel {
			return keys[i].kernel < keys[j].kernel
		}
		return keys[i].method < keys[j].method
	})
	for _, k := range keys {
		cases := byKernel[k]
		s := KernelSummary{KernelID: k.kernel, Method: k.method, Weight: weightOf[k.kernel], Cases: len(cases)}
		var upSum, uwSum, opSum, owSum float64
		var overCases int
		for _, c := range cases {
			if c.Under {
				s.UnderCases++
				upSum += c.PerfRatio
				uwSum += c.PowerRatio
			} else {
				overCases++
				opSum += c.PerfRatio
				owSum += c.PowerRatio
			}
		}
		if s.UnderCases > 0 {
			s.UnderPerfRatio = upSum / float64(s.UnderCases)
			s.UnderPowerRatio = uwSum / float64(s.UnderCases)
		}
		if overCases > 0 {
			s.OverPerfRatio = opSum / float64(overCases)
			s.OverPowerRatio = owSum / float64(overCases)
		}
		ev.PerKernel = append(ev.PerKernel, s)
	}
	sort.Slice(ev.PerKernel, func(i, j int) bool {
		if ev.PerKernel[i].KernelID != ev.PerKernel[j].KernelID {
			return ev.PerKernel[i].KernelID < ev.PerKernel[j].KernelID
		}
		return ev.PerKernel[i].Method < ev.PerKernel[j].Method
	})

	combos := map[string]bool{}
	for _, c := range comboOf {
		combos[c] = true
	}
	var comboNames []string
	for c := range combos {
		comboNames = append(comboNames, c)
	}
	sort.Strings(comboNames)

	for _, combo := range comboNames {
		agg := ComboAgg{Combo: combo, PerMethod: map[sched.Method]MethodAgg{}}
		for _, m := range methods {
			var scoped []KernelSummary
			for _, s := range ev.PerKernel {
				if s.Method == m && comboOf[s.KernelID] == combo {
					scoped = append(scoped, s)
				}
			}
			agg.PerMethod[m] = aggregateSummaries(m, scoped)
		}
		ev.PerCombo = append(ev.PerCombo, agg)
	}

	ev.Overall = map[sched.Method]MethodAgg{}
	for _, m := range methods {
		var scoped []KernelSummary
		for _, s := range ev.PerKernel {
			if s.Method == m {
				scoped = append(scoped, s)
			}
		}
		ev.Overall[m] = aggregateSummaries(m, scoped)
	}
}

// aggregateSummaries computes the time-share-weighted aggregate the
// paper uses ("averaged across all kernels that compose each benchmark,
// weighted by how much of the benchmark time is spent in each kernel").
// Category means only weight kernels that have cases in that category.
func aggregateSummaries(m sched.Method, ss []KernelSummary) MethodAgg {
	agg := MethodAgg{Method: m}
	var wAll, wUnder, wOver float64
	for _, s := range ss {
		w := s.Weight
		wAll += w
		agg.PctUnder += w * s.PctUnder()
		if s.UnderCases > 0 {
			wUnder += w
			agg.UnderPerfRatio += w * s.UnderPerfRatio
			agg.UnderPowerRatio += w * s.UnderPowerRatio
		}
		if s.Cases-s.UnderCases > 0 {
			wOver += w
			agg.OverPerfRatio += w * s.OverPerfRatio
			agg.OverPowerRatio += w * s.OverPowerRatio
		}
	}
	if wAll > 0 {
		agg.PctUnder /= wAll
	}
	if wUnder > 0 {
		agg.UnderPerfRatio /= wUnder
		agg.UnderPowerRatio /= wUnder
		agg.HasUnder = true
	}
	if wOver > 0 {
		agg.OverPerfRatio /= wOver
		agg.OverPowerRatio /= wOver
		agg.HasOver = true
	}
	return agg
}

// ComboNames returns the evaluated combo labels in order.
func (ev *Evaluation) ComboNames() []string {
	var out []string
	for _, c := range ev.PerCombo {
		out = append(out, c.Combo)
	}
	return out
}

// ProfileByID finds a characterized kernel profile.
func (ev *Evaluation) ProfileByID(id string) (*core.KernelProfile, bool) {
	for _, kp := range ev.Profiles {
		if kp.KernelID == id {
			return kp, true
		}
	}
	return nil, false
}
