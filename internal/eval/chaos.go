// Chaos evaluation (robustness methodology): re-run the Table III
// method comparison under each deterministic fault scenario and
// quantify how far each method's cap compliance degrades relative to
// the clean evaluation — once for a naive sensor consumer that takes
// every reading at face value, and once for the hardened controller
// with its sanity gate, redundant reads, and conservative floor.
//
// The expensive parts of the clean evaluation (characterization and
// the leave-one-benchmark-out fold models) are reused verbatim: only
// the per-cap decision processes re-run under faults, so a full chaos
// sweep over every built-in scenario costs a small fraction of the
// clean evaluation.
package eval

import (
	"fmt"
	"strings"

	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/sched"
)

// ChaosScenarioResult is one fault scenario's re-evaluation.
type ChaosScenarioResult struct {
	Scenario fault.Scenario
	Seed     int64
	// Naive and Hardened hold the full re-aggregated evaluations
	// (cases, per-kernel, per-combo, overall) for the two consumer
	// postures under this scenario.
	Naive    *Evaluation
	Hardened *Evaluation
}

// ChaosReport is the complete chaos sweep next to its clean baseline.
type ChaosReport struct {
	Clean     *Evaluation
	Seed      int64
	Scenarios []ChaosScenarioResult
}

// RunChaos re-evaluates every method under each fault scenario,
// reusing ev's characterization and fold models. The injection is
// keyed by (scenario, seed, kernel, cap, method, limiter step), so two
// calls with the same arguments produce bit-identical reports.
func (ev *Evaluation) RunChaos(scenarios []fault.Scenario, seed int64, methods []sched.Method) (*ChaosReport, error) {
	if len(methods) == 0 {
		methods = sched.Methods()
	}
	if len(ev.Profiles) == 0 || len(ev.FoldModels) == 0 {
		return nil, fmt.Errorf("eval: chaos requires a completed clean evaluation")
	}
	rep := &ChaosReport{Clean: ev, Seed: seed}
	for _, sc := range scenarios {
		inj := fault.NewInjector(sc, seed)
		res := ChaosScenarioResult{Scenario: sc, Seed: seed}
		naive := &Evaluation{}
		hardened := &Evaluation{}
		for _, kp := range ev.Profiles {
			model, ok := ev.FoldModels[kp.Benchmark]
			if !ok {
				return nil, fmt.Errorf("eval: no fold model for %s", kp.Benchmark)
			}
			runner := &sched.Runner{Space: model.Space, Model: model}
			nc, hc, err := evaluateKernelChaos(runner, kp, methods, inj)
			if err != nil {
				return nil, fmt.Errorf("eval: chaos %s on %s: %w", sc.Name, kp.KernelID, err)
			}
			naive.Cases = append(naive.Cases, nc...)
			hardened.Cases = append(hardened.Cases, hc...)
		}
		naive.aggregate(methods)
		hardened.aggregate(methods)
		res.Naive = naive
		res.Hardened = hardened
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep, nil
}

// evaluateKernelChaos mirrors evaluateKernel with sensor-mediated
// decisions. Each (kernel, cap, method, posture) consumer gets its own
// reading key, so decision processes draw independent deterministic
// fault streams.
func evaluateKernelChaos(r *sched.Runner, kp *core.KernelProfile, methods []sched.Method, inj *fault.Injector) (naive, hardened []Case, err error) {
	truth := sched.ProfileTruth{Profile: kp}
	sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	combo := comboLabel(kp)
	for capIdx, pt := range kp.Frontier.Points() {
		capW := pt.Power
		oracle := r.Oracle(truth, capW)
		for _, m := range methods {
			mk := func(posture string) sched.FaultyReadings {
				return sched.FaultyReadings{
					Truth:  truth,
					Faults: inj,
					Key:    fmt.Sprintf("%s|c%d|%s|%s", kp.KernelID, capIdx, m, posture),
				}
			}
			nd, derr := r.DecideNaive(m, truth, mk("naive"), sr, capW)
			if derr != nil {
				return nil, nil, derr
			}
			hd, derr := r.DecideHardened(m, truth, mk("hard"), sr, capW)
			if derr != nil {
				return nil, nil, derr
			}
			naive = append(naive, chaosCase(kp, combo, m, capW, nd, oracle))
			hardened = append(hardened, chaosCase(kp, combo, m, capW, hd, oracle))
		}
	}
	return naive, hardened, nil
}

func chaosCase(kp *core.KernelProfile, combo string, m sched.Method, capW float64, d, oracle sched.Decision) Case {
	return Case{
		KernelID:   kp.KernelID,
		Combo:      combo,
		Method:     m,
		CapW:       capW,
		Decision:   d,
		Oracle:     oracle,
		Under:      d.MeetsCap(capW),
		PerfRatio:  d.TruePerf / oracle.TruePerf,
		PowerRatio: d.TruePower / oracle.TruePower,
		Weight:     kp.TimeShare,
	}
}

// PctUnderCases returns the unweighted fraction of an evaluation's
// cases (optionally restricted to one method; pass nil for all) whose
// decisions met the cap — the acceptance metric of the chaos suite.
func PctUnderCases(e *Evaluation, m *sched.Method) float64 {
	total, under := 0, 0
	for _, c := range e.Cases {
		if m != nil && c.Method != *m {
			continue
		}
		total++
		if c.Under {
			under++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(under) / float64(total)
}

// Report renders the chaos sweep as a text table: per scenario and
// method, the weighted under-limit percentage clean, naive, and
// hardened, with the degradation deltas against clean.
func (cr *ChaosReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: Table III cap compliance under fault injection (seed %d)\n", cr.Seed)
	b.WriteString("naive = limiter believes every sensor reading; hardened = sanity gate + redundant reads + conservative floor\n")
	fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %-10s %-8s %-10s %-9s\n",
		"Scenario", "Method", "Clean%", "Naive%", "dNaive", "Hard%", "dHard", "PerfHard%")
	for _, sres := range cr.Scenarios {
		for _, m := range sched.Methods() {
			clean := cr.Clean.Overall[m]
			n := sres.Naive.Overall[m]
			h := sres.Hardened.Overall[m]
			perf := "-"
			if h.HasUnder {
				perf = fmt.Sprintf("%.1f", h.UnderPerfRatio*100)
			}
			fmt.Fprintf(&b, "%-16s %-10s %-8.1f %-8.1f %-10.1f %-8.1f %-10.1f %-9s\n",
				sres.Scenario.Name, m,
				clean.PctUnder*100,
				n.PctUnder*100, (n.PctUnder-clean.PctUnder)*100,
				h.PctUnder*100, (h.PctUnder-clean.PctUnder)*100,
				perf)
		}
	}
	return b.String()
}
