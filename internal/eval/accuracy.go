package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"acsel/internal/core"
	"acsel/internal/stats"
)

// AccuracyStats quantifies the model's predictive quality on held-out
// kernels (each predicted by the fold model that never saw its
// benchmark), backing the paper's claim that the model "accurately
// predicts power and performance for a set of 36 kernels".
type AccuracyStats struct {
	// Relative absolute errors |pred − true| / true over all held-out
	// (kernel, configuration) pairs.
	PerfMAPE    float64 // mean
	PerfMedAPE  float64 // median
	PowerMAPE   float64
	PowerMedAPE float64

	// RankFidelity is the mean Kendall tau between predicted and true
	// performance orderings of the configurations of each kernel; the
	// models only need to *rank* configurations correctly (§III-B:
	// "Our goal in using linear ... models is to rank configurations").
	RankFidelity float64

	// DeviceAccuracy is how often the predicted best-performance device
	// matches the true best device.
	DeviceAccuracy float64

	// ClassifierAccuracy is the per-fold training-set accuracy of the
	// classification tree, averaged over folds.
	ClassifierAccuracy float64

	// PerBenchmark breaks the error rates down by held-out benchmark.
	PerBenchmark map[string]BenchmarkAccuracy
}

// BenchmarkAccuracy is the per-fold slice of AccuracyStats.
type BenchmarkAccuracy struct {
	PerfMedAPE  float64
	PowerMedAPE float64
	Kernels     int
}

// Accuracy computes prediction-quality statistics from the evaluation's
// profiles and fold models.
func (ev *Evaluation) Accuracy() (AccuracyStats, error) {
	var perfErrs, powErrs []float64
	var taus []float64
	var deviceHits, deviceTotal int
	perBench := map[string]*struct {
		perf, pow []float64
		kernels   int
	}{}

	for _, kp := range ev.Profiles {
		model, ok := ev.FoldModels[kp.Benchmark]
		if !ok {
			return AccuracyStats{}, fmt.Errorf("eval: no fold model for %s", kp.Benchmark)
		}
		sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		preds, _, err := model.PredictAll(sr)
		if err != nil {
			return AccuracyStats{}, err
		}
		pb := perBench[kp.Benchmark]
		if pb == nil {
			pb = &struct {
				perf, pow []float64
				kernels   int
			}{}
			perBench[kp.Benchmark] = pb
		}
		pb.kernels++

		var predPerf, truePerf []float64
		bestPredPerf, bestTruePerf := math.Inf(-1), math.Inf(-1)
		var bestPredID, bestTrueID int
		for id, p := range preds {
			tp := kp.Stats[id].MeanPerf
			tw := kp.Stats[id].MeanPower
			pe := math.Abs(p.Perf-tp) / tp
			we := math.Abs(p.PowerW-tw) / tw
			perfErrs = append(perfErrs, pe)
			powErrs = append(powErrs, we)
			pb.perf = append(pb.perf, pe)
			pb.pow = append(pb.pow, we)
			predPerf = append(predPerf, p.Perf)
			truePerf = append(truePerf, tp)
			if p.Perf > bestPredPerf {
				bestPredPerf, bestPredID = p.Perf, id
			}
			if tp > bestTruePerf {
				bestTruePerf, bestTrueID = tp, id
			}
		}
		if tau, err := stats.KendallTau(predPerf, truePerf); err == nil {
			taus = append(taus, tau)
		}
		deviceTotal++
		if model.Space.Configs[bestPredID].Device == model.Space.Configs[bestTrueID].Device {
			deviceHits++
		}
	}

	// Classifier self-accuracy per fold, iterated in sorted fold order:
	// float accumulation inside stats.Mean is not associative, so map
	// iteration order would leak into ClassifierAccuracy's low bits (and
	// which fold's error surfaces first would be run-dependent).
	var treeAccs []float64
	folds := make([]string, 0, len(ev.FoldModels))
	for bench := range ev.FoldModels {
		folds = append(folds, bench)
	}
	sort.Strings(folds)
	for _, bench := range folds {
		model := ev.FoldModels[bench]
		var X [][]float64
		var y []int
		for _, kp := range ev.Profiles {
			if kp.Benchmark == bench {
				continue // held out of this fold
			}
			X = append(X, core.ClassifierFeatures(kp.CPUSample, kp.GPUSample))
			y = append(y, model.Assignments[kp.KernelID])
		}
		acc, err := model.Tree.Accuracy(X, y)
		if err != nil {
			return AccuracyStats{}, err
		}
		treeAccs = append(treeAccs, acc)
	}

	out := AccuracyStats{
		PerfMAPE:           stats.Mean(perfErrs),
		PerfMedAPE:         stats.Median(perfErrs),
		PowerMAPE:          stats.Mean(powErrs),
		PowerMedAPE:        stats.Median(powErrs),
		RankFidelity:       stats.Mean(taus),
		DeviceAccuracy:     float64(deviceHits) / float64(deviceTotal),
		ClassifierAccuracy: stats.Mean(treeAccs),
		PerBenchmark:       map[string]BenchmarkAccuracy{},
	}
	for bench, pb := range perBench {
		out.PerBenchmark[bench] = BenchmarkAccuracy{
			PerfMedAPE:  stats.Median(pb.perf),
			PowerMedAPE: stats.Median(pb.pow),
			Kernels:     pb.kernels,
		}
	}
	return out, nil
}

// ReportAccuracy renders the accuracy analysis.
func (ev *Evaluation) ReportAccuracy() (string, error) {
	a, err := ev.Accuracy()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Model accuracy on held-out kernels (leave-one-benchmark-out)\n")
	fmt.Fprintf(&b, "performance: mean APE %.1f%%, median APE %.1f%%\n", a.PerfMAPE*100, a.PerfMedAPE*100)
	fmt.Fprintf(&b, "power:       mean APE %.1f%%, median APE %.1f%%\n", a.PowerMAPE*100, a.PowerMedAPE*100)
	fmt.Fprintf(&b, "config ranking fidelity (Kendall tau): %.3f\n", a.RankFidelity)
	fmt.Fprintf(&b, "best-device prediction accuracy: %.0f%%\n", a.DeviceAccuracy*100)
	fmt.Fprintf(&b, "classifier training accuracy (mean over folds): %.0f%%\n", a.ClassifierAccuracy*100)
	b.WriteString("per held-out benchmark (median APE):\n")
	var names []string
	for n := range a.PerBenchmark {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pb := a.PerBenchmark[n]
		fmt.Fprintf(&b, "  %-8s perf %.1f%%  power %.1f%%  (%d kernels)\n",
			n, pb.PerfMedAPE*100, pb.PowerMedAPE*100, pb.Kernels)
	}
	return b.String(), nil
}
