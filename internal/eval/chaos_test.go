package eval

import (
	"testing"

	"acsel/internal/fault"
	"acsel/internal/sched"
)

func TestChaosReportDeterministic(t *testing.T) {
	_, ev := fullEval(t)
	a, err := ev.RunChaos(fault.Scenarios(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.RunChaos(fault.Scenarios(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Error("same scenarios+seed produced different chaos reports")
	}
	c, err := ev.RunChaos(fault.Scenarios(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() == c.Report() {
		t.Error("different seed replayed an identical chaos report")
	}
}

func TestChaosHardenedMeetsAcceptance(t *testing.T) {
	// Acceptance criterion: the degraded (hardened) runtime keeps the
	// hero method under the limit in at least 70% of Table III cases
	// under every built-in fault scenario.
	_, ev := fullEval(t)
	rep, err := ev.RunChaos(fault.Scenarios(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mfl := sched.MethodModelFL
	for _, sres := range rep.Scenarios {
		weighted := sres.Hardened.Overall[mfl].PctUnder
		unweighted := PctUnderCases(sres.Hardened, &mfl)
		t.Logf("%-16s hardened Model+FL under-limit: weighted %.1f%% unweighted %.1f%%",
			sres.Scenario.Name, weighted*100, unweighted*100)
		if weighted < 0.70 {
			t.Errorf("%s: hardened Model+FL weighted under-limit %.1f%% < 70%%",
				sres.Scenario.Name, weighted*100)
		}
		if unweighted < 0.70 {
			t.Errorf("%s: hardened Model+FL case under-limit %.1f%% < 70%%",
				sres.Scenario.Name, unweighted*100)
		}
	}
}

func TestChaosHardenedNoWorseThanNaive(t *testing.T) {
	// The hardening must actually help: in aggregate, the hardened
	// posture's cap compliance may not fall meaningfully below the
	// naive posture's under any scenario, for any FL method.
	_, ev := fullEval(t)
	rep, err := ev.RunChaos(fault.Scenarios(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const slack = 0.02
	for _, sres := range rep.Scenarios {
		for _, m := range []sched.Method{sched.MethodCPUFL, sched.MethodGPUFL, sched.MethodModelFL} {
			n := sres.Naive.Overall[m].PctUnder
			h := sres.Hardened.Overall[m].PctUnder
			if h < n-slack {
				t.Errorf("%s %s: hardened %.1f%% under-limit worse than naive %.1f%%",
					sres.Scenario.Name, m, h*100, n*100)
			}
		}
	}
}

func TestChaosSensorlessMethodsUnaffected(t *testing.T) {
	// Oracle and Model never consult the sensor, so their compliance is
	// identical to clean under every scenario and both postures.
	_, ev := fullEval(t)
	rep, err := ev.RunChaos(fault.Scenarios(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sres := range rep.Scenarios {
		for _, m := range []sched.Method{sched.MethodOracle, sched.MethodModel} {
			clean := ev.Overall[m].PctUnder
			if n := sres.Naive.Overall[m].PctUnder; n != clean { //lint:ignore floatcmp sensorless methods must reproduce clean numbers exactly
				t.Errorf("%s naive %s: %.3f != clean %.3f", sres.Scenario.Name, m, n, clean)
			}
			if h := sres.Hardened.Overall[m].PctUnder; h != clean { //lint:ignore floatcmp sensorless methods must reproduce clean numbers exactly
				t.Errorf("%s hardened %s: %.3f != clean %.3f", sres.Scenario.Name, m, h, clean)
			}
		}
	}
}

func TestChaosRequiresCompletedEvaluation(t *testing.T) {
	empty := &Evaluation{}
	if _, err := empty.RunChaos(fault.Scenarios(), 1, nil); err == nil {
		t.Error("chaos ran without a clean evaluation")
	}
}
