package eval

import (
	"reflect"
	"testing"
)

// evalWithWorkers runs a one-iteration evaluation at the given fold
// concurrency.
func evalWithWorkers(t *testing.T, workers int) *Evaluation {
	t.Helper()
	h := NewHarness()
	h.Opts.Iterations = 1
	h.Workers = workers
	ev, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestRunDeterministicAcrossWorkerCounts is the headline determinism
// regression test: the parallel fold pipeline must produce an
// Evaluation that is deeply equal — every fold model, every case,
// every aggregate — to the sequential one. It runs under -race in
// `make test-race`, so it doubles as the data-race probe for the
// fold pool and the shared dissimilarity matrix.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	seq := evalWithWorkers(t, 1)
	for _, workers := range []int{0, 4} {
		par := evalWithWorkers(t, workers)
		if !reflect.DeepEqual(seq.Overall, par.Overall) {
			t.Fatalf("workers=%d: Overall differs:\nseq %+v\npar %+v", workers, seq.Overall, par.Overall)
		}
		if !reflect.DeepEqual(seq.Cases, par.Cases) {
			t.Fatalf("workers=%d: Cases differ (len %d vs %d)", workers, len(seq.Cases), len(par.Cases))
		}
		if !reflect.DeepEqual(seq.FoldModels, par.FoldModels) {
			t.Fatalf("workers=%d: FoldModels differ", workers)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: Evaluation differs beyond Overall/Cases/FoldModels", workers)
		}
	}
}

// TestModelCacheDirAcceleratesRun checks the harness-level cache wiring:
// a second run against the same cache directory produces a deeply equal
// Evaluation (JSON round-trips float64 exactly, so even cache-hit models
// predict identically).
func TestModelCacheDirAcceleratesRun(t *testing.T) {
	dir := t.TempDir()
	run := func() *Evaluation {
		h := NewHarness()
		h.Opts.Iterations = 1
		h.ModelCacheDir = dir
		ev, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	first := run()
	second := run()
	if !reflect.DeepEqual(first.Overall, second.Overall) {
		t.Fatal("cached rerun changed Overall aggregates")
	}
	if !reflect.DeepEqual(first.Cases, second.Cases) {
		t.Fatal("cached rerun changed Cases")
	}
	// And the cached run matches an uncached one at the same options.
	plain := evalWithWorkers(t, 0)
	if !reflect.DeepEqual(plain.Overall, second.Overall) {
		t.Fatal("cache-backed Overall differs from uncached run")
	}
}
