package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"acsel/internal/core"
	"acsel/internal/sched"
)

var (
	evalOnce sync.Once
	evalErr  error
	gEval    *Evaluation
	gHarness *Harness
)

func fullEval(t *testing.T) (*Harness, *Evaluation) {
	t.Helper()
	evalOnce.Do(func() {
		gHarness = NewHarness()
		gHarness.Opts.Iterations = 2
		gEval, evalErr = gHarness.Run()
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return gHarness, gEval
}

func TestRunProducesAllFolds(t *testing.T) {
	_, ev := fullEval(t)
	for _, bench := range []string{"LULESH", "CoMD", "SMC", "LU"} {
		if ev.FoldModels[bench] == nil {
			t.Errorf("missing fold model for %s", bench)
		}
	}
	if len(ev.Profiles) != 65 {
		t.Errorf("profiles = %d, want 65", len(ev.Profiles))
	}
}

func TestCasesCoverEveryKernelAndMethod(t *testing.T) {
	_, ev := fullEval(t)
	type key struct {
		kernel string
		method sched.Method
	}
	seen := map[key]int{}
	for _, c := range ev.Cases {
		seen[key{c.KernelID, c.Method}]++
	}
	for _, kp := range ev.Profiles {
		for _, m := range sched.Methods() {
			if seen[key{kp.KernelID, m}] == 0 {
				t.Errorf("no cases for %s / %v", kp.KernelID, m)
			}
		}
	}
}

func TestCaseInvariants(t *testing.T) {
	_, ev := fullEval(t)
	for _, c := range ev.Cases {
		if c.PerfRatio <= 0 || math.IsNaN(c.PerfRatio) || math.IsInf(c.PerfRatio, 0) {
			t.Fatalf("%s %v: perf ratio %v", c.KernelID, c.Method, c.PerfRatio)
		}
		if c.PowerRatio <= 0 || math.IsNaN(c.PowerRatio) {
			t.Fatalf("%s %v: power ratio %v", c.KernelID, c.Method, c.PowerRatio)
		}
		if c.Under != c.Decision.MeetsCap(c.CapW) {
			t.Fatalf("%s %v: Under flag inconsistent", c.KernelID, c.Method)
		}
		// Exceeding oracle performance is only possible when exceeding
		// oracle power under the same cap (Fig 9 caption), whenever the
		// oracle itself met the cap.
		if c.Oracle.MeetsCap(c.CapW) && c.Under && c.PerfRatio > 1+1e-9 {
			t.Fatalf("%s %v cap %.2f: under-limit case beat the oracle (%v)", c.KernelID, c.Method, c.CapW, c.PerfRatio)
		}
	}
}

func TestOverallShapeMatchesPaper(t *testing.T) {
	// The paper's qualitative result (Table III / Fig 4):
	//  - Model+FL meets constraints most often;
	//  - GPU+FL meets them least often among FL methods but achieves
	//    high under-limit performance;
	//  - CPU+FL leaves the most performance on the table;
	//  - over-limit, GPU+FL overshoots power the most.
	_, ev := fullEval(t)
	modelFL := ev.Overall[sched.MethodModelFL]
	model := ev.Overall[sched.MethodModel]
	gpuFL := ev.Overall[sched.MethodGPUFL]
	cpuFL := ev.Overall[sched.MethodCPUFL]

	t.Logf("PctUnder: Model %.2f Model+FL %.2f GPU+FL %.2f CPU+FL %.2f",
		model.PctUnder, modelFL.PctUnder, gpuFL.PctUnder, cpuFL.PctUnder)
	t.Logf("UnderPerf: Model %.2f Model+FL %.2f GPU+FL %.2f CPU+FL %.2f",
		model.UnderPerfRatio, modelFL.UnderPerfRatio, gpuFL.UnderPerfRatio, cpuFL.UnderPerfRatio)
	t.Logf("OverPower: Model %.2f Model+FL %.2f GPU+FL %.2f CPU+FL %.2f",
		model.OverPowerRatio, modelFL.OverPowerRatio, gpuFL.OverPowerRatio, cpuFL.OverPowerRatio)

	if modelFL.PctUnder < gpuFL.PctUnder {
		t.Errorf("Model+FL (%.2f) should meet caps more often than GPU+FL (%.2f)", modelFL.PctUnder, gpuFL.PctUnder)
	}
	if modelFL.PctUnder < model.PctUnder {
		t.Errorf("Model+FL (%.2f) should meet caps at least as often as Model (%.2f)", modelFL.PctUnder, model.PctUnder)
	}
	if modelFL.PctUnder < 0.7 {
		t.Errorf("Model+FL compliance %.2f below the paper's regime (~0.88)", modelFL.PctUnder)
	}
	if modelFL.UnderPerfRatio < 0.75 {
		t.Errorf("Model+FL under-limit perf %.2f below the paper's regime (~0.91)", modelFL.UnderPerfRatio)
	}
	if cpuFL.UnderPerfRatio > modelFL.UnderPerfRatio {
		t.Errorf("CPU+FL under-limit perf (%.2f) should trail Model+FL (%.2f)", cpuFL.UnderPerfRatio, modelFL.UnderPerfRatio)
	}
	if gpuFL.HasOver && modelFL.HasOver && gpuFL.OverPowerRatio < modelFL.OverPowerRatio {
		t.Errorf("GPU+FL over-limit power (%.2f) should exceed Model+FL (%.2f)", gpuFL.OverPowerRatio, modelFL.OverPowerRatio)
	}
}

func TestGPUFLOverLimitPerfExtreme(t *testing.T) {
	// Fig 9: GPU+FL's over-limit performance is wildly above the oracle
	// on GPU-friendly benchmarks (clipped at 9297% for LU Large).
	_, ev := fullEval(t)
	found := false
	for _, combo := range ev.PerCombo {
		agg := combo.PerMethod[sched.MethodGPUFL]
		if agg.HasOver && agg.OverPerfRatio > 3 {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one combo where GPU+FL over-limit perf exceeds 300% of oracle")
	}
}

func TestPerComboCoversAllCombos(t *testing.T) {
	_, ev := fullEval(t)
	names := ev.ComboNames()
	if len(names) != 8 {
		t.Errorf("combos = %v", names)
	}
	for _, want := range []string{"LULESH Small", "LULESH Large", "CoMD Small", "CoMD Large", "SMC", "LU Small", "LU Medium", "LU Large"} {
		ok := false
		for _, n := range names {
			if n == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("missing combo %q", want)
		}
	}
}

func TestKernelSummaryConsistency(t *testing.T) {
	_, ev := fullEval(t)
	for _, s := range ev.PerKernel {
		if s.UnderCases > s.Cases {
			t.Fatalf("%s: under %d > cases %d", s.KernelID, s.UnderCases, s.Cases)
		}
		if p := s.PctUnder(); p < 0 || p > 1 {
			t.Fatalf("%s: PctUnder %v", s.KernelID, p)
		}
		if s.UnderCases > 0 && s.UnderPerfRatio <= 0 {
			t.Fatalf("%s: empty under metrics despite under cases", s.KernelID)
		}
	}
	if (KernelSummary{}).PctUnder() != 0 {
		t.Error("empty summary PctUnder should be 0")
	}
}

func TestReportTable1(t *testing.T) {
	h, ev := fullEval(t)
	out, err := ev.ReportTable1(h.Profiler.Space)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "CPU") || !strings.Contains(out, "GPU") {
		t.Errorf("Table I output:\n%s", out)
	}
	// The frontier must include both devices (the paper's Table I has a
	// CPU ramp then a GPU section).
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Errorf("Table I too short:\n%s", out)
	}
}

func TestReportFig2(t *testing.T) {
	h, ev := fullEval(t)
	out, err := ev.ReportFig2(h.Profiler.Space)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("Fig 2 scatter should mark frontier points")
	}
	pts, err := ev.Fig2Series(h.Profiler.Space)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != h.Profiler.Space.Len() {
		t.Errorf("Fig 2 points = %d, want %d", len(pts), h.Profiler.Space.Len())
	}
}

func TestReportTable2(t *testing.T) {
	out := ReportTable2()
	if !strings.Contains(out, "3.7 GHz") || !strings.Contains(out, "819 MHz") || !strings.Contains(out, "311 MHz") {
		t.Errorf("Table II:\n%s", out)
	}
}

func TestReportFig1(t *testing.T) {
	out := ReportFig1()
	for _, stage := range []string{"offline", "online", "Pareto", "cluster", "classif"} {
		if !strings.Contains(out, stage) {
			t.Errorf("Fig 1 missing %q:\n%s", stage, out)
		}
	}
}

func TestReportFig3(t *testing.T) {
	_, ev := fullEval(t)
	out, err := ev.ReportFig3("LULESH")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cluster") {
		t.Errorf("Fig 3:\n%s", out)
	}
	if _, err := ev.ReportFig3("NotABenchmark"); err == nil {
		t.Error("unknown fold accepted")
	}
}

func TestReportTable3AndFig4(t *testing.T) {
	_, ev := fullEval(t)
	t3 := ev.ReportTable3()
	for _, m := range sched.Methods() {
		if !strings.Contains(t3, m.String()) {
			t.Errorf("Table III missing %v:\n%s", m, t3)
		}
	}
	f4 := ev.ReportFig4()
	if !strings.Contains(f4, "Model+FL") {
		t.Errorf("Fig 4:\n%s", f4)
	}
	if len(ev.Fig4Series()) != len(sched.Methods()) {
		t.Error("Fig 4 series size")
	}
}

func TestReportPerComboFigs(t *testing.T) {
	_, ev := fullEval(t)
	for name, rep := range map[string]string{
		"fig5": ev.ReportFig5(), "fig6": ev.ReportFig6(),
		"fig8": ev.ReportFig8(), "fig9": ev.ReportFig9(),
	} {
		if !strings.Contains(rep, "LULESH Small") || !strings.Contains(rep, "LU Large") {
			t.Errorf("%s missing combos:\n%s", name, rep)
		}
	}
}

func TestReportFig7(t *testing.T) {
	h, ev := fullEval(t)
	out, err := ev.ReportFig7(h.Profiler.Space)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LU Small") {
		t.Errorf("Fig 7:\n%s", out)
	}
}

func TestReportClusterAssignments(t *testing.T) {
	_, ev := fullEval(t)
	out := ReportClusterAssignments(ev.FoldModels["LU"])
	if !strings.Contains(out, "cluster 0") {
		t.Errorf("cluster report:\n%s", out)
	}
}

func TestProfileByID(t *testing.T) {
	_, ev := fullEval(t)
	if _, ok := ev.ProfileByID(FrontierKernelID); !ok {
		t.Error("Table I kernel missing from profiles")
	}
	if _, ok := ev.ProfileByID("nope"); ok {
		t.Error("unknown ID found")
	}
}

func TestModelBeatsNaiveBaselinesOnBalance(t *testing.T) {
	// Fig 4's geometric takeaway: Model+FL is closest to the oracle
	// corner (1, 1) considering both axes together.
	_, ev := fullEval(t)
	dist := func(a MethodAgg) float64 {
		dx := 1 - a.PctUnder
		dy := 1 - a.UnderPerfRatio
		return math.Hypot(dx, dy)
	}
	dModelFL := dist(ev.Overall[sched.MethodModelFL])
	for _, m := range []sched.Method{sched.MethodCPUFL, sched.MethodGPUFL} {
		if d := dist(ev.Overall[m]); d < dModelFL {
			t.Errorf("%v is closer to the oracle corner (%.3f) than Model+FL (%.3f)", m, d, dModelFL)
		}
	}
}

func TestEvaluationDeterministic(t *testing.T) {
	// A second, fresh harness must reproduce identical headline numbers.
	h2 := NewHarness()
	h2.Opts.Iterations = 2
	ev2, err := h2.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, ev1 := fullEval(t)
	for _, m := range sched.Methods() {
		a, b := ev1.Overall[m], ev2.Overall[m]
		if a.PctUnder != b.PctUnder || a.UnderPerfRatio != b.UnderPerfRatio {
			t.Errorf("%v: evaluation not deterministic (%v vs %v)", m, a, b)
		}
	}
}

func TestAccuracyStats(t *testing.T) {
	_, ev := fullEval(t)
	a, err := ev.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if a.PerfMedAPE <= 0 || a.PerfMedAPE > 0.6 {
		t.Errorf("perf median APE = %v", a.PerfMedAPE)
	}
	if a.PowerMedAPE <= 0 || a.PowerMedAPE > 0.35 {
		t.Errorf("power median APE = %v", a.PowerMedAPE)
	}
	if a.RankFidelity < 0.5 {
		t.Errorf("rank fidelity = %v, want >= 0.5 (models must rank configs)", a.RankFidelity)
	}
	if a.DeviceAccuracy < 0.7 {
		t.Errorf("device accuracy = %v", a.DeviceAccuracy)
	}
	if a.ClassifierAccuracy < 0.7 {
		t.Errorf("classifier accuracy = %v", a.ClassifierAccuracy)
	}
	if len(a.PerBenchmark) != 4 {
		t.Errorf("per-benchmark entries = %d", len(a.PerBenchmark))
	}
	for bench, pb := range a.PerBenchmark {
		if pb.Kernels == 0 {
			t.Errorf("%s: zero kernels", bench)
		}
	}
	t.Logf("accuracy: perf medAPE %.3f, power medAPE %.3f, tau %.3f, device %.2f, tree %.2f",
		a.PerfMedAPE, a.PowerMedAPE, a.RankFidelity, a.DeviceAccuracy, a.ClassifierAccuracy)
}

func TestReportAccuracy(t *testing.T) {
	_, ev := fullEval(t)
	out, err := ev.ReportAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"median APE", "Kendall tau", "best-device", "LULESH"} {
		if !strings.Contains(out, want) {
			t.Errorf("accuracy report missing %q:\n%s", want, out)
		}
	}
}

// TestHeadlineNumbersPinned pins the exact headline values of the
// default two-iteration evaluation. The whole pipeline is deterministic
// (hash-seeded noise, seeded clustering), so any drift here means a
// behavioural change somewhere in the substrate or model — which must
// be deliberate and accompanied by an EXPERIMENTS.md update.
func TestHeadlineNumbersPinned(t *testing.T) {
	_, ev := fullEval(t)
	pin := func(name string, got, want float64) {
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("%s = %.4f, pinned at %.4f — update EXPERIMENTS.md if intentional", name, got, want)
		}
	}
	pin("Model+FL pct-under", ev.Overall[sched.MethodModelFL].PctUnder, 0.8232)
	pin("Model+FL under-perf", ev.Overall[sched.MethodModelFL].UnderPerfRatio, 0.9246)
	pin("GPU+FL pct-under", ev.Overall[sched.MethodGPUFL].PctUnder, 0.5297)
	pin("CPU+FL under-perf", ev.Overall[sched.MethodCPUFL].UnderPerfRatio, 0.6084)
}

func TestSafeRatio(t *testing.T) {
	for _, tc := range []struct {
		num, den, want float64
	}{
		{3, 4, 0.75},
		{1, 0, 0},           // would be +Inf
		{-1, 0, 0},          // would be -Inf
		{0, 0, 0},           // would be NaN
		{math.Inf(1), 2, 0}, // non-finite numerator
		{math.NaN(), 1, 0},  // NaN numerator
		{2, math.Inf(1), 0}, // 2/Inf = 0 already
		{1e-300, 1e300, 0},  // underflows to exact 0, passes through
		{1e300, 1e-300, 0},  // overflows to +Inf, guarded
	} {
		got := safeRatio(tc.num, tc.den)
		if got != tc.want {
			t.Errorf("safeRatio(%v, %v) = %v, want %v", tc.num, tc.den, got, tc.want)
		}
	}
}

// TestInfeasibleCapsFlaggedAndGuarded regresses the division-by-zero /
// infeasible-cap fix: a profile whose every configuration draws far
// more power than any frontier cap (and measures zero performance, so
// oracle-relative ratios would be 0/0) must yield cases that are
// flagged Infeasible with finite ratios, and aggregation must skip them
// rather than folding garbage into the weighted sums.
func TestInfeasibleCapsFlaggedAndGuarded(t *testing.T) {
	h, ev := fullEval(t)
	src := ev.Profiles[0]
	runner := &sched.Runner{Space: h.Profiler.Space, Model: ev.FoldModels[src.Benchmark]}

	doctored := *src
	doctored.Stats = append([]core.ConfigStats(nil), src.Stats...)
	for i := range doctored.Stats {
		doctored.Stats[i].MeanPower = 1e6
		doctored.Stats[i].MeanPerf = 0
	}

	cases, err := evaluateKernel(runner, &doctored, sched.Methods())
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no cases produced")
	}
	for _, c := range cases {
		if !c.Infeasible {
			t.Fatalf("%v cap %v: infeasible cap not flagged", c.Method, c.CapW)
		}
		if c.Under {
			t.Fatalf("%v cap %v: claims to meet an infeasible cap", c.Method, c.CapW)
		}
		for name, r := range map[string]float64{"perf": c.PerfRatio, "power": c.PowerRatio} {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("%v cap %v: %s ratio = %v, guard failed", c.Method, c.CapW, name, r)
			}
		}
	}

	degenerate := &Evaluation{Cases: cases}
	degenerate.aggregate(sched.Methods())
	if len(degenerate.PerKernel) != 0 {
		t.Errorf("infeasible cases produced %d kernel summaries, want 0", len(degenerate.PerKernel))
	}
	for m, agg := range degenerate.Overall {
		for _, v := range []float64{agg.PctUnder, agg.UnderPerfRatio, agg.UnderPowerRatio, agg.OverPerfRatio, agg.OverPowerRatio} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%v: non-finite aggregate %v", m, v)
			}
		}
	}
}

func TestCleanRunsHaveNoInfeasibleCases(t *testing.T) {
	// Every clean-run cap is a frontier-point power of the kernel
	// itself, so the oracle always meets it; the Infeasible flag must
	// stay a fault-path-only marker and never perturb Table III.
	_, ev := fullEval(t)
	for _, c := range ev.Cases {
		if c.Infeasible {
			t.Fatalf("%s %v cap %v flagged infeasible on a clean run", c.KernelID, c.Method, c.CapW)
		}
	}
}

func TestPlotFrontier(t *testing.T) {
	h, ev := fullEval(t)
	out, err := ev.PlotFrontier(h.Profiler.Space, FrontierKernelID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C", "G", "power (W)", "normalized performance"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Errorf("plot too short (%d lines)", len(lines))
	}
	if _, err := ev.PlotFrontier(h.Profiler.Space, "nope"); err == nil {
		t.Error("unknown kernel plotted")
	}
}

func TestExtensionStudy(t *testing.T) {
	results, err := RunExtensionStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ExtensionVariants()) {
		t.Fatalf("results = %d", len(results))
	}
	base := results[0]
	for _, r := range results {
		for _, v := range []float64{r.ModelPctUnder, r.ModelFLPctUnder, r.ModelUnderPerf, r.ModelFLUnderPerf} {
			if v <= 0 || v > 1.01 {
				t.Errorf("variant %s: out-of-range metric %v", r.Variant.Name, v)
			}
		}
	}
	// The variance-aware margin must raise plain-Model compliance over
	// base (it buys compliance with expected performance).
	var va ExtensionResult
	for _, r := range results {
		if r.Variant.Name == "+va(z=1)" {
			va = r
		}
	}
	if va.ModelPctUnder <= base.ModelPctUnder {
		t.Errorf("variance-aware compliance %.2f not above base %.2f", va.ModelPctUnder, base.ModelPctUnder)
	}
	out := ReportExtensionStudy(results)
	if !strings.Contains(out, "+log+va") {
		t.Errorf("report:\n%s", out)
	}
	t.Log("\n" + out)
}

func TestWorstPredicted(t *testing.T) {
	_, ev := fullEval(t)
	worst, err := ev.WorstPredicted(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(worst) != 5 {
		t.Fatalf("worst = %d", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].PerfMedAPE > worst[i-1].PerfMedAPE {
			t.Error("not sorted by descending error")
		}
	}
	out, err := ev.ReportWorstPredicted(5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst-predicted") {
		t.Errorf("report:\n%s", out)
	}
	// n=0 returns everything.
	all, err := ev.WorstPredicted(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 65 {
		t.Errorf("all = %d", len(all))
	}
}
