package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"acsel/internal/core"
)

// KernelError summarizes the model's prediction quality for one
// held-out kernel.
type KernelError struct {
	KernelID    string
	Cluster     int
	PerfMedAPE  float64
	PowerMedAPE float64
}

// WorstPredicted returns the n held-out kernels with the largest median
// performance-prediction errors — the first place to look when the
// model misbehaves (typically kernels whose archetype is rare in the
// training folds).
func (ev *Evaluation) WorstPredicted(n int) ([]KernelError, error) {
	var out []KernelError
	for _, kp := range ev.Profiles {
		model, ok := ev.FoldModels[kp.Benchmark]
		if !ok {
			return nil, fmt.Errorf("eval: no fold model for %s", kp.Benchmark)
		}
		sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
		preds, cluster, err := model.PredictAll(sr)
		if err != nil {
			return nil, err
		}
		var perfErrs, powErrs []float64
		for id, p := range preds {
			tp := kp.Stats[id].MeanPerf
			tw := kp.Stats[id].MeanPower
			perfErrs = append(perfErrs, math.Abs(p.Perf-tp)/tp)
			powErrs = append(powErrs, math.Abs(p.PowerW-tw)/tw)
		}
		out = append(out, KernelError{
			KernelID:    kp.KernelID,
			Cluster:     cluster,
			PerfMedAPE:  medianOf(perfErrs),
			PowerMedAPE: medianOf(powErrs),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PerfMedAPE > out[j].PerfMedAPE })
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out, nil
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 0 {
		return 0
	}
	return cp[len(cp)/2]
}

// ReportWorstPredicted renders the diagnostic.
func (ev *Evaluation) ReportWorstPredicted(n int) (string, error) {
	worst, err := ev.WorstPredicted(n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d worst-predicted kernels (held-out, median abs. error)\n", len(worst))
	fmt.Fprintf(&b, "%-42s %-8s %-10s %-10s\n", "kernel", "cluster", "perf APE", "power APE")
	for _, w := range worst {
		fmt.Fprintf(&b, "%-42s %-8d %-10.1f %-10.1f\n",
			w.KernelID, w.Cluster, w.PerfMedAPE*100, w.PowerMedAPE*100)
	}
	return b.String(), nil
}
