package eval

import (
	"fmt"
	"strings"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/sched"
)

// ExtensionVariant is one configuration of the §VI future-work
// extensions applied to the model-based methods.
type ExtensionVariant struct {
	Name string
	// LogTargets enables the variance-stabilizing transform on power
	// regression targets.
	LogTargets bool
	// VarAwareZ is the variance-aware selection margin (0 disables).
	VarAwareZ float64
}

// ExtensionVariants is the study grid: the base system and the three
// §VI combinations.
func ExtensionVariants() []ExtensionVariant {
	return []ExtensionVariant{
		{Name: "base"},
		{Name: "+log", LogTargets: true},
		{Name: "+va(z=1)", VarAwareZ: 1},
		{Name: "+log+va", LogTargets: true, VarAwareZ: 1},
	}
}

// ExtensionResult is one variant's headline numbers for the two
// model-based methods.
type ExtensionResult struct {
	Variant ExtensionVariant
	// Per method: cap compliance and under-limit oracle-relative perf.
	ModelPctUnder    float64
	ModelUnderPerf   float64
	ModelFLPctUnder  float64
	ModelFLUnderPerf float64
}

// RunExtensionStudy evaluates every extension variant with the full
// cross-validated harness at the given profiling iteration count.
func RunExtensionStudy(iterations int) ([]ExtensionResult, error) {
	var out []ExtensionResult
	for _, v := range ExtensionVariants() {
		h := NewHarness()
		h.Opts.Iterations = iterations
		h.Opts.LogTargets = v.LogTargets
		h.MethodsUnderTest = []sched.Method{sched.MethodModel, sched.MethodModelFL}
		ev, err := runWithVarAware(h, v.VarAwareZ)
		if err != nil {
			return nil, fmt.Errorf("eval: variant %q: %w", v.Name, err)
		}
		out = append(out, ExtensionResult{
			Variant:          v,
			ModelPctUnder:    ev.Overall[sched.MethodModel].PctUnder,
			ModelUnderPerf:   ev.Overall[sched.MethodModel].UnderPerfRatio,
			ModelFLPctUnder:  ev.Overall[sched.MethodModelFL].PctUnder,
			ModelFLUnderPerf: ev.Overall[sched.MethodModelFL].UnderPerfRatio,
		})
	}
	return out, nil
}

// runWithVarAware mirrors Harness.Run but threads the variance-aware
// margin into each fold's runner.
func runWithVarAware(h *Harness, z float64) (*Evaluation, error) {
	methods := h.MethodsUnderTest
	if len(methods) == 0 {
		methods = sched.Methods()
	}
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	profiles, err := core.Characterize(h.Profiler, ks, h.Opts)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{FoldModels: map[string]*core.Model{}, Profiles: profiles}
	for _, bench := range benchmarkNames(profiles) {
		var train, test []*core.KernelProfile
		for _, kp := range profiles {
			if kp.Benchmark == bench {
				test = append(test, kp)
			} else {
				train = append(train, kp)
			}
		}
		model, err := core.Train(h.Profiler.Space, train, h.Opts)
		if err != nil {
			return nil, err
		}
		ev.FoldModels[bench] = model
		runner := &sched.Runner{Space: h.Profiler.Space, Model: model, VarAwareZ: z}
		for _, kp := range test {
			cases, err := evaluateKernel(runner, kp, methods)
			if err != nil {
				return nil, err
			}
			ev.Cases = append(ev.Cases, cases...)
		}
	}
	ev.aggregate(methods)
	return ev, nil
}

// ReportExtensionStudy renders the study as a table.
func ReportExtensionStudy(results []ExtensionResult) string {
	var b strings.Builder
	b.WriteString("Extension study (§VI future work): model variants, leave-one-benchmark-out\n")
	fmt.Fprintf(&b, "%-10s %-16s %-16s %-18s %-18s\n",
		"variant", "Model %under", "Model %perf", "Model+FL %under", "Model+FL %perf")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %-16.0f %-16.0f %-18.0f %-18.0f\n",
			r.Variant.Name,
			r.ModelPctUnder*100, r.ModelUnderPerf*100,
			r.ModelFLPctUnder*100, r.ModelFLUnderPerf*100)
	}
	return b.String()
}

func benchmarkNames(profiles []*core.KernelProfile) []string {
	seen := map[string]bool{}
	var names []string
	for _, kp := range profiles {
		if !seen[kp.Benchmark] {
			seen[kp.Benchmark] = true
			names = append(names, kp.Benchmark)
		}
	}
	return names
}
