package eval

import (
	"fmt"
	"strings"

	"acsel/internal/sched"
)

// ExtensionVariant is one configuration of the §VI future-work
// extensions applied to the model-based methods.
type ExtensionVariant struct {
	Name string
	// LogTargets enables the variance-stabilizing transform on power
	// regression targets.
	LogTargets bool
	// VarAwareZ is the variance-aware selection margin (0 disables).
	VarAwareZ float64
}

// ExtensionVariants is the study grid: the base system and the three
// §VI combinations.
func ExtensionVariants() []ExtensionVariant {
	return []ExtensionVariant{
		{Name: "base"},
		{Name: "+log", LogTargets: true},
		{Name: "+va(z=1)", VarAwareZ: 1},
		{Name: "+log+va", LogTargets: true, VarAwareZ: 1},
	}
}

// ExtensionResult is one variant's headline numbers for the two
// model-based methods.
type ExtensionResult struct {
	Variant ExtensionVariant
	// Per method: cap compliance and under-limit oracle-relative perf.
	ModelPctUnder    float64
	ModelUnderPerf   float64
	ModelFLPctUnder  float64
	ModelFLUnderPerf float64
}

// RunExtensionStudy evaluates every extension variant with the full
// cross-validated harness at the given profiling iteration count.
func RunExtensionStudy(iterations int) ([]ExtensionResult, error) {
	var out []ExtensionResult
	for _, v := range ExtensionVariants() {
		h := NewHarness()
		h.Opts.Iterations = iterations
		h.Opts.LogTargets = v.LogTargets
		h.MethodsUnderTest = []sched.Method{sched.MethodModel, sched.MethodModelFL}
		ev, err := runWithVarAware(h, v.VarAwareZ)
		if err != nil {
			return nil, fmt.Errorf("eval: variant %q: %w", v.Name, err)
		}
		out = append(out, ExtensionResult{
			Variant:          v,
			ModelPctUnder:    ev.Overall[sched.MethodModel].PctUnder,
			ModelUnderPerf:   ev.Overall[sched.MethodModel].UnderPerfRatio,
			ModelFLPctUnder:  ev.Overall[sched.MethodModelFL].PctUnder,
			ModelFLUnderPerf: ev.Overall[sched.MethodModelFL].UnderPerfRatio,
		})
	}
	return out, nil
}

// runWithVarAware is Harness.Run with the variance-aware margin
// threaded into each fold's runner, sharing the incremental pipeline
// (one dissimilarity matrix, parallel folds) with the base evaluation.
func runWithVarAware(h *Harness, z float64) (*Evaluation, error) {
	h.varAwareZ = z
	return h.Run()
}

// ReportExtensionStudy renders the study as a table.
func ReportExtensionStudy(results []ExtensionResult) string {
	var b strings.Builder
	b.WriteString("Extension study (§VI future work): model variants, leave-one-benchmark-out\n")
	fmt.Fprintf(&b, "%-10s %-16s %-16s %-18s %-18s\n",
		"variant", "Model %under", "Model %perf", "Model+FL %under", "Model+FL %perf")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %-16.0f %-16.0f %-18.0f %-18.0f\n",
			r.Variant.Name,
			r.ModelPctUnder*100, r.ModelUnderPerf*100,
			r.ModelFLPctUnder*100, r.ModelFLUnderPerf*100)
	}
	return b.String()
}
