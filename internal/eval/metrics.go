package eval

import "acsel/internal/metrics"

// Metric families of the evaluation harness: wall time per pipeline
// phase and per cross-validation fold, plus a counter for cases whose
// oracle found no feasible configuration (the degenerate inputs the
// ratio guards exist for).
var (
	mEvalPhase = metrics.NewHistogramVec("acsel_eval_phase_seconds",
		"Wall time of evaluation-harness phases (characterize, folds, aggregate).",
		metrics.TimeBuckets, "phase")
	mFoldSeconds = metrics.NewHistogram("acsel_eval_fold_seconds",
		"Wall time of one leave-one-benchmark-out fold (train plus per-kernel evaluation).",
		metrics.TimeBuckets)
	mInfeasibleCases = metrics.NewCounter("acsel_eval_infeasible_cases_total",
		"Evaluation cases whose cap was infeasible for every configuration (oracle fell back above the cap).")
	//lint:ignore metricname dimensionless concurrency level; no unit suffix applies
	mFoldWorkers = metrics.NewGauge("acsel_eval_fold_workers",
		"Cross-validation folds currently training and evaluating concurrently.")
	mMatrixSeconds = metrics.NewHistogramVec("acsel_eval_matrix_seconds",
		"Wall time obtaining dissimilarity matrices: mode full is the one-off suite-wide computation, mode subset each fold's zero-copy reuse view.",
		metrics.TimeBuckets, "mode")
)
