package power

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"acsel/internal/fault"
)

func TestMeasureEdgeDurations(t *testing.T) {
	s := DefaultSMU()
	tr := ConstantTrace(10, 5)
	for _, d := range []float64{0, -1, math.NaN(), math.Inf(-1)} {
		if _, err := s.Measure(tr, d, nil); !errors.Is(err, ErrBadDuration) {
			t.Errorf("duration %v: err = %v, want ErrBadDuration", d, err)
		}
	}
}

func TestMeasureNilRNGIsNoiseless(t *testing.T) {
	// A nil RNG must disable noise entirely, not panic: two nil-RNG
	// measurements are identical and match the trace exactly.
	s := DefaultSMU()
	tr := ConstantTrace(10, 5)
	a, err := s.Measure(tr, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Measure(tr, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nil-RNG measurements differ: %+v vs %+v", a, b)
	}
	if math.Abs(a.TotalAvgW()-15) > 1e-9 {
		t.Errorf("noiseless avg = %v, want 15", a.TotalAvgW())
	}
}

func TestMeasureFaultyNoFaultsIsMeasure(t *testing.T) {
	// The fault-capable path with no faults must be byte-identical to
	// the clean path — the clean-run-equivalence guarantee.
	s := DefaultSMU()
	tr := ConstantTrace(12, 8)
	a, errA := s.Measure(tr, 0.3, rand.New(rand.NewSource(5)))
	b, errB := s.MeasureFaulty(tr, 0.3, rand.New(rand.NewSource(5)), nil)
	if a != b || (errA == nil) != (errB == nil) {
		t.Errorf("MeasureFaulty(nil faults) diverged: %+v/%v vs %+v/%v", a, errA, b, errB)
	}
}

func TestMeasureFaultyDropout(t *testing.T) {
	s := DefaultSMU()
	tr := ConstantTrace(10, 5)
	m, err := s.MeasureFaulty(tr, 0.5, nil, []fault.Fault{{Kind: fault.SensorDropout}})
	if !errors.Is(err, ErrSensorDropout) {
		t.Fatalf("err = %v, want ErrSensorDropout", err)
	}
	// Dropout means "no data": the measurement carries timing but no
	// energy or power claim.
	if m.TotalAvgW() != 0 || m.TotalEnergyJ() != 0 { //lint:ignore floatcmp dropout must carry exactly zero power
		t.Errorf("dropout leaked a reading: %+v", m)
	}
	if m.DurationSec != 0.5 { //lint:ignore floatcmp duration copied verbatim
		t.Errorf("dropout lost timing: %+v", m)
	}
}

func TestMeasureFaultyStuckAndSpike(t *testing.T) {
	s := DefaultSMU()
	s.NoiseStd = 0 // deterministic for exact scaling checks
	tr := ConstantTrace(12, 8)

	m, err := s.MeasureFaulty(tr, 0.5, nil, []fault.Fault{{Kind: fault.SensorStuck, Magnitude: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalAvgW()-9) > 1e-9 {
		t.Errorf("stuck sensor read %v, want 9", m.TotalAvgW())
	}

	m, err = s.MeasureFaulty(tr, 0.5, nil, []fault.Fault{{Kind: fault.SensorSpike, Magnitude: 8}})
	if !errors.Is(err, ErrImplausibleReading) {
		t.Fatalf("160 W spike: err = %v, want ErrImplausibleReading", err)
	}
	// The implausible claim is still returned so callers can log it.
	if math.Abs(m.TotalAvgW()-160) > 1e-9 {
		t.Errorf("spiked reading = %v, want 160", m.TotalAvgW())
	}
}

func TestMeasureFaultyStuckOnIdleTrace(t *testing.T) {
	// A latched sensor value still reports on a 0 W trace, split across
	// domains; total and energy must stay consistent.
	s := DefaultSMU()
	s.NoiseStd = 0
	m, err := s.MeasureFaulty(ConstantTrace(0, 0), 0.5, nil, []fault.Fault{{Kind: fault.SensorStuck, Magnitude: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalAvgW()-9) > 1e-9 {
		t.Errorf("idle stuck reading = %v, want 9", m.TotalAvgW())
	}
	if math.Abs(m.TotalEnergyJ()-9*0.5) > 1e-9 {
		t.Errorf("idle stuck energy = %v, want %v", m.TotalEnergyJ(), 9*0.5)
	}
}

func TestDistortReadingComposes(t *testing.T) {
	// Faults apply in order; dropout always wins.
	w, err := DistortReading(20, []fault.Fault{
		{Kind: fault.SensorStuck, Magnitude: 9},
		{Kind: fault.SensorSpike, Magnitude: 2},
	})
	if err != nil || math.Abs(w-18) > 1e-12 {
		t.Errorf("stuck-then-spike = %v, %v; want 18", w, err)
	}
	if _, err := DistortReading(20, []fault.Fault{
		{Kind: fault.SensorSpike, Magnitude: 2},
		{Kind: fault.SensorDropout},
	}); !errors.Is(err, ErrSensorDropout) {
		t.Errorf("dropout in chain: err = %v", err)
	}
	w, err = DistortReading(20, []fault.Fault{{Kind: fault.SensorDrift, Magnitude: 0.1}})
	if err != nil || math.Abs(w-18) > 1e-12 {
		t.Errorf("10%% drift = %v, %v; want 18", w, err)
	}
	w, err = DistortReading(20, nil)
	if err != nil || w != 20 { //lint:ignore floatcmp no faults must be the identity
		t.Errorf("identity = %v, %v", w, err)
	}
}
