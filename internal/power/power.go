// Package power simulates the paper's power-measurement path: the
// on-chip system-management microcontroller (SMU) exposes real-time
// power estimates for two domains — the CPU cores, and the northbridge
// plus GPU — which the profiling library samples at 1 kHz and
// integrates over each kernel execution to obtain average power
// (§III-B, §IV-C). The same package provides the firmware-style energy
// accumulator the paper notes would remove sampling overhead on newer
// hardware.
package power

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"acsel/internal/fault"
)

// Domain identifies one of the two measured power planes.
type Domain int

const (
	// DomainCPU is the CPU-cores power plane.
	DomainCPU Domain = iota
	// DomainNBGPU is the northbridge + GPU power plane.
	DomainNBGPU
)

// String returns a short domain name.
func (d Domain) String() string {
	if d == DomainCPU {
		return "cpu"
	}
	return "nbgpu"
}

// Trace is an instantaneous two-domain power function of time (seconds
// since kernel start). The APU model produces constant traces per
// kernel; tests exercise time-varying ones.
type Trace func(t float64) (cpuW, nbgpuW float64)

// ConstantTrace returns a Trace with fixed per-domain power.
func ConstantTrace(cpuW, nbgpuW float64) Trace {
	return func(float64) (float64, float64) { return cpuW, nbgpuW }
}

// SMU models the system-management microcontroller's power estimator.
type SMU struct {
	// SampleHz is the sampling rate (the paper samples at 1 kHz).
	SampleHz float64
	// NoiseStd is the relative standard deviation of per-sample
	// estimation noise.
	NoiseStd float64
	// QuantumW is the estimator's reporting resolution in watts
	// (samples are rounded to multiples of it; 0 disables quantization).
	QuantumW float64
	// MaxPlausibleW is the physical ceiling of a believable package
	// reading; measurements beyond it return ErrImplausibleReading so
	// callers can quarantine them (0 disables the check).
	MaxPlausibleW float64
}

// DefaultSMU returns an SMU matching the paper's setup: 1 kHz sampling
// with a realistic estimator noise and 1/8 W quantization. The
// plausibility ceiling sits well above the machine's ~55 W peak but
// below any spiking sensor's output.
func DefaultSMU() *SMU {
	return &SMU{SampleHz: 1000, NoiseStd: 0.01, QuantumW: 0.125, MaxPlausibleW: 120}
}

// Measurement is the integrated result of sampling one kernel
// execution.
type Measurement struct {
	DurationSec float64
	AvgCPUW     float64
	AvgNBGPUW   float64
	EnergyCPUJ  float64
	EnergyNBJ   float64
	Samples     int
}

// TotalAvgW is the package average power.
func (m Measurement) TotalAvgW() float64 { return m.AvgCPUW + m.AvgNBGPUW }

// TotalEnergyJ is the package energy.
func (m Measurement) TotalEnergyJ() float64 { return m.EnergyCPUJ + m.EnergyNBJ }

// ErrBadDuration is returned for non-positive measurement windows.
var ErrBadDuration = errors.New("power: non-positive duration")

// ErrSensorDropout is returned when the SMU produces no reading at all
// — the sensor is dead for this measurement. Distinguish it from
// ErrImplausibleReading: dropout means "no data", implausible means
// "data you must not trust".
var ErrSensorDropout = errors.New("power: SMU sensor dropout")

// ErrImplausibleReading is returned when a reading violates physical
// bounds (negative, or beyond MaxPlausibleW). The measurement is
// still returned alongside the error so callers can log what the
// sensor claimed before quarantining it.
var ErrImplausibleReading = errors.New("power: implausible power reading")

// Measure samples the trace at SampleHz over [0, duration] and
// integrates with the trapezoid rule. At least two samples (start and
// end) are always taken, so sub-millisecond kernels still measure.
// Sampling noise is drawn from rng; passing a seeded rng makes the
// measurement reproducible. Readings beyond MaxPlausibleW return the
// measurement together with ErrImplausibleReading.
func (s *SMU) Measure(trace Trace, duration float64, rng *rand.Rand) (Measurement, error) {
	return s.MeasureFaulty(trace, duration, rng, nil)
}

// MeasureFaulty is Measure under injected sensor faults: the resolved
// faults of one fault-plan event (fault.SiteSMU) distort or destroy
// the integrated reading. With no faults it is exactly Measure, so
// clean runs are byte-identical whether or not injection is wired.
func (s *SMU) MeasureFaulty(trace Trace, duration float64, rng *rand.Rand, faults []fault.Fault) (Measurement, error) {
	m, err := s.measure(trace, duration, rng)
	if err != nil {
		return m, err
	}
	if len(faults) > 0 {
		total := m.TotalAvgW()
		distorted, err := DistortReading(total, faults)
		if err != nil {
			return Measurement{DurationSec: m.DurationSec, Samples: m.Samples}, err
		}
		if total > 0 {
			scale := distorted / total
			m.AvgCPUW *= scale
			m.AvgNBGPUW *= scale
			m.EnergyCPUJ *= scale
			m.EnergyNBJ *= scale
		} else if distorted > 0 {
			// A stuck sensor still reports on an idle trace: split the
			// latched value like the machine's typical CPU:NB ratio.
			m.AvgCPUW = distorted * 0.6
			m.AvgNBGPUW = distorted * 0.4
			m.EnergyCPUJ = m.AvgCPUW * duration
			m.EnergyNBJ = m.AvgNBGPUW * duration
		}
	}
	if s.MaxPlausibleW > 0 && (m.TotalAvgW() > s.MaxPlausibleW || m.TotalAvgW() < 0) {
		return m, fmt.Errorf("%w: %.1f W", ErrImplausibleReading, m.TotalAvgW())
	}
	return m, nil
}

// DistortReading applies one event's sensor faults to a scalar package
// power reading — the same transfer function MeasureFaulty applies to
// integrated measurements, reusable wherever a limiter consults a
// single power number. Dropout returns ErrSensorDropout.
func DistortReading(w float64, faults []fault.Fault) (float64, error) {
	for _, f := range faults {
		switch f.Kind {
		case fault.SensorDropout:
			return 0, ErrSensorDropout
		case fault.SensorStuck:
			w = f.Magnitude
		case fault.SensorSpike:
			w *= f.Magnitude
		case fault.SensorDrift:
			w *= 1 - f.Magnitude
		}
	}
	return w, nil
}

func (s *SMU) measure(trace Trace, duration float64, rng *rand.Rand) (Measurement, error) {
	// NaN compares false against every bound and +Inf would overflow
	// the sample count, so both are as unusable as a negative window.
	if math.IsNaN(duration) || math.IsInf(duration, 0) || duration <= 0 {
		return Measurement{}, ErrBadDuration
	}
	n := int(duration*s.SampleHz) + 1
	if n < 2 {
		n = 2
	}
	dt := duration / float64(n-1)
	var eCPU, eNB float64
	var prevCPU, prevNB float64
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		cpu, nb := trace(t)
		cpu = s.distort(cpu, rng)
		nb = s.distort(nb, rng)
		if i > 0 {
			eCPU += (cpu + prevCPU) / 2 * dt
			eNB += (nb + prevNB) / 2 * dt
		}
		prevCPU, prevNB = cpu, nb
	}
	return Measurement{
		DurationSec: duration,
		AvgCPUW:     eCPU / duration,
		AvgNBGPUW:   eNB / duration,
		EnergyCPUJ:  eCPU,
		EnergyNBJ:   eNB,
		Samples:     n,
	}, nil
}

func (s *SMU) distort(w float64, rng *rand.Rand) float64 {
	if rng != nil && s.NoiseStd > 0 {
		w *= 1 + rng.NormFloat64()*s.NoiseStd
	}
	if s.QuantumW > 0 {
		w = math.Round(w/s.QuantumW) * s.QuantumW
	}
	if w < 0 {
		w = 0
	}
	return w
}

// SamplingOverheadFrac estimates the fraction of kernel runtime spent
// servicing sampling interrupts, given a per-sample service cost. The
// paper bounds this overhead below 10%; tests assert the model obeys
// the same bound for realistic kernel durations.
func (s *SMU) SamplingOverheadFrac(duration, perSampleCostSec float64) float64 {
	if duration <= 0 {
		return 0
	}
	n := float64(int(duration*s.SampleHz) + 1)
	return n * perSampleCostSec / duration
}

// Accumulator is a monotonically increasing per-domain energy counter,
// the firmware-based alternative to sampling (§IV-C). Reading it twice
// around a kernel yields exact energy without sampling overhead.
type Accumulator struct {
	energyJ [2]float64
}

// Add accrues energy into a domain. Negative increments are ignored, as
// hardware accumulators cannot decrease.
func (a *Accumulator) Add(d Domain, joules float64) {
	if joules > 0 {
		a.energyJ[d] += joules
	}
}

// Read returns the current counter value for a domain.
func (a *Accumulator) Read(d Domain) float64 { return a.energyJ[d] }

// Window measures average power between two accumulator snapshots.
type Window struct {
	startCPU, startNB float64
	startTime         float64
}

// Begin snapshots the accumulator at time t (seconds).
func (a *Accumulator) Begin(t float64) Window {
	return Window{startCPU: a.energyJ[DomainCPU], startNB: a.energyJ[DomainNBGPU], startTime: t}
}

// End computes the measurement between the snapshot and time t.
func (a *Accumulator) End(w Window, t float64) (Measurement, error) {
	dt := t - w.startTime
	if dt <= 0 {
		return Measurement{}, ErrBadDuration
	}
	eCPU := a.energyJ[DomainCPU] - w.startCPU
	eNB := a.energyJ[DomainNBGPU] - w.startNB
	return Measurement{
		DurationSec: dt,
		AvgCPUW:     eCPU / dt,
		AvgNBGPUW:   eNB / dt,
		EnergyCPUJ:  eCPU,
		EnergyNBJ:   eNB,
		Samples:     2,
	}, nil
}

// Phase is one segment of a phased power trace.
type Phase struct {
	DurationSec float64
	CPUW        float64
	NBGPUW      float64
}

// PhasedTrace builds a Trace from consecutive phases — e.g. a GPU
// kernel's launch interval (host driver active, GPU idle) followed by
// its execution interval (GPU drawing full power). Time beyond the last
// phase holds the final phase's power.
func PhasedTrace(phases []Phase) Trace {
	return func(t float64) (float64, float64) {
		if len(phases) == 0 {
			return 0, 0
		}
		acc := 0.0
		for _, p := range phases {
			acc += p.DurationSec
			if t < acc {
				return p.CPUW, p.NBGPUW
			}
		}
		last := phases[len(phases)-1]
		return last.CPUW, last.NBGPUW
	}
}
