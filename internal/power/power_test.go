package power

import (
	"math"
	"math/rand"
	"testing"
)

func TestDomainString(t *testing.T) {
	if DomainCPU.String() != "cpu" || DomainNBGPU.String() != "nbgpu" {
		t.Fatal("domain strings")
	}
}

func TestMeasureConstantTraceNoNoise(t *testing.T) {
	smu := &SMU{SampleHz: 1000}
	m, err := smu.Measure(ConstantTrace(10, 5), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCPUW-10) > 1e-9 {
		t.Errorf("AvgCPUW = %v", m.AvgCPUW)
	}
	if math.Abs(m.AvgNBGPUW-5) > 1e-9 {
		t.Errorf("AvgNBGPUW = %v", m.AvgNBGPUW)
	}
	if math.Abs(m.EnergyCPUJ-5) > 1e-9 { // 10 W × 0.5 s
		t.Errorf("EnergyCPUJ = %v", m.EnergyCPUJ)
	}
	if math.Abs(m.TotalAvgW()-15) > 1e-9 {
		t.Errorf("TotalAvgW = %v", m.TotalAvgW())
	}
	if math.Abs(m.TotalEnergyJ()-7.5) > 1e-9 {
		t.Errorf("TotalEnergyJ = %v", m.TotalEnergyJ())
	}
	if m.Samples < 500 {
		t.Errorf("Samples = %d, want ≈ 501 at 1 kHz over 0.5 s", m.Samples)
	}
}

func TestMeasureLinearRamp(t *testing.T) {
	// Power ramping 0→10 W linearly: average must be ≈5 W (trapezoid
	// integrates linear functions exactly).
	smu := &SMU{SampleHz: 1000}
	trace := func(t float64) (float64, float64) { return 10 * t, 0 }
	m, err := smu.Measure(trace, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCPUW-5) > 1e-9 {
		t.Errorf("ramp average = %v, want 5", m.AvgCPUW)
	}
}

func TestMeasureSubMillisecondKernel(t *testing.T) {
	// Kernels shorter than one sample period still get start+end samples.
	smu := &SMU{SampleHz: 1000}
	m, err := smu.Measure(ConstantTrace(20, 10), 200e-6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Samples < 2 {
		t.Fatalf("Samples = %d", m.Samples)
	}
	if math.Abs(m.AvgCPUW-20) > 1e-9 {
		t.Errorf("AvgCPUW = %v", m.AvgCPUW)
	}
}

func TestMeasureRejectsBadDuration(t *testing.T) {
	smu := DefaultSMU()
	if _, err := smu.Measure(ConstantTrace(1, 1), 0, nil); err == nil {
		t.Fatal("expected ErrBadDuration")
	}
	if _, err := smu.Measure(ConstantTrace(1, 1), -1, nil); err == nil {
		t.Fatal("expected ErrBadDuration")
	}
}

func TestQuantization(t *testing.T) {
	smu := &SMU{SampleHz: 1000, QuantumW: 0.5}
	m, err := smu.Measure(ConstantTrace(10.2, 5.4), 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCPUW-10.0) > 1e-9 {
		t.Errorf("quantized AvgCPUW = %v, want 10.0", m.AvgCPUW)
	}
	if math.Abs(m.AvgNBGPUW-5.5) > 1e-9 {
		t.Errorf("quantized AvgNBGPUW = %v, want 5.5", m.AvgNBGPUW)
	}
}

func TestNoiseUnbiasedAndReproducible(t *testing.T) {
	smu := &SMU{SampleHz: 1000, NoiseStd: 0.05}
	a, err := smu.Measure(ConstantTrace(30, 10), 1.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := smu.Measure(ConstantTrace(30, 10), 1.0, rand.New(rand.NewSource(3)))
	if a.AvgCPUW != b.AvgCPUW {
		t.Error("noisy measurement not reproducible with same seed")
	}
	// With ~1000 samples the mean should concentrate near truth.
	if math.Abs(a.AvgCPUW-30) > 0.5 {
		t.Errorf("noisy mean %v too far from 30", a.AvgCPUW)
	}
}

func TestNegativeSamplesClamped(t *testing.T) {
	smu := &SMU{SampleHz: 1000, NoiseStd: 10} // absurd noise forces negatives pre-clamp
	m, err := smu.Measure(ConstantTrace(0.01, 0.01), 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgCPUW < 0 || m.AvgNBGPUW < 0 {
		t.Errorf("negative average power: %v %v", m.AvgCPUW, m.AvgNBGPUW)
	}
}

func TestSamplingOverheadUnderTenPercent(t *testing.T) {
	// §IV-C: 1 kHz sampling incurs <10% overhead in all cases. With a
	// 5 µs per-sample cost, kernels at realistic durations stay under.
	smu := DefaultSMU()
	for _, dur := range []float64{0.001, 0.01, 0.1, 1, 10} {
		if ov := smu.SamplingOverheadFrac(dur, 5e-6); ov >= 0.10 {
			t.Errorf("duration %v: overhead %v >= 10%%", dur, ov)
		}
	}
	if smu.SamplingOverheadFrac(0, 5e-6) != 0 {
		t.Error("zero duration overhead should be 0")
	}
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	w := acc.Begin(100)
	acc.Add(DomainCPU, 30) // 30 J
	acc.Add(DomainNBGPU, 12)
	acc.Add(DomainCPU, -5) // ignored
	m, err := acc.End(w, 103)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCPUW-10) > 1e-12 {
		t.Errorf("AvgCPUW = %v, want 10 (30 J over 3 s)", m.AvgCPUW)
	}
	if math.Abs(m.AvgNBGPUW-4) > 1e-12 {
		t.Errorf("AvgNBGPUW = %v, want 4", m.AvgNBGPUW)
	}
	if acc.Read(DomainCPU) != 30 {
		t.Errorf("Read = %v", acc.Read(DomainCPU))
	}
}

func TestAccumulatorMonotone(t *testing.T) {
	var acc Accumulator
	acc.Add(DomainCPU, 5)
	before := acc.Read(DomainCPU)
	acc.Add(DomainCPU, -100)
	if acc.Read(DomainCPU) != before {
		t.Error("accumulator decreased")
	}
}

func TestAccumulatorEndBadWindow(t *testing.T) {
	var acc Accumulator
	w := acc.Begin(10)
	if _, err := acc.End(w, 10); err == nil {
		t.Fatal("expected ErrBadDuration for zero window")
	}
	if _, err := acc.End(w, 9); err == nil {
		t.Fatal("expected ErrBadDuration for negative window")
	}
}

// Property: for any constant trace, measured energy equals avg × time
// and equals the true value when noise and quantization are off.
func TestMeasureEnergyConsistency(t *testing.T) {
	smu := &SMU{SampleHz: 1000}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		cpu := rng.Float64() * 50
		nb := rng.Float64() * 30
		dur := 0.001 + rng.Float64()
		m, err := smu.Measure(ConstantTrace(cpu, nb), dur, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.EnergyCPUJ-m.AvgCPUW*dur) > 1e-9*(1+m.EnergyCPUJ) {
			t.Fatalf("energy/avg inconsistency: %v vs %v", m.EnergyCPUJ, m.AvgCPUW*dur)
		}
		if math.Abs(m.AvgCPUW-cpu) > 1e-9 {
			t.Fatalf("avg %v, want %v", m.AvgCPUW, cpu)
		}
	}
}

func BenchmarkMeasure(b *testing.B) {
	smu := DefaultSMU()
	rng := rand.New(rand.NewSource(2))
	trace := ConstantTrace(25, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := smu.Measure(trace, 0.05, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPhasedTrace(t *testing.T) {
	trace := PhasedTrace([]Phase{
		{DurationSec: 1, CPUW: 10, NBGPUW: 2}, // launch: host active
		{DurationSec: 3, CPUW: 5, NBGPUW: 30}, // execution: GPU active
	})
	if c, n := trace(0.5); c != 10 || n != 2 {
		t.Errorf("launch phase = %v, %v", c, n)
	}
	if c, n := trace(2.0); c != 5 || n != 30 {
		t.Errorf("exec phase = %v, %v", c, n)
	}
	// Past the end: holds the last phase.
	if c, _ := trace(100); c != 5 {
		t.Errorf("tail = %v", c)
	}
	// Empty trace is zero.
	if c, n := PhasedTrace(nil)(1); c != 0 || n != 0 {
		t.Error("empty phased trace should be 0")
	}
}

func TestMeasurePhasedTraceAverages(t *testing.T) {
	// 1 s at (10, 2) then 3 s at (5, 30): averages 6.25 and 23 W.
	smu := &SMU{SampleHz: 1000}
	trace := PhasedTrace([]Phase{{1, 10, 2}, {3, 5, 30}})
	m, err := smu.Measure(trace, 4.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCPUW-6.25) > 0.02 {
		t.Errorf("AvgCPUW = %v, want ≈6.25", m.AvgCPUW)
	}
	if math.Abs(m.AvgNBGPUW-23) > 0.05 {
		t.Errorf("AvgNBGPUW = %v, want ≈23", m.AvgNBGPUW)
	}
}
