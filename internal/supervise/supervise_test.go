package supervise

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWorkerCompletionStopsSupervision(t *testing.T) {
	s := New(Options{Name: "done"})
	calls := 0
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestPanicIsolatedAndRestarted(t *testing.T) {
	s := New(Options{Name: "panicky", BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	var restartErrs []error
	s.opts.OnRestart = func(_ int, err error, _ time.Duration) { restartErrs = append(restartErrs, err) }
	calls := 0
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		if calls <= 2 {
			panic("seam exploded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervised worker failed: %v", err)
	}
	if calls != 3 || len(restartErrs) != 2 {
		t.Fatalf("calls=%d restarts=%d", calls, len(restartErrs))
	}
	var pe *PanicError
	if !errors.As(restartErrs[0], &pe) {
		t.Fatalf("restart error %T is not a PanicError", restartErrs[0])
	}
	if pe.Stack == "" || pe.Error() == "" {
		t.Error("panic error lost its stack or message")
	}
}

func TestMaxRestartsExhausted(t *testing.T) {
	boom := errors.New("boom")
	s := New(Options{Name: "hopeless", MaxRestarts: 3,
		BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	calls := 0
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Budget of 3 restarts = 4 invocations (initial + 3 retries).
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(Options{Name: "cancelled", BaseBackoff: time.Hour, MaxBackoff: time.Hour})
	err := s.Run(ctx, func(context.Context) error {
		cancel() // fail AND end the context: Run must not sleep an hour
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffDeterministicExponentialCapped(t *testing.T) {
	const base, max = time.Millisecond, 4 * time.Millisecond
	seq := func(name string) []time.Duration {
		s := New(Options{Name: name, BaseBackoff: base, MaxBackoff: max})
		var out []time.Duration
		for attempt := 1; attempt <= 5; attempt++ {
			out = append(out, s.backoff(attempt))
		}
		return out
	}
	a, b := seq("svc"), seq("svc")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: backoff nondeterministic (%v vs %v)", i+1, a[i], b[i])
		}
	}
	// Envelope: base·2^(n-1) capped at max, jitter < d/2.
	want := []time.Duration{base, 2 * base, max, max, max}
	for i, d := range a {
		if d < want[i] || d >= want[i]+want[i]/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", i+1, d, want[i], want[i]+want[i]/2)
		}
	}
	c := seq("other-svc")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("two worker names share an identical jitter schedule")
	}
}

func TestResetBackoffRestartsTheClimb(t *testing.T) {
	s := New(Options{Name: "resetting", BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond})
	var attempts []int
	s.opts.OnRestart = func(attempt int, _ error, _ time.Duration) { attempts = append(attempts, attempt) }
	calls := 0
	err := s.Run(context.Background(), func(context.Context) error {
		calls++
		switch {
		case calls < 3:
			return errors.New("early failure")
		case calls == 3:
			s.ResetBackoff() // progress was made before this failure
			return errors.New("late failure")
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attempts climb 1,2 then reset back to 1 for the third restart.
	want := []int{1, 2, 1}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Fatalf("attempts = %v, want %v", attempts, want)
		}
	}
}

func TestWatchdogFiresOnceAndRearmsOnPet(t *testing.T) {
	fired := make(chan struct{}, 4)
	w := NewWatchdog("epoch", 20*time.Millisecond, func() { fired <- struct{}{} })
	defer w.Stop()
	waitFire := func(label string) {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: watchdog never fired", label)
		}
	}
	waitFire("first deadline")
	// One-shot: without a Pet there must be no second expiry.
	select {
	case <-fired:
		t.Fatal("watchdog fired twice without a Pet")
	case <-time.After(100 * time.Millisecond):
	}
	w.Pet()
	waitFire("re-armed deadline")
}

func TestWatchdogStopPreventsFiring(t *testing.T) {
	fired := make(chan struct{}, 1)
	w := NewWatchdog("stopped", 20*time.Millisecond, func() { fired <- struct{}{} })
	w.Stop()
	select {
	case <-fired:
		t.Fatal("stopped watchdog fired")
	case <-time.After(150 * time.Millisecond):
	}
	// Pet after Stop must stay disarmed.
	w.Pet()
	select {
	case <-fired:
		t.Fatal("petting a stopped watchdog re-armed it")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWatchdogPetExtendsDeadline(t *testing.T) {
	fired := make(chan struct{}, 1)
	w := NewWatchdog("petted", 10*time.Second, func() { fired <- struct{}{} })
	defer w.Stop()
	for i := 0; i < 3; i++ {
		w.Pet()
	}
	select {
	case <-fired:
		t.Fatal("watchdog fired despite a 10s deadline")
	case <-time.After(50 * time.Millisecond):
	}
}
