package supervise

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"acsel/internal/fault"
)

func TestBreakerStateStrings(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state strings")
	}
	if BreakerState(9).String() == "" {
		t.Fatal("unknown state renders empty")
	}
}

func TestBreakerTripCooldownRecover(t *testing.T) {
	b := NewBreaker(BreakerOptions{Name: "smu-test",
		FailureThreshold: 3, OpenCalls: 2, HalfOpenSuccesses: 2})
	boom := errors.New("sensor dead")
	fail := func() error { return boom }
	okFn := func() error { return nil }

	// Closed absorbs scattered failures; a success resets the streak.
	if err := b.Do(fail); !errors.Is(err, boom) {
		t.Fatal("closed breaker swallowed the call error")
	}
	if err := b.Do(fail); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := b.Do(okFn); err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after interrupted failure streak, want closed", b.State())
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if err := b.Do(fail); !errors.Is(err, boom) {
			t.Fatal(err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state %v after trip, want open", b.State())
	}

	// Open rejects OpenCalls calls without running them, then goes
	// half-open.
	ran := false
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { ran = true; return nil }); !errors.Is(err, ErrOpen) {
			t.Fatalf("rejected call %d: err = %v, want ErrOpen", i, err)
		}
	}
	if ran {
		t.Fatal("open breaker executed a call")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}

	// Two probe successes close it.
	if err := b.Do(okFn); err != nil || b.State() != HalfOpen {
		t.Fatalf("first probe: err=%v state=%v", err, b.State())
	}
	if err := b.Do(okFn); err != nil || b.State() != Closed {
		t.Fatalf("second probe: err=%v state=%v", err, b.State())
	}

	trips, rejected := b.Counts()
	if trips != 1 || rejected != 2 {
		t.Errorf("counts = (%d trips, %d rejected), want (1, 2)", trips, rejected)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerOptions{Name: "pstate-test",
		FailureThreshold: 1, OpenCalls: 1, HalfOpenSuccesses: 1})
	boom := errors.New("transition failed")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if b.State() != Open {
		t.Fatalf("state %v, want open", b.State())
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatal("cooldown call ran")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	// The probe fails: straight back to open.
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if b.State() != Open {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if trips, _ := b.Counts(); trips != 2 {
		t.Errorf("trips = %d, want 2", trips)
	}
}

// chaosBreakerTrace drives a breaker with the deterministic P-state
// fault stream of a plan and returns the state observed after every
// call.
func chaosBreakerTrace(seed int64, n int) []BreakerState {
	sc, _ := fault.ScenarioByName("pstate-flaky")
	in := fault.NewInjector(sc, seed)
	b := NewBreaker(BreakerOptions{Name: "chaos",
		FailureThreshold: 2, OpenCalls: 3, HalfOpenSuccesses: 1})
	trace := make([]BreakerState, 0, n)
	for i := 0; i < n; i++ {
		_ = b.Do(func() error { //lint:ignore errcheck outcome folded into the trace
			if len(in.At(fault.SitePState, fault.EventKey("seam", i), 0)) > 0 {
				return errors.New("injected")
			}
			return nil
		})
		trace = append(trace, b.State())
	}
	return trace
}

// TestBreakerChaosDrivesEveryTransition replays a fault plan through
// the breaker: the same injector-driven failure stream that exercises
// the runtime's degradation ladder must walk the breaker through
// closed→open→half-open→closed (and half-open→open), and two replays
// of the same plan must trace identical state sequences.
func TestBreakerChaosDrivesEveryTransition(t *testing.T) {
	trace := chaosBreakerTrace(11, 600)
	seen := map[BreakerState]bool{}
	reopened, closedAgain := false, false
	for i, s := range trace {
		seen[s] = true
		if i > 0 {
			if trace[i-1] == HalfOpen && s == Open {
				reopened = true
			}
			if trace[i-1] == HalfOpen && s == Closed {
				closedAgain = true
			}
		}
	}
	if !seen[Closed] || !seen[Open] || !seen[HalfOpen] {
		t.Fatalf("chaos run did not visit every state: %v", seen)
	}
	if !reopened || !closedAgain {
		t.Errorf("half-open exits not both exercised (reopen=%v close=%v)", reopened, closedAgain)
	}
	if !reflect.DeepEqual(trace, chaosBreakerTrace(11, 600)) {
		t.Error("same fault plan traced different breaker trajectories")
	}
	if reflect.DeepEqual(trace, chaosBreakerTrace(12, 600)) {
		t.Error("different seed traced an identical trajectory")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerOptions{Name: "racy"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = b.Do(func() error { //lint:ignore errcheck smoke test
					if (g+i)%3 == 0 {
						return errors.New("sporadic")
					}
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	// The breaker must land in a legal state with consistent counters.
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("illegal state %v", s)
	}
}
