// Package supervise keeps a long-running runtime service alive: a
// panic-isolating supervisor that restarts its worker with exponential
// backoff and deterministic jitter, a timer-based watchdog that bounds
// how long one epoch may take, and a circuit breaker for the hardware
// seams (SMU, P-state, counters) whose sustained failure should stop
// the service from hammering a broken path.
//
// The same design constraint as internal/fault applies everywhere:
// decisions must be deterministic. Backoff jitter is hashed from the
// worker's name and attempt ordinal (no global RNG), and the breaker
// trips and recovers on call counts rather than wall time, so a
// deterministic fault plan drives a deterministic state-machine
// trajectory that chaos tests can replay.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"time"
)

// WorkerFunc is one supervised unit of work. Returning nil means the
// worker finished its job and the supervisor stops; returning an error
// (or panicking) triggers a restart.
type WorkerFunc func(ctx context.Context) error

// PanicError wraps a recovered worker panic so callers can distinguish
// crashes from ordinary failures and still read the stack.
type PanicError struct {
	Value any
	Stack string
}

// Error renders the panic value; the stack is carried for logs.
func (p *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", p.Value) }

// Defaults for Options left zero.
const (
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 30 * time.Second
)

// Options configures a Supervisor.
type Options struct {
	// Name labels the worker in metrics and jitter derivation.
	Name string
	// MaxRestarts bounds consecutive restarts; 0 means unlimited.
	// When exhausted, Run returns the last worker error.
	MaxRestarts int
	// BaseBackoff is the delay before the first restart; each further
	// consecutive restart doubles it up to MaxBackoff. Deterministic
	// jitter of up to half the delay is added on top.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// OnRestart, if set, observes each restart decision (attempt
	// ordinal starting at 1, the error that caused it, the backoff
	// about to be slept). Called synchronously.
	OnRestart func(attempt int, err error, backoff time.Duration)
}

// Supervisor runs a worker until it succeeds, its context ends, or the
// restart budget is spent.
type Supervisor struct {
	opts    Options
	resetCh chan struct{}
}

// New builds a supervisor.
func New(opts Options) *Supervisor {
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.Name == "" {
		opts.Name = "worker"
	}
	return &Supervisor{opts: opts, resetCh: make(chan struct{}, 1)}
}

// ResetBackoff marks the worker as having made progress: the next
// failure restarts from the base backoff again instead of continuing
// the exponential climb. Safe to call from the worker goroutine.
func (s *Supervisor) ResetBackoff() {
	select {
	case s.resetCh <- struct{}{}:
	default:
	}
}

// Run executes the worker under supervision. It returns nil when the
// worker completes, ctx.Err() when the context ends, and the last
// worker error when MaxRestarts is exhausted. Panics inside the worker
// are recovered, wrapped as *PanicError, and treated as failures.
func (s *Supervisor) Run(ctx context.Context, w WorkerFunc) error {
	attempt := 0
	for {
		err := invoke(ctx, w)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-s.resetCh:
			attempt = 0
		default:
		}
		attempt++
		var pe *PanicError
		if errors.As(err, &pe) {
			mPanics.With(s.opts.Name).Inc()
		}
		if s.opts.MaxRestarts > 0 && attempt > s.opts.MaxRestarts {
			return fmt.Errorf("supervise: %s exhausted %d restarts: %w", s.opts.Name, s.opts.MaxRestarts, err)
		}
		d := s.backoff(attempt)
		mRestarts.With(s.opts.Name).Inc()
		if s.opts.OnRestart != nil {
			s.opts.OnRestart(attempt, err, d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// invoke runs the worker once with panic isolation.
func invoke(ctx context.Context, w WorkerFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return w(ctx)
}

// backoff computes the delay before restart attempt (1-based):
// base·2^(attempt-1) capped at max, plus deterministic jitter in
// [0, d/2) hashed from the worker name and attempt — the same
// plan-identity-hashing discipline as internal/fault, so two runs of
// the same failure sequence sleep the same schedule (and concurrent
// workers with different names desynchronize their retry stampedes).
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.opts.BaseBackoff
	for i := 1; i < attempt && d < s.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.opts.MaxBackoff {
		d = s.opts.MaxBackoff
	}
	return d + jitter(s.opts.Name, attempt, d/2)
}

// jitter returns a deterministic duration in [0, span) keyed by
// (name, attempt).
func jitter(name string, attempt int, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) // hash.Hash.Write never returns an error
	fmt.Fprintf(h, "|%d", attempt)
	return time.Duration(h.Sum64() % uint64(span))
}
