package supervise

import (
	"errors"
	"fmt"
	"sync"
)

// BreakerState is a circuit breaker's position in the
// closed→open→half-open state machine.
type BreakerState int

const (
	// Closed passes every call through; consecutive failures count
	// toward tripping.
	Closed BreakerState = iota
	// Open fails fast without calling; after OpenCalls rejections the
	// breaker moves to half-open.
	Open
	// HalfOpen admits probe calls; sustained success closes the
	// breaker, any failure reopens it.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrOpen is returned by Do while the breaker rejects calls.
var ErrOpen = errors.New("supervise: circuit breaker open")

// BreakerOptions tunes a breaker. The cooldown is counted in rejected
// calls, not wall time: the runtime service is driven by epochs, so
// "try again after N skipped operations" is both deterministic (chaos
// replays hit identical transitions) and naturally paced to load.
type BreakerOptions struct {
	// Name labels the breaker in metrics.
	Name string
	// FailureThreshold is how many consecutive failures trip a closed
	// breaker (default 5).
	FailureThreshold int
	// OpenCalls is how many calls the open breaker rejects before
	// moving to half-open (default 8).
	OpenCalls int
	// HalfOpenSuccesses is how many consecutive probe successes close
	// a half-open breaker (default 2).
	HalfOpenSuccesses int
}

const (
	defaultFailureThreshold  = 5
	defaultOpenCalls         = 8
	defaultHalfOpenSuccesses = 2
)

// Breaker is a deterministic, call-count-driven circuit breaker. It is
// safe for concurrent use.
type Breaker struct {
	opts BreakerOptions

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	rejected  int // calls rejected while open
	probeOK   int // consecutive successes while half-open
	trips     int // lifetime closed->open transitions
	rejectAll int // lifetime rejected calls
}

// NewBreaker builds a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = defaultFailureThreshold
	}
	if opts.OpenCalls <= 0 {
		opts.OpenCalls = defaultOpenCalls
	}
	if opts.HalfOpenSuccesses <= 0 {
		opts.HalfOpenSuccesses = defaultHalfOpenSuccesses
	}
	if opts.Name == "" {
		opts.Name = "breaker"
	}
	b := &Breaker{opts: opts}
	mBreakerState.With(opts.Name).Set(float64(Closed))
	return b
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counts reports lifetime trips (closed→open) and rejected calls.
func (b *Breaker) Counts() (trips, rejected int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.rejectAll
}

// transition moves the state machine and records it. Callers hold b.mu.
func (b *Breaker) transition(to BreakerState) {
	b.state = to
	b.failures, b.rejected, b.probeOK = 0, 0, 0
	mBreakerState.With(b.opts.Name).Set(float64(to))
	mBreakerTransitions.With(b.opts.Name, to.String()).Inc()
}

// Allow reports whether a call may proceed now. A rejected call counts
// toward the open breaker's cooldown; once OpenCalls rejections have
// accumulated the breaker turns half-open and the next Allow admits a
// probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		b.rejected++
		b.rejectAll++
		mBreakerRejected.With(b.opts.Name).Inc()
		if b.rejected >= b.opts.OpenCalls {
			b.transition(HalfOpen)
		}
		return false
	}
}

// Record feeds one call outcome into the state machine. err == nil is
// a success.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.trips++
			b.transition(Open)
		}
	case HalfOpen:
		if err != nil {
			// The probe failed: the seam is still broken.
			b.trips++
			b.transition(Open)
			return
		}
		b.probeOK++
		if b.probeOK >= b.opts.HalfOpenSuccesses {
			b.transition(Closed)
		}
	case Open:
		// An outcome recorded while open (e.g. an in-flight call that
		// straddled the trip) neither helps nor hurts.
	}
}

// Do runs fn through the breaker: ErrOpen without calling when the
// breaker rejects, otherwise fn's error after recording it.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn()
	b.Record(err)
	return err
}
