package supervise

import (
	"sync"
	"time"
)

// Watchdog enforces a per-epoch deadline: if Pet is not called within
// the deadline, the expiry callback fires (typically cancelling the
// worker's context so the supervisor restarts it). It is built on a
// resettable timer — no wall-clock reads — and firing is one-shot
// until the next Pet re-arms it, so a hung epoch produces exactly one
// restart, not a restart storm.
type Watchdog struct {
	name     string
	deadline time.Duration
	onExpire func()

	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
}

// NewWatchdog arms a watchdog with the given deadline. onExpire runs
// on the timer's goroutine; keep it small (cancel a context, bump a
// counter).
func NewWatchdog(name string, deadline time.Duration, onExpire func()) *Watchdog {
	w := &Watchdog{name: name, deadline: deadline, onExpire: onExpire}
	w.timer = time.AfterFunc(deadline, w.fire)
	return w
}

func (w *Watchdog) fire() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	mWatchdogTimeouts.With(w.name).Inc()
	w.onExpire()
}

// Pet re-arms the deadline. Call it at every epoch boundary (or any
// other liveness proof).
func (w *Watchdog) Pet() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		return
	}
	w.timer.Reset(w.deadline)
}

// Stop disarms the watchdog permanently.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	w.timer.Stop()
}
