package supervise

import "acsel/internal/metrics"

// Metric families of the supervision layer: how often workers are
// restarted (and why), whether epochs blow their deadlines, and each
// circuit breaker's live position and transition history.
var (
	mRestarts = metrics.NewCounterVec("acsel_supervise_restarts_total",
		"Worker restarts performed by a supervisor, by worker name.", "worker")
	mPanics = metrics.NewCounterVec("acsel_supervise_panics_total",
		"Worker panics recovered by a supervisor, by worker name.", "worker")
	mWatchdogTimeouts = metrics.NewCounterVec("acsel_supervise_watchdog_timeouts_total",
		"Epoch watchdog deadline expiries, by watchdog name.", "watchdog")
	mBreakerState = metrics.NewGaugeVec("acsel_breaker_state", //lint:ignore metricname enum gauge (0=closed 1=open 2=half-open), unitless by construction
		"Circuit breaker state (0=closed, 1=open, 2=half-open), by breaker name.", "breaker")
	mBreakerTransitions = metrics.NewCounterVec("acsel_breaker_transitions_total",
		"Circuit breaker state transitions, by breaker name and destination state.", "breaker", "to")
	mBreakerRejected = metrics.NewCounterVec("acsel_breaker_rejected_total",
		"Calls rejected by an open circuit breaker, by breaker name.", "breaker")
)
