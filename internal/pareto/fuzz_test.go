package pareto

import (
	"encoding/binary"
	"math"
	"testing"
)

// frontierFromBytes decodes a fuzz byte string into candidate points —
// 9 bytes each: one ID byte (mod 32, so cross-frontier overlap is
// likely) and two float32 bit patterns for power and performance, which
// lets the mutator reach NaN, infinities, and denormals.
func frontierFromBytes(data []byte) *Frontier {
	var pts []Point
	for len(data) >= 9 {
		pts = append(pts, Point{
			ID:    int(data[0] % 32),
			Power: float64(math.Float32frombits(binary.LittleEndian.Uint32(data[1:5]))),
			Perf:  float64(math.Float32frombits(binary.LittleEndian.Uint32(data[5:9]))),
		})
		data = data[9:]
	}
	return New(pts)
}

// seedPoints packs (id, power, perf) triples into the fuzz encoding.
func seedPoints(triples ...[3]float64) []byte {
	var out []byte
	for _, tr := range triples {
		var b [9]byte
		b[0] = byte(int(tr[0]))
		binary.LittleEndian.PutUint32(b[1:5], math.Float32bits(float32(tr[1])))
		binary.LittleEndian.PutUint32(b[5:9], math.Float32bits(float32(tr[2])))
		out = append(out, b[:]...)
	}
	return out
}

// FuzzSharedOrder drives arbitrary point clouds through frontier
// extraction and the shared-order pairing, asserting the invariants
// the dissimilarity computation relies on: frontiers strictly increase
// in both power and performance, the three SharedOrder slices stay
// parallel, ranks index real frontier positions, ranksA strictly
// increases, and every returned ID names the same configuration at
// both ranks.
func FuzzSharedOrder(f *testing.F) {
	f.Add(
		seedPoints([3]float64{1, 10, 1}, [3]float64{2, 20, 2}, [3]float64{3, 30, 3}),
		seedPoints([3]float64{3, 5, 1}, [3]float64{2, 15, 2}, [3]float64{1, 25, 3}),
	)
	f.Add(
		seedPoints([3]float64{0, 10, 5}, [3]float64{0, 10, 5}, [3]float64{1, 12, 4}),
		seedPoints([3]float64{0, 8, 2}),
	)
	f.Add(seedPoints([3]float64{4, math.NaN(), 1}, [3]float64{5, 3, math.Inf(1)}), []byte{})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		fa := frontierFromBytes(da)
		fb := frontierFromBytes(db)
		checkFrontierInvariants(t, fa)
		checkFrontierInvariants(t, fb)

		ranksA, ranksB, ids := SharedOrder(fa, fb)
		if len(ranksA) != len(ranksB) || len(ranksA) != len(ids) {
			t.Fatalf("slices not parallel: %d/%d/%d", len(ranksA), len(ranksB), len(ids))
		}
		apts, bpts := fa.Points(), fb.Points()
		for k := range ids {
			if ranksA[k] < 0 || ranksA[k] >= len(apts) || ranksB[k] < 0 || ranksB[k] >= len(bpts) {
				t.Fatalf("rank out of range at %d: a=%d b=%d", k, ranksA[k], ranksB[k])
			}
			if apts[ranksA[k]].ID != ids[k] {
				t.Fatalf("ids[%d]=%d but frontier a holds %d at rank %d", k, ids[k], apts[ranksA[k]].ID, ranksA[k])
			}
			if bpts[ranksB[k]].ID != ids[k] {
				t.Fatalf("ids[%d]=%d but frontier b holds %d at rank %d", k, ids[k], bpts[ranksB[k]].ID, ranksB[k])
			}
			if k > 0 && ranksA[k] <= ranksA[k-1] {
				t.Fatalf("ranksA not strictly increasing: %v", ranksA)
			}
		}
	})
}

// checkFrontierInvariants asserts what New promises: finite-or-infinite
// (never NaN) coordinates and strictly increasing power and performance
// along the frontier.
func checkFrontierInvariants(t *testing.T, f *Frontier) {
	t.Helper()
	pts := f.Points()
	for i, p := range pts {
		if math.IsNaN(p.Power) || math.IsNaN(p.Perf) {
			t.Fatalf("NaN survived frontier extraction at %d: %+v", i, p)
		}
		if i > 0 {
			prev := pts[i-1]
			if !(p.Power > prev.Power) || !(p.Perf > prev.Perf) {
				t.Fatalf("frontier not strictly increasing at %d: %+v then %+v", i, prev, p)
			}
		}
	}
}
