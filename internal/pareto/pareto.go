// Package pareto derives power–performance Pareto frontiers, the core
// geometric object of the paper's modeling process (§III-B, Fig 2).
// A point is on the frontier when no other point offers greater-or-equal
// performance at lower-or-equal power with at least one strict
// improvement. Frontiers are kept sorted by ascending power, which is
// the configuration ordering compared across kernels via Kendall tau.
package pareto

import (
	"errors"
	"math"
	"sort"
)

// Point is one configuration's measured or predicted operating point.
// ID identifies the configuration (index into a configuration space).
type Point struct {
	ID    int
	Power float64 // watts (lower is better)
	Perf  float64 // throughput, higher is better
}

// ErrEmpty is returned by queries on an empty frontier.
var ErrEmpty = errors.New("pareto: empty frontier")

// Dominates reports whether a dominates b: a is no worse in both
// dimensions and strictly better in at least one.
func Dominates(a, b Point) bool {
	if a.Power > b.Power || a.Perf < b.Perf {
		return false
	}
	return a.Power < b.Power || a.Perf > b.Perf
}

// Frontier is a Pareto frontier sorted by ascending power (and, being
// non-dominated, ascending performance).
type Frontier struct {
	pts []Point
}

// New extracts the Pareto frontier from arbitrary points. Duplicate
// operating points keep the first-seen ID. NaN coordinates are
// rejected implicitly: points with NaN never dominate and are never
// kept (they are dropped).
func New(points []Point) *Frontier {
	var clean []Point
	for _, p := range points {
		if math.IsNaN(p.Power) || math.IsNaN(p.Perf) {
			continue
		}
		clean = append(clean, p)
	}
	// Sort by power ascending, performance descending for stable sweep.
	// Ordered comparisons only: a comparator must stay exact and
	// transitive, so epsilon equality has no place here.
	sort.Slice(clean, func(i, j int) bool {
		if clean[i].Power < clean[j].Power {
			return true
		}
		if clean[j].Power < clean[i].Power {
			return false
		}
		if clean[i].Perf > clean[j].Perf {
			return true
		}
		if clean[j].Perf > clean[i].Perf {
			return false
		}
		return clean[i].ID < clean[j].ID
	})
	var front []Point
	bestPerf := math.Inf(-1)
	for _, p := range clean {
		if p.Perf > bestPerf {
			front = append(front, p)
			bestPerf = p.Perf
		}
	}
	return &Frontier{pts: front}
}

// Points returns the frontier points in ascending-power order. The
// returned slice is a copy.
func (f *Frontier) Points() []Point {
	return append([]Point(nil), f.pts...)
}

// Len returns the number of frontier points.
func (f *Frontier) Len() int { return len(f.pts) }

// IDs returns the configuration IDs along the frontier in
// ascending-power order — the ranking compared across kernels.
func (f *Frontier) IDs() []int {
	ids := make([]int, len(f.pts))
	for i, p := range f.pts {
		ids[i] = p.ID
	}
	return ids
}

// PositionOf returns the index of configuration id along the frontier,
// or -1 if the configuration is not on the frontier.
func (f *Frontier) PositionOf(id int) int {
	for i, p := range f.pts {
		if p.ID == id {
			return i
		}
	}
	return -1
}

// BestUnderCap returns the highest-performance point with Power <= cap.
// ok is false when no frontier point fits under the cap.
func (f *Frontier) BestUnderCap(cap float64) (Point, bool) {
	// Points are sorted by ascending power and ascending perf, so the
	// last point under the cap is the best.
	best, ok := Point{}, false
	for _, p := range f.pts {
		if p.Power <= cap {
			best, ok = p, true
		} else {
			break
		}
	}
	return best, ok
}

// MinPower returns the lowest-power point on the frontier.
func (f *Frontier) MinPower() (Point, error) {
	if len(f.pts) == 0 {
		return Point{}, ErrEmpty
	}
	return f.pts[0], nil
}

// MaxPerf returns the highest-performance point on the frontier.
func (f *Frontier) MaxPerf() (Point, error) {
	if len(f.pts) == 0 {
		return Point{}, ErrEmpty
	}
	return f.pts[len(f.pts)-1], nil
}

// SharedOrder extracts, for two frontiers, the positions of the
// configurations present on both, in the order they appear along each
// frontier. The two returned rank lists are parallel: entry i of both
// refers to the same configuration ID. This is the input to the Kendall
// rank correlation in the paper's dissimilarity computation.
func SharedOrder(a, b *Frontier) (ranksA, ranksB []int, ids []int) {
	posB := make(map[int]int, len(b.pts))
	for i, p := range b.pts {
		posB[p.ID] = i
	}
	for i, p := range a.pts {
		if j, ok := posB[p.ID]; ok {
			ranksA = append(ranksA, i)
			ranksB = append(ranksB, j)
			ids = append(ids, p.ID)
		}
	}
	return ranksA, ranksB, ids
}

// Normalize returns a copy of the frontier with performance scaled so
// the maximum equals 1, matching the paper's per-kernel normalization
// in Table I and Figure 2. An empty frontier is returned unchanged.
func (f *Frontier) Normalize() *Frontier {
	if len(f.pts) == 0 {
		return &Frontier{}
	}
	maxPerf := f.pts[len(f.pts)-1].Perf
	if maxPerf <= 0 {
		return &Frontier{pts: append([]Point(nil), f.pts...)}
	}
	out := make([]Point, len(f.pts))
	for i, p := range f.pts {
		out[i] = Point{ID: p.ID, Power: p.Power, Perf: p.Perf / maxPerf}
	}
	return &Frontier{pts: out}
}
