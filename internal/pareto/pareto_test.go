package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{0, 10, 0.5}
	cases := []struct {
		b    Point
		want bool
	}{
		{Point{1, 11, 0.4}, true},  // strictly better both
		{Point{1, 10, 0.4}, true},  // equal power, better perf
		{Point{1, 11, 0.5}, true},  // better power, equal perf
		{Point{1, 10, 0.5}, false}, // identical
		{Point{1, 9, 0.6}, false},  // b dominates a
		{Point{1, 9, 0.4}, false},  // trade-off
		{Point{1, 11, 0.6}, false}, // trade-off
	}
	for i, c := range cases {
		if got := Dominates(a, c.b); got != c.want {
			t.Errorf("case %d: Dominates = %v, want %v", i, got, c.want)
		}
	}
}

func TestNewExtractsFrontier(t *testing.T) {
	pts := []Point{
		{0, 10, 0.2},
		{1, 12, 0.5},
		{2, 11, 0.3},
		{3, 15, 0.4}, // dominated by 1
		{4, 20, 1.0},
		{5, 10, 0.1}, // dominated by 0
	}
	f := New(pts)
	ids := f.IDs()
	want := []int{0, 2, 1, 4}
	if len(ids) != len(want) {
		t.Fatalf("frontier IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("frontier IDs = %v, want %v", ids, want)
		}
	}
}

func TestNewDropsNaN(t *testing.T) {
	f := New([]Point{{0, math.NaN(), 1}, {1, 1, math.NaN()}, {2, 5, 0.5}})
	if f.Len() != 1 || f.IDs()[0] != 2 {
		t.Errorf("frontier = %v", f.Points())
	}
}

func TestNewEmpty(t *testing.T) {
	f := New(nil)
	if f.Len() != 0 {
		t.Error("empty input should give empty frontier")
	}
	if _, err := f.MinPower(); err == nil {
		t.Error("expected ErrEmpty")
	}
	if _, err := f.MaxPerf(); err == nil {
		t.Error("expected ErrEmpty")
	}
	if _, ok := f.BestUnderCap(100); ok {
		t.Error("BestUnderCap on empty should be !ok")
	}
}

func TestFrontierSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []Point
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{i, 10 + rng.Float64()*40, rng.Float64()})
	}
	f := New(pts)
	prev := f.Points()[0]
	for _, p := range f.Points()[1:] {
		if p.Power <= prev.Power || p.Perf <= prev.Perf {
			t.Fatalf("frontier not strictly increasing: %v then %v", prev, p)
		}
		prev = p
	}
}

func TestBestUnderCap(t *testing.T) {
	f := New([]Point{{0, 10, 0.2}, {1, 20, 0.6}, {2, 30, 1.0}})
	p, ok := f.BestUnderCap(25)
	if !ok || p.ID != 1 {
		t.Errorf("BestUnderCap(25) = %v, %v", p, ok)
	}
	p, ok = f.BestUnderCap(10)
	if !ok || p.ID != 0 {
		t.Errorf("BestUnderCap(10) = %v, %v", p, ok)
	}
	if _, ok := f.BestUnderCap(9.99); ok {
		t.Error("cap below min power must be !ok")
	}
	p, ok = f.BestUnderCap(1000)
	if !ok || p.ID != 2 {
		t.Errorf("BestUnderCap(1000) = %v, %v", p, ok)
	}
}

func TestMinPowerMaxPerf(t *testing.T) {
	f := New([]Point{{0, 10, 0.2}, {1, 20, 0.6}, {2, 30, 1.0}})
	mn, err := f.MinPower()
	if err != nil || mn.ID != 0 {
		t.Errorf("MinPower = %v, %v", mn, err)
	}
	mx, err := f.MaxPerf()
	if err != nil || mx.ID != 2 {
		t.Errorf("MaxPerf = %v, %v", mx, err)
	}
}

func TestPositionOf(t *testing.T) {
	f := New([]Point{{7, 10, 0.2}, {3, 20, 0.6}})
	if p := f.PositionOf(3); p != 1 {
		t.Errorf("PositionOf(3) = %d", p)
	}
	if p := f.PositionOf(99); p != -1 {
		t.Errorf("PositionOf(99) = %d", p)
	}
}

func TestSharedOrder(t *testing.T) {
	a := New([]Point{{1, 10, 0.1}, {2, 20, 0.5}, {3, 30, 1.0}})
	b := New([]Point{{3, 9, 0.3}, {2, 18, 0.7}, {4, 40, 1.0}})
	ra, rb, ids := SharedOrder(a, b)
	// shared IDs are 2 and 3; along a: 2 at pos 1, 3 at pos 2;
	// along b: 3 at pos 0, 2 at pos 1.
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if ra[0] != 1 || ra[1] != 2 || rb[0] != 1 || rb[1] != 0 {
		t.Fatalf("ranks = %v, %v", ra, rb)
	}
}

func TestSharedOrderDisjoint(t *testing.T) {
	a := New([]Point{{1, 10, 0.1}})
	b := New([]Point{{2, 10, 0.1}})
	ra, rb, ids := SharedOrder(a, b)
	if len(ra) != 0 || len(rb) != 0 || len(ids) != 0 {
		t.Errorf("expected empty shared order, got %v %v %v", ra, rb, ids)
	}
}

func TestNormalize(t *testing.T) {
	f := New([]Point{{0, 10, 2}, {1, 20, 8}})
	n := f.Normalize()
	pts := n.Points()
	if pts[1].Perf != 1 {
		t.Errorf("max perf after normalize = %v", pts[1].Perf)
	}
	if math.Abs(pts[0].Perf-0.25) > 1e-12 {
		t.Errorf("normalized first perf = %v", pts[0].Perf)
	}
	// Original untouched.
	if f.Points()[1].Perf != 8 {
		t.Error("Normalize mutated the original")
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if New(nil).Normalize().Len() != 0 {
		t.Error("normalize of empty should be empty")
	}
}

// Property: every input point is either on the frontier or dominated by
// some frontier point; no frontier point dominates another.
func TestFrontierProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{i, 5 + rng.Float64()*50, rng.Float64() * 3}
		}
		f := New(pts)
		front := f.Points()
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					t.Fatalf("frontier point %v dominates frontier point %v", front[i], front[j])
				}
			}
		}
		onFront := map[int]bool{}
		for _, p := range front {
			onFront[p.ID] = true
		}
		for _, p := range pts {
			if onFront[p.ID] {
				continue
			}
			dominated := false
			for _, q := range front {
				if Dominates(q, p) || (q.Power == p.Power && q.Perf == p.Perf) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("trial %d: point %v neither on frontier nor dominated", trial, p)
			}
		}
	}
}

// Property (testing/quick): BestUnderCap result always respects the cap
// and is on the frontier.
func TestBestUnderCapProperty(t *testing.T) {
	f := func(raw [16]float64, capRaw float64) bool {
		pts := make([]Point, 0, 8)
		for i := 0; i < 8; i++ {
			pw := math.Abs(math.Mod(raw[2*i], 100))
			pf := math.Abs(math.Mod(raw[2*i+1], 10))
			pts = append(pts, Point{i, pw, pf})
		}
		fr := New(pts)
		cap := math.Abs(math.Mod(capRaw, 120))
		p, ok := fr.BestUnderCap(cap)
		if !ok {
			// Then every frontier point must exceed the cap.
			for _, q := range fr.Points() {
				if q.Power <= cap {
					return false
				}
			}
			return true
		}
		if p.Power > cap {
			return false
		}
		// No other frontier point under the cap may beat it.
		for _, q := range fr.Points() {
			if q.Power <= cap && q.Perf > p.Perf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrontierExtraction(b *testing.B) {
	// 42 configurations, the size of the paper's machine space.
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 42)
	for i := range pts {
		pts[i] = Point{i, 10 + rng.Float64()*40, rng.Float64()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(pts)
	}
}
