package pareto_test

import (
	"fmt"

	"acsel/internal/pareto"
)

// Deriving a frontier from measured operating points and querying it
// under a power cap — the core geometric operation of the scheduler.
func ExampleFrontier_BestUnderCap() {
	points := []pareto.Point{
		{ID: 0, Power: 12.5, Perf: 0.15},
		{ID: 1, Power: 14.8, Perf: 0.43},
		{ID: 2, Power: 24.2, Perf: 0.84}, // GPU section begins
		{ID: 3, Power: 29.8, Perf: 1.00},
		{ID: 4, Power: 20.0, Perf: 0.30}, // dominated by 1 (more power, less perf)
	}
	f := pareto.New(points)
	fmt.Println("frontier size:", f.Len())
	if best, ok := f.BestUnderCap(25); ok {
		fmt.Printf("best under 25 W: config %d at %.1f W\n", best.ID, best.Power)
	}
	if _, ok := f.BestUnderCap(10); !ok {
		fmt.Println("no configuration fits under 10 W")
	}
	// Output:
	// frontier size: 4
	// best under 25 W: config 2 at 24.2 W
	// no configuration fits under 10 W
}
