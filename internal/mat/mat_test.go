package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 2, nil)
	r, c := m.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("Dims = %d,%d want 3,2", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dims")
		}
	}()
	NewDense(0, 2, nil)
}

func TestNewDensePanicsOnBadData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched data length")
		}
	}()
	NewDense(2, 2, []float64{1, 2, 3})
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 3, nil)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatalf("round trip failed: %v", m.At(1, 2))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	_ = m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestRowCol(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[1] != 5 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v", col)
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m := NewDense(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	p, err := Mul(m, Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) != m.At(i, j) {
				t.Errorf("M·I ≠ M at %d,%d", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("product[%d][%d] = %v want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3, nil)
	b := NewDense(2, 3, nil)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 0, 2, 0, 1, 3})
	y, err := MulVec(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 11 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestMulVecShapeError(t *testing.T) {
	a := NewDense(2, 3, nil)
	if _, err := MulVec(a, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v", d)
	}
}

func TestNorm2(t *testing.T) {
	if n := Norm2([]float64{3, 4}); !almostEq(n, 5, 1e-14) {
		t.Errorf("Norm2 = %v", n)
	}
	if n := Norm2(nil); n != 0 {
		t.Errorf("Norm2(nil) = %v", n)
	}
	// Overflow guard: values near MaxFloat64 scale safely.
	big := math.MaxFloat64 / 4
	if n := Norm2([]float64{big, big}); math.IsInf(n, 0) || math.IsNaN(n) {
		t.Errorf("Norm2 overflowed: %v", n)
	}
}

func TestQRExactSystem(t *testing.T) {
	// Square nonsingular system: solution should be near-exact.
	a := NewDense(3, 3, []float64{2, 1, 1, 1, 3, 2, 1, 0, 0})
	b := []float64{4, 5, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual is ~0.
	r, _ := MulVec(a, x)
	for i := range r {
		if !almostEq(r[i], b[i], 1e-10) {
			t.Errorf("residual at %d: got %v want %v", i, r[i], b[i])
		}
	}
}

func TestQROverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples: exact recovery expected.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(5, 2, nil)
	b := make([]float64, 5)
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2*x + 1
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(coef[0], 1, 1e-10) || !almostEq(coef[1], 2, 1e-10) {
		t.Errorf("coef = %v, want [1 2]", coef)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Third column is the sum of the first two: rank 2.
	a := NewDense(4, 3, nil)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, 1+x)
		b[i] = 3 * x
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rank() != 2 {
		t.Fatalf("Rank = %d, want 2", f.Rank())
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction must still be correct even though coefficients are not unique.
	pred, _ := MulVec(a, x)
	for i := range pred {
		if !almostEq(pred[i], b[i], 1e-9) {
			t.Errorf("pred[%d] = %v want %v", i, pred[i], b[i])
		}
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	a := NewDense(2, 3, nil)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected error for rows < cols")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := NewDense(3, 2, nil)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rank() != 0 {
		t.Fatalf("Rank of zero matrix = %d", f.Rank())
	}
	if _, err := f.Solve([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected ErrSingular solving against zero matrix")
	}
}

func TestQRSolveWrongRHSLength(t *testing.T) {
	a := NewDense(3, 2, []float64{1, 0, 0, 1, 1, 1})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: for random well-conditioned overdetermined systems, the QR
// least-squares residual is orthogonal to the column space (normal
// equations hold).
func TestQRResidualOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 6 + rng.Intn(10)
		n := 2 + rng.Intn(4)
		a := NewDense(m, n, nil)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := MulVec(a, x)
		resid := make([]float64, m)
		for i := range resid {
			resid[i] = b[i] - ax[i]
		}
		// Aᵀ r ≈ 0
		atr, _ := MulVec(a.T(), resid)
		for j := range atr {
			if math.Abs(atr[j]) > 1e-8 {
				t.Fatalf("trial %d: normal equations violated: Aᵀr[%d] = %v", trial, j, atr[j])
			}
		}
	}
}

// Property (testing/quick): transposing twice is the identity.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		m := NewDense(3, 4, vals[:])
		tt := m.T().T()
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): Dot is symmetric and bilinear in scaling.
func TestDotSymmetry(t *testing.T) {
	f := func(a, b [6]float64) bool {
		x, y := Dot(a[:], b[:]), Dot(b[:], a[:])
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖x‖₂ from Norm2 matches naive sqrt(Σx²) for moderate values.
func TestNorm2MatchesNaive(t *testing.T) {
	f := func(a [8]float64) bool {
		for i := range a {
			// Clamp into a moderate range to keep naive sum finite.
			a[i] = math.Mod(a[i], 1e6)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
		}
		s := 0.0
		for _, v := range a {
			s += v * v
		}
		return almostEq(Norm2(a[:]), math.Sqrt(s), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewDense(1, 2, []float64{1, 2})
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkQRFactorSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := 42, 7
	a := NewDense(m, n, nil)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
