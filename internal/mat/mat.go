// Package mat provides small dense-matrix linear algebra used by the
// regression and clustering layers. It implements only what the model
// pipeline needs — construction, products, transpose, QR factorization
// with column pivoting, and least-squares solves — with an emphasis on
// numerical robustness over raw speed: the matrices involved are tiny
// (dozens of rows, a handful of columns).
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible matrix shapes")

// ErrSingular is returned when a solve encounters a (numerically)
// rank-deficient system and no fallback is permitted.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// NewDense creates an r×c matrix. If data is nil a zero matrix is
// allocated; otherwise data is used directly (len must equal r*c).
func NewDense(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns a × b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols, nil)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			//lint:ignore floatcmp exact-zero sparsity fast path: only a bit-exact zero contributes nothing
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a × x for a vector x (len must equal a's column count).
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d × vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		s := 0.0
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: dot of unequal-length vectors")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		//lint:ignore floatcmp exact-zero skip in the scaled-norm recurrence; epsilon would bias the norm
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
