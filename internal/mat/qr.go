package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix A (m >= n)
// with column pivoting: A·P = Q·R. It is the backbone of the
// least-squares solves used by the regression models; column pivoting
// lets the solver detect and survive rank deficiency, which arises
// naturally when a cluster's training kernels only cover part of the
// configuration space.
type QR struct {
	qr    *Dense    // packed factors: R in the upper triangle, Householder vectors below
	tau   []float64 // Householder scalar factors
	perm  []int     // column permutation: column j of A·P is column perm[j] of A
	rank  int       // numerical rank
	m, n  int
	rdiag []float64 // diagonal of R (post-pivot)
	heads []float64 // first element of each Householder vector
}

// Factor computes the pivoted QR factorization of a. It requires
// rows >= cols.
func Factor(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("%w: QR requires rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	heads := make([]float64, n)
	perm := make([]int, n)
	colNorm := make([]float64, n)
	for j := 0; j < n; j++ {
		perm[j] = j
		colNorm[j] = Norm2(qr.Col(j))
	}

	for k := 0; k < n; k++ {
		// Pivot: bring the column with the largest remaining norm to position k.
		best := k
		for j := k + 1; j < n; j++ {
			if colNorm[j] > colNorm[best] {
				best = j
			}
		}
		if best != k {
			swapCols(qr, k, best)
			perm[k], perm[best] = perm[best], perm[k]
			colNorm[k], colNorm[best] = colNorm[best], colNorm[k]
		}

		// Householder reflector annihilating below-diagonal entries of column k.
		alpha := 0.0
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			alpha += v * v
		}
		alpha = math.Sqrt(alpha)
		if qr.At(k, k) > 0 {
			alpha = -alpha
		}
		//lint:ignore floatcmp exact zero means the column is already null and gets no reflector
		if alpha == 0 {
			tau[k] = 0
			continue
		}
		beta := math.Sqrt(2 * (alpha*alpha - alpha*qr.At(k, k)))
		vk := make([]float64, m-k)
		vk[0] = qr.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			vk[i-k] = qr.At(i, k)
		}
		for i := range vk {
			vk[i] /= beta
		}
		// Apply reflector H = I − 2 v vᵀ to the trailing submatrix.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += vk[i-k] * qr.At(i, j)
			}
			s *= 2
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*vk[i-k])
			}
		}
		// Store: R diagonal is alpha; reflector vector below the diagonal.
		qr.Set(k, k, alpha)
		heads[k] = vk[0]
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, vk[i-k])
		}
		tau[k] = 1 // marker: reflector stored

		// Downdate remaining column norms (recompute; matrices are tiny).
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k + 1; i < m; i++ {
				v := qr.At(i, j)
				s += v * v
			}
			colNorm[j] = math.Sqrt(s)
		}
	}

	f := &QR{qr: qr, tau: tau, perm: perm, m: m, n: n, heads: heads}
	f.rdiag = make([]float64, n)
	maxDiag := 0.0
	for j := 0; j < n; j++ {
		f.rdiag[j] = qr.At(j, j)
		if d := math.Abs(f.rdiag[j]); d > maxDiag {
			maxDiag = d
		}
	}
	tol := float64(max(m, n)) * maxDiag * 1e-12
	f.rank = 0
	for j := 0; j < n; j++ {
		if math.Abs(f.rdiag[j]) > tol {
			f.rank++
		} else {
			break // pivoting orders diagonals by decreasing magnitude
		}
	}
	return f, nil
}

// Rank returns the numerical rank determined during factorization.
func (f *QR) Rank() int { return f.rank }

// Solve returns the minimum-norm-ish least-squares solution x of
// A·x ≈ b using the factorization. For rank-deficient systems the
// coefficients of dependent columns are set to zero (a pragmatic
// choice that keeps regression predictions finite and well-behaved).
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), f.m)
	}
	if f.rank == 0 {
		return nil, ErrSingular
	}
	// y = Qᵀ b: apply reflectors in order.
	y := make([]float64, f.m)
	copy(y, b)
	for k := 0; k < f.n; k++ {
		//lint:ignore floatcmp tau[k] is set to exactly 0 as the no-reflector sentinel during factorization
		if f.tau[k] == 0 {
			continue
		}
		s := 0.0
		for i := k; i < f.m; i++ {
			var vi float64
			if i == k {
				vi = f.householderHead(k)
			} else {
				vi = f.qr.At(i, k)
			}
			s += vi * y[i]
		}
		s *= 2
		for i := k; i < f.m; i++ {
			var vi float64
			if i == k {
				vi = f.householderHead(k)
			} else {
				vi = f.qr.At(i, k)
			}
			y[i] -= s * vi
		}
	}
	// Back-substitute R (rank leading block) for the permuted solution.
	z := make([]float64, f.n)
	for i := f.rank - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.rank; j++ {
			s -= f.qr.At(i, j) * z[j]
		}
		z[i] = s / f.qr.At(i, i)
	}
	// Un-permute.
	x := make([]float64, f.n)
	for j := 0; j < f.n; j++ {
		x[f.perm[j]] = z[j]
	}
	return x, nil
}

// householderHead returns the first element of the k-th Householder
// vector, which was stored separately because the R diagonal overwrites
// its slot in the packed factorization.
func (f *QR) householderHead(k int) float64 { return f.heads[k] }

func swapCols(m *Dense, a, b int) {
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+a], m.data[i*m.cols+b] = m.data[i*m.cols+b], m.data[i*m.cols+a]
	}
}

// LeastSquares solves min ‖A·x − b‖₂ via pivoted QR. It is the
// entry point used by the regression layer.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
