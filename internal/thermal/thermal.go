// Package thermal models the die temperature that gates opportunistic
// overclocking (paper §VI: boost engages "only when there is enough
// thermal headroom; if the chip is too hot, such frequency boosting
// will not engage"). A first-order RC thermal model — the standard
// compact model for package-level temperature — integrates power over
// time; a hysteretic governor decides when boost P-states may engage.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

// Model is a first-order RC thermal model:
//
//	C · dT/dt = P − (T − Tamb)/R
//
// with steady state T∞ = Tamb + P·R and time constant τ = R·C.
type Model struct {
	// AmbientC is the ambient (heatsink inlet) temperature, °C.
	AmbientC float64
	// ResistanceCPerW is the junction-to-ambient thermal resistance.
	ResistanceCPerW float64
	// CapacitanceJPerC is the package thermal capacitance.
	CapacitanceJPerC float64

	tempC float64
}

// NewModel returns a Trinity-scale thermal model (0.8 °C/W to ambient,
// ~3 s time constant) starting at ambient temperature. At these values
// a sustained ~50 W package lands near the boost trip point and a
// boosted ~65 W clearly exceeds it, which is the regime the paper's
// opportunistic-overclocking discussion assumes.
func NewModel() *Model {
	m := &Model{AmbientC: 35, ResistanceCPerW: 0.8, CapacitanceJPerC: 4}
	m.tempC = m.AmbientC
	return m
}

// TempC returns the current die temperature.
func (m *Model) TempC() float64 { return m.tempC }

// Reset returns the die to ambient.
func (m *Model) Reset() { m.tempC = m.AmbientC }

// ErrBadStep is returned for non-positive integration steps.
var ErrBadStep = errors.New("thermal: non-positive time step")

// Step integrates the model over dt seconds at constant power p (watts)
// using the exact solution of the linear ODE, so arbitrarily large
// steps remain stable.
func (m *Model) Step(p, dt float64) (float64, error) {
	if dt <= 0 {
		return m.tempC, ErrBadStep
	}
	if p < 0 {
		p = 0
	}
	tInf := m.AmbientC + p*m.ResistanceCPerW
	tau := m.ResistanceCPerW * m.CapacitanceJPerC
	m.tempC = tInf + (m.tempC-tInf)*math.Exp(-dt/tau)
	return m.tempC, nil
}

// SteadyStateC returns the equilibrium temperature at constant power.
func (m *Model) SteadyStateC(p float64) float64 {
	return m.AmbientC + p*m.ResistanceCPerW
}

// Governor gates boost P-states on temperature with hysteresis:
// boost disengages above DisengageC and may re-engage below EngageC.
type Governor struct {
	EngageC    float64
	DisengageC float64
	boosting   bool
}

// NewGovernor returns a governor with Trinity-like trip points
// (disengage at 70 °C, re-engage below 62 °C).
func NewGovernor() *Governor {
	return &Governor{EngageC: 62, DisengageC: 70}
}

// Allow reports whether boost may be active at die temperature t,
// updating the hysteresis state.
func (g *Governor) Allow(t float64) bool {
	if g.boosting {
		if t >= g.DisengageC {
			g.boosting = false
		}
	} else {
		if t < g.EngageC {
			g.boosting = true
		}
	}
	return g.boosting
}

// Boosting returns the current state without updating it.
func (g *Governor) Boosting() bool { return g.boosting }

// Trace records one iteration of a boost simulation.
type Trace struct {
	Iteration int
	Boosted   bool
	FreqGHz   float64
	PowerW    float64
	TempC     float64
	TimeSec   float64
}

// SimulateBoost runs a kernel repeatedly with opportunistic
// overclocking: each iteration runs at the boost frequency when the
// governor allows, otherwise at the configuration's own frequency; die
// temperature integrates the measured power. It returns the trace and
// the fraction of iterations that boosted — the quantity the paper's
// future-work extension trades against thermal limits.
func SimulateBoost(mach *apu.Machine, w apu.Workload, base apu.Config, boostFreq float64, iters int) ([]Trace, float64, error) {
	if base.Device != apu.CPUDevice {
		return nil, 0, errors.New("thermal: boost applies to CPU configurations")
	}
	if err := base.Validate(); err != nil {
		return nil, 0, err
	}
	if _, err := apu.CPUVoltage(boostFreq); err != nil {
		return nil, 0, fmt.Errorf("thermal: boost frequency: %w", err)
	}
	if iters <= 0 {
		iters = 20
	}
	tm := NewModel()
	gov := NewGovernor()
	var traces []Trace
	boosted := 0
	for i := 0; i < iters; i++ {
		cfg := base
		allow := gov.Allow(tm.TempC())
		if allow {
			cfg.CPUFreqGHz = boostFreq
			boosted++
		}
		rng := kernels.IterationRNG(w.Name+"/boost", 0, i)
		e, err := mach.RunNoisy(w, cfg, rng)
		if err != nil {
			return nil, 0, err
		}
		if _, err := tm.Step(e.TotalPowerW(), e.TimeSec); err != nil {
			return nil, 0, err
		}
		traces = append(traces, Trace{
			Iteration: i, Boosted: allow, FreqGHz: cfg.CPUFreqGHz,
			PowerW: e.TotalPowerW(), TempC: tm.TempC(), TimeSec: e.TimeSec,
		})
	}
	return traces, float64(boosted) / float64(iters), nil
}
