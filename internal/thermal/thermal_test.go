package thermal

import (
	"math"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

func TestModelStartsAtAmbient(t *testing.T) {
	m := NewModel()
	if m.TempC() != m.AmbientC {
		t.Fatalf("initial temp %v, ambient %v", m.TempC(), m.AmbientC)
	}
}

func TestStepApproachesSteadyState(t *testing.T) {
	m := NewModel()
	const p = 40.0
	want := m.SteadyStateC(p)
	// Integrate for many time constants.
	for i := 0; i < 1000; i++ {
		if _, err := m.Step(p, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(m.TempC()-want) > 0.01 {
		t.Errorf("temp %v, steady state %v", m.TempC(), want)
	}
}

func TestStepExactSolutionLargeStep(t *testing.T) {
	// One huge step must land on the steady state, not blow up (the
	// exact exponential solution is unconditionally stable).
	m := NewModel()
	if _, err := m.Step(50, 1e6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TempC()-m.SteadyStateC(50)) > 1e-6 {
		t.Errorf("temp %v after giant step, want %v", m.TempC(), m.SteadyStateC(50))
	}
}

func TestStepMonotoneTowardTarget(t *testing.T) {
	m := NewModel()
	prev := m.TempC()
	for i := 0; i < 50; i++ {
		cur, err := m.Step(45, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if cur < prev-1e-12 {
			t.Fatalf("heating not monotone: %v -> %v", prev, cur)
		}
		prev = cur
	}
	// Now cool: power removed, temperature must fall monotonically.
	for i := 0; i < 50; i++ {
		cur, err := m.Step(0, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if cur > prev+1e-12 {
			t.Fatalf("cooling not monotone: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if m.TempC() < m.AmbientC-1e-9 {
		t.Error("cooled below ambient")
	}
}

func TestStepRejectsBadInput(t *testing.T) {
	m := NewModel()
	if _, err := m.Step(10, 0); err == nil {
		t.Error("zero dt accepted")
	}
	// Negative power clamps to zero rather than cooling below ambient.
	if _, err := m.Step(-100, 10); err != nil {
		t.Fatal(err)
	}
	if m.TempC() < m.AmbientC-1e-9 {
		t.Error("negative power cooled below ambient")
	}
}

func TestReset(t *testing.T) {
	m := NewModel()
	if _, err := m.Step(50, 10); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.TempC() != m.AmbientC {
		t.Error("Reset did not return to ambient")
	}
}

func TestGovernorHysteresis(t *testing.T) {
	g := NewGovernor()
	if !g.Allow(40) {
		t.Fatal("cool chip should boost")
	}
	// Heating up: stays boosting until DisengageC.
	if !g.Allow(65) {
		t.Error("mid-band heating should keep boosting (hysteresis)")
	}
	if g.Allow(71) {
		t.Error("hot chip must not boost")
	}
	// Cooling: stays off until below EngageC.
	if g.Allow(65) {
		t.Error("mid-band cooling should stay off (hysteresis)")
	}
	if !g.Allow(60) {
		t.Error("cooled chip should boost again")
	}
	if !g.Boosting() {
		t.Error("Boosting() out of sync")
	}
}

func TestSimulateBoostThermalThrottling(t *testing.T) {
	// A hot, compute-heavy kernel at max base frequency: boost must
	// engage initially (ambient start) and disengage as the die heats.
	mach := apu.DefaultMachine()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	traces, frac, err := SimulateBoost(mach, k.Workload, base, apu.BoostPStates[1].FreqGHz, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 60 {
		t.Fatalf("traces = %d", len(traces))
	}
	if !traces[0].Boosted {
		t.Error("first iteration (ambient die) should boost")
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("boost fraction = %v, want throttling behaviour in (0,1)", frac)
	}
	// Temperature never decreases while boosted at constant work... not
	// strictly true near equilibrium; instead check it stays bounded by
	// the boost steady state.
	limit := NewModel().SteadyStateC(traces[0].PowerW * 1.5)
	for _, tr := range traces {
		if tr.TempC > limit {
			t.Fatalf("temperature %v exceeds physical bound %v", tr.TempC, limit)
		}
	}
}

func TestSimulateBoostColdKernelKeepsBoost(t *testing.T) {
	// A light kernel (1 thread, low power) never heats the die to the
	// trip point: boost stays engaged throughout.
	mach := apu.DefaultMachine()
	k := kernels.Instantiate("LULESH", kernels.Suite()[0].Kernels[10], "Small")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 1, GPUFreqGHz: apu.MinGPUFreq()}
	_, frac, err := SimulateBoost(mach, k.Workload, base, apu.BoostPStates[0].FreqGHz, 40)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("boost fraction = %v, want 1 for a cool kernel", frac)
	}
}

func TestSimulateBoostValidation(t *testing.T) {
	mach := apu.DefaultMachine()
	k := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small")
	gpu := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: 3.7, Threads: 1, GPUFreqGHz: 0.819}
	if _, _, err := SimulateBoost(mach, k.Workload, gpu, 4.0, 10); err == nil {
		t.Error("GPU config accepted for CPU boost")
	}
	cpu := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 3.7, Threads: 4, GPUFreqGHz: 0.311}
	if _, _, err := SimulateBoost(mach, k.Workload, cpu, 9.9, 10); err == nil {
		t.Error("unknown boost frequency accepted")
	}
	if _, _, err := SimulateBoost(mach, apu.Workload{}, cpu, 4.0, 10); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSimulateBoostDeterministic(t *testing.T) {
	mach := apu.DefaultMachine()
	k := kernels.Instantiate("SMC", kernels.Suite()[2].Kernels[0], "Default")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	_, f1, err := SimulateBoost(mach, k.Workload, base, 4.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := SimulateBoost(mach, k.Workload, base, 4.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("boost simulation not deterministic")
	}
}

func BenchmarkSimulateBoost(b *testing.B) {
	mach := apu.DefaultMachine()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SimulateBoost(mach, k.Workload, base, 4.2, 40); err != nil {
			b.Fatal(err)
		}
	}
}
