package stats

import (
	"errors"
	"math"
)

// ErrTooFew is returned when a rank correlation is requested for fewer
// than two paired observations.
var ErrTooFew = errors.New("stats: need at least two paired observations")

// KendallTau computes the Kendall rank correlation coefficient τ
// (tau-b, which corrects for ties) between two equal-length rankings.
// τ = 1 for identical orderings, −1 for exactly reversed orderings.
// The paper (§III-B, citing Kendall 1938) uses τ between the orders of
// configurations shared by two kernels' Pareto frontiers.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: KendallTau requires equal-length slices")
	}
	n := len(x)
	if n < 2 {
		return 0, ErrTooFew
	}
	var concordant, discordant int
	var tiesX, tiesY int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[j] - x[i])
			dy := sign(y[j] - y[i])
			switch {
			case dx == 0 && dy == 0:
				// joint tie: contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				concordant++
			default:
				discordant++
			}
		}
	}
	num := float64(concordant - discordant)
	n0 := float64(n*(n-1)) / 2
	// tau-b denominator: sqrt((n0 − tx)(n0 − ty)) where tx/ty count tied
	// pairs in x/y respectively (joint ties belong to both).
	jointTies := n0 - float64(concordant+discordant+tiesX+tiesY)
	denom := math.Sqrt((n0 - float64(tiesX) - jointTies) * (n0 - float64(tiesY) - jointTies))
	if AlmostZero(denom) {
		// All pairs tied in at least one ranking: orderings carry no
		// information; define τ = 0 (neutral).
		return 0, nil
	}
	return num / denom, nil
}

// KendallTauRanks computes τ for two integer rank lists, a convenience
// for frontier-order comparison where positions are naturally integral.
func KendallTauRanks(x, y []int) (float64, error) {
	fx := make([]float64, len(x))
	fy := make([]float64, len(y))
	for i := range x {
		fx[i] = float64(x[i])
	}
	for i := range y {
		fy[i] = float64(y[i])
	}
	return KendallTau(fx, fy)
}

// RankDissimilarity converts a Kendall τ into the dissimilarity used
// for relational clustering: d = (1 − τ)/2, mapping identical orders to
// 0 and reversed orders to 1.
func RankDissimilarity(tau float64) float64 { return (1 - tau) / 2 }

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
