package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// WeightedMean returns Σ wᵢxᵢ / Σ wᵢ. It is the aggregation the paper
// uses for benchmark-level numbers ("averaged across all kernels …
// weighted by how much of the benchmark time is spent in each kernel").
// A zero total weight yields 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sw, swx float64
	for i := range xs {
		sw += ws[i]
		swx += ws[i] * xs[i]
	}
	if AlmostZero(sw) {
		return 0
	}
	return swx / sw
}

// Variance returns the population variance of xs (0 for fewer than two
// observations).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) via linear interpolation
// between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return minOf(xs)
	}
	if q >= 1 {
		return maxOf(xs)
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// GeoMean returns the geometric mean of strictly positive values; any
// non-positive value yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(xs)))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return minOf(xs)
}

// Max returns the maximum of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return maxOf(xs)
}
