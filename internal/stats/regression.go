// Package stats implements the statistical machinery of the modeling
// pipeline: multivariate ordinary-least-squares regression with
// first-order interaction terms (the paper's per-cluster power and
// performance models), the Kendall rank correlation coefficient used
// to compare Pareto-frontier orderings, and the descriptive statistics
// used throughout the evaluation harness.
package stats

import (
	"errors"
	"fmt"
	"math"

	"acsel/internal/mat"
)

// Regression is a fitted multivariate linear model
//
//	y ≈ b0·[intercept] + Σ bi·xi (+ Σ bij·xi·xj first-order interactions)
//
// matching the formulation in §III-B of the paper. The performance
// models omit the intercept (pure scaling relative to the sample
// configuration); the power models include it.
type Regression struct {
	// Coef holds the fitted coefficients in design-column order.
	Coef []float64
	// Intercept reports whether column 0 of the design is the constant 1.
	Intercept bool
	// Interactions reports whether pairwise products were appended.
	Interactions bool
	// NumVars is the number of raw predictor variables.
	NumVars int
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// ResidualStd is the standard deviation of training residuals; the
	// variance-aware scheduler (paper §VI) uses it as a per-model
	// uncertainty estimate.
	ResidualStd float64
	// LogTarget reports whether the model was fitted to log(y) — the
	// variance-stabilizing transformation from the paper's future work.
	LogTarget bool
	// N is the number of training observations.
	N int
}

// RegressionOptions selects model structure.
type RegressionOptions struct {
	// Intercept adds a constant term (power models: true; performance
	// scaling models: false).
	Intercept bool
	// Interactions appends all first-order pairwise products xi·xj, i<j.
	Interactions bool
	// LogTarget fits log(y) instead of y. Requires strictly positive
	// targets; predictions are transformed back with exp.
	LogTarget bool
}

// ErrNoData is returned when a fit is attempted without observations.
var ErrNoData = errors.New("stats: no observations")

// ErrBadTarget is returned when LogTarget is set but a target is
// non-positive.
var ErrBadTarget = errors.New("stats: non-positive target with LogTarget")

// designWidth returns the number of columns the design matrix will have
// for nvars raw variables under opts.
func designWidth(nvars int, opts RegressionOptions) int {
	w := nvars
	if opts.Interactions {
		w += nvars * (nvars - 1) / 2
	}
	if opts.Intercept {
		w++
	}
	return w
}

// designRow expands a raw feature vector into a design row under opts.
// Layout: [1?] x1..xn [x1x2 x1x3 ... x(n-1)xn?].
func designRow(x []float64, opts RegressionOptions) []float64 {
	row := make([]float64, 0, designWidth(len(x), opts))
	if opts.Intercept {
		row = append(row, 1)
	}
	row = append(row, x...)
	if opts.Interactions {
		for i := 0; i < len(x); i++ {
			for j := i + 1; j < len(x); j++ {
				row = append(row, x[i]*x[j])
			}
		}
	}
	return row
}

// FitRegression fits an OLS model to observations X (rows of raw
// features) and targets y. All rows must share a length.
func FitRegression(X [][]float64, y []float64, opts RegressionOptions) (*Regression, error) {
	if len(X) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("stats: %d feature rows but %d targets", len(X), len(y))
	}
	nvars := len(X[0])
	for i, row := range X {
		if len(row) != nvars {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(row), nvars)
		}
	}
	width := designWidth(nvars, opts)
	n := len(X)
	if n < width {
		// Pad with ridge-like duplicate? No: fall back to a reduced model
		// is handled by pivoted QR's rank handling, but QR needs n >= cols.
		// Augment with tiny Tikhonov rows to keep the solve well-posed.
		return fitRidgeAugmented(X, y, opts, nvars, width)
	}

	design := mat.NewDense(n, width, nil)
	target := make([]float64, n)
	for i, row := range X {
		d := designRow(row, opts)
		for j, v := range d {
			design.Set(i, j, v)
		}
		t := y[i]
		if opts.LogTarget {
			if t <= 0 {
				return nil, fmt.Errorf("%w: y[%d]=%v", ErrBadTarget, i, t)
			}
			t = math.Log(t)
		}
		target[i] = t
	}
	coef, err := mat.LeastSquares(design, target)
	if err != nil {
		return nil, err
	}
	r := &Regression{
		Coef:         coef,
		Intercept:    opts.Intercept,
		Interactions: opts.Interactions,
		NumVars:      nvars,
		LogTarget:    opts.LogTarget,
		N:            n,
	}
	r.finishFitStats(design, target)
	return r, nil
}

// fitRidgeAugmented handles the under-determined case (fewer
// observations than design columns) by appending λ·I rows, i.e. a tiny
// ridge penalty. This arises for very small clusters during
// leave-one-out cross-validation.
func fitRidgeAugmented(X [][]float64, y []float64, opts RegressionOptions, nvars, width int) (*Regression, error) {
	const lambda = 1e-6
	n := len(X)
	design := mat.NewDense(n+width, width, nil)
	target := make([]float64, n+width)
	for i, row := range X {
		d := designRow(row, opts)
		for j, v := range d {
			design.Set(i, j, v)
		}
		t := y[i]
		if opts.LogTarget {
			if t <= 0 {
				return nil, fmt.Errorf("%w: y[%d]=%v", ErrBadTarget, i, t)
			}
			t = math.Log(t)
		}
		target[i] = t
	}
	for j := 0; j < width; j++ {
		design.Set(n+j, j, lambda)
	}
	coef, err := mat.LeastSquares(design, target)
	if err != nil {
		return nil, err
	}
	r := &Regression{
		Coef:         coef,
		Intercept:    opts.Intercept,
		Interactions: opts.Interactions,
		NumVars:      nvars,
		LogTarget:    opts.LogTarget,
		N:            n,
	}
	// Fit statistics on the real observations only.
	realDesign := mat.NewDense(n, width, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < width; j++ {
			realDesign.Set(i, j, design.At(i, j))
		}
	}
	r.finishFitStats(realDesign, target[:n])
	return r, nil
}

func (r *Regression) finishFitStats(design *mat.Dense, target []float64) {
	pred, _ := mat.MulVec(design, r.Coef)
	mean := Mean(target)
	ssTot, ssRes := 0.0, 0.0
	for i := range target {
		d := target[i] - mean
		ssTot += d * d
		e := target[i] - pred[i]
		ssRes += e * e
	}
	if ssTot > 0 {
		r.R2 = 1 - ssRes/ssTot
	} else {
		r.R2 = 1 // constant target perfectly fit by intercept or degenerate
	}
	if len(target) > 0 {
		r.ResidualStd = math.Sqrt(ssRes / float64(len(target)))
	}
}

// Predict evaluates the model at raw feature vector x.
func (r *Regression) Predict(x []float64) (float64, error) {
	if len(x) != r.NumVars {
		return 0, fmt.Errorf("stats: predict with %d features, model has %d", len(x), r.NumVars)
	}
	row := designRow(x, RegressionOptions{Intercept: r.Intercept, Interactions: r.Interactions})
	if len(row) != len(r.Coef) {
		return 0, fmt.Errorf("stats: design width %d != coef %d", len(row), len(r.Coef))
	}
	v := mat.Dot(row, r.Coef)
	if r.LogTarget {
		v = math.Exp(v)
	}
	return v, nil
}

// PredictWithStd evaluates the model and returns the training residual
// standard deviation as a crude prediction-uncertainty proxy, used by
// the variance-aware selection extension.
func (r *Regression) PredictWithStd(x []float64) (pred, std float64, err error) {
	pred, err = r.Predict(x)
	if err != nil {
		return 0, 0, err
	}
	std = r.ResidualStd
	if r.LogTarget {
		// Delta method: std on the original scale scales with the prediction.
		std = pred * r.ResidualStd
	}
	return pred, std, nil
}
