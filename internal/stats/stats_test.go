package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitRegressionExactLinear(t *testing.T) {
	// y = 3 + 2a − b, with intercept, no interactions.
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}}
	y := make([]float64, len(X))
	for i, r := range X {
		y[i] = 3 + 2*r[0] - r[1]
	}
	m, err := FitRegression(X, y, RegressionOptions{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if !near(m.Coef[0], 3, 1e-9) || !near(m.Coef[1], 2, 1e-9) || !near(m.Coef[2], -1, 1e-9) {
		t.Errorf("coef = %v", m.Coef)
	}
	if m.R2 < 0.999999 {
		t.Errorf("R2 = %v", m.R2)
	}
	p, err := m.Predict([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !near(p, 3+10-5, 1e-9) {
		t.Errorf("Predict = %v", p)
	}
}

func TestFitRegressionInteractions(t *testing.T) {
	// y = a·b exactly: only the interaction term should carry weight.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		X = append(X, []float64{a, b})
		y = append(y, a*b)
	}
	m, err := FitRegression(X, y, RegressionOptions{Intercept: true, Interactions: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m.Predict([]float64{2, 3})
	if !near(p, 6, 1e-6) {
		t.Errorf("Predict(2,3) = %v want 6", p)
	}
}

func TestFitRegressionNoIntercept(t *testing.T) {
	// y = 4x, model without intercept should recover slope exactly.
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{4, 8, 12}
	m, err := FitRegression(X, y, RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Coef) != 1 || !near(m.Coef[0], 4, 1e-9) {
		t.Errorf("coef = %v", m.Coef)
	}
}

func TestFitRegressionLogTarget(t *testing.T) {
	// y = exp(1 + 2x): log fit recovers it exactly.
	X := [][]float64{{0}, {0.5}, {1}, {1.5}, {2}}
	y := make([]float64, len(X))
	for i, r := range X {
		y[i] = math.Exp(1 + 2*r[0])
	}
	m, err := FitRegression(X, y, RegressionOptions{Intercept: true, LogTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m.Predict([]float64{3})
	if !near(p, math.Exp(7), 1e-4*math.Exp(7)) {
		t.Errorf("Predict = %v want %v", p, math.Exp(7))
	}
}

func TestFitRegressionLogTargetRejectsNonPositive(t *testing.T) {
	if _, err := FitRegression([][]float64{{1}, {2}}, []float64{1, 0}, RegressionOptions{LogTarget: true}); err == nil {
		t.Fatal("expected ErrBadTarget")
	}
}

func TestFitRegressionErrors(t *testing.T) {
	if _, err := FitRegression(nil, nil, RegressionOptions{}); err == nil {
		t.Fatal("expected ErrNoData")
	}
	if _, err := FitRegression([][]float64{{1}}, []float64{1, 2}, RegressionOptions{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FitRegression([][]float64{{1}, {1, 2}}, []float64{1, 2}, RegressionOptions{}); err == nil {
		t.Fatal("expected ragged-row error")
	}
}

func TestFitRegressionUnderdeterminedRidge(t *testing.T) {
	// 2 observations, 3 design columns (intercept + 2 vars): the ridge
	// fallback must produce a finite, sane model.
	X := [][]float64{{1, 2}, {2, 1}}
	y := []float64{5, 4}
	m, err := FitRegression(X, y, RegressionOptions{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("non-finite coefficient %v", m.Coef)
		}
	}
	// It should interpolate the two points closely.
	for i, r := range X {
		p, _ := m.Predict(r)
		if !near(p, y[i], 1e-3) {
			t.Errorf("pred[%d] = %v want %v", i, p, y[i])
		}
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	m, err := FitRegression([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}, RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestPredictWithStd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 10
		X = append(X, []float64{x})
		y = append(y, 2*x+rng.NormFloat64()) // unit noise
	}
	m, err := FitRegression(X, y, RegressionOptions{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	_, std, err := m.PredictWithStd([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if std < 0.5 || std > 2 {
		t.Errorf("residual std = %v, want ≈1", std)
	}
}

func TestKendallTauPerfectAgreement(t *testing.T) {
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !near(tau, 1, 1e-12) {
		t.Errorf("tau = %v want 1", tau)
	}
}

func TestKendallTauPerfectDisagreement(t *testing.T) {
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !near(tau, -1, 1e-12) {
		t.Errorf("tau = %v want -1", tau)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Classic example: one discordant pair among n=4.
	// x: 1,2,3,4  y: 1,2,4,3 → C=5, D=1, tau = 4/6.
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{1, 2, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !near(tau, 4.0/6.0, 1e-12) {
		t.Errorf("tau = %v want %v", tau, 4.0/6.0)
	}
}

func TestKendallTauWithTies(t *testing.T) {
	// tau-b handles ties; all-tied x yields denominator 0 → τ=0.
	tau, err := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tau != 0 {
		t.Errorf("tau = %v want 0 for fully tied x", tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected ErrTooFew")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestKendallTauRanks(t *testing.T) {
	tau, err := KendallTauRanks([]int{0, 1, 2}, []int{0, 1, 2})
	if err != nil || !near(tau, 1, 1e-12) {
		t.Errorf("tau = %v err=%v", tau, err)
	}
}

// Property: τ is symmetric and bounded in [−1, 1] for random rankings.
func TestKendallTauProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(6)) // allow ties
			y[i] = float64(rng.Intn(6))
		}
		t1, err1 := KendallTau(x, y)
		t2, err2 := KendallTau(y, x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !near(t1, t2, 1e-12) {
			t.Fatalf("asymmetric tau: %v vs %v", t1, t2)
		}
		if t1 < -1-1e-12 || t1 > 1+1e-12 {
			t.Fatalf("tau out of range: %v", t1)
		}
	}
}

func TestRankDissimilarity(t *testing.T) {
	if d := RankDissimilarity(1); d != 0 {
		t.Errorf("d(1) = %v", d)
	}
	if d := RankDissimilarity(-1); d != 1 {
		t.Errorf("d(-1) = %v", d)
	}
	if d := RankDissimilarity(0); d != 0.5 {
		t.Errorf("d(0) = %v", d)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3}); !near(m, 2, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
}

func TestWeightedMean(t *testing.T) {
	m := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if !near(m, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v", m)
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Error("zero-weight mean should be 0")
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); !near(v, 4, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !near(s, 2, 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !near(m, 2.5, 1e-12) {
		t.Errorf("even median = %v", m)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !near(q, 3, 1e-12) {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(xs, 0.25); !near(q, 2, 1e-12) {
		t.Errorf("q0.25 = %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil)")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !near(g, 10, 1e-9) {
		t.Errorf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil)")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max")
	}
}

// Property (testing/quick): mean is bounded by min and max.
func TestMeanBounded(t *testing.T) {
	f := func(a [7]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 0
			}
			a[i] = math.Mod(a[i], 1e9)
		}
		m := Mean(a[:])
		return m >= Min(a[:])-1e-6 && m <= Max(a[:])+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: regression trained on linearly generated data predicts the
// generator within tolerance at unseen points.
func TestRegressionRecoversGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		b0, b1, b2 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		var X [][]float64
		var y []float64
		for i := 0; i < 25; i++ {
			a, b := rng.Float64()*5, rng.Float64()*5
			X = append(X, []float64{a, b})
			y = append(y, b0+b1*a+b2*b)
		}
		m, err := FitRegression(X, y, RegressionOptions{Intercept: true})
		if err != nil {
			t.Fatal(err)
		}
		a, b := rng.Float64()*5, rng.Float64()*5
		p, _ := m.Predict([]float64{a, b})
		want := b0 + b1*a + b2*b
		if !near(p, want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("trial %d: predict %v want %v", trial, p, want)
		}
	}
}

func BenchmarkKendallTau(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 13 // typical shared-frontier length
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTau(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegressionPredict(b *testing.B) {
	m, err := FitRegression(
		[][]float64{{1, 1, 0}, {2, 1, 0}, {3, 2, 1}, {1, 4, 1}, {2, 2, 2}, {3, 3, 3}, {0.5, 1, 2}},
		[]float64{1, 2, 3, 4, 5, 6, 7},
		RegressionOptions{Intercept: true, Interactions: true})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{2.4, 3, 0.3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}
