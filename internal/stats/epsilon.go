package stats

import "math"

// DefaultEpsilon is the tolerance used by AlmostEqual and AlmostZero.
// Model quantities in this codebase (watts, normalized performance,
// dissimilarities) live within a few orders of magnitude of 1, so a
// combined absolute/relative tolerance of 1e-9 separates genuine
// differences from accumulated rounding error.
const DefaultEpsilon = 1e-9

// AlmostEqual reports whether a and b are equal within DefaultEpsilon,
// using the larger of an absolute and a magnitude-relative tolerance.
// NaN is equal to nothing; infinities are equal only to themselves.
func AlmostEqual(a, b float64) bool {
	return AlmostEqualEps(a, b, DefaultEpsilon)
}

// AlmostEqualEps is AlmostEqual with an explicit tolerance.
func AlmostEqualEps(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//lint:ignore floatcmp intentional fast path: exact matches and equal infinities short-circuit the tolerance math
	if a == b {
		return true
	}
	// A remaining infinity differs from everything else by infinity;
	// without this the Inf <= eps*Inf comparison below degenerates.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*math.Max(1, scale)
}

// AlmostZero reports whether x is within DefaultEpsilon of zero.
func AlmostZero(x float64) bool {
	return math.Abs(x) <= DefaultEpsilon
}
