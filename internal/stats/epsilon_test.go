package stats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.0, 1.0, true},
		{0.0, 0.0, true},
		{0.1 + 0.2, 0.3, true}, // the classic rounding case
		{1.0, 1.0 + 1e-12, true},
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance at scale
		{1.0, 1.0 + 1e-6, false},
		{1.0, 2.0, false},
		{0.0, 1e-12, true},
		{0.0, 1e-6, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1.0, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := AlmostEqual(c.b, c.a); got != c.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v (not symmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestAlmostEqualEps(t *testing.T) {
	if !AlmostEqualEps(1.0, 1.05, 0.1) {
		t.Error("AlmostEqualEps must honor a loose explicit tolerance")
	}
	if AlmostEqualEps(1.0, 1.05, 0.01) {
		t.Error("AlmostEqualEps must honor a tight explicit tolerance")
	}
}

func TestAlmostZero(t *testing.T) {
	for _, x := range []float64{0, 1e-12, -1e-12, DefaultEpsilon} {
		if !AlmostZero(x) {
			t.Errorf("AlmostZero(%v) = false, want true", x)
		}
	}
	for _, x := range []float64{1e-6, -1e-6, 1, math.Inf(1), math.NaN()} {
		if AlmostZero(x) {
			t.Errorf("AlmostZero(%v) = true, want false", x)
		}
	}
}
