package stats

import (
	"errors"
	"math"
	"testing"
)

// ranksFromBytes decodes a fuzz byte string into an integer rank list:
// one signed byte per rank, so ties, negatives, and reversals all occur
// naturally under mutation.
func ranksFromBytes(data []byte) []int {
	out := make([]int, len(data))
	for i, b := range data {
		out[i] = int(int8(b))
	}
	return out
}

// FuzzKendallTauRanks holds the tau-b contract under arbitrary rank
// lists: never panic, never return NaN or a value outside [-1, 1],
// stay symmetric in its arguments, score an identical untied ranking
// as exactly 1, and reject fewer than two pairs with ErrTooFew.
func FuzzKendallTauRanks(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4}, []byte{0, 1, 2, 3, 4}) // identical
	f.Add([]byte{0, 1, 2, 3, 4}, []byte{4, 3, 2, 1, 0}) // reversed
	f.Add([]byte{0, 0, 1, 1}, []byte{1, 1, 0, 0})       // tied blocks
	f.Add([]byte{5, 5, 5}, []byte{1, 2, 3})             // x fully tied
	f.Add([]byte{}, []byte{})                           // empty
	f.Add([]byte{7}, []byte{9})                         // single pair
	f.Add([]byte{255, 0, 128}, []byte{1, 254, 3})       // negatives via int8
	f.Fuzz(func(t *testing.T, da, db []byte) {
		n := len(da)
		if len(db) < n {
			n = len(db)
		}
		x := ranksFromBytes(da[:n])
		y := ranksFromBytes(db[:n])

		tau, err := KendallTauRanks(x, y)
		if n < 2 {
			if !errors.Is(err, ErrTooFew) {
				t.Fatalf("n=%d: err = %v, want ErrTooFew", n, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if math.IsNaN(tau) || tau < -1 || tau > 1 {
			t.Fatalf("tau = %v outside [-1, 1] for x=%v y=%v", tau, x, y)
		}

		// Symmetry: swapping the rankings swaps the two tie counts but
		// leaves both the numerator and the denominator product intact.
		rev, err := KendallTauRanks(y, x)
		if err != nil {
			t.Fatalf("symmetric call errored: %v", err)
		}
		if tau != rev {
			t.Fatalf("asymmetric: tau(x,y)=%v tau(y,x)=%v", tau, rev)
		}

		// Self-correlation of an untied list is exactly 1.
		if self, err := KendallTauRanks(x, x); err == nil && !hasTies(x) && self != 1 {
			t.Fatalf("tau(x,x) = %v, want 1 for untied x=%v", self, x)
		}

		// The derived dissimilarity must stay in [0, 1].
		if d := RankDissimilarity(tau); d < 0 || d > 1 || math.IsNaN(d) {
			t.Fatalf("RankDissimilarity(%v) = %v outside [0, 1]", tau, d)
		}
	})
}

func hasTies(x []int) bool {
	seen := map[int]bool{}
	for _, v := range x {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	return false
}
