package stats_test

import (
	"fmt"

	"acsel/internal/stats"
)

// Comparing two kernels' frontier orderings with the Kendall rank
// correlation, as the clustering stage does (§III-B).
func ExampleKendallTau() {
	// Positions of four shared configurations along two frontiers.
	kernelA := []float64{0, 1, 2, 3}
	kernelB := []float64{0, 1, 3, 2} // one adjacent swap

	tau, err := stats.KendallTau(kernelA, kernelB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tau = %.3f, dissimilarity = %.3f\n", tau, stats.RankDissimilarity(tau))
	// Output:
	// tau = 0.667, dissimilarity = 0.167
}

// Fitting the paper's power model form: intercept plus linear terms
// plus first-order interactions over the configuration variables.
func ExampleFitRegression() {
	// y = 5 + 2·f + 1·t (watts as a function of frequency and threads).
	X := [][]float64{{1.4, 1}, {1.4, 4}, {2.4, 2}, {3.7, 4}, {3.7, 1}, {2.4, 3}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 5 + 2*row[0] + 1*row[1]
	}
	m, err := stats.FitRegression(X, y, stats.RegressionOptions{Intercept: true})
	if err != nil {
		panic(err)
	}
	pred, _ := m.Predict([]float64{2.8, 2})
	fmt.Printf("predicted power at f=2.8, t=2: %.1f W (R²=%.2f)\n", pred, m.R2)
	// Output:
	// predicted power at f=2.8, t=2: 12.6 W (R²=1.00)
}
