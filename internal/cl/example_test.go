package cl_test

import (
	"fmt"

	"acsel/internal/apu"
	"acsel/internal/cl"
	"acsel/internal/kernels"
)

// Enqueueing a kernel on a profiling-enabled queue and reading the
// OpenCL-style event timestamps.
func ExampleCommandQueue_EnqueueNDRange() {
	ctx := cl.NewContext(nil)
	queue, err := ctx.NewQueue(apu.SampleConfigGPU(), cl.WithProfiling())
	if err != nil {
		panic(err)
	}
	w := kernels.Instantiate("LU", kernels.Suite()[3].Kernels[0], "Small").Workload
	k, err := cl.NewKernel(w)
	if err != nil {
		panic(err)
	}
	ev, err := queue.EnqueueNDRange(k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("kernel %s on %v\n", ev.Kernel, ev.Config.Device)
	fmt.Printf("launch latency > 0: %v; events recorded: %d\n", ev.LaunchLatency() > 0, len(queue.Events()))
	// Output:
	// kernel lud on GPU
	// launch latency > 0: true; events recorded: 1
}
