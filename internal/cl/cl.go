// Package cl is a miniature OpenCL-style runtime: contexts, in-order
// command queues, kernel launches with driver overhead on the host CPU,
// and event profiling in the style of clGetEventProfilingInfo. The
// paper's profiling library instruments exactly this layer ("effected
// through dynamic library interposition, wrapping OpenCL API calls",
// §III-D); the Hook interface is that interposition point. Execution is
// backed by the apu machine model over a virtual clock, so enqueue
// ordering, launch latency, and per-kernel timing behave like the real
// runtime without real hardware.
package cl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"acsel/internal/apu"
)

// Context owns a machine and the virtual clock shared by its queues.
type Context struct {
	machine *apu.Machine

	mu  sync.Mutex
	now float64 // virtual seconds since context creation
}

// NewContext creates a context over a machine model (nil means the
// default machine).
func NewContext(m *apu.Machine) *Context {
	if m == nil {
		m = apu.DefaultMachine()
	}
	return &Context{machine: m}
}

// Now returns the virtual time.
func (c *Context) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *Context) advance(d float64) (start, end float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start = c.now
	c.now += d
	return start, c.now
}

// Kernel wraps a workload as an enqueueable kernel object.
type Kernel struct {
	Name     string
	Workload apu.Workload
}

// NewKernel validates and wraps a workload.
func NewKernel(w apu.Workload) (*Kernel, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Kernel{Name: w.Name, Workload: w}, nil
}

// EventStatus tracks an event's lifecycle, mirroring CL_QUEUED →
// CL_SUBMITTED → CL_RUNNING → CL_COMPLETE.
type EventStatus int

const (
	// Queued: accepted into the command queue.
	Queued EventStatus = iota
	// Complete: execution finished (the virtual clock makes submission
	// and running instantaneousy observable; Finish resolves them).
	Complete
)

// Event is the profiling record of one enqueued command, with the four
// OpenCL profiling timestamps in virtual seconds.
type Event struct {
	Kernel    string
	Config    apu.Config
	Status    EventStatus
	QueuedAt  float64
	SubmitAt  float64
	StartAt   float64
	EndAt     float64
	Execution apu.Execution
	Iteration int
}

// Duration is the kernel execution time (start→end).
func (e *Event) Duration() float64 { return e.EndAt - e.StartAt }

// LaunchLatency is the driver-side delay before execution (queued→start).
func (e *Event) LaunchLatency() float64 { return e.StartAt - e.QueuedAt }

// Hook is the interposition interface: the profiling library registers
// one to observe every command without the application changing.
type Hook interface {
	// OnEnqueue fires when a command enters the queue.
	OnEnqueue(kernel string, cfg apu.Config)
	// OnComplete fires when a command finishes, with its event record.
	OnComplete(ev *Event)
}

// CommandQueue is an in-order queue bound to a device configuration.
// The configuration (device, P-states, threads) plays the role of the
// device + runtime environment a queue is created against.
type CommandQueue struct {
	ctx *Context

	mu      sync.Mutex
	cfg     apu.Config
	hooks   []Hook
	events  []*Event
	iters   map[string]int
	profile bool
	rngFor  func(kernel string, cfgID, iter int) *rand.Rand
}

// QueueOption configures queue creation.
type QueueOption func(*CommandQueue)

// WithProfiling enables event profiling (CL_QUEUE_PROFILING_ENABLE).
func WithProfiling() QueueOption {
	return func(q *CommandQueue) { q.profile = true }
}

// WithNoise installs a deterministic per-iteration RNG source for
// measurement jitter; nil disables noise.
func WithNoise(f func(kernel string, cfgID, iter int) *rand.Rand) QueueOption {
	return func(q *CommandQueue) { q.rngFor = f }
}

// ErrInvalidConfig is returned when a queue is created against an
// unrealizable configuration.
var ErrInvalidConfig = errors.New("cl: invalid queue configuration")

// NewQueue creates an in-order command queue on a configuration.
func (c *Context) NewQueue(cfg apu.Config, opts ...QueueOption) (*CommandQueue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	q := &CommandQueue{ctx: c, cfg: cfg, iters: map[string]int{}}
	for _, o := range opts {
		o(q)
	}
	return q, nil
}

// Config returns the queue's current configuration.
func (q *CommandQueue) Config() apu.Config {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cfg
}

// SetConfig re-targets the queue (the adaptive runtime's re-selection
// path). Pending semantics are in-order, so the change affects
// subsequently enqueued commands.
func (q *CommandQueue) SetConfig(cfg apu.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	q.mu.Lock()
	q.cfg = cfg
	q.mu.Unlock()
	return nil
}

// AddHook registers an interposition hook.
func (q *CommandQueue) AddHook(h Hook) {
	q.mu.Lock()
	q.hooks = append(q.hooks, h)
	q.mu.Unlock()
}

// EnqueueNDRange launches the kernel on the queue's configuration and
// returns its event. In this virtual-time runtime the command executes
// eagerly but the event timestamps reflect queue ordering and driver
// launch latency exactly as an asynchronous runtime would report them.
func (q *CommandQueue) EnqueueNDRange(k *Kernel) (*Event, error) {
	q.mu.Lock()
	cfg := q.cfg
	iter := q.iters[k.Name]
	q.iters[k.Name] = iter + 1
	hooks := append([]Hook(nil), q.hooks...)
	q.mu.Unlock()

	for _, h := range hooks {
		h.OnEnqueue(k.Name, cfg)
	}

	var exec apu.Execution
	var err error
	if q.rngFor != nil {
		exec, err = q.ctx.machine.RunNoisy(k.Workload, cfg, q.rngFor(k.Name, configKey(cfg), iter))
	} else {
		exec, err = q.ctx.machine.Run(k.Workload, cfg)
	}
	if err != nil {
		return nil, err
	}

	start, end := q.ctx.advance(exec.TimeSec)
	ev := &Event{
		Kernel:    k.Name,
		Config:    cfg,
		Status:    Complete,
		QueuedAt:  start,
		SubmitAt:  start,
		StartAt:   start + exec.LaunchTimeSec,
		EndAt:     end,
		Execution: exec,
		Iteration: iter,
	}
	q.mu.Lock()
	if q.profile {
		q.events = append(q.events, ev)
	}
	q.mu.Unlock()
	for _, h := range hooks {
		h.OnComplete(ev)
	}
	return ev, nil
}

// Finish drains the queue (a no-op in virtual time; commands complete
// at enqueue) and returns the virtual time, so call sites read like
// clFinish-then-timestamp code.
func (q *CommandQueue) Finish() float64 { return q.ctx.Now() }

// Events returns the recorded profiling events (profiling queues only).
func (q *CommandQueue) Events() []*Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*Event(nil), q.events...)
}

// configKey derives a small stable integer from a configuration for
// noise seeding (not a space ID — queues are space-agnostic).
func configKey(cfg apu.Config) int {
	k := int(cfg.CPUFreqGHz*100) + cfg.Threads*10000
	k += int(cfg.GPUFreqGHz * 100000)
	if cfg.Device == apu.GPUDevice {
		k += 1 << 24
	}
	return k
}
