package cl

import (
	"math"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

func testKernel(t *testing.T) *Kernel {
	t.Helper()
	kk := kernels.Instantiate("LULESH", kernels.Suite()[0].Kernels[0], "Small")
	k, err := NewKernel(kk.Workload)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func gpuCfg() apu.Config {
	return apu.Config{Device: apu.GPUDevice, CPUFreqGHz: 3.7, Threads: 1, GPUFreqGHz: 0.819}
}

func TestNewKernelValidates(t *testing.T) {
	if _, err := NewKernel(apu.Workload{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestNewQueueValidates(t *testing.T) {
	ctx := NewContext(nil)
	if _, err := ctx.NewQueue(apu.Config{Device: apu.GPUDevice, Threads: 3}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEnqueueAdvancesVirtualClock(t *testing.T) {
	ctx := NewContext(nil)
	q, err := ctx.NewQueue(gpuCfg(), WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	k := testKernel(t)
	before := ctx.Now()
	ev, err := q.EnqueueNDRange(k)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Now() <= before {
		t.Error("clock did not advance")
	}
	if ev.Status != Complete {
		t.Error("event not complete")
	}
	if ev.EndAt != ctx.Now() {
		t.Errorf("event end %v != now %v", ev.EndAt, ctx.Now())
	}
	if q.Finish() != ctx.Now() {
		t.Error("Finish should return the virtual time")
	}
}

func TestEventTimestampsOrdered(t *testing.T) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg(), WithProfiling())
	k := testKernel(t)
	ev, err := q.EnqueueNDRange(k)
	if err != nil {
		t.Fatal(err)
	}
	if !(ev.QueuedAt <= ev.SubmitAt && ev.SubmitAt <= ev.StartAt && ev.StartAt < ev.EndAt) {
		t.Errorf("timestamps out of order: %+v", ev)
	}
	if ev.LaunchLatency() <= 0 {
		t.Errorf("GPU launch latency = %v, want > 0", ev.LaunchLatency())
	}
	if math.Abs(ev.Duration()+ev.LaunchLatency()-(ev.EndAt-ev.QueuedAt)) > 1e-12 {
		t.Error("duration decomposition inconsistent")
	}
}

func TestInOrderQueueSequencing(t *testing.T) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg(), WithProfiling())
	k := testKernel(t)
	var prevEnd float64
	for i := 0; i < 4; i++ {
		ev, err := q.EnqueueNDRange(k)
		if err != nil {
			t.Fatal(err)
		}
		if ev.QueuedAt < prevEnd {
			t.Errorf("command %d overlaps predecessor", i)
		}
		if ev.Iteration != i {
			t.Errorf("iteration %d labeled %d", i, ev.Iteration)
		}
		prevEnd = ev.EndAt
	}
	if len(q.Events()) != 4 {
		t.Errorf("events = %d", len(q.Events()))
	}
}

func TestProfilingDisabledRecordsNothing(t *testing.T) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg())
	if _, err := q.EnqueueNDRange(testKernel(t)); err != nil {
		t.Fatal(err)
	}
	if len(q.Events()) != 0 {
		t.Error("profiling-off queue recorded events")
	}
}

type recordingHook struct {
	enqueues  int
	completes int
	lastEvent *Event
}

func (h *recordingHook) OnEnqueue(string, apu.Config) { h.enqueues++ }
func (h *recordingHook) OnComplete(ev *Event)         { h.completes++; h.lastEvent = ev }

func TestHooksInterpose(t *testing.T) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg())
	h := &recordingHook{}
	q.AddHook(h)
	if _, err := q.EnqueueNDRange(testKernel(t)); err != nil {
		t.Fatal(err)
	}
	if h.enqueues != 1 || h.completes != 1 {
		t.Errorf("hook calls: %d enqueues, %d completes", h.enqueues, h.completes)
	}
	if h.lastEvent == nil || h.lastEvent.Execution.TimeSec <= 0 {
		t.Error("hook did not receive the execution record")
	}
}

func TestSetConfigRetargets(t *testing.T) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg(), WithProfiling())
	k := testKernel(t)
	ev1, err := q.EnqueueNDRange(k)
	if err != nil {
		t.Fatal(err)
	}
	cpu := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 4, GPUFreqGHz: 0.311}
	if err := q.SetConfig(cpu); err != nil {
		t.Fatal(err)
	}
	ev2, err := q.EnqueueNDRange(k)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Config.Device != apu.GPUDevice || ev2.Config.Device != apu.CPUDevice {
		t.Error("retargeting did not take effect")
	}
	if err := q.SetConfig(apu.Config{}); err == nil {
		t.Error("invalid retarget accepted")
	}
}

func TestNoiseSourceDeterministic(t *testing.T) {
	// The kernels.IterationRNG source must give reproducible events.
	mk := func() *Event {
		ctx := NewContext(nil)
		q, _ := ctx.NewQueue(gpuCfg(), WithNoise(kernels.IterationRNG))
		ev, err := q.EnqueueNDRange(testKernel(t))
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	a, b := mk(), mk()
	if a.Execution.TimeSec != b.Execution.TimeSec {
		t.Error("noisy enqueue not reproducible")
	}
}

func TestCPUQueueHasNoLaunchLatency(t *testing.T) {
	ctx := NewContext(nil)
	cpu := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 3.7, Threads: 4, GPUFreqGHz: 0.311}
	q, _ := ctx.NewQueue(cpu, WithProfiling())
	ev, err := q.EnqueueNDRange(testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	if ev.LaunchLatency() != 0 {
		t.Errorf("CPU launch latency = %v, want 0", ev.LaunchLatency())
	}
}

func BenchmarkEnqueue(b *testing.B) {
	ctx := NewContext(nil)
	q, _ := ctx.NewQueue(gpuCfg())
	kk := kernels.Instantiate("LULESH", kernels.Suite()[0].Kernels[0], "Small")
	k, err := NewKernel(kk.Workload)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueNDRange(k); err != nil {
			b.Fatal(err)
		}
	}
}
