package rapl

import (
	"math"
	"testing"
	"testing/quick"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

func testWorkload() apu.Workload {
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	return k.Workload
}

func TestWindowAverage(t *testing.T) {
	w, err := NewWindow(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Average() != 0 {
		t.Error("empty window average should be 0")
	}
	if err := w.Add(0.1, 10, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(0.2, 30, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := w.Average(); math.Abs(got-20) > 1e-12 {
		t.Errorf("average = %v, want 20", got)
	}
}

func TestWindowWeightsByDuration(t *testing.T) {
	w, _ := NewWindow(10)
	_ = w.Add(1, 10, 3) // 10 W for 3 s
	_ = w.Add(2, 40, 1) // 40 W for 1 s
	want := (10*3 + 40*1) / 4.0
	if got := w.Average(); math.Abs(got-want) > 1e-12 {
		t.Errorf("average = %v, want %v", got, want)
	}
}

func TestWindowPrunesOldSamples(t *testing.T) {
	w, _ := NewWindow(1.0)
	_ = w.Add(0.0, 100, 0.1)
	_ = w.Add(5.0, 10, 0.1) // first sample is now far outside the window
	if w.Len() != 1 {
		t.Errorf("window retained %d samples", w.Len())
	}
	if got := w.Average(); math.Abs(got-10) > 1e-12 {
		t.Errorf("average = %v, want 10", got)
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("zero span accepted")
	}
	w, _ := NewWindow(1)
	if err := w.Add(1, 10, 0); err == nil {
		t.Error("zero duration accepted")
	}
	_ = w.Add(2, 10, 0.1)
	if err := w.Add(1, 10, 0.1); err == nil {
		t.Error("time went backwards and was accepted")
	}
}

func TestWindowRejectsNonFiniteSamples(t *testing.T) {
	// One NaN sample would poison the running average for its entire
	// residence in the window, freezing the controller on Hold.
	w, _ := NewWindow(1)
	if err := w.Add(0.1, 20, 0.1); err != nil {
		t.Fatal(err)
	}
	bad := [][3]float64{
		{math.NaN(), 20, 0.1},
		{0.2, math.NaN(), 0.1},
		{0.2, 20, math.NaN()},
		{math.Inf(1), 20, 0.1},
		{0.2, math.Inf(1), 0.1},
		{0.2, math.Inf(-1), 0.1},
	}
	for _, s := range bad {
		if err := w.Add(s[0], s[1], s[2]); err == nil {
			t.Errorf("Add(%v, %v, %v) accepted", s[0], s[1], s[2])
		}
	}
	if avg := w.Average(); math.IsNaN(avg) || math.Abs(avg-20) > 1e-12 {
		t.Errorf("rejected samples poisoned the average: %v", avg)
	}
	c, _ := NewController(20, 1)
	if _, err := c.Observe(0.1, math.NaN(), 0.1); err == nil {
		t.Error("controller observed a NaN power reading")
	}
	for _, w := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := NewController(w, 1); err == nil {
			t.Errorf("non-finite cap %v accepted", w)
		}
	}
}

func TestActionString(t *testing.T) {
	if Hold.String() != "hold" || StepDown.String() != "step-down" || StepUp.String() != "step-up" {
		t.Fatal("action strings")
	}
	if Action(7).String() == "" {
		t.Fatal("unknown action should render")
	}
}

func TestControllerDecisions(t *testing.T) {
	c, err := NewController(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Over the cap → step down.
	act, err := c.Observe(0.1, 30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if act != StepDown {
		t.Errorf("act = %v, want StepDown", act)
	}
	// Far below the cap (after the window refills) → step up.
	c2, _ := NewController(20, 1)
	act, _ = c2.Observe(0.1, 10, 0.1)
	if act != StepUp {
		t.Errorf("act = %v, want StepUp", act)
	}
	// Within the hysteresis band → hold.
	c3, _ := NewController(20, 1)
	act, _ = c3.Observe(0.1, 19.5, 0.1)
	if act != Hold {
		t.Errorf("act = %v, want Hold", act)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0, 1); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := NewController(20, 0); err == nil {
		t.Error("zero window accepted")
	}
	c, _ := NewController(20, 1)
	if _, err := c.Observe(1, 10, -1); err == nil {
		t.Error("bad sample accepted")
	}
}

func TestStepPolicies(t *testing.T) {
	gpuCfg := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: 2.4, Threads: 1, GPUFreqGHz: 0.819}
	// PolicyGPU steps the GPU first.
	next, changed := Step(gpuCfg, StepDown, PolicyGPU)
	if !changed || next.GPUFreqGHz != 0.649 || next.CPUFreqGHz != 2.4 {
		t.Errorf("Step = %v", next)
	}
	// At the GPU floor it falls through to the CPU.
	floor := gpuCfg
	floor.GPUFreqGHz = apu.MinGPUFreq()
	next, changed = Step(floor, StepDown, PolicyGPU)
	if !changed || next.CPUFreqGHz != 1.9 {
		t.Errorf("Step at GPU floor = %v", next)
	}
	// PolicyCPU never touches the GPU.
	next, changed = Step(gpuCfg, StepDown, PolicyCPU)
	if !changed || next.GPUFreqGHz != 0.819 || next.CPUFreqGHz != 1.9 {
		t.Errorf("PolicyCPU step = %v", next)
	}
	// Hold changes nothing.
	if _, changed := Step(gpuCfg, Hold, PolicyGPU); changed {
		t.Error("Hold changed the config")
	}
	// StepUp raises CPU first.
	next, changed = Step(gpuCfg, StepUp, PolicyGPU)
	if !changed || next.CPUFreqGHz != 2.8 {
		t.Errorf("StepUp = %v", next)
	}
	// Fully pinned config cannot step up.
	maxed := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 1, GPUFreqGHz: apu.MaxGPUFreq()}
	if _, changed := Step(maxed, StepUp, PolicyGPU); changed {
		t.Error("maxed config stepped up")
	}
}

func TestConvergeRespectsCap(t *testing.T) {
	m := apu.DefaultMachine()
	w := testWorkload()
	start := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	// Find an achievable cap: power at min frequency plus some margin.
	eMin, err := m.Run(w, apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MinCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()})
	if err != nil {
		t.Fatal(err)
	}
	capW := eMin.TotalPowerW() * 1.3
	c, err := NewController(capW, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	trace, final, err := Converge(m, w, start, c, PolicyCPU, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if final.CPUFreqGHz >= apu.MaxCPUFreq() {
		t.Errorf("controller did not step down: final %v", final)
	}
	if v := Violation(trace, capW); v > capW*0.1 {
		t.Errorf("steady state violates cap by %v W", v)
	}
}

func TestConvergeStepsUpWhenHeadroom(t *testing.T) {
	m := apu.DefaultMachine()
	w := testWorkload()
	// Start at the floor with a generous cap: the controller should
	// climb.
	start := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MinCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	c, _ := NewController(100, 0.5)
	_, final, err := Converge(m, w, start, c, PolicyCPU, 60)
	if err != nil {
		t.Fatal(err)
	}
	if final.CPUFreqGHz != apu.MaxCPUFreq() {
		t.Errorf("controller left performance on the table: %v", final)
	}
}

func TestConvergeGPUPolicy(t *testing.T) {
	m := apu.DefaultMachine()
	w := testWorkload()
	start := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: apu.MinCPUFreq(), Threads: 1, GPUFreqGHz: apu.MaxGPUFreq()}
	eStart, err := m.Run(w, start)
	if err != nil {
		t.Fatal(err)
	}
	capW := eStart.TotalPowerW() * 0.85
	c, _ := NewController(capW, 0.5)
	trace, final, err := Converge(m, w, start, c, PolicyGPU, 60)
	if err != nil {
		t.Fatal(err)
	}
	if final.GPUFreqGHz >= apu.MaxGPUFreq() && Violation(trace, capW) > 0 {
		t.Errorf("GPU policy failed to reduce GPU frequency: %v", final)
	}
}

func TestConvergeDeterministic(t *testing.T) {
	m := apu.DefaultMachine()
	w := testWorkload()
	start := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	run := func() apu.Config {
		c, _ := NewController(25, 0.5)
		_, final, err := Converge(m, w, start, c, PolicyCPU, 60)
		if err != nil {
			t.Fatal(err)
		}
		return final
	}
	if run() != run() {
		t.Error("Converge not deterministic")
	}
}

func TestViolationEmptyTrace(t *testing.T) {
	if Violation(nil, 20) != 0 {
		t.Error("empty trace violation should be 0")
	}
}

func BenchmarkConverge(b *testing.B) {
	m := apu.DefaultMachine()
	w := testWorkload()
	start := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _ := NewController(22, 0.5)
		if _, _, err := Converge(m, w, start, c, PolicyCPU, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// Property (testing/quick): the window average is always bounded by the
// minimum and maximum sample values it currently holds.
func TestPropertyWindowAverageBounded(t *testing.T) {
	f := func(raw [12]float64, span float64) bool {
		s := math.Mod(math.Abs(span), 5) + 0.1
		w, err := NewWindow(s)
		if err != nil {
			return false
		}
		tm := 0.0
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < len(raw); i += 2 {
			p := math.Abs(math.Mod(raw[i], 100))
			d := math.Abs(math.Mod(raw[i+1], 1)) + 0.01
			tm += d
			if err := w.Add(tm, p, d); err != nil {
				return false
			}
		}
		// Recompute bounds over samples still in the window.
		min, max = math.Inf(1), math.Inf(-1)
		for _, sm := range w.samples {
			if sm.w < min {
				min = sm.w
			}
			if sm.w > max {
				max = sm.w
			}
		}
		avg := w.Average()
		return avg >= min-1e-9 && avg <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Step never produces an invalid configuration.
func TestPropertyStepPreservesValidity(t *testing.T) {
	space := apu.NewSpace()
	f := func(rawCfg uint32, rawAct uint8, rawPol bool) bool {
		cfg := space.Configs[int(rawCfg)%space.Len()]
		act := Action(int(rawAct) % 3)
		pol := PolicyCPU
		if rawPol {
			pol = PolicyGPU
		}
		next, _ := Step(cfg, act, pol)
		return next.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
