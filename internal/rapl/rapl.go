// Package rapl implements a running-average power limit controller in
// the style of Intel RAPL (the paper's reference [1] and the basis of
// its frequency-limiting baselines, §V-A): a sliding time window of
// power samples, a running average compared against the cap, and
// hysteretic frequency stepping. The paper's test system lacks RAPL, so
// — like the paper — we simulate its behaviour; unlike the one-shot
// steady-state loop in internal/sched, this package models the
// controller converging over time as kernel iterations execute.
package rapl

import (
	"errors"
	"fmt"
	"math"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

// Window is a sliding-window running average of power samples.
type Window struct {
	spanSec float64
	samples []sample // time-ordered
}

type sample struct {
	t float64
	w float64
	d float64 // duration the reading covers
}

// NewWindow creates a running-average window spanning spanSec seconds.
func NewWindow(spanSec float64) (*Window, error) {
	if spanSec <= 0 {
		return nil, errors.New("rapl: non-positive window span")
	}
	return &Window{spanSec: spanSec}, nil
}

// Add records that power w was drawn for duration d ending at time t.
// Samples must arrive in non-decreasing time order. Non-finite times,
// powers, or durations are rejected: a single NaN sample would
// otherwise poison the running average for as long as it stays in the
// window, and the controller would Hold forever (NaN compares false
// against every threshold).
func (win *Window) Add(t, w, d float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
		return errors.New("rapl: non-finite sample")
	}
	if math.IsNaN(d) || d <= 0 {
		return errors.New("rapl: non-positive sample duration")
	}
	if n := len(win.samples); n > 0 && t < win.samples[n-1].t {
		return fmt.Errorf("rapl: sample at %v precedes last at %v", t, win.samples[n-1].t)
	}
	win.samples = append(win.samples, sample{t: t, w: w, d: d})
	// Prune samples that fell fully out of the window.
	cutoff := t - win.spanSec
	i := 0
	for i < len(win.samples) && win.samples[i].t < cutoff {
		i++
	}
	win.samples = win.samples[i:]
	return nil
}

// Average returns the duration-weighted running average of the samples
// within the window, or 0 when empty.
func (win *Window) Average() float64 {
	var e, d float64
	for _, s := range win.samples {
		e += s.w * s.d
		d += s.d
	}
	//lint:ignore floatcmp exact guard: total duration is 0 only for an empty or zero-length window
	if d == 0 {
		return 0
	}
	return e / d
}

// Len returns how many samples are in the window.
func (win *Window) Len() int { return len(win.samples) }

// Action is the controller's frequency decision.
type Action int

const (
	// Hold keeps the current P-state.
	Hold Action = iota
	// StepDown lowers the controlled P-state.
	StepDown
	// StepUp raises the controlled P-state.
	StepUp
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case StepDown:
		return "step-down"
	case StepUp:
		return "step-up"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Controller compares the window's running average against the cap with
// hysteresis: over the cap → step down; below cap·(1−Hysteresis) →
// step up (there is headroom); otherwise hold.
type Controller struct {
	CapW       float64
	Hysteresis float64
	window     *Window
}

// NewController builds a controller with the given cap and window span.
// A hysteresis of 0.08 (step up only below 92% of the cap) avoids
// oscillating between adjacent P-states.
func NewController(capW, windowSec float64) (*Controller, error) {
	if math.IsNaN(capW) || math.IsInf(capW, 0) || capW <= 0 {
		return nil, errors.New("rapl: cap must be a positive finite wattage")
	}
	win, err := NewWindow(windowSec)
	if err != nil {
		return nil, err
	}
	return &Controller{CapW: capW, Hysteresis: 0.08, window: win}, nil
}

// Observe feeds a power reading (watts over duration d ending at t) and
// returns the controller's decision.
func (c *Controller) Observe(t, w, d float64) (Action, error) {
	if err := c.window.Add(t, w, d); err != nil {
		return Hold, err
	}
	avg := c.window.Average()
	switch {
	case avg > c.CapW:
		return StepDown, nil
	case avg < c.CapW*(1-c.Hysteresis):
		return StepUp, nil
	}
	return Hold, nil
}

// Average exposes the current running average.
func (c *Controller) Average() float64 { return c.window.Average() }

// Policy chooses which knob the controller steps, mirroring the
// baselines of §V-A.
type Policy int

const (
	// PolicyCPU steps CPU P-states (the CPU+FL baseline's knob).
	PolicyCPU Policy = iota
	// PolicyGPU steps GPU P-states first, then CPU (GPU+FL's knobs).
	PolicyGPU
)

// Step applies an action to a configuration under a policy, returning
// the new configuration and whether anything changed.
func Step(cfg apu.Config, a Action, p Policy) (apu.Config, bool) {
	switch a {
	case Hold:
		return cfg, false
	case StepDown:
		if p == PolicyGPU && cfg.Device == apu.GPUDevice {
			if f, ok := apu.StepDownGPU(cfg.GPUFreqGHz); ok {
				cfg.GPUFreqGHz = f
				return cfg, true
			}
		}
		if f, ok := apu.StepDownCPU(cfg.CPUFreqGHz); ok {
			cfg.CPUFreqGHz = f
			return cfg, true
		}
	case StepUp:
		// Only the CPU fills headroom: the GPU P-state ratchets down
		// and never climbs back, matching the paper's GPU+FL ("if there
		// is power headroom after setting the GPU P-state, we increase
		// the CPU frequency"). Re-raising the GPU would make the
		// controller oscillate around the cap.
		if f, ok := apu.StepUpCPU(cfg.CPUFreqGHz); ok {
			cfg.CPUFreqGHz = f
			return cfg, true
		}
	}
	return cfg, false
}

// TracePoint records one iteration of a converging run.
type TracePoint struct {
	Iteration  int
	Config     apu.Config
	PowerW     float64
	RunningAvg float64
	Action     Action
}

// Converge simulates a kernel executing iteration after iteration under
// the controller: each iteration runs at the current configuration, its
// measured power feeds the window, and the controller's action adjusts
// the next iteration's P-states. It returns the trace and the final
// configuration. maxIters bounds the simulation.
func Converge(m *apu.Machine, w apu.Workload, start apu.Config, c *Controller, p Policy, maxIters int) ([]TracePoint, apu.Config, error) {
	if maxIters <= 0 {
		maxIters = 50
	}
	cfg := start
	var trace []TracePoint
	now := 0.0
	stable := 0
	for i := 0; i < maxIters; i++ {
		rng := kernels.IterationRNG(w.Name+"/rapl", 0, i)
		e, err := m.RunNoisy(w, cfg, rng)
		if err != nil {
			return nil, apu.Config{}, err
		}
		now += e.TimeSec
		act, err := c.Observe(now, e.TotalPowerW(), e.TimeSec)
		if err != nil {
			return nil, apu.Config{}, err
		}
		trace = append(trace, TracePoint{
			Iteration: i, Config: cfg, PowerW: e.TotalPowerW(), RunningAvg: c.Average(), Action: act,
		})
		next, changed := Step(cfg, act, p)
		if !changed {
			stable++
			if stable >= 3 {
				break // controller has settled
			}
		} else {
			stable = 0
		}
		cfg = next
	}
	return trace, cfg, nil
}

// Violation quantifies by how much a converged run's steady-state power
// exceeds the cap (0 when compliant), using the mean power of the last
// few trace points.
func Violation(trace []TracePoint, capW float64) float64 {
	if len(trace) == 0 {
		return 0
	}
	n := 3
	if len(trace) < n {
		n = len(trace)
	}
	var sum float64
	for _, tp := range trace[len(trace)-n:] {
		sum += tp.PowerW
	}
	avg := sum / float64(n)
	return math.Max(0, avg-capW)
}
