package rapl_test

import (
	"fmt"

	"acsel/internal/apu"
	"acsel/internal/kernels"
	"acsel/internal/rapl"
)

// A RAPL-style controller converging a CPU workload under a 20 W cap:
// the kernel starts at maximum frequency and the running-average
// limiter steps P-states down until the window average fits.
func ExampleConverge() {
	m := apu.DefaultMachine()
	w := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large").Workload
	start := apu.Config{
		Device:     apu.CPUDevice,
		CPUFreqGHz: apu.MaxCPUFreq(),
		Threads:    4,
		GPUFreqGHz: apu.MinGPUFreq(),
	}
	c, err := rapl.NewController(20, 0.5)
	if err != nil {
		panic(err)
	}
	trace, final, err := rapl.Converge(m, w, start, c, rapl.PolicyCPU, 60)
	if err != nil {
		panic(err)
	}
	fmt.Printf("settled on %v after %d iterations\n", final, len(trace))
	fmt.Printf("steady-state violation: %.1f W\n", rapl.Violation(trace, 20))
	// Output:
	// settled on CPU f=1.9GHz t=4 gpu=0.311GHz after 7 iterations
	// steady-state violation: 0.0 W
}
