package profiler

import "acsel/internal/metrics"

// Metric families of the profiling library: every instrumented kernel
// invocation counts a run and observes its (simulated) wall time, by
// executing device. These are the paper's "history of performance and
// power measurements" restated as aggregate telemetry.
var (
	mRuns = metrics.NewCounterVec("acsel_profiler_runs_total",
		"Instrumented kernel invocations executed, by device.", "device")
	mRunSeconds = metrics.NewHistogramVec("acsel_profiler_run_seconds",
		"Kernel iteration wall time as measured by the profiling library, by device.",
		metrics.TimeBuckets, "device")
)
