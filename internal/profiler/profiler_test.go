package profiler

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/kernels"
)

func testKernel() kernels.Kernel {
	b := kernels.Suite()[0]
	return kernels.Instantiate(b.Name, b.Kernels[0], "Small")
}

func TestRunRecordsSample(t *testing.T) {
	p := New()
	k := testKernel()
	s, err := p.Run(k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.KernelID != k.ID() || s.ConfigID != 0 || s.Iteration != 1 {
		t.Errorf("sample identity = %+v", s)
	}
	if s.TimeSec <= 0 || s.TotalPowerW() <= 0 {
		t.Errorf("sample measurements = %+v", s)
	}
	if s.Perf() != 1/s.TimeSec {
		t.Error("Perf mismatch")
	}
	if len(p.History()) != 1 {
		t.Errorf("history length = %d", len(p.History()))
	}
}

func TestRunReproducible(t *testing.T) {
	k := testKernel()
	a, err := New().Run(k, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Run(k, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec || a.CPUPowerW != b.CPUPowerW || a.Counters != b.Counters {
		t.Error("Run not reproducible across profiler instances")
	}
}

func TestRunUnknownConfig(t *testing.T) {
	p := New()
	if _, err := p.Run(testKernel(), 999, 0); err == nil {
		t.Fatal("expected ErrUnknownConfig")
	}
	if _, err := p.Run(testKernel(), -1, 0); err == nil {
		t.Fatal("expected ErrUnknownConfig")
	}
}

func TestRunConfig(t *testing.T) {
	p := New()
	s, err := p.RunConfig(testKernel(), apu.SampleConfigCPU(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config != apu.SampleConfigCPU() {
		t.Errorf("config = %v", s.Config)
	}
	bad := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: 2.4, Threads: 4, GPUFreqGHz: 0.819}
	if _, err := p.RunConfig(testKernel(), bad, 0); err == nil {
		t.Fatal("config outside the space must be rejected")
	}
}

func TestProfileAllConfigs(t *testing.T) {
	p := New()
	k := testKernel()
	ss, err := p.ProfileAllConfigs(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != p.Space.Len() {
		t.Fatalf("samples = %d, want %d", len(ss), p.Space.Len())
	}
	for i, s := range ss {
		if s.ConfigID != i {
			t.Fatalf("sample %d has config %d (order broken)", i, s.ConfigID)
		}
	}
	if len(p.History()) != p.Space.Len() {
		t.Errorf("history = %d", len(p.History()))
	}
}

func TestProfileAllConfigsMatchesSequential(t *testing.T) {
	// Concurrency must not perturb determinism.
	k := testKernel()
	par, err := New().ProfileAllConfigs(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := New()
	for id := 0; id < seq.Space.Len(); id++ {
		s, err := seq.Run(k, id, 3)
		if err != nil {
			t.Fatal(err)
		}
		if s.TimeSec != par[id].TimeSec || s.Counters != par[id].Counters {
			t.Fatalf("config %d: parallel and sequential profiles differ", id)
		}
	}
}

func TestHistoryFor(t *testing.T) {
	p := New()
	k1 := testKernel()
	b := kernels.Suite()[0]
	k2 := kernels.Instantiate(b.Name, b.Kernels[1], "Small")
	if _, err := p.Run(k1, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(k2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(k1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(k1, 1, 0); err != nil {
		t.Fatal(err)
	}
	h := p.HistoryFor(k1.ID())
	if len(h) != 3 {
		t.Fatalf("HistoryFor = %d samples", len(h))
	}
	// Ordered by (config, iteration).
	if h[0].ConfigID != 1 || h[1].ConfigID != 3 || h[1].Iteration != 0 || h[2].Iteration != 1 {
		t.Errorf("history order: %+v", h)
	}
}

func TestReset(t *testing.T) {
	p := New()
	if _, err := p.Run(testKernel(), 0, 0); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if len(p.History()) != 0 {
		t.Error("Reset did not clear history")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New()
	if _, err := p.Run(testKernel(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(testKernel(), 7, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q := New()
	if err := q.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ha, hb := p.History(), q.History()
	if len(ha) != len(hb) {
		t.Fatalf("round trip lost samples: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].KernelID != hb[i].KernelID || ha[i].TimeSec != hb[i].TimeSec || ha[i].Counters != hb[i].Counters {
			t.Fatalf("sample %d differs after round trip", i)
		}
	}
}

func TestReadJSONBadInput(t *testing.T) {
	p := New()
	if err := p.ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestConcurrentRunsSafe(t *testing.T) {
	p := New()
	k := testKernel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := p.Run(k, j, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(p.History()) != 80 {
		t.Errorf("history = %d, want 80", len(p.History()))
	}
}

func BenchmarkProfileAllConfigs(b *testing.B) {
	p := New()
	k := testKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Reset()
		if _, err := p.ProfileAllConfigs(k, 0); err != nil {
			b.Fatal(err)
		}
	}
}
