// Package profiler is the integrated profiling library of §III-D: it
// associates power and performance measurements with specific kernels,
// records per-invocation samples of performance counters and the two
// SMU power domains, keeps an in-memory history available to the
// runtime (the foundation for dynamic scheduling), and serializes
// profiles to disk after a run.
//
// On the real system the library is invoked through profiling pragmas
// compiled into library calls around each kernel; here Run plays both
// roles: it executes the kernel's workload on the machine model and
// records the instrumented measurement.
package profiler

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"acsel/internal/apu"
	"acsel/internal/counters"
	"acsel/internal/fault"
	"acsel/internal/kernels"
	"acsel/internal/power"
)

// Sample is one instrumented kernel invocation: identification, the
// timing outcome, the SMU's integrated power measurement, and the
// counter readout. It corresponds to one row of the paper's profiling
// data set.
type Sample struct {
	KernelID  string       `json:"kernel_id"`
	Benchmark string       `json:"benchmark"`
	Input     string       `json:"input"`
	Kernel    string       `json:"kernel"`
	ConfigID  int          `json:"config_id"`
	Config    apu.Config   `json:"config"`
	Iteration int          `json:"iteration"`
	TimeSec   float64      `json:"time_sec"`
	CPUPowerW float64      `json:"cpu_power_w"`
	NBGPUW    float64      `json:"nbgpu_power_w"`
	Counters  counters.Set `json:"counters"`
}

// Perf is the sample's throughput (1/time).
func (s Sample) Perf() float64 { return 1 / s.TimeSec }

// TotalPowerW is the package power of the sample.
func (s Sample) TotalPowerW() float64 { return s.CPUPowerW + s.NBGPUW }

// Profiler measures kernel executions on a machine model through a
// simulated SMU. It is safe for concurrent use.
type Profiler struct {
	Machine *apu.Machine
	Space   *apu.Space
	SMU     *power.SMU
	// CounterNoiseRel is the relative jitter applied to counter values.
	CounterNoiseRel float64
	// Faults, when non-nil, injects deterministic hardware faults at
	// the kernel, SMU, and counter seams of every run. Nil (the
	// default) leaves all measurements byte-identical to a profiler
	// without injection wiring.
	Faults *fault.Injector

	mu      sync.Mutex
	history []Sample
}

// New creates a profiler over the default machine, configuration space,
// and SMU.
func New() *Profiler {
	return &Profiler{
		Machine:         apu.DefaultMachine(),
		Space:           apu.NewSpace(),
		SMU:             power.DefaultSMU(),
		CounterNoiseRel: 0.01,
	}
}

// ErrUnknownConfig is returned when a config ID is outside the space.
var ErrUnknownConfig = errors.New("profiler: unknown configuration")

// Run executes one iteration of kernel k at configuration cfgID and
// records the sample. All noise derives from the (kernel, config,
// iteration) identity, so repeated calls return identical samples and
// whole experiments are reproducible.
func (p *Profiler) Run(k kernels.Kernel, cfgID, iteration int) (Sample, error) {
	return p.RunAttempt(k, cfgID, iteration, 0)
}

// RunAttempt is Run with an explicit sensor-read retry ordinal: the
// SMU fault event is keyed by attempt, so re-reading after
// power.ErrSensorDropout is a fresh fault decision that may succeed.
// Kernel-hang and counter faults key on the iteration alone — a
// retried read does not re-roll the kernel's own fate.
//
// When the SMU fails (dropout or implausible reading) the kernel
// still executed: the sample is returned with its timing intact and
// whatever power the sensor claimed, alongside the sentinel error,
// and is NOT recorded in the history.
func (p *Profiler) RunAttempt(k kernels.Kernel, cfgID, iteration, attempt int) (Sample, error) {
	cfg, err := p.Space.ByID(cfgID)
	if err != nil {
		return Sample{}, fmt.Errorf("%w: %v", ErrUnknownConfig, err)
	}
	rng := kernels.IterationRNG(k.ID(), cfgID, iteration)
	exec, err := p.Machine.RunNoisy(k.Workload, cfg, rng)
	if err != nil {
		return Sample{}, err
	}
	device := cfg.Device.String()
	mRuns.With(device).Inc()
	mRunSeconds.With(device).Observe(exec.TimeSec)
	evKey := fault.EventKey(k.ID(), cfgID)
	for _, f := range p.Faults.At(fault.SiteKernel, evKey, iteration) {
		if f.Kind == fault.KernelHang && f.Magnitude > 1 {
			exec.TimeSec *= f.Magnitude
		}
	}
	smuKey := evKey
	if attempt > 0 {
		smuKey = fmt.Sprintf("%s#r%d", evKey, attempt)
	}
	smuFaults := p.Faults.At(fault.SiteSMU, smuKey, iteration)
	meas, measErr := p.SMU.MeasureFaulty(power.ConstantTrace(exec.CPUPowerW, exec.NBGPUPowerW), exec.TimeSec, rng, smuFaults)
	s := Sample{
		KernelID:  k.ID(),
		Benchmark: k.Benchmark,
		Input:     k.Input,
		Kernel:    k.Name,
		ConfigID:  cfgID,
		Config:    cfg,
		Iteration: iteration,
		TimeSec:   exec.TimeSec,
		CPUPowerW: meas.AvgCPUW,
		NBGPUW:    meas.AvgNBGPUW,
	}
	if measErr != nil {
		return s, measErr
	}
	ctr := counters.Derive(k.Workload, exec).Noisy(rng, p.CounterNoiseRel)
	for _, f := range p.Faults.At(fault.SiteCounter, evKey, iteration) {
		ctr = ctr.Corrupted(f, rng)
	}
	s.Counters = ctr
	p.mu.Lock()
	p.history = append(p.history, s)
	p.mu.Unlock()
	return s, nil
}

// RunConfig is Run for an explicit configuration that must exist in the
// profiler's space.
func (p *Profiler) RunConfig(k kernels.Kernel, cfg apu.Config, iteration int) (Sample, error) {
	return p.RunConfigAttempt(k, cfg, iteration, 0)
}

// RunConfigAttempt is RunAttempt for an explicit configuration.
func (p *Profiler) RunConfigAttempt(k kernels.Kernel, cfg apu.Config, iteration, attempt int) (Sample, error) {
	id := p.Space.IDOf(cfg)
	if id < 0 {
		return Sample{}, fmt.Errorf("%w: %v", ErrUnknownConfig, cfg)
	}
	return p.RunAttempt(k, id, iteration, attempt)
}

// ProfileAllConfigs runs kernel k once at every configuration in the
// space, fanning out across CPUs. The returned samples are ordered by
// configuration ID regardless of scheduling.
func (p *Profiler) ProfileAllConfigs(k kernels.Kernel, iteration int) ([]Sample, error) {
	n := p.Space.Len()
	out := make([]Sample, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for id := 0; id < n; id++ {
		// Acquire before spawning so at most one goroutine exists per
		// semaphore slot (same discipline as core.Characterize).
		sem <- struct{}{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[id], errs[id] = p.Run(k, id, iteration)
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// History returns a copy of all recorded samples in recording order.
func (p *Profiler) History() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Sample(nil), p.history...)
}

// HistoryFor returns recorded samples for one kernel ID, ordered by
// (config, iteration) — the per-kernel measurement history the paper
// exposes to the runtime for dynamic scheduling.
func (p *Profiler) HistoryFor(kernelID string) []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Sample
	for _, s := range p.history {
		if s.KernelID == kernelID {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ConfigID != out[j].ConfigID {
			return out[i].ConfigID < out[j].ConfigID
		}
		return out[i].Iteration < out[j].Iteration
	})
	return out
}

// Reset clears the history.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.history = nil
	p.mu.Unlock()
}

// WriteJSON streams the history to w (one JSON document), the paper's
// "written to disk after the application completes".
func (p *Profiler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p.History())
}

// ReadJSON loads samples previously written by WriteJSON and appends
// them to the history.
func (p *Profiler) ReadJSON(r io.Reader) error {
	var ss []Sample
	if err := json.NewDecoder(r).Decode(&ss); err != nil {
		return fmt.Errorf("profiler: decoding history: %w", err)
	}
	p.mu.Lock()
	p.history = append(p.history, ss...)
	p.mu.Unlock()
	return nil
}
