package rts

import (
	"math"
	"reflect"
	"testing"

	"acsel/internal/fault"
	"acsel/internal/kernels"
)

// driveSteps executes global step indices [from, to) in epoch order:
// step s runs kernel ks[s mod len(ks)]. Both the sequential and the
// interrupted runs use this driver, so their step histories are
// directly comparable.
func driveSteps(t *testing.T, rt *Runtime, ks []kernels.Kernel, from, to int) {
	t.Helper()
	for s := from; s < to; s++ {
		if _, err := rt.RunKernel(ks[s%len(ks)]); err != nil {
			t.Fatalf("step %d (%s): %v", s, ks[s%len(ks)].Name, err)
		}
	}
}

// restoreInto round-trips a snapshot through its journal-record
// encoding into a fresh runtime with the same model and options.
func restoreInto(t *testing.T, snap *Snapshot, opts Options) *Runtime {
	t.Helper()
	m, _ := trainedModel(t)
	rec, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("encoding snapshot: %v", err)
	}
	decoded, err := DecodeSnapshot(rec)
	if err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	rt, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Restore(decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return rt
}

// TestSnapshotRestoreEquivalence is the crash-safety contract: cutting
// a run at ANY step boundary, snapshotting, restoring into a fresh
// runtime, and continuing must reproduce the uninterrupted run's step
// history and summary exactly (reflect.DeepEqual), under fault
// injection exercising quarantine, retries, and ladder moves.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	m, held := trainedModel(t)
	sc, ok := fault.ScenarioByName("blackout")
	if !ok {
		t.Fatal("no blackout scenario")
	}
	opts := Options{CapW: 22, Faults: fault.NewInjector(sc, 7)}
	total := len(held) * 6

	seq, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, seq, held, 0, total)
	wantSteps := seq.Steps()
	wantSum := seq.Summarize()

	// Cut points cover: before any step, mid-sampling (steps 1 and
	// len+1 are inside the two-iteration sample phase), just after
	// adaptation, deep into pinned execution, and the final step.
	for _, cut := range []int{0, 1, len(held) + 1, 2*len(held) + 3, total / 2, total - 1} {
		rt, err := New(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		driveSteps(t, rt, held, 0, cut)
		restored := restoreInto(t, rt.Snapshot(), opts)
		driveSteps(t, restored, held, cut, total)
		if !reflect.DeepEqual(restored.Steps(), wantSteps) {
			t.Errorf("cut %d: restored step history diverged from sequential run", cut)
		}
		if got := restored.Summarize(); !reflect.DeepEqual(got, wantSum) {
			t.Errorf("cut %d: restored summary diverged:\ngot  %+v\nwant %+v", cut, got, wantSum)
		}
	}
}

// TestSnapshotRestoreEquivalenceClean pins the same contract on a
// clean, watchdog-disarmed runtime (Health nil in both summaries, no
// robustness annotations anywhere).
func TestSnapshotRestoreEquivalenceClean(t *testing.T) {
	m, held := trainedModel(t)
	opts := Options{CapW: 24, FL: true}
	total := len(held) * 4

	seq, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, seq, held, 0, total)

	cut := len(held) + 2
	rt, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, rt, held, 0, cut)
	restored := restoreInto(t, rt.Snapshot(), opts)
	driveSteps(t, restored, held, cut, total)
	if !reflect.DeepEqual(restored.Steps(), seq.Steps()) {
		t.Error("clean run: restored step history diverged")
	}
	if got, want := restored.Summarize(), seq.Summarize(); !reflect.DeepEqual(got, want) {
		t.Errorf("clean run: restored summary diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if restored.Summarize().Health != nil {
		t.Error("clean restored runtime grew a Health map")
	}
}

// TestRestoredSummaryIdenticalAtCutPoint is the satellite regression:
// Summarize and HealthFor of a just-restored runtime must equal the
// originals byte for byte — no map-iteration or zero-value drift — at
// a cut point where some kernels are adapted and some are mid-sample.
func TestRestoredSummaryIdenticalAtCutPoint(t *testing.T) {
	m, held := trainedModel(t)
	sc, _ := fault.ScenarioByName("pstate-flaky")
	opts := Options{CapW: 20, Faults: fault.NewInjector(sc, 3)}
	rt, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, rt, held, 0, len(held)*2+1)
	restored := restoreInto(t, rt.Snapshot(), opts)
	if !reflect.DeepEqual(restored.Summarize(), rt.Summarize()) {
		t.Errorf("summary drift:\ngot  %+v\nwant %+v", restored.Summarize(), rt.Summarize())
	}
	if !reflect.DeepEqual(restored.Steps(), rt.Steps()) {
		t.Error("step history drift")
	}
	for _, k := range held {
		got, gok := restored.HealthFor(k.ID())
		want, wok := rt.HealthFor(k.ID())
		if gok != wok || !reflect.DeepEqual(got, want) {
			t.Errorf("%s: HealthFor drift: got %+v/%v want %+v/%v", k.ID(), got, gok, want, wok)
		}
		gcfg, gcl, gok := restored.SelectionFor(k.ID())
		wcfg, wcl, wok := rt.SelectionFor(k.ID())
		if gok != wok || gcl != wcl || gcfg != wcfg {
			t.Errorf("%s: SelectionFor drift", k.ID())
		}
	}
	if !reflect.DeepEqual(restored.AdaptedKernels(), rt.AdaptedKernels()) {
		t.Error("AdaptedKernels drift")
	}
}

// TestSnapshotOfFreshRuntime pins the zero-state edge: an untouched
// runtime snapshots to no kernels and nil steps, and restoring that
// snapshot reproduces the untouched state (Steps nil, not empty).
func TestSnapshotOfFreshRuntime(t *testing.T) {
	m, _ := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	snap := rt.Snapshot()
	if len(snap.Kernels) != 0 || snap.Steps != nil {
		t.Errorf("fresh snapshot: %+v", snap)
	}
	restored := restoreInto(t, snap, Options{CapW: 24})
	if got := restored.Steps(); got != nil {
		t.Errorf("restored fresh runtime has steps %v", got)
	}
	if !reflect.DeepEqual(restored.Summarize(), rt.Summarize()) {
		t.Error("fresh summary drift")
	}
}

// TestRestoreCarriesCap ensures the snapshot's cap wins over the
// options the fresh runtime was built with.
func TestRestoreCarriesCap(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, rt, held, 0, 3)
	if err := rt.SetCap(17); err != nil {
		t.Fatal(err)
	}
	restored := restoreInto(t, rt.Snapshot(), Options{CapW: 24})
	if got := restored.Cap(); got != 17 {
		t.Errorf("restored cap = %v, want 17", got)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	m, _ := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Snapshot{
		"nil":           nil,
		"wrong version": {Version: 99, CapW: 24},
		"nan cap":       {Version: SnapshotVersion, CapW: math.NaN()},
		"zero cap":      {Version: SnapshotVersion, CapW: 0},
		"empty key": {Version: SnapshotVersion, CapW: 24,
			Kernels: []KernelCheckpoint{{Key: ""}}},
		"duplicate key": {Version: SnapshotVersion, CapW: 24,
			Kernels: []KernelCheckpoint{{Key: "a"}, {Key: "a"}}},
	}
	for name, snap := range cases {
		if err := rt.Restore(snap); err == nil {
			t.Errorf("%s: Restore accepted %+v", name, snap)
		}
	}
}

func TestDecodeRejectsWrongRecordType(t *testing.T) {
	rec, err := EncodeStep(Step{Kernel: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(rec); err == nil {
		t.Error("DecodeSnapshot accepted a step record")
	}
	srec, err := EncodeSnapshot(&Snapshot{Version: SnapshotVersion, CapW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStep(srec); err == nil {
		t.Error("DecodeStep accepted a snapshot record")
	}
	s, err := DecodeStep(rec)
	if err != nil || s.Kernel != "k" {
		t.Errorf("step round trip: %+v, %v", s, err)
	}
}
