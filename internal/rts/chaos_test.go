package rts

import (
	"math"
	"reflect"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/fault"
)

func TestCapValidationRejectsNonFinite(t *testing.T) {
	m, _ := trainedModel(t)
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 0} {
		if _, err := New(m, Options{CapW: w}); err == nil {
			t.Errorf("New accepted cap %v", w)
		}
	}
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 0} {
		if err := rt.SetCap(w); err == nil {
			t.Errorf("SetCap accepted %v", w)
		}
	}
	if got := rt.Cap(); got != 24 {
		t.Errorf("rejected caps leaked through: cap = %v", got)
	}
}

func TestRungString(t *testing.T) {
	if RungModel.String() != "model" || RungModelFL.String() != "model+fl" || RungMinPower.String() != "min-power" {
		t.Fatal("rung strings")
	}
	if Rung(9).String() == "" {
		t.Fatal("unknown rung renders empty")
	}
}

// chaosRun drives every held-out kernel iters times under a scenario
// and returns the runtime.
func chaosRun(t *testing.T, scenario string, seed int64, capW float64, iters int) *Runtime {
	t.Helper()
	m, held := trainedModel(t)
	sc, ok := fault.ScenarioByName(scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", scenario)
	}
	rt, err := New(m, Options{CapW: capW, Faults: fault.NewInjector(sc, seed)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range held {
		for i := 0; i < iters; i++ {
			if _, err := rt.RunKernel(k); err != nil {
				t.Fatalf("%s iter %d under %s: %v", k.Name, i, scenario, err)
			}
		}
	}
	return rt
}

func TestChaosReplayIsBitIdentical(t *testing.T) {
	a := chaosRun(t, "blackout", 7, 22, 12)
	b := chaosRun(t, "blackout", 7, 22, 12)
	if !reflect.DeepEqual(a.Steps(), b.Steps()) {
		t.Error("same scenario+seed produced different step histories")
	}
	if !reflect.DeepEqual(a.Summarize(), b.Summarize()) {
		t.Error("same scenario+seed produced different summaries")
	}
	c := chaosRun(t, "blackout", 8, 22, 12)
	if reflect.DeepEqual(a.Steps(), c.Steps()) {
		t.Error("different seed replayed the same fault schedule")
	}
}

func TestSensorDropoutSurvivedAndAccounted(t *testing.T) {
	rt := chaosRun(t, "sensor-dropout", 3, 24, 15)
	sum := rt.Summarize()
	if sum.Health == nil {
		t.Fatal("no health map under fault injection")
	}
	totalDropouts := 0
	for _, h := range sum.Health {
		totalDropouts += h.Dropouts
	}
	// 20% dropout over 8 kernels × 15 iterations must fire many times.
	if totalDropouts == 0 {
		t.Error("sensor-dropout scenario produced zero dropouts")
	}
	// Bounded re-reads recover most dropouts; only unrecovered ones
	// surface as SensorLost steps, and none may count as violations of
	// record: lost steps carry the model's estimate.
	for _, s := range rt.Steps() {
		if s.SensorLost && s.PowerW < 0 {
			t.Errorf("lost-sensor step has negative power estimate: %+v", s)
		}
	}
}

func TestStuckSensorWalksDownLadder(t *testing.T) {
	// sensor-stuck pins readings at 9 W — plausible (under the sanity
	// bound) but far from predictions, so only the divergence watchdog
	// can catch it.
	rt := chaosRun(t, "sensor-stuck", 1, 24, 25)
	sum := rt.Summarize()
	if sum.Demotions == 0 {
		t.Error("stuck sensor never demoted any kernel")
	}
	if sum.Quarantined != 0 {
		t.Errorf("stuck-at-9W readings should pass the sanity gate, got %d quarantined", sum.Quarantined)
	}
}

func TestSpikeQuarantinedBySanityGate(t *testing.T) {
	// sensor-spike multiplies readings ×8 (≥96 W), beyond the 120 W
	// plausibility bound for high-power configs — those readings must be
	// quarantined, not fed to the limiter, and excluded from Violations.
	rt := chaosRun(t, "sensor-spike", 2, 30, 20)
	sum := rt.Summarize()
	quarantinedSteps := 0
	for _, s := range rt.Steps() {
		if s.Quarantined {
			quarantinedSteps++
			if s.PowerW > 120 {
				t.Errorf("quarantined step leaked implausible power %v into the record", s.PowerW)
			}
		}
	}
	if quarantinedSteps != sum.Quarantined {
		t.Errorf("summary quarantined %d, steps show %d", sum.Quarantined, quarantinedSteps)
	}
}

func TestPStateFlakyRetriesAndSurvives(t *testing.T) {
	rt := chaosRun(t, "pstate-flaky", 5, 24, 15)
	sum := rt.Summarize()
	if sum.ApplyRetries == 0 {
		t.Error("flaky P-state scenario triggered zero apply retries")
	}
	if rt.PStates().FailedApplies() == 0 {
		t.Error("manager recorded no failed applies")
	}
	for _, h := range sum.Health {
		if h.ApplyRetries > 0 && h.BackoffSec <= 0 {
			t.Error("retries booked no backoff")
		}
	}
}

func TestLadderDemoteAndPromoteMechanics(t *testing.T) {
	// Drive the ladder directly for deterministic coverage of the
	// demote → floor → promote cycle.
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24, Watchdog: true})
	if err != nil {
		t.Fatal(err)
	}
	k := held[0]
	for i := 0; i < 3; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.kernels[k.ID()]
	if st.rung != RungModel {
		t.Fatalf("base rung = %v", st.rung)
	}
	modelPin := st.pinned

	rt.demote(st, 24)
	if st.rung != RungModelFL || st.pinned != modelPin {
		t.Fatalf("first demotion: rung %v pinned %v", st.rung, st.pinned)
	}
	rt.demote(st, 24)
	if st.rung != RungMinPower {
		t.Fatalf("second demotion: rung %v", st.rung)
	}
	floorCfg, err := m.Space.ByID(st.minPowerID)
	if err != nil {
		t.Fatal(err)
	}
	if st.pinned != floorCfg {
		t.Errorf("min-power rung pinned %v, floor is %v", st.pinned, floorCfg)
	}
	// A cap change while floored must not climb off the floor.
	if err := rt.reselect(st, 30); err != nil {
		t.Fatal(err)
	}
	if st.pinned != floorCfg {
		t.Error("cap change unfloored a min-power kernel")
	}
	// Demoting at the floor is a no-op.
	rt.demote(st, 24)
	if st.rung != RungMinPower || st.demotions != 2 {
		t.Errorf("floor demotion moved state: rung %v demotions %d", st.rung, st.demotions)
	}

	rt.promote(st, 24)
	if st.rung != RungModelFL || st.recoveries != 1 {
		t.Fatalf("promotion: rung %v recoveries %d", st.rung, st.recoveries)
	}
	if st.pinned == floorCfg && st.pinned != modelPin {
		t.Error("promotion did not re-select off the floor")
	}
	rt.promote(st, 24)
	if st.rung != RungModel {
		t.Fatalf("second promotion: rung %v", st.rung)
	}
	// Promoting past the base rung is a no-op.
	rt.promote(st, 24)
	if st.rung != RungModel || st.recoveries != 2 {
		t.Errorf("over-promotion moved state: rung %v recoveries %d", st.rung, st.recoveries)
	}

	h, ok := rt.HealthFor(k.ID())
	if !ok || h.Demotions != 2 || h.Recoveries != 2 {
		t.Errorf("health = %+v ok=%v", h, ok)
	}
	if _, ok := rt.HealthFor("nope"); ok {
		t.Error("health for unknown kernel")
	}
}

func TestFLBaseRungWithOptionOn(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24, FL: true, Watchdog: true})
	if err != nil {
		t.Fatal(err)
	}
	k := held[1]
	for i := 0; i < 3; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.kernels[k.ID()]
	if st.rung != RungModelFL || st.baseRung != RungModelFL {
		t.Errorf("FL option: rung %v base %v, want model+fl", st.rung, st.baseRung)
	}
	// Recovery must stop at the FL base rung, never below it.
	rt.demote(st, 24)
	rt.promote(st, 24)
	rt.promote(st, 24)
	if st.rung != RungModelFL {
		t.Errorf("recovered past the base rung to %v", st.rung)
	}
}

func TestWatchdogOnlyRunMatchesCleanSteps(t *testing.T) {
	// The armed plumbing (retry-capable apply and measure paths) must
	// not change what executes on a healthy system: with the ladder
	// held observation-only (demotion threshold out of reach), an armed
	// run is bit-identical to a clean one. (With demotion live, an
	// armed run MAY differ — reacting to genuine cap violations is the
	// watchdog's job.)
	m, held := trainedModel(t)
	clean, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := New(m, Options{CapW: 24, Watchdog: true, DemoteAfter: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range held[:3] {
		for i := 0; i < 6; i++ {
			if _, err := clean.RunKernel(k); err != nil {
				t.Fatal(err)
			}
			if _, err := armed.RunKernel(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs, as := clean.Steps(), armed.Steps()
	if len(cs) != len(as) {
		t.Fatalf("step counts differ: %d vs %d", len(cs), len(as))
	}
	for i := range cs {
		if cs[i].Config != as[i].Config || cs[i].PowerW != as[i].PowerW || cs[i].TimeSec != as[i].TimeSec { //lint:ignore floatcmp identical runs must agree bit-for-bit
			t.Errorf("step %d diverged: clean %+v armed %+v", i, cs[i], as[i])
		}
	}
	if s := armed.Summarize(); s.Demotions != 0 || s.Quarantined != 0 || s.SensorLost != 0 {
		t.Errorf("healthy armed run reported faults: %+v", s)
	}
}

func TestBlackoutKeepsRuntimeAlive(t *testing.T) {
	// Every seam faulting at once: the runtime must never return an
	// error, and untrusted steps must not count as violations.
	rt := chaosRun(t, "blackout", 11, 22, 15)
	sum := rt.Summarize()
	if sum.Steps == 0 {
		t.Fatal("no steps recorded")
	}
	for _, s := range rt.Steps() {
		if !s.Trusted() && !s.UnderCap && s.PowerW > 22 {
			// Untrusted steps carry estimates; an estimate over cap is
			// possible but must never have been a sensor claim.
			if s.PowerW > 120 {
				t.Errorf("untrusted step carries raw sensor claim: %+v", s)
			}
		}
	}
	if sum.Health == nil {
		t.Fatal("blackout run has no health map")
	}
}

func TestSampleConfigsUnchangedUnderFaults(t *testing.T) {
	// Fault injection must not change the adaptation protocol itself:
	// the first two iterations still run the paper's sample configs.
	rt := chaosRun(t, "blackout", 4, 24, 3)
	for _, s := range rt.Steps() {
		switch s.Phase {
		case PhaseSampleCPU:
			if s.Config != apu.SampleConfigCPU() {
				t.Errorf("CPU sample ran %v", s.Config)
			}
		case PhaseSampleGPU:
			if s.Config != apu.SampleConfigGPU() {
				t.Errorf("GPU sample ran %v", s.Config)
			}
		}
	}
}
