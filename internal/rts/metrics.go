package rts

import "acsel/internal/metrics"

// Metric families of the adaptive runtime. The degradation ladder,
// retry loops, and quarantine gate added with the fault layer made
// decisions that previously left no quantitative trail; every control
// action now increments a counter so a scraped run (or a -metrics-dump
// snapshot) shows exactly how hard the watchdog is working.
var (
	mSteps = metrics.NewCounterVec("acsel_rts_steps_total",
		"Kernel iterations executed by the adaptive runtime, by lifecycle phase.", "phase")
	mCapViolations = metrics.NewCounter("acsel_rts_cap_violations_total",
		"Trusted power readings that exceeded the active node cap.")
	mLadderTransitions = metrics.NewCounterVec("acsel_rts_ladder_transitions_total",
		"Degradation-ladder moves, by direction (demote or promote).", "direction")
	mPStateRetries = metrics.NewCounter("acsel_rts_pstate_retries_total",
		"P-state apply attempts retried after a transient transition failure.")
	mApplyFailures = metrics.NewCounter("acsel_rts_pstate_apply_failures_total",
		"P-state transitions abandoned after exhausting the retry budget.")
	mQuarantined = metrics.NewCounter("acsel_rts_quarantined_readings_total",
		"Power readings rejected by the plausibility gate and replaced with model estimates.")
	mDropouts = metrics.NewCounter("acsel_rts_sensor_dropouts_total",
		"Sensor dropout events, including bounded re-reads.")
	mReselectFallback = metrics.NewCounter("acsel_rts_reselect_fallback_total",
		"Reselections that found no predicted-frontier point under the cap and fell back to minimum predicted power.")
	mDivergence = metrics.NewGauge("acsel_rts_model_divergence_ratio",
		"Most recently observed smoothed |measured-predicted|/predicted power divergence (EWMA).")
	mRestores = metrics.NewCounter("acsel_rts_restores_total",
		"Runtime state restorations from a checkpoint snapshot.")
)
