package rts

import (
	"sync"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

var (
	modelOnce sync.Once
	modelErr  error
	gModel    *core.Model
	gHeldOut  []kernels.Kernel
)

// trainedModel trains once on everything except LULESH; the held-out
// LULESH Small kernels play the role of a new application.
func trainedModel(t *testing.T) (*core.Model, []kernels.Kernel) {
	t.Helper()
	modelOnce.Do(func() {
		var training []kernels.Kernel
		for _, c := range kernels.Combos() {
			if c.Benchmark == "LULESH" {
				if c.Input == "Small" {
					gHeldOut = c.Kernels
				}
				continue
			}
			training = append(training, c.Kernels...)
		}
		p := profiler.New()
		opts := core.DefaultTrainOptions()
		opts.Iterations = 2
		profs, err := core.Characterize(p, training, opts)
		if err != nil {
			modelErr = err
			return
		}
		gModel, modelErr = core.Train(p.Space, profs, opts)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return gModel, gHeldOut
}

func TestNewValidation(t *testing.T) {
	m, _ := trainedModel(t)
	if _, err := New(nil, Options{CapW: 20}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(m, Options{CapW: 0}); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseSampleCPU.String() != "sample-cpu" || PhaseSampleGPU.String() != "sample-gpu" || PhasePinned.String() != "pinned" {
		t.Fatal("phase strings")
	}
	if Phase(7).String() == "" {
		t.Fatal("unknown phase renders empty")
	}
}

func TestAdaptationLifecycle(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	k := held[0]

	// Iteration 0: CPU sample configuration.
	s0, err := rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Phase != PhaseSampleCPU || s0.Config != apu.SampleConfigCPU() {
		t.Errorf("step 0: %+v", s0)
	}
	if _, _, ok := rt.SelectionFor(k.ID()); ok {
		t.Error("selection available before sampling completes")
	}

	// Iteration 1: GPU sample configuration; adaptation happens here.
	s1, err := rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Phase != PhaseSampleGPU || s1.Config != apu.SampleConfigGPU() {
		t.Errorf("step 1: %+v", s1)
	}
	cfg, cluster, ok := rt.SelectionFor(k.ID())
	if !ok {
		t.Fatal("no selection after two samples")
	}
	if cluster < 0 || cluster >= m.K {
		t.Errorf("cluster = %d", cluster)
	}

	// Iteration 2+: pinned.
	s2, err := rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Phase != PhasePinned || s2.Config != cfg {
		t.Errorf("step 2: %+v (pinned %v)", s2, cfg)
	}
	if s2.Cluster != cluster {
		t.Error("cluster not carried into pinned steps")
	}
	// §IV-C: after the second iteration the configuration is fixed.
	s3, err := rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Config != s2.Config {
		t.Error("pinned configuration changed without a cap change")
	}
}

func TestCapChangeReselectsFromCachedFrontier(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 40})
	if err != nil {
		t.Fatal(err)
	}
	k := held[0] // CalcFBHourglass: GPU-friendly at high caps
	for i := 0; i < 3; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	loose, _, _ := rt.SelectionFor(k.ID())
	historyBefore := len(rt.Profiler().HistoryFor(k.ID()))

	if err := rt.SetCap(13); err != nil {
		t.Fatal(err)
	}
	s, err := rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	tight := s.Config
	if tight == loose {
		t.Errorf("cap 40→13 did not change the configuration (%v)", tight)
	}
	// Re-selection must not have triggered new sample-config profiling:
	// exactly one new history entry (the pinned run itself).
	historyAfter := len(rt.Profiler().HistoryFor(k.ID()))
	if historyAfter != historyBefore+1 {
		t.Errorf("cap change re-profiled: history %d -> %d", historyBefore, historyAfter)
	}
	if err := rt.SetCap(0); err == nil {
		t.Error("zero cap accepted")
	}
}

func TestFLStepsDownOnViolation(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 21, FL: true})
	if err != nil {
		t.Fatal(err)
	}
	// Run all kernels a few iterations; any pinned violation must cause
	// the next pinned iteration to use a lower frequency.
	for _, k := range held {
		var prev *Step
		for i := 0; i < 5; i++ {
			s, err := rt.RunKernel(k)
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil && prev.Phase == PhasePinned && !prev.UnderCap && s.Phase == PhasePinned {
				lowered := s.Config.CPUFreqGHz < prev.Config.CPUFreqGHz ||
					s.Config.GPUFreqGHz < prev.Config.GPUFreqGHz
				atFloor := prev.Config.CPUFreqGHz == apu.MinCPUFreq() &&
					(prev.Config.Device == apu.CPUDevice || prev.Config.GPUFreqGHz == apu.MinGPUFreq())
				if !lowered && !atFloor {
					t.Errorf("%s: violation at %v not followed by a step down (next %v)",
						k.Name, prev.Config, s.Config)
				}
			}
			cp := s
			prev = &cp
		}
	}
}

func TestVarAwareOptionIsMoreConservative(t *testing.T) {
	m, held := trainedModel(t)
	base, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	va, err := New(m, Options{CapW: 24, VarAwareZ: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := held[1]
	for i := 0; i < 3; i++ {
		if _, err := base.RunKernel(k); err != nil {
			t.Fatal(err)
		}
		if _, err := va.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	bCfg, _, _ := base.SelectionFor(k.ID())
	vCfg, _, _ := va.SelectionFor(k.ID())
	bPred := predictedPower(t, m, base, k, bCfg)
	vPred := predictedPower(t, m, va, k, vCfg)
	if vPred > bPred+1e-9 {
		t.Errorf("variance-aware pick predicts more power (%v) than base (%v)", vPred, bPred)
	}
}

func predictedPower(t *testing.T, m *core.Model, rt *Runtime, k kernels.Kernel, cfg apu.Config) float64 {
	t.Helper()
	hist := rt.Profiler().HistoryFor(k.ID())
	var sr core.SampleRuns
	for _, s := range hist {
		if s.Iteration == 0 && s.Config == apu.SampleConfigCPU() {
			sr.CPU = s
		}
		if s.Iteration == 1 && s.Config == apu.SampleConfigGPU() {
			sr.GPU = s
		}
	}
	preds, _, err := m.PredictAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	id := m.Space.IDOf(cfg)
	return preds[id].PowerW
}

func TestSummarize(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range held[:4] {
		for i := 0; i < 4; i++ {
			if _, err := rt.RunKernel(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	sum := rt.Summarize()
	if sum.Steps != 16 || sum.SampledSteps != 8 || sum.PinnedSteps != 8 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.TimeSec <= 0 || sum.EnergyJ <= 0 {
		t.Errorf("summary totals: %+v", sum)
	}
	if len(rt.Steps()) != 16 {
		t.Error("step history incomplete")
	}
}

func TestACPIStateFollowsPin(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 18})
	if err != nil {
		t.Fatal(err)
	}
	k := held[2]
	for i := 0; i < 3; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	cfg, _, _ := rt.SelectionFor(k.ID())
	f0, err := rt.PStates().CUFrequency(0)
	if err != nil {
		t.Fatal(err)
	}
	if f0 != cfg.CPUFreqGHz {
		t.Errorf("ACPI CU0 at %v, pinned config %v", f0, cfg)
	}
}

func BenchmarkRunKernelPinned(b *testing.B) {
	var training []kernels.Kernel
	var held []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == "LULESH" {
			if c.Input == "Small" {
				held = c.Kernels
			}
			continue
		}
		training = append(training, c.Kernels...)
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, training, opts)
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(p.Space, profs, opts)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(model, Options{CapW: 24})
	if err != nil {
		b.Fatal(err)
	}
	k := held[0]
	// Prime through the sampling phases.
	for i := 0; i < 2; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunKernel(k); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCallsiteContextsAdaptIndependently(t *testing.T) {
	// §VI extension: the same kernel invoked from two call sites gets
	// independent sampling and pinning.
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	k := held[0]
	// Site A goes through its two sampling phases.
	for i := 0; i < 3; i++ {
		if _, err := rt.RunKernelAt(k, "phase-A"); err != nil {
			t.Fatal(err)
		}
	}
	// Site B starts fresh: its first run must be the CPU sample phase.
	s, err := rt.RunKernelAt(k, "phase-B")
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase != PhaseSampleCPU {
		t.Errorf("new call site started in phase %v, want sample-cpu", s.Phase)
	}
	if _, _, ok := rt.SelectionFor(k.ID() + "@phase-A"); !ok {
		t.Error("site A selection missing")
	}
	if _, _, ok := rt.SelectionFor(k.ID() + "@phase-B"); ok {
		t.Error("site B should not be pinned yet")
	}
	// Default (no callsite) is yet another context.
	s, err = rt.RunKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase != PhaseSampleCPU {
		t.Errorf("default context started in phase %v", s.Phase)
	}
}

func TestPredictionsForAndAdaptedKernels(t *testing.T) {
	m, held := trainedModel(t)
	rt, err := New(m, Options{CapW: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.PredictionsFor("nope"); ok {
		t.Error("predictions for unknown kernel")
	}
	if len(rt.AdaptedKernels()) != 0 {
		t.Error("adapted kernels before any run")
	}
	k := held[0]
	if _, err := rt.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	// After one sample iteration: known but not adapted.
	if _, ok := rt.PredictionsFor(k.ID()); ok {
		t.Error("predictions before adaptation completes")
	}
	if _, err := rt.RunKernel(k); err != nil {
		t.Fatal(err)
	}
	preds, ok := rt.PredictionsFor(k.ID())
	if !ok || len(preds) != m.Space.Len() {
		t.Fatalf("predictions after adaptation: ok=%v len=%d", ok, len(preds))
	}
	adapted := rt.AdaptedKernels()
	if len(adapted) != 1 || adapted[0] != k.ID() {
		t.Errorf("adapted = %v", adapted)
	}
}
