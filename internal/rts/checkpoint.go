// Checkpoint/restore for the adaptive runtime: Snapshot captures every
// piece of learned and health state a kill would otherwise lose — the
// per-kernel adaptation (samples, cluster, pinned configuration), the
// degradation-ladder position, retry/quarantine/dropout counters, the
// divergence tracker, and the full step history — and Restore rebuilds
// a runtime whose observable behaviour (Steps, Summarize, HealthFor,
// and every future RunKernel decision) is reflect.DeepEqual-identical
// to one that never stopped. Predictions and the Pareto frontier are
// deliberately NOT persisted: they are a deterministic function of the
// model and the persisted sample runs, so Restore recomputes them and
// a snapshot can never disagree with the model that consumes it.
package rts

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"acsel/internal/apu"
	"acsel/internal/checkpoint"
	"acsel/internal/core"
	"acsel/internal/profiler"
)

// SnapshotVersion guards the snapshot schema; Restore rejects other
// versions rather than guessing at field meanings.
const SnapshotVersion = 1

// Journal record types for runtimes checkpointed through
// internal/checkpoint: a full state snapshot, and one executed step.
const (
	// RecordSnapshot frames a JSON-encoded Snapshot.
	RecordSnapshot byte = 1
	// RecordStep frames one JSON-encoded Step appended after the
	// snapshot it extends.
	RecordStep byte = 2
)

// KernelCheckpoint is one kernel's persisted adaptation state.
type KernelCheckpoint struct {
	Key  string `json:"key"`
	Iter int    `json:"iter"`
	// Adapted records whether classification has happened (iter >= 2
	// on an uninterrupted run); Restore recomputes the frontier and
	// predictions from the samples only when true.
	Adapted   bool            `json:"adapted"`
	CPUSample profiler.Sample `json:"cpu_sample"`
	GPUSample profiler.Sample `json:"gpu_sample"`
	Cluster   int             `json:"cluster"`
	Pinned    apu.Config      `json:"pinned"`
	PinnedCap float64         `json:"pinned_cap"`

	Rung       Rung        `json:"rung"`
	BaseRung   Rung        `json:"base_rung"`
	MinPowerID int         `json:"min_power_id"`
	Healthy    int         `json:"healthy"`
	Unhealthy  int         `json:"unhealthy"`
	DivEWMA    float64     `json:"div_ewma"`
	DivSamples int         `json:"div_samples"`
	Applied    *apu.Config `json:"applied,omitempty"`

	Demotions     int     `json:"demotions"`
	Recoveries    int     `json:"recoveries"`
	Quarantined   int     `json:"quarantined"`
	Dropouts      int     `json:"dropouts"`
	ApplyRetries  int     `json:"apply_retries"`
	ApplyFailures int     `json:"apply_failures"`
	BackoffSec    float64 `json:"backoff_sec"`
}

// Snapshot is the runtime's complete checkpointable state.
type Snapshot struct {
	Version int     `json:"version"`
	CapW    float64 `json:"cap_w"`
	// Kernels is sorted by key so snapshots of equal state are
	// byte-identical regardless of map iteration order.
	Kernels []KernelCheckpoint `json:"kernels"`
	Steps   []Step             `json:"steps"`
}

// Snapshot captures the runtime's current state. It is safe to call
// concurrently with RunKernel; the capture is atomic under the
// runtime's lock.
func (rt *Runtime) Snapshot() *Snapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := &Snapshot{Version: SnapshotVersion, CapW: rt.capW}
	keys := make([]string, 0, len(rt.kernels))
	for key := range rt.kernels {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := rt.kernels[key]
		ewma, n := st.div.State()
		kc := KernelCheckpoint{
			Key:           key,
			Iter:          st.iter,
			Adapted:       st.preds != nil,
			CPUSample:     st.cpuSample,
			GPUSample:     st.gpuSample,
			Cluster:       st.cluster,
			Pinned:        st.pinned,
			PinnedCap:     st.pinnedCap,
			Rung:          st.rung,
			BaseRung:      st.baseRung,
			MinPowerID:    st.minPowerID,
			Healthy:       st.healthy,
			Unhealthy:     st.unhealthy,
			DivEWMA:       ewma,
			DivSamples:    n,
			Demotions:     st.demotions,
			Recoveries:    st.recoveries,
			Quarantined:   st.quarantined,
			Dropouts:      st.dropouts,
			ApplyRetries:  st.applyRetries,
			ApplyFailures: st.applyFailures,
			BackoffSec:    st.backoffSec,
		}
		if st.applied != nil {
			cp := *st.applied
			kc.Applied = &cp
		}
		snap.Kernels = append(snap.Kernels, kc)
	}
	if len(rt.steps) > 0 {
		snap.Steps = append([]Step(nil), rt.steps...)
	}
	return snap
}

// ErrBadSnapshot reports a snapshot Restore cannot accept.
var ErrBadSnapshot = errors.New("rts: invalid snapshot")

// Restore replaces the runtime's state with a snapshot taken from a
// runtime over the same model and options. Per-kernel predictions and
// frontiers are recomputed from the persisted sample runs — the same
// deterministic computation adapt performed originally — so the
// restored runtime's future selections match the uninterrupted run's
// exactly. Restore fully overwrites prior state; call it on a fresh
// runtime.
func (rt *Runtime) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("%w: nil", ErrBadSnapshot)
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, snap.Version, SnapshotVersion)
	}
	if err := validCapW(snap.CapW); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	kernels := make(map[string]*kernelState, len(snap.Kernels))
	for _, kc := range snap.Kernels {
		if kc.Key == "" {
			return fmt.Errorf("%w: kernel with empty key", ErrBadSnapshot)
		}
		if _, dup := kernels[kc.Key]; dup {
			return fmt.Errorf("%w: duplicate kernel key %q", ErrBadSnapshot, kc.Key)
		}
		st := &kernelState{
			iter:          kc.Iter,
			cpuSample:     kc.CPUSample,
			gpuSample:     kc.GPUSample,
			cluster:       kc.Cluster,
			pinned:        kc.Pinned,
			pinnedCap:     kc.PinnedCap,
			rung:          kc.Rung,
			baseRung:      kc.BaseRung,
			minPowerID:    kc.MinPowerID,
			healthy:       kc.Healthy,
			unhealthy:     kc.Unhealthy,
			demotions:     kc.Demotions,
			recoveries:    kc.Recoveries,
			quarantined:   kc.Quarantined,
			dropouts:      kc.Dropouts,
			applyRetries:  kc.ApplyRetries,
			applyFailures: kc.ApplyFailures,
			backoffSec:    kc.BackoffSec,
		}
		st.div.SetState(kc.DivEWMA, kc.DivSamples)
		if kc.Applied != nil {
			cp := *kc.Applied
			st.applied = &cp
		}
		if kc.Adapted {
			sr := core.SampleRuns{CPU: kc.CPUSample, GPU: kc.GPUSample}
			frontier, preds, err := rt.model.PredictedFrontier(sr)
			if err != nil {
				return fmt.Errorf("rts: restoring %q: %w", kc.Key, err)
			}
			st.frontier = frontier
			st.preds = preds
		}
		kernels[kc.Key] = st
	}
	var steps []Step
	if len(snap.Steps) > 0 {
		steps = append([]Step(nil), snap.Steps...)
	}
	rt.mu.Lock()
	rt.capW = snap.CapW
	rt.kernels = kernels
	rt.steps = steps
	rt.mu.Unlock()
	mRestores.Inc()
	return nil
}

// EncodeSnapshot frames the snapshot as a checkpoint journal record.
func EncodeSnapshot(snap *Snapshot) (checkpoint.Record, error) {
	data, err := json.Marshal(snap)
	if err != nil {
		return checkpoint.Record{}, err
	}
	return checkpoint.Record{Type: RecordSnapshot, Data: data}, nil
}

// DecodeSnapshot parses a RecordSnapshot journal record.
func DecodeSnapshot(rec checkpoint.Record) (*Snapshot, error) {
	if rec.Type != RecordSnapshot {
		return nil, fmt.Errorf("rts: record type %d is not a snapshot", rec.Type)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Data, &snap); err != nil {
		return nil, fmt.Errorf("rts: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// EncodeStep frames one executed step as a checkpoint journal record.
func EncodeStep(s Step) (checkpoint.Record, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return checkpoint.Record{}, err
	}
	return checkpoint.Record{Type: RecordStep, Data: data}, nil
}

// DecodeStep parses a RecordStep journal record.
func DecodeStep(rec checkpoint.Record) (Step, error) {
	if rec.Type != RecordStep {
		return Step{}, fmt.Errorf("rts: record type %d is not a step", rec.Type)
	}
	var s Step
	if err := json.Unmarshal(rec.Data, &s); err != nil {
		return Step{}, fmt.Errorf("rts: decoding step: %w", err)
	}
	return s, nil
}
