// Package rts is the adaptive runtime system the paper's profiling
// library is "designed to provide a foundation for" (§III-D): it
// executes an application's kernels iteration by iteration, spends each
// kernel's first two iterations on the sample configurations (§III-C),
// classifies the kernel and caches its predicted Pareto frontier, pins
// the kernel to the best predicted configuration under the current
// power cap, and thereafter re-walks the cached frontier whenever the
// cap changes — without re-profiling or re-examining all
// configurations. An optional feedback limiter steps the pinned
// configuration's frequency down when measured power exceeds the cap.
package rts

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"acsel/internal/acpi"
	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/pareto"
	"acsel/internal/profiler"
	"acsel/internal/rapl"
	"acsel/internal/stats"
)

// Phase describes where a kernel is in its adaptation lifecycle.
type Phase int

const (
	// PhaseSampleCPU is the first iteration (CPU sample config).
	PhaseSampleCPU Phase = iota
	// PhaseSampleGPU is the second iteration (GPU sample config).
	PhaseSampleGPU
	// PhasePinned is every subsequent iteration (selected config).
	PhasePinned
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseSampleCPU:
		return "sample-cpu"
	case PhaseSampleGPU:
		return "sample-gpu"
	case PhasePinned:
		return "pinned"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Options configures the runtime.
type Options struct {
	// CapW is the initial node power cap.
	CapW float64
	// FL enables the feedback frequency limiter on pinned kernels.
	FL bool
	// VarAwareZ, when positive, applies the variance-aware selection
	// margin (§VI): predicted power + z·σ must fit under the cap.
	VarAwareZ float64
}

// Step reports one executed kernel iteration.
type Step struct {
	Kernel    string
	Phase     Phase
	Config    apu.Config
	Cluster   int // valid from PhasePinned on; -1 before
	TimeSec   float64
	PowerW    float64
	EnergyJ   float64
	UnderCap  bool
	Iteration int
}

// kernelState tracks one kernel's adaptation.
type kernelState struct {
	iter      int
	cpuSample profiler.Sample
	gpuSample profiler.Sample
	cluster   int
	frontier  *pareto.Frontier
	preds     []core.Prediction
	pinned    apu.Config
	pinnedCap float64 // cap the pin was chosen for
}

// Runtime executes kernels adaptively.
type Runtime struct {
	prof  *profiler.Profiler
	model *core.Model
	pm    *acpi.Manager
	opts  Options

	mu      sync.Mutex
	capW    float64
	kernels map[string]*kernelState
	steps   []Step
}

// ErrNoModel is returned when constructing a runtime without a model.
var ErrNoModel = errors.New("rts: nil model")

// New creates a runtime over a trained model.
func New(model *core.Model, opts Options) (*Runtime, error) {
	if model == nil {
		return nil, ErrNoModel
	}
	if opts.CapW <= 0 {
		return nil, errors.New("rts: non-positive power cap")
	}
	return &Runtime{
		prof:    profiler.New(),
		model:   model,
		pm:      acpi.NewManager(),
		opts:    opts,
		capW:    opts.CapW,
		kernels: map[string]*kernelState{},
	}, nil
}

// Profiler exposes the measurement history (the paper: "a history of
// performance and power measurements is made accessible to the
// application or runtime").
func (rt *Runtime) Profiler() *profiler.Profiler { return rt.prof }

// PStates exposes the ACPI manager, for inspecting DVFS state.
func (rt *Runtime) PStates() *acpi.Manager { return rt.pm }

// SetCap updates the power cap. Already-pinned kernels re-select from
// their cached predicted frontiers on their next iteration.
func (rt *Runtime) SetCap(w float64) error {
	if w <= 0 {
		return errors.New("rts: non-positive power cap")
	}
	rt.mu.Lock()
	rt.capW = w
	rt.mu.Unlock()
	return nil
}

// Cap returns the current power cap.
func (rt *Runtime) Cap() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.capW
}

// RunKernel executes the next iteration of kernel k under the runtime's
// adaptation policy and returns the step record.
func (rt *Runtime) RunKernel(k kernels.Kernel) (Step, error) {
	return rt.RunKernelAt(k, "")
}

// RunKernelAt is RunKernel with an explicit call-site context: the
// paper's §VI extension ("the runtime could use call stacks to
// differentiate between invocations of the same kernel from distinct
// points in the application"). Distinct call sites adapt independently
// — each gets its own sampling iterations, classification, and pinned
// configuration — because the same kernel invoked from different phases
// often sees different inputs.
func (rt *Runtime) RunKernelAt(k kernels.Kernel, callsite string) (Step, error) {
	key := k.ID()
	if callsite != "" {
		key += "@" + callsite
	}
	rt.mu.Lock()
	st, ok := rt.kernels[key]
	if !ok {
		st = &kernelState{cluster: -1}
		rt.kernels[key] = st
	}
	capW := rt.capW
	rt.mu.Unlock()

	var step Step
	switch {
	case st.iter == 0:
		s, err := rt.prof.RunConfig(k, apu.SampleConfigCPU(), 0)
		if err != nil {
			return Step{}, err
		}
		st.cpuSample = s
		step = rt.record(k, st, PhaseSampleCPU, s, capW)
	case st.iter == 1:
		s, err := rt.prof.RunConfig(k, apu.SampleConfigGPU(), 1)
		if err != nil {
			return Step{}, err
		}
		st.gpuSample = s
		if err := rt.adapt(st, capW); err != nil {
			return Step{}, err
		}
		step = rt.record(k, st, PhaseSampleGPU, s, capW)
	default:
		if !stats.AlmostEqual(st.pinnedCap, capW) {
			// Cap changed: re-walk the cached frontier (no re-profiling).
			if err := rt.reselect(st, capW); err != nil {
				return Step{}, err
			}
		}
		if err := rt.pm.Apply(st.pinned); err != nil {
			return Step{}, err
		}
		s, err := rt.prof.RunConfig(k, st.pinned, st.iter)
		if err != nil {
			return Step{}, err
		}
		if rt.opts.FL && s.TotalPowerW() > capW {
			// Feedback: step the pinned configuration down for future
			// iterations (GPU knob first on GPU configs, then CPU).
			policy := rapl.PolicyCPU
			if st.pinned.Device == apu.GPUDevice {
				policy = rapl.PolicyGPU
			}
			if next, changed := rapl.Step(st.pinned, rapl.StepDown, policy); changed {
				st.pinned = next
			}
		}
		step = rt.record(k, st, PhasePinned, s, capW)
	}
	st.iter++
	return step, nil
}

// adapt classifies the kernel from its two samples, caches predictions
// and the predicted frontier, and pins the initial configuration.
func (rt *Runtime) adapt(st *kernelState, capW float64) error {
	sr := core.SampleRuns{CPU: st.cpuSample, GPU: st.gpuSample}
	frontier, preds, err := rt.model.PredictedFrontier(sr)
	if err != nil {
		return err
	}
	cluster, err := rt.model.Classify(sr)
	if err != nil {
		return err
	}
	st.cluster = cluster
	st.frontier = frontier
	st.preds = preds
	return rt.reselect(st, capW)
}

// reselect picks the pinned configuration from cached predictions for
// the current cap.
func (rt *Runtime) reselect(st *kernelState, capW float64) error {
	if st.preds == nil {
		return errors.New("rts: reselect before adaptation")
	}
	bestID := -1
	if rt.opts.VarAwareZ > 0 {
		best := -1.0
		for _, p := range st.preds {
			if p.PowerW+rt.opts.VarAwareZ*p.PowerStd <= capW && p.Perf > best {
				best, bestID = p.Perf, p.ConfigID
			}
		}
	} else if pt, ok := st.frontier.BestUnderCap(capW); ok {
		bestID = pt.ID
	}
	if bestID < 0 {
		// Fall back to the minimum predicted power configuration.
		minW := -1.0
		for _, p := range st.preds {
			if minW < 0 || p.PowerW < minW {
				minW, bestID = p.PowerW, p.ConfigID
			}
		}
	}
	cfg, err := rt.model.Space.ByID(bestID)
	if err != nil {
		return err
	}
	st.pinned = cfg
	st.pinnedCap = capW
	return nil
}

func (rt *Runtime) record(k kernels.Kernel, st *kernelState, ph Phase, s profiler.Sample, capW float64) Step {
	step := Step{
		Kernel:    k.ID(),
		Phase:     ph,
		Config:    s.Config,
		Cluster:   st.cluster,
		TimeSec:   s.TimeSec,
		PowerW:    s.TotalPowerW(),
		EnergyJ:   s.TotalPowerW() * s.TimeSec,
		UnderCap:  s.TotalPowerW() <= capW,
		Iteration: st.iter,
	}
	rt.mu.Lock()
	rt.steps = append(rt.steps, step)
	rt.mu.Unlock()
	return step
}

// Steps returns all executed steps in order.
func (rt *Runtime) Steps() []Step {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]Step(nil), rt.steps...)
}

// Summary aggregates a run.
type Summary struct {
	Steps        int
	TimeSec      float64
	EnergyJ      float64
	Violations   int
	PinnedSteps  int
	SampledSteps int
}

// Summarize reduces the step history.
func (rt *Runtime) Summarize() Summary {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var sum Summary
	for _, s := range rt.steps {
		sum.Steps++
		sum.TimeSec += s.TimeSec
		sum.EnergyJ += s.EnergyJ
		if !s.UnderCap {
			sum.Violations++
		}
		if s.Phase == PhasePinned {
			sum.PinnedSteps++
		} else {
			sum.SampledSteps++
		}
	}
	return sum
}

// SelectionFor returns the currently pinned configuration of a kernel
// (ok=false before its two sample iterations complete). For call-site
// differentiated kernels, pass "kernelID@callsite".
func (rt *Runtime) SelectionFor(kernelID string) (apu.Config, int, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.kernels[kernelID]
	if !ok || st.iter < 2 {
		return apu.Config{}, -1, false
	}
	return st.pinned, st.cluster, true
}

// PredictionsFor returns the cached per-configuration predictions of an
// adapted kernel (ok=false before adaptation). Cluster-level budget
// policies consume these to build node utility curves without
// re-profiling (§I: constraints "passed down through the machine
// hierarchy").
func (rt *Runtime) PredictionsFor(key string) ([]core.Prediction, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.kernels[key]
	if !ok || st.preds == nil {
		return nil, false
	}
	return append([]core.Prediction(nil), st.preds...), true
}

// AdaptedKernels lists the keys (kernel IDs, possibly with call-site
// suffixes) that have completed adaptation.
func (rt *Runtime) AdaptedKernels() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for key, st := range rt.kernels {
		if st.preds != nil {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
